#!/usr/bin/env python
"""Gate: supervised campaigns survive seeded chaos without losing work.

Three scenarios over turbine_tiny sweeps run under the campaign
supervisor (:class:`repro.campaign.Supervisor`):

1. **Chaos sweep, zero lost jobs** — a 24-job sweep under a seeded,
   job-pinned fault schedule (worker crashes at every boundary: before
   lease, after lease, mid-solve, mid-checkpoint-write, before the
   outcome report; a mid-solve hang caught by heartbeat staleness; a
   result-store write-fault window absorbed by store retries) must
   finish with every job ``done``, and every stored result document
   must be **bitwise identical** to a fault-free reference run of the
   same spec (killed attempts resume from their checkpoint ring, and
   the canonical result format carries cumulative solve history, so
   chaos cannot leak into results).
2. **Counter contract, deterministic** — the chaos run's
   ``campaign.retries`` / ``requeues`` / ``quarantined`` /
   ``lease_expired`` / ``breaker_trips`` / ``store_retries`` counters
   must match their exact expected values, and a repeat of the same
   chaos run (fresh campaign directory, same schedule) must reproduce
   them identically — fault matching is keyed on ``(job, attempt)``,
   never on scheduling order.
3. **Quarantine semantics** — (a) a job crashed on every allowed
   attempt is quarantined with its per-attempt failure context and the
   rest of the sweep completes ("done with quarantined"); (b) a
   deterministic solver failure (injected fault with recovery
   disabled) is quarantined *immediately* — transient-only retry means
   ``campaign.retries`` stays 0.

Usage::

    python benchmarks/check_campaign_chaos.py [--workers 4]
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.campaign import Campaign, CampaignSpec, SupervisorPolicy  # noqa: E402
from repro.resilience import FaultInjector, FaultSpec  # noqa: E402

#: Counters whose exact values the gate pins.
COUNTERS = (
    "retries",
    "requeues",
    "quarantined",
    "lease_expired",
    "breaker_trips",
    "store_retries",
)


def build_spec(name: str) -> CampaignSpec:
    """A 24-job sweep (12 seeds x 2 dt values) with checkpoint rings."""
    return CampaignSpec(
        name=name,
        workload="turbine_tiny",
        steps=2,
        seeds=tuple(range(12)),
        grid={"dt": [0.05, 0.08]},
        base={"nranks": 2},
        checkpoint_every=1,
    )


def chaos_schedule(jobs) -> list[FaultSpec]:
    """The seeded fault schedule, pinned to job ids and attempt 0.

    Crashes hit every fault-domain boundary; the hang exercises
    heartbeat-based detection; the two-entry ``io_fail`` window on one
    job's store path is absorbed by the supervisor's store retries
    (budget 3) without costing a job attempt.
    """
    return [
        FaultSpec(kind="worker_crash", at=0, point="spawn", job=jobs[0].job_id),
        FaultSpec(kind="worker_crash", at=0, point="lease", job=jobs[3].job_id),
        FaultSpec(kind="worker_crash", at=0, point="run", job=jobs[6].job_id),
        FaultSpec(kind="worker_crash", at=0, point="ckpt", job=jobs[9].job_id),
        FaultSpec(
            kind="worker_crash", at=0, point="store", job=jobs[12].job_id
        ),
        FaultSpec(kind="worker_hang", at=0, point="run", job=jobs[15].job_id),
        FaultSpec(kind="io_fail", at=0, entries=2, job=jobs[18].digest()),
    ]


#: Expected counter contract of ``chaos_schedule``: five crash retries,
#: one hang requeue (whose kill is also the one expired lease), two
#: absorbed store retries, nothing quarantined, breaker quiet.
EXPECTED = {
    "retries": 5,
    "requeues": 1,
    "quarantined": 0,
    "lease_expired": 1,
    "breaker_trips": 0,
    "store_retries": 2,
}


def chaos_policy() -> SupervisorPolicy:
    # Heartbeat far above the worst inter-beat gap seen under full
    # worker contention (~7s measured fault-free at 4 workers on a
    # loaded container) — a single spurious kill would break the exact
    # counter contract, and the gate only pays the detection wait once
    # per run, for the one injected hang. Breaker parameterized so the
    # six scheduled failures cannot trip it (trip order under >1 worker
    # is scheduling-dependent, which a determinism gate cannot admit).
    return SupervisorPolicy(
        max_attempts=3,
        heartbeat_timeout_s=30.0,
        poll_s=0.02,
        backoff_base_s=0.01,
        backoff_max_s=0.05,
        breaker_window=8,
        breaker_min_events=8,
        breaker_threshold=1.0,
        store_io_retries=3,
    )


def run_chaos(spec, root: str, workers: int) -> tuple[Campaign, dict]:
    camp = Campaign(
        spec,
        root,
        workers=workers,
        policy=chaos_policy(),
        chaos=FaultInjector(chaos_schedule(spec.expand()), seed=2021),
    )
    return camp, camp.run()


def check_chaos_sweep(tmp: str, workers: int) -> list[str]:
    failures: list[str] = []
    spec = build_spec("chaos_gate")
    jobs = spec.expand()
    n_jobs = len(jobs)
    if n_jobs != 24:
        failures.append(f"expected a 24-job sweep, got {n_jobs}")

    # Fault-free reference (same supervised policy, no chaos).
    ref = Campaign(
        spec,
        os.path.join(tmp, "ref"),
        workers=workers,
        policy=chaos_policy(),
    )
    s_ref = ref.run()
    if s_ref["status_counts"]["done"] != n_jobs:
        failures.append(f"reference run: {s_ref['status_counts']}")
    if any(s_ref[c] != 0 for c in COUNTERS):
        failures.append(
            "reference run: supervised counters not all zero: "
            + str({c: s_ref[c] for c in COUNTERS})
        )

    camp_a, s_a = run_chaos(spec, os.path.join(tmp, "chaos_a"), workers)

    # 1. Zero lost jobs, everything done.
    if s_a["status_counts"]["done"] != n_jobs:
        failures.append(f"chaos run: {s_a['status_counts']} (lost jobs)")

    # 1b. Bitwise-identical stored results, job by job.
    for job in jobs:
        digest = job.digest()
        b_ref = ref.store.get_bytes(digest)
        b_chaos = camp_a.store.get_bytes(digest)
        if b_ref is None or b_chaos is None:
            failures.append(f"job {job.job_id}: missing stored result")
        elif b_ref != b_chaos:
            failures.append(
                f"job {job.job_id}: chaos-run result differs bitwise "
                "from the fault-free reference"
            )

    # 2. Exact counter contract...
    got_a = {c: s_a[c] for c in COUNTERS}
    if got_a != EXPECTED:
        failures.append(f"chaos run counters {got_a} != expected {EXPECTED}")
    if s_a["jobs_resumed"] < 1:
        failures.append(
            "chaos run: no job resumed from its checkpoint ring "
            "(kills after the first checkpoint must requeue-with-resume)"
        )

    # ...reproduced identically by a repeat run of the same schedule.
    _camp_b, s_b = run_chaos(spec, os.path.join(tmp, "chaos_b"), workers)
    got_b = {c: s_b[c] for c in COUNTERS}
    if got_b != got_a:
        failures.append(
            f"repeat chaos run counters drifted: {got_b} != {got_a}"
        )
    if s_b["status_counts"]["done"] != n_jobs:
        failures.append(f"repeat chaos run: {s_b['status_counts']}")
    return failures


def check_quarantine(tmp: str, workers: int) -> list[str]:
    failures: list[str] = []
    spec = CampaignSpec(
        name="chaos_gate_poison",
        workload="turbine_tiny",
        steps=1,
        seeds=(0, 1),
        base={"nranks": 2},
    )
    jobs = spec.expand()
    # (a) Exhaust the retry budget: crash one job on both allowed
    # attempts; the other job must still complete.
    chaos = FaultInjector(
        [
            FaultSpec(
                kind="worker_crash", at=0, point="spawn", job=jobs[0].job_id
            ),
            FaultSpec(
                kind="worker_crash", at=1, point="lease", job=jobs[0].job_id
            ),
        ],
        seed=2021,
    )
    camp = Campaign(
        spec,
        os.path.join(tmp, "poison"),
        workers=workers,
        policy=SupervisorPolicy(
            max_attempts=2, backoff_base_s=0.01, poll_s=0.02
        ),
        chaos=chaos,
    )
    s = camp.run()
    counts = s["status_counts"]
    if counts["quarantined"] != 1 or counts["done"] != 1:
        failures.append(f"poison sweep: {counts} (want 1 done, 1 quarantined)")
    if s["retries"] != 1 or s["quarantined"] != 1:
        failures.append(
            f"poison sweep: retries {s['retries']} quarantined "
            f"{s['quarantined']} (want 1 and 1)"
        )
    entry = camp.manifest.jobs[jobs[0].digest()]
    attempts = entry.get("attempts", [])
    if len(attempts) != 2 or entry.get("taxonomy") != "worker_crash":
        failures.append(
            "poison sweep: quarantined entry lacks its failure context "
            f"(attempts {len(attempts)}, taxonomy {entry.get('taxonomy')!r})"
        )

    # (b) Deterministic solver failure: recovery disabled + injected
    # exchange corruption -> SolverFailure (nonfinite taxonomy), which
    # must quarantine immediately (transient-only retry).
    det_spec = CampaignSpec(
        name="chaos_gate_det",
        workload="turbine_tiny",
        steps=2,
        seeds=(0,),
        base={
            "nranks": 2,
            "faults": [{"kind": "exchange_nan", "at": 40, "entries": 1}],
            "fault_seed": 7,
            "recovery": {"enabled": False},
        },
    )
    det = Campaign(
        det_spec,
        os.path.join(tmp, "det"),
        workers=workers,
        policy=SupervisorPolicy(max_attempts=3, poll_s=0.02),
    )
    s_det = det.run()
    if s_det["status_counts"]["quarantined"] != 1:
        failures.append(f"deterministic failure: {s_det['status_counts']}")
    if s_det["retries"] != 0:
        failures.append(
            f"deterministic failure retried {s_det['retries']} times — "
            "non-transient taxonomy classes must not burn retry budget"
        )
    d_entry = det.manifest.jobs[det_spec.expand()[0].digest()]
    if d_entry.get("taxonomy") not in (
        "nonfinite_iterate",
        "nonfinite_operands",
        "nonfinite_fields",
    ):
        failures.append(
            "deterministic failure: quarantine taxonomy "
            f"{d_entry.get('taxonomy')!r} is not a nonfinite_* class"
        )
    return failures


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--workers", type=int, default=4)
    args = ap.parse_args()

    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="campaign_chaos_") as tmp:
        failures += check_chaos_sweep(tmp, args.workers)
        failures += check_quarantine(tmp, min(args.workers, 2))

    if failures:
        print("campaign chaos gate: FAIL")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(
        "campaign chaos gate: OK (24-job sweep under seeded "
        "crash/hang/io chaos: zero lost jobs, bitwise-stable results, "
        "deterministic retry/requeue/quarantine counters)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
