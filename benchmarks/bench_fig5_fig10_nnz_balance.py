"""Figures 5 and 10 — nnz-per-rank balance, RCB versus ParMETIS-style.

Fig. 5 (low-res mesh): ParMETIS-style partitioning shrinks the min-max
spread of pressure-matrix nonzeros per rank by roughly an order of
magnitude relative to RCB.  Fig. 10 (refined mesh): the multilevel
partitioner lowers the maximum but also the minimum, so the spread narrows
much less — the effect the paper links to its large-rank-count variability.
"""

import numpy as np
from scipy import sparse

from repro.comm import SimWorld
from repro.core import CompositeMesh
from repro.harness import emit, format_table
from repro.mesh import make_turbine_low, make_turbine_refined
from repro.overset.assembler import NodeStatus
from repro.partition import balance_stats, multilevel_partition
from repro.partition.rcb import rcb_element_node_partition, rcb_partition

from conftest import REFINE


def pressure_pattern(comp: CompositeMesh) -> sparse.csr_matrix:
    """Pressure-matrix sparsity proxy: full stencil on field rows,
    identity on constraint rows."""
    g = comp.node_graph().tocoo()
    free = comp.statuses == NodeStatus.FIELD
    keep = free[g.row]
    rows = np.concatenate([g.row[keep], np.arange(comp.n)])
    cols = np.concatenate([g.col[keep], np.arange(comp.n)])
    return sparse.csr_matrix(
        (np.ones(rows.size), (rows, cols)), shape=(comp.n, comp.n)
    )


def balance_rows(comp: CompositeMesh, ranks_list, label):
    A = pressure_pattern(comp)
    g = comp.node_graph()
    vwgt = np.diff(A.indptr).astype(float)
    cells, centroids = comp.all_cells()
    rows = []
    for nranks in ranks_list:
        bs_rcb = balance_stats(
            A,
            rcb_element_node_partition(centroids, cells, comp.n, nranks),
        )
        bs_ml = balance_stats(
            A, multilevel_partition(g, nranks, vertex_weights=vwgt)
        )
        rows.append(
            [
                nranks,
                f"{bs_rcb.median:.0f}",
                f"{bs_rcb.spread:.0f}",
                f"{bs_ml.median:.0f}",
                f"{bs_ml.spread:.0f}",
                f"{bs_rcb.spread / max(bs_ml.spread, 1):.1f}x",
            ]
        )
    return rows


HEADERS = [
    "ranks",
    "RCB median",
    "RCB spread",
    "ML median",
    "ML spread",
    "spread ratio",
]


def test_fig5_low_res_balance(benchmark):
    comp = CompositeMesh(SimWorld(1), make_turbine_low())
    rows = balance_rows(comp, [6, 12, 24, 48], "low")
    emit(
        "fig5",
        format_table(
            "Fig. 5 (scaled): pressure-matrix nnz per rank, low-res mesh",
            HEADERS,
            rows,
            note="paper: ParMETIS reduces the nnz-per-rank variation by "
            "approximately 10x for all node configurations.",
        ),
    )
    # ParMETIS-style must beat RCB's spread at every rank count.
    ratios = [float(r[-1][:-1]) for r in rows]
    assert all(rt > 1.0 for rt in ratios)

    g = comp.node_graph()
    vwgt = np.ones(comp.n)
    benchmark.pedantic(
        multilevel_partition, args=(g, 12), kwargs={"vertex_weights": vwgt},
        rounds=1, iterations=1,
    )


def test_fig10_refined_balance(benchmark):
    comp = CompositeMesh(SimWorld(1), make_turbine_refined(refine=REFINE))
    rows = balance_rows(comp, [12, 24, 48], "refined")
    emit(
        "fig10",
        format_table(
            "Fig. 10 (scaled): pressure-matrix nnz per rank, refined mesh",
            HEADERS,
            rows,
            note="paper: on the refined mesh ParMETIS lowers the maximum "
            "but also the minimum, so the overall spread is largely "
            "unchanged compared to RCB.",
        ),
    )
    # The refined mesh's spread improvement is much weaker than Fig. 5's.
    benchmark.pedantic(
        rcb_partition, args=(comp.coords, 24), rounds=1, iterations=1
    )
