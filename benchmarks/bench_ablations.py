"""Ablations for the paper's individually-quantified optimizations (§5.1).

* Second inner Gauss-Seidel sweep: "has proven effective at reducing the
  number of GMRES iterations by roughly 2x for the momentum and scalar
  transport equations."
* Assembly variants: the optimized Algorithm 1 vs the cuSPARSE-style
  sparse-add vs hypre's general path ("more device memory, more data
  motion"); optimized accounts for ~50% of the gain over the baseline.
* AMG interpolation operators (§4.1): MM-ext family vs direct, plus
  aggressive-coarsening complexity reduction.
* CPU/GPU cross-over: "occurs around 20 Summit nodes ... roughly 200,000
  mesh nodes per GPU."
"""

import numpy as np
import pytest

from repro.amg import AMGHierarchy, AMGOptions, AMGPreconditioner
from repro.core.config import SimulationConfig
from repro.core.simulation import NaluWindSimulation
from repro.harness import emit, format_table, nli_series
from repro.krylov import GMRES
from repro.perf import SUMMIT_CPU_GRP, SUMMIT_GPU


def test_ablation_inner_gs_sweeps(benchmark):
    """1 vs 2 inner Jacobi-Richardson sweeps in the SGS2 preconditioner.

    Run at a long time step (weak diagonal dominance) and few ranks (large
    local blocks), the regime where the inner triangular accuracy governs
    convergence — as it does at the paper's 1M-rows-per-rank scale.
    """
    iters = {}
    for inner in (1, 2):
        cfg = SimulationConfig(nranks=2, sgs_inner=inner, dt=1.5)
        cfg.momentum_solver.tol = 1e-8
        cfg.scalar_solver.tol = 1e-8
        sim = NaluWindSimulation("turbine_tiny", cfg)
        rep = sim.run(2)
        iters[inner] = {
            eq: rep.mean_iterations(eq) for eq in ("momentum", "scalar")
        }
    rows = [
        [eq, f"{iters[1][eq]:.2f}", f"{iters[2][eq]:.2f}",
         f"{iters[1][eq] / max(iters[2][eq], 1e-9):.2f}x"]
        for eq in ("momentum", "scalar")
    ]
    emit(
        "ablation_inner_sweeps",
        format_table(
            "Ablation: GMRES iterations vs inner GS sweeps (SGS2)",
            ["equation", "1 inner sweep", "2 inner sweeps", "reduction"],
            rows,
            note="paper: the second inner iteration reduces GMRES "
            "iterations by roughly 2x for momentum and scalar transport "
            "(the scaled systems here are more diagonally dominant, so "
            "the reproduced reduction is smaller; see EXPERIMENTS.md).",
        ),
    )
    assert iters[2]["momentum"] < iters[1]["momentum"]
    assert iters[2]["scalar"] < iters[1]["scalar"]

    cfg = SimulationConfig(nranks=6, sgs_inner=2)
    sim = NaluWindSimulation("turbine_tiny", cfg)
    benchmark.pedantic(sim.step, rounds=1, iterations=1)


def test_ablation_assembly_variants(benchmark):
    """Recorded data motion and memory of the three global-assembly paths.

    Algorithm 1 is measured in isolation on a real momentum local system so
    the staging footprints are not masked by solver allocations.
    """
    import time as _time

    from repro.assembly import assemble_global_matrix
    from repro.comm import SimWorld
    from repro.perf.cost import CostModel

    # Build one real local system from the turbine momentum graph.
    cfg = SimulationConfig(nranks=6)
    sim = NaluWindSimulation("turbine_tiny", cfg)
    sim.step()
    local = sim.momentum.assembler.finalize()
    num = sim.comp.numbering

    stats = {}
    wall = {}
    for variant in ("optimized", "sparse_add", "general"):
        w = SimWorld(6)
        t0 = _time.perf_counter()
        with w.phase_scope("ga"):
            assemble_global_matrix(w, num, local, variant=variant)
        wall[variant] = _time.perf_counter() - t0
        cm = CostModel(SUMMIT_GPU)
        stats[variant] = (
            cm.phase_time(w, "ga").total,
            w.ops.peak_alloc(),
        )
    rows = [
        [
            v,
            f"{stats[v][0] * 1e6:.1f}",
            f"{stats[v][1] / 1e6:.3f}",
            f"{wall[v] * 1e3:.1f}",
        ]
        for v in ("optimized", "sparse_add", "general")
    ]
    emit(
        "ablation_assembly",
        format_table(
            "Ablation: Algorithm 1 variants on a real momentum system",
            ["variant", "modeled time [us]", "peak staging [MB]",
             "host wall [ms]"],
            rows,
            note="paper §3.3: the general path needs more device memory "
            "and data motion; sparse-add gives little speed benefit but a "
            "smaller memory footprint than the full-sorting approach.",
        ),
    )
    assert stats["general"][0] > stats["optimized"][0]
    assert stats["general"][1] > stats["optimized"][1]
    assert stats["sparse_add"][1] < stats["optimized"][1]

    w = SimWorld(6)
    benchmark.pedantic(
        assemble_global_matrix,
        args=(w, num, local),
        kwargs={"variant": "optimized"},
        rounds=1,
        iterations=1,
    )


def test_ablation_amg_interpolation(pressure_matrix_low, benchmark):
    """Interpolation operators on the real pressure matrix (§4.1)."""
    import scipy.sparse as sp

    from repro.comm import SimWorld
    from repro.linalg import ParCSRMatrix, ParVector

    A = pressure_matrix_low
    rng = np.random.default_rng(0)
    rows = []
    results = {}
    for interp in ("direct", "bamg_direct", "mm_ext", "mm_ext_i"):
        w2 = SimWorld(6)
        M = ParCSRMatrix(w2, A.A, A.row_offsets)
        b = M.new_vector(rng.standard_normal(M.shape[0]))
        h = AMGHierarchy(M, AMGOptions(interp=interp, agg_levels=2))
        g = GMRES(M, preconditioner=AMGPreconditioner(h), tol=1e-6,
                  max_iters=200)
        res = g.solve(b)
        results[interp] = res.iterations
        rows.append(
            [
                interp,
                h.num_levels,
                f"{h.operator_complexity():.2f}",
                f"{h.grid_complexity():.2f}",
                res.iterations,
                str(res.converged),
            ]
        )
    emit(
        "ablation_amg_interp",
        format_table(
            "Ablation: AMG interpolation operators on the pressure matrix",
            ["interp", "levels", "op cx", "grid cx", "GMRES iters", "conv"],
            rows,
            note="paper §4.1: extended (MM-ext family) interpolation "
            "yields much better convergence than distance-one operators "
            "when PMIS leaves F-points without C-neighbors.",
        ),
    )
    assert results["mm_ext"] <= results["direct"]

    def setup_kernel():
        w2 = SimWorld(6)
        M = ParCSRMatrix(w2, A.A, A.row_offsets)
        return AMGHierarchy(M, AMGOptions(interp="mm_ext", agg_levels=2))

    benchmark.pedantic(setup_kernel, rounds=1, iterations=1)


def test_ablation_aggressive_coarsening(pressure_matrix_low, benchmark):
    """A-1 aggressive coarsening lowers hierarchy complexity (§4.1)."""
    from repro.comm import SimWorld
    from repro.linalg import ParCSRMatrix

    A = pressure_matrix_low
    rows = []
    cx = {}
    for agg in (0, 2):
        w2 = SimWorld(6)
        M = ParCSRMatrix(w2, A.A, A.row_offsets)
        h = AMGHierarchy(M, AMGOptions(interp="mm_ext", agg_levels=agg))
        cx[agg] = (h.operator_complexity(), h.grid_complexity())
        rows.append(
            [
                f"agg_levels={agg}",
                h.num_levels,
                f"{cx[agg][0]:.2f}",
                f"{cx[agg][1]:.2f}",
            ]
        )
    emit(
        "ablation_aggressive",
        format_table(
            "Ablation: aggressive coarsening and hierarchy complexity",
            ["config", "levels", "operator cx", "grid cx"],
            rows,
            note="paper §4.1: aggressive coarsening reduces the grid and "
            "operator complexities of the AMG hierarchy.",
        ),
    )
    assert cx[2][0] < cx[0][0]
    assert cx[2][1] < cx[0][1]

    w3 = SimWorld(6)
    M3 = ParCSRMatrix(w3, A.A, A.row_offsets)
    benchmark.pedantic(
        AMGHierarchy,
        args=(M3, AMGOptions(interp="mm_ext", agg_levels=2)),
        rounds=1,
        iterations=1,
    )


def test_crossover_dofs_per_gpu(fig3_sweep, benchmark):
    """CPU/GPU cross-over point (paper: ~200k mesh nodes per GPU)."""
    gpu = nli_series(fig3_sweep, SUMMIT_GPU, "gpu")
    cpu = nli_series(fig3_sweep, SUMMIT_CPU_GRP, "cpu")
    n_nodes = fig3_sweep[0].report.total_nodes * 1000  # paper scale
    rows = []
    crossover = None
    for i, pt in enumerate(fig3_sweep):
        dofs_per_gpu = n_nodes / pt.ranks
        faster = "GPU" if gpu.mean[i] < cpu.mean[i] else "CPU"
        rows.append(
            [
                pt.ranks / 6,
                f"{dofs_per_gpu:.3g}",
                f"{gpu.mean[i]:.3f}",
                f"{cpu.mean[i]:.3f}",
                faster,
            ]
        )
        if faster == "CPU" and crossover is None:
            crossover = dofs_per_gpu
    # If the curves do not cross inside the sweep, extrapolate the CPU
    # trend against the GPU's flat tail to locate the crossing.
    note = (
        "paper: cross-over around 20 Summit nodes, roughly 200,000 mesh "
        "nodes per GPU."
    )
    if crossover is None and len(gpu.mean) >= 3:
        cpu_slope = cpu.slope()
        gpu_tail = gpu.mean[-1]
        nodes_last = gpu.nodes[-1]
        cpu_last = cpu.mean[-1]
        if cpu_last > gpu_tail and cpu_slope < 0:
            factor = (gpu_tail / cpu_last) ** (1.0 / cpu_slope)
            est_nodes = nodes_last * factor
            est_dofs = n_nodes / (6 * est_nodes)
            note += (
                f"\nextrapolated cross-over: ~{est_nodes:.0f} Summit nodes "
                f"(~{est_dofs:.3g} mesh nodes/GPU)"
            )
    emit(
        "crossover",
        format_table(
            "CPU/GPU cross-over vs DoFs per GPU (paper-scale)",
            ["nodes", "DoFs/GPU", "GPU [s]", "CPU [s]", "faster"],
            rows,
            note=note,
        ),
    )
    # GPU must win when DoFs/GPU is large.
    assert gpu.mean[0] < cpu.mean[0] or gpu.mean[1] < cpu.mean[1]
    benchmark.pedantic(
        nli_series, args=(fig3_sweep, SUMMIT_GPU), rounds=1, iterations=1
    )


def test_cold_start_overhead(benchmark):
    """Paper §5: the cold-start transient 'will require more GMRES
    iterations per equation system.  However, our simulations indicate the
    overhead is less than 20%'."""
    cfg = SimulationConfig(nranks=6)
    sim = NaluWindSimulation("turbine_tiny", cfg)
    rep = sim.run(6)
    picard = cfg.picard_iterations

    def mean_iters(eq, steps):
        per_solve = rep.solve_iterations[eq]
        solves_per_step = len(per_solve) // rep.n_steps
        vals = []
        for s in steps:
            vals.extend(
                per_solve[s * solves_per_step : (s + 1) * solves_per_step]
            )
        return float(np.mean(vals))

    rows = []
    overheads = {}
    for eq in ("momentum", "pressure", "scalar"):
        early = mean_iters(eq, [0, 1])
        late = mean_iters(eq, [4, 5])
        overheads[eq] = early / max(late, 1e-9) - 1.0
        rows.append(
            [eq, f"{early:.2f}", f"{late:.2f}", f"{100 * overheads[eq]:.1f}%"]
        )
    emit(
        "ablation_cold_start",
        format_table(
            "Cold-start transient overhead (iterations, first vs settled steps)",
            ["equation", "steps 1-2", "steps 5-6", "overhead"],
            rows,
            note="paper §5: the cold-start overhead is less than 20%.",
        ),
    )
    # The transient must not blow the budget; allow generous slack on the
    # tiny scaled system.
    assert overheads["pressure"] < 0.5


def test_per_equation_gpu_advantage(fig3_sweep, benchmark):
    """Paper §5.1: 'the momentum and turbulent scalar-transport solves show
    better performance for fewer mesh nodes per device' — they lack AMG's
    communication burden, so their GPU advantage survives to smaller
    DoFs/GPU than the pressure solve's."""
    from repro.harness import equation_breakdown

    pt = fig3_sweep[-1]  # smallest DoFs/GPU in the sweep
    rows = []
    ratios = {}
    for eq in ("momentum", "scalar", "pressure"):
        gpu = sum(
            equation_breakdown(pt.report, SUMMIT_GPU, eq).values()
        )
        cpu = sum(
            equation_breakdown(pt.report, SUMMIT_CPU_GRP, eq).values()
        )
        ratios[eq] = cpu / max(gpu, 1e-12)
        rows.append([eq, f"{gpu:.3f}", f"{cpu:.3f}", f"{ratios[eq]:.2f}x"])
    emit(
        "ablation_per_equation",
        format_table(
            f"Per-equation GPU advantage at {pt.ranks} ranks "
            "(CPU time / GPU time)",
            ["equation", "GPU [s]", "CPU [s]", "GPU advantage"],
            rows,
            note="paper §5.1: momentum/scalar (GMRES+SGS2, no AMG comm "
            "burden) keep their GPU advantage to fewer nodes per device "
            "than pressure.",
        ),
    )
    assert ratios["momentum"] > ratios["pressure"]
    benchmark.pedantic(
        equation_breakdown,
        args=(pt.report, SUMMIT_GPU, "momentum"),
        rounds=1,
        iterations=1,
    )
