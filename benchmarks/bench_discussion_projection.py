"""Discussion (§6) — weak-scaling capability projection.

The paper extrapolates its demonstrated operating point (634M mesh nodes on
4320 GPUs = 1/6 of Summit) to "approximately four billion nodes" on full
Summit and "20-30 billion mesh nodes" needing exascale resources.  This
bench reproduces the projection both from the paper's own numbers and from
the reproduction's measured refined-mesh run.
"""

from repro.harness import emit, format_table, paper_projection, project_capability
from repro.harness.scaling import default_work_scale

from conftest import REFINED_GPUS_PER_RANK


def test_capability_projection(fig9_sweep, benchmark):
    rows = []
    for pt in paper_projection():
        rows.append(
            [
                f"paper: {pt.label}",
                f"{pt.gpus:,}",
                f"{pt.peak_pflops:.0f}",
                f"{pt.mesh_nodes / 1e9:.2f}B",
            ]
        )
    # Same projection from the reproduction's largest refined run.
    big = fig9_sweep[-1]
    ws = default_work_scale(big.report)
    for pt in project_capability(
        big.report.total_nodes,
        big.ranks * REFINED_GPUS_PER_RANK,
        paper_scale=ws,
    ):
        rows.append(
            [
                f"repro: {pt.label}",
                f"{pt.gpus:,}",
                f"{pt.peak_pflops:.0f}",
                f"{pt.mesh_nodes / 1e9:.2f}B",
            ]
        )
    emit(
        "discussion_projection",
        format_table(
            "§6 capability projection (fixed mesh-nodes-per-GPU)",
            ["operating point", "GPUs", "peak PF", "mesh nodes"],
            rows,
            note="paper: ~4 billion nodes on full Summit; 20-30 billion "
            "nodes require exascale resources.",
        ),
    )
    paper_rows = {p.label: p for p in paper_projection()}
    assert 3.5e9 < paper_rows["full Summit"].mesh_nodes < 4.5e9
    assert paper_rows["exascale (5x Summit)"].mesh_nodes >= 20e9

    benchmark.pedantic(paper_projection, rounds=1, iterations=1)
