"""Communication-avoiding solver benchmarks (paper §4.2-§4.3).

Two measurements, persisted together as
``benchmarks/results/BENCH_comm_avoiding.json``:

* **Overlap sweep** — the fig8 (dual-turbine) and fig9 (refined) rank
  counts re-run with the solver SpMV halo exchanges split
  (``matvec(overlap=True)``), against the synchronous baseline.  The
  priced wall time can only shrink (overlap is a monotone scheduling
  change) and the comm-wait fraction strictly drops at the 6-rank
  points, with the hidden transfer accounted in
  ``profile.overlap_saved_wait_s``.  (At high rank counts the *ratio*
  may tick up even as wall time falls — hiding transfer shrinks the
  denominator too — so the fraction is gated only where the paper's
  fig8/fig9 sweeps start.)
* **Reduction contract** — preconditioned CG vs pipelined CG on a real
  assembled pressure-Poisson matrix: identical iteration counts, but
  ``2 + 2*iters`` vs ``2 + iters`` allreduces (one fused
  (gamma, delta, ||r||^2) reduction per pipelined iteration).

``benchmarks/check_comm_avoiding.py`` gates the JSON artifact.
"""

import json
import os

import numpy as np

from repro.core.simulation import NaluWindSimulation
from repro.harness import emit, format_table
from repro.harness.report import RESULTS_DIR
from repro.krylov import CG, PipelinedCG
from repro.mesh import make_turbine_refined
from repro.smoothers import make_smoother

from conftest import (
    BENCH_STEPS,
    DUAL_RANKS,
    REFINE,
    REFINED_RANKS,
    optimized_config,
)


def _profiled_point(workload, ranks: int, overlap: bool, n_steps: int):
    """One profiled run with the solver overlap toggled everywhere."""
    cfg = optimized_config()
    cfg.nranks = ranks
    cfg.profile = True
    for sc in (cfg.momentum_solver, cfg.scalar_solver, cfg.pressure_solver):
        sc.overlap = overlap
    sim = NaluWindSimulation(workload, cfg)
    report = sim.run(n_steps)
    s = report.profile.summary
    return {
        "ranks": ranks,
        "overlap": overlap,
        "wall_time_s": float(report.profile.wall_time_s),
        "wait_fraction": s["wait_fraction"],
        "comm_fraction": s["comm_fraction"],
        "overlap_rounds": s["overlap_rounds"],
        "overlap_saved_wait_s": s["overlap_saved_wait_s"],
    }


def _overlap_sweep(figure: str) -> list[dict]:
    if figure == "fig8":
        ranks_list, n_steps = DUAL_RANKS, BENCH_STEPS
        workloads = {r: "turbine_dual" for r in ranks_list}
    else:
        ranks_list, n_steps = REFINED_RANKS, max(1, BENCH_STEPS // 2)
        workloads = {r: make_turbine_refined(refine=REFINE) for r in ranks_list}
    points = []
    for r in ranks_list:
        for overlap in (False, True):
            pt = _profiled_point(workloads[r], r, overlap, n_steps)
            pt["figure"] = figure
            points.append(pt)
    return points


def test_overlap_wait_fraction_sweep(benchmark):
    """fig8/fig9 rank counts: split halo exchange vs synchronous."""
    points = _overlap_sweep("fig8") + _overlap_sweep("fig9")

    rows = []
    for fig in ("fig8", "fig9"):
        sync = {p["ranks"]: p for p in points
                if p["figure"] == fig and not p["overlap"]}
        ovl = {p["ranks"]: p for p in points
               if p["figure"] == fig and p["overlap"]}
        for r in sorted(sync):
            s, o = sync[r], ovl[r]
            rows.append([
                fig, r,
                f"{s['wait_fraction']:.4f}", f"{o['wait_fraction']:.4f}",
                f"{o['overlap_saved_wait_s']:.4f}",
                int(o["overlap_rounds"]),
            ])
            # Overlap is a monotone scheduling change: the priced wall
            # time can never grow; the wait fraction strictly drops at
            # the 6-rank operating points.
            assert o["wall_time_s"] <= s["wall_time_s"]
            if r == 6:
                assert o["wait_fraction"] < s["wait_fraction"]
            assert o["overlap_rounds"] > 0
            assert s["overlap_rounds"] == 0

    emit(
        "BENCH_comm_avoiding_overlap",
        format_table(
            "Split halo exchange: priced comm-wait fraction, sync vs overlap",
            ["figure", "ranks", "wait (sync)", "wait (overlap)",
             "saved [rank-s]", "split rounds"],
            rows,
            note="solver SpMVs only; the paper's comm-bound regime is "
            "the high-rank tail where halo transfer hides behind "
            "interior compute.",
        ),
    )

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(
        os.path.join(RESULTS_DIR, "BENCH_comm_avoiding.json"), "w"
    ) as fh:
        json.dump({"overlap_sweep": points}, fh, indent=2)

    benchmark.pedantic(
        _profiled_point, args=("turbine_dual", 6, True, 1),
        rounds=1, iterations=1,
    )


def test_reduction_contract_on_pressure_matrix(pressure_matrix_low, benchmark):
    """CG vs pipelined CG on the assembled pressure-Poisson system."""
    A = pressure_matrix_low
    w = A.world
    b = np.asarray(
        np.sin(np.linspace(0.0, 4.0 * np.pi, A.shape[0]))
    )

    results = {}
    for name, klass in (("cg", CG), ("pipelined_cg", PipelinedCG)):
        before = w.traffic.collective_count()
        res = klass(
            A, preconditioner=make_smoother("jacobi", A),
            tol=1e-6, max_iters=500,
        ).solve(A.new_vector(b.copy()))
        results[name] = {
            "iterations": res.iterations,
            "converged": res.converged,
            "collectives": w.traffic.collective_count() - before,
        }

    cg, pcg = results["cg"], results["pipelined_cg"]
    assert cg["converged"] and pcg["converged"]
    # The per-iteration reduction contracts, exact.
    assert cg["collectives"] == 2 + 2 * cg["iterations"]
    assert pcg["collectives"] == 2 + pcg["iterations"]

    emit(
        "BENCH_comm_avoiding_reductions",
        format_table(
            "Allreduce counts on the assembled pressure-Poisson solve",
            ["method", "iterations", "allreduces", "per iteration"],
            [
                [n, r["iterations"], r["collectives"],
                 f"{(r['collectives'] - 2) / max(r['iterations'], 1):.0f}"]
                for n, r in results.items()
            ],
            note="pipelined CG fuses (r.u, w.u, ||r||^2) into one "
            "3-scalar allreduce per iteration (Ghysels-Vanroose).",
        ),
    )

    # Merge into the sweep artifact written by the overlap test when it
    # already ran this session; otherwise create the file fresh.
    path = os.path.join(RESULTS_DIR, "BENCH_comm_avoiding.json")
    doc = {}
    if os.path.exists(path):
        with open(path) as fh:
            doc = json.load(fh)
    doc["reduction_contract"] = results
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2)

    benchmark.pedantic(
        lambda: PipelinedCG(A, tol=1e-6, max_iters=5).solve(
            A.new_vector(b.copy())
        ),
        rounds=1, iterations=1,
    )
