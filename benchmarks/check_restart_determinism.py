#!/usr/bin/env python
"""Gate: checkpoint-at-N + restart must reproduce an uninterrupted run bitwise.

Runs the same workload twice:

* **run A** — 2N steps uninterrupted, writing a durable checkpoint every
  N steps into a retention ring;
* **run B** — a fresh process-equivalent simulation restarted from run
  A's checkpoint at step N, advanced to the same total of 2N steps.

The gate then asserts, at step 2N:

* every solution field (velocity, old velocity, pressure, pressure
  correction, scalar, old scalar, mass flux) is **bitwise identical**
  (``tobytes()`` equality, not ``allclose``);
* blade mesh coordinates and rotor angles match bitwise;
* step indices and the per-equation solve-iteration tails (the N
  post-restart steps) match exactly;
* telemetry counter continuity holds: ``solve.count`` and
  ``resilience.checkpoint.writes`` agree between the two runs.

A second phase re-runs N steps under seeded ``message_drop`` /
``message_corrupt`` / ``io_fail`` injection and asserts the run completes
with the ``comm.*`` / ``resilience.*`` counters recording every recovery.

Usage::

    python benchmarks/check_restart_determinism.py [--workload turbine_tiny]
        [--ranks 2] [--half-steps 1]
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
import tempfile

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro import NaluWindSimulation, SimulationConfig  # noqa: E402
from repro.resilience import FaultSpec  # noqa: E402
from repro.resilience.checkpoint import FILE_PATTERN  # noqa: E402

#: Fields covered by the bitwise guarantee.
FIELDS = (
    "velocity",
    "velocity_old",
    "pressure_field",
    "pressure_correction",
    "scalar_field",
    "scalar_old",
    "mdot",
)


def check_bitwise(workload: str, ranks: int, half: int, tmp: str) -> list[str]:
    """Phase 1: uninterrupted vs checkpoint-at-N + restart."""
    failures: list[str] = []
    ring_a = os.path.join(tmp, "ring_a")
    sim_a = NaluWindSimulation(
        workload,
        SimulationConfig(
            nranks=ranks,
            checkpoint_every=half,
            checkpoint_dir=ring_a,
            checkpoint_keep=2 * half + 1,
        ),
    )
    rep_a = sim_a.run(2 * half)

    ckpt = os.path.join(ring_a, FILE_PATTERN.format(step=half))
    if not os.path.exists(ckpt):
        return [f"expected checkpoint {ckpt} was not written"]
    sim_b = NaluWindSimulation(
        workload,
        SimulationConfig(
            nranks=ranks,
            checkpoint_every=half,
            checkpoint_dir=os.path.join(tmp, "ring_b"),
            checkpoint_keep=2 * half + 1,
            restart_from=ckpt,
        ),
    )
    rep_b = sim_b.run(2 * half)

    for name in FIELDS:
        a, b = getattr(sim_a, name), getattr(sim_b, name)
        if a.tobytes() != b.tobytes():
            failures.append(f"field {name!r} is not bitwise identical")
    for i, (ma, mb) in enumerate(zip(sim_a.system.blades, sim_b.system.blades)):
        if ma.coords.tobytes() != mb.coords.tobytes():
            failures.append(f"blade {i} coords are not bitwise identical")
    angles_a = [r.angle for r in sim_a.system.rotations]
    angles_b = [r.angle for r in sim_b.system.rotations]
    if angles_a != angles_b:
        failures.append(f"rotor angles differ: {angles_a} vs {angles_b}")

    if sim_a.step_index != sim_b.step_index:
        failures.append(
            f"step index differs: {sim_a.step_index} vs {sim_b.step_index}"
        )
    if sim_a.divergence_norms != sim_b.divergence_norms:
        failures.append("divergence-norm histories differ")
    # Iteration tails: run B only records its N post-restart solves.
    for eq, its_b in rep_b.solve_iterations.items():
        its_a = rep_a.solve_iterations[eq]
        if its_b and its_a[-len(its_b):] != its_b:
            failures.append(f"{eq} solve-iteration tail differs")

    for counter in ("solve.count", "resilience.checkpoint.writes"):
        ca = sim_a.world.metrics.counter_total(counter)
        cb = sim_b.world.metrics.counter_total(counter)
        if ca != cb:
            failures.append(f"counter {counter!r} differs: {ca} vs {cb}")
    ckpt_b = (rep_b.recovery or {}).get("checkpoint", {})
    if ckpt_b.get("restores", 0) < 1:
        failures.append("run B recovery summary records no restore")
    return failures


def check_faulted(workload: str, ranks: int, half: int, tmp: str) -> list[str]:
    """Phase 2: seeded drop/corrupt/io faults recover with counters."""
    failures: list[str] = []
    sim = NaluWindSimulation(
        workload,
        SimulationConfig(
            nranks=ranks,
            checkpoint_every=1,
            checkpoint_dir=os.path.join(tmp, "ring_faults"),
            faults=(
                FaultSpec("message_drop", at=3),
                FaultSpec("message_corrupt", at=40),
                FaultSpec("io_fail", at=0, entries=2),
            ),
            fault_seed=7,
        ),
    )
    rep = sim.run(half)
    m = sim.world.metrics
    checks = {
        "comm.retries": 2,  # one re-request per drop + per corrupt
        "comm.drops_detected": 1,
        "comm.corrupt_detected": 1,
        "resilience.checkpoint.write_retries": 2,
        "resilience.checkpoint.writes": half,
    }
    for counter, expected in checks.items():
        got = m.counter_total(counter)
        if got != expected:
            failures.append(
                f"faulted run: counter {counter!r} = {got}, expected "
                f"{expected}"
            )
    ckpt = (rep.recovery or {}).get("checkpoint", {})
    if ckpt.get("write_retries", 0) != 2:
        failures.append(
            "faulted run: recovery summary missing checkpoint write retries"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns 0 on pass, 1 on any mismatch."""
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--workload", default="turbine_tiny")
    ap.add_argument("--ranks", type=int, default=2)
    ap.add_argument(
        "--half-steps", type=int, default=1,
        help="N: checkpoint cadence; runs advance 2N steps total",
    )
    args = ap.parse_args(argv)

    tmp = tempfile.mkdtemp(prefix="repro-restart-gate-")
    try:
        failures = check_bitwise(
            args.workload, args.ranks, args.half_steps, tmp
        )
        failures += check_faulted(
            args.workload, args.ranks, args.half_steps, tmp
        )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    if failures:
        print(f"RESTART DETERMINISM FAILURES ({len(failures)}):")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(
        f"restart determinism OK: {args.workload} ({args.ranks} ranks, "
        f"checkpoint at {args.half_steps}, run to {2 * args.half_steps}) "
        "bitwise-identical; faulted run recovered with counters intact"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
