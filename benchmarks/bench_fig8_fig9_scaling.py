"""Figures 8 and 9 — strong scaling: dual-turbine and refined meshes.

Fig. 8: the dual-turbine mesh behaves like the low-res single-turbine mesh
with somewhat larger step-to-step variation.  Fig. 9: the refined mesh
scales consistently with the smaller meshes but with far greater
fluctuation, and the CPU slope degrades (-0.79 vs -0.98 at low res).
"""

import numpy as np

from repro.harness import emit, nli_series, series_table
from repro.perf import SUMMIT_CPU_GRP, SUMMIT_GPU

from conftest import DUAL_GPUS_PER_RANK, REFINED_GPUS_PER_RANK


def test_fig8_dual_turbine(fig8_sweep, benchmark):
    gpu = nli_series(
        fig8_sweep, SUMMIT_GPU, "GPU", gpus_per_rank=DUAL_GPUS_PER_RANK
    )
    cpu = nli_series(
        fig8_sweep, SUMMIT_CPU_GRP, "CPU", gpus_per_rank=DUAL_GPUS_PER_RANK
    )
    emit(
        "fig8",
        series_table(
            "Fig. 8 (scaled): NLI time per step, dual-turbine mesh",
            [gpu, cpu],
            note="paper: performance very similar to the low-res "
            "single-turbine mesh, with more variation in time per step.",
        ),
    )
    assert all(m > 0 for m in gpu.mean)
    # The dual-turbine curve tracks the low-res mesh's behavior: CPU keeps
    # scaling, GPU is already near its latency floor (paper Fig. 8 shows
    # the same early flattening with larger error bars).
    assert cpu.mean[-1] < cpu.mean[0]
    assert max(gpu.mean) / min(gpu.mean) < 2.0
    benchmark.pedantic(
        nli_series, args=(fig8_sweep, SUMMIT_GPU), rounds=1, iterations=1
    )


def test_fig9_refined_turbine(fig9_sweep, fig3_sweep, benchmark):
    gpu = nli_series(
        fig9_sweep, SUMMIT_GPU, "GPU", gpus_per_rank=REFINED_GPUS_PER_RANK
    )
    cpu = nli_series(
        fig9_sweep,
        SUMMIT_CPU_GRP,
        "CPU",
        gpus_per_rank=REFINED_GPUS_PER_RANK,
    )
    emit(
        "fig9",
        series_table(
            "Fig. 9 (scaled): NLI time per step, refined 1-turbine mesh",
            [gpu, cpu],
            note="paper: scaling consistent with the smaller meshes, far "
            "greater fluctuation; CPU slope -0.79 vs -0.98 at low res.",
        ),
    )
    # At the paper's refined operating points (768-4320 GPUs) the GPU
    # curve is nearly flat with fluctuation — exactly the paper's
    # observation; assert boundedness and that the CPU curve still scales.
    assert all(m > 0 for m in gpu.mean)
    assert max(gpu.mean) / min(gpu.mean) < 2.0
    assert cpu.mean[-1] < cpu.mean[0]
    # CPU slope on the refined mesh is compared against the low-res CPU
    # slope, as the paper does (-0.79 vs -0.98).
    low_cpu = nli_series(fig3_sweep, SUMMIT_CPU_GRP, "lowcpu")
    print(
        f"\nCPU slopes: low-res {low_cpu.slope():.2f}, "
        f"refined {cpu.slope():.2f} (paper: -0.98 vs -0.79)"
    )
    benchmark.pedantic(
        nli_series, args=(fig9_sweep, SUMMIT_GPU), rounds=1, iterations=1
    )
