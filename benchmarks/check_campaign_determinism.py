#!/usr/bin/env python
"""Gate: campaign results are deterministic and the cache is exact.

Three checks over one small topology-shared sweep:

1. **Parallel == serial, bitwise** — the sweep run serially
   (``workers=0``, shared in-process plan cache) and with a 2-worker
   process pool must store byte-identical result documents for every
   job (``repro.campaign.result/1`` is canonical JSON of deterministic
   quantities only, so scheduling cannot leak in).
2. **Repeat sweep == 100% cache hits** — a fresh campaign pointed at
   the serial run's result store must serve every job from the cache
   (``campaign.cache_hits == n_jobs``, ``campaign.jobs_run == 0``) and
   return the stored bytes untouched.
3. **Counter book-keeping** — ``campaign.cache_misses`` on the first
   run equals the job count, ``campaign.jobs_failed`` stays zero
   everywhere, and the shared-setup counter ``assembly.plan_shared``
   is positive on the serial run (every job after the first adopts).

Usage::

    python benchmarks/check_campaign_determinism.py [--seeds 2] [--ranks 2]
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.campaign import Campaign, CampaignSpec  # noqa: E402


def build_spec(seeds: int, ranks: int) -> CampaignSpec:
    return CampaignSpec(
        name="determinism_gate",
        workload="turbine_tiny",
        steps=1,
        seeds=tuple(range(seeds)),
        base={"nranks": ranks},
    )


def check(seeds: int, ranks: int, tmp: str) -> list[str]:
    failures: list[str] = []
    spec = build_spec(seeds, ranks)
    n_jobs = len(spec.expand())

    serial = Campaign(spec, os.path.join(tmp, "serial"), workers=0)
    s_serial = serial.run()
    if s_serial["status_counts"]["done"] != n_jobs:
        failures.append(
            f"serial run: {s_serial['status_counts']} (want {n_jobs} done)"
        )
    if s_serial["cache_misses"] != n_jobs:
        failures.append(
            f"serial run: cache_misses {s_serial['cache_misses']} != {n_jobs}"
        )
    if s_serial["jobs_failed"] != 0:
        failures.append(f"serial run: {s_serial['jobs_failed']} jobs failed")
    if s_serial["plan_shared"] <= 0:
        failures.append(
            "serial run: assembly.plan_shared is 0 — cross-job setup "
            "sharing never fired on a topology-shared sweep"
        )

    parallel = Campaign(spec, os.path.join(tmp, "parallel"), workers=2)
    s_par = parallel.run()
    if s_par["status_counts"]["done"] != n_jobs:
        failures.append(
            f"parallel run: {s_par['status_counts']} (want {n_jobs} done)"
        )
    for job in spec.expand():
        digest = job.digest()
        b_serial = serial.store.get_bytes(digest)
        b_par = parallel.store.get_bytes(digest)
        if b_serial is None or b_par is None:
            failures.append(f"job {job.job_id}: missing stored result")
        elif b_serial != b_par:
            failures.append(
                f"job {job.job_id}: serial and 2-worker stored results "
                "differ bitwise"
            )

    # Repeat sweep against the serial store: every job must be a hit.
    repeat = Campaign(
        spec,
        os.path.join(tmp, "repeat"),
        store_dir=os.path.join(tmp, "serial", "store"),
    )
    s_rep = repeat.run()
    if s_rep["cache_hits"] != n_jobs or s_rep["jobs_run"] != 0:
        failures.append(
            f"repeat sweep: cache_hits {s_rep['cache_hits']} "
            f"jobs_run {s_rep['jobs_run']} (want {n_jobs} hits, 0 runs)"
        )
    if s_rep["status_counts"]["done"] != n_jobs:
        failures.append(f"repeat sweep: {s_rep['status_counts']}")
    return failures


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--seeds", type=int, default=2)
    ap.add_argument("--ranks", type=int, default=2)
    args = ap.parse_args()

    with tempfile.TemporaryDirectory(prefix="campaign_gate_") as tmp:
        failures = check(args.seeds, args.ranks, tmp)

    if failures:
        print("campaign determinism gate: FAIL")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(
        "campaign determinism gate: OK "
        f"({args.seeds} seeds x turbine_tiny, {args.ranks} ranks: "
        "serial == 2-worker bitwise, repeat sweep 100% cache hits)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
