"""Figure 11 — cross-machine comparison: Summit versus Eagle.

The paper's most striking result: Eagle (2 V100 PCIe + x86 + HPE MPT per
node) at 72 GPUs is ~40% *faster* than Summit (6 V100 SXM2 + Power9 +
Spectrum MPI) at 144 GPUs, with the gains "almost exclusively in the
pressure-Poisson AMG setup and solve" (setup 1.3 s vs 2.0 s, solve 0.8 s
vs 1.1 s).  In the reproduction the same executed runs are priced on both
machine models; the effective per-message cost difference of the MPI
stacks carries the effect.
"""

import numpy as np

from repro.harness import (
    emit,
    equation_breakdown,
    loglog_chart,
    nli_series,
    series_table,
)
from repro.perf import EAGLE_GPU, SUMMIT_GPU


def test_fig11_summit_vs_eagle(fig3_sweep, benchmark):
    summit = nli_series(fig3_sweep, SUMMIT_GPU, "Summit")
    eagle = nli_series(fig3_sweep, EAGLE_GPU, "Eagle")
    emit(
        "fig11",
        series_table(
            "Fig. 11 (scaled): NLI time per step, Summit vs Eagle "
            "(x = nodes of each system; same GPU counts per row)",
            [summit, eagle],
            note="paper: 72 Eagle GPUs beat 144 Summit GPUs by ~40%; the "
            "gain concentrates in AMG setup and solve.",
        ),
    )

    emit(
        "fig11_chart",
        loglog_chart(
            "Fig. 11 (scaled, log-log): Summit vs Eagle",
            [summit, eagle],
        ),
    )

    # Headline check at the paper's GPU counts: Eagle with *half* the GPUs
    # of the largest Summit point still beats it.  Paper: 72 vs 144 GPUs;
    # scaled: half the ranks of the largest sweep point.
    largest = fig3_sweep[-1]
    half_idx = next(
        (
            i
            for i, pt in enumerate(fig3_sweep)
            if pt.ranks * 2 == largest.ranks
        ),
        None,
    )
    if half_idx is not None:
        t_eagle_half = eagle.mean[half_idx]
        t_summit_full = summit.mean[-1]
        print(
            f"\nEagle@{fig3_sweep[half_idx].ranks} ranks: "
            f"{t_eagle_half:.3f}s vs Summit@{largest.ranks} ranks: "
            f"{t_summit_full:.3f}s "
            f"(paper: Eagle/72 ~40% faster than Summit/144)"
        )
        assert t_eagle_half < 1.25 * t_summit_full

    # Per-phase gains concentrate in the pressure AMG setup + solve.
    bd_s = equation_breakdown(largest.report, SUMMIT_GPU, "pressure")
    bd_e = equation_breakdown(largest.report, EAGLE_GPU, "pressure")
    rows = [
        [ph, f"{bd_s[ph]:.3f}", f"{bd_e[ph]:.3f}"]
        for ph in ("precond_setup", "solve")
    ]
    emit(
        "fig11_breakdown",
        # Paper: setup 2.0 s (Summit) vs 1.3 s (Eagle); solve 1.1 vs 0.8.
        __import__("repro.harness", fromlist=["format_table"]).format_table(
            "Fig. 11 detail: pressure AMG setup/solve per step [s]",
            ["phase", "Summit", "Eagle"],
            rows,
            note="paper at matching GPU counts: setup 2.0 vs 1.3 s, "
            "solve 1.1 vs 0.8 s",
        ),
    )
    assert bd_e["solve"] < bd_s["solve"]
    assert bd_e["precond_setup"] <= bd_s["precond_setup"] * 1.001

    benchmark.pedantic(
        nli_series, args=(fig3_sweep, EAGLE_GPU), rounds=1, iterations=1
    )
