"""Cross-job assembly-plan sharing: setup cost with and without the cache.

A topology-shared sweep (same workload and mesh, only the seed differs)
runs twice, job by job, in one process:

* **unshared** — every job builds its assembly plans cold (each
  equation's first assembly takes the capture slow path);
* **shared** — jobs attach one long-lived
  :class:`~repro.assembly.plan.PlanCache` (what the campaign runner
  gives its serial mode and each pool worker), so every job after the
  first adopts the prior jobs' captured plans and goes straight to the
  value-only replay path.

The figure of merit is the per-job ``*/global_assembly`` wall time on
the jobs in a position to share (all but the first).  Emits
``BENCH_campaign.json`` under ``benchmarks/results/`` with both series,
the adoption counters, and the measured speedup; the campaign
acceptance floor is 2x.

Usage::

    python benchmarks/bench_campaign.py [--jobs 6] [--ranks 2] [--steps 1]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro import NaluWindSimulation, SimulationConfig  # noqa: E402
from repro.assembly.plan import PlanCache  # noqa: E402
from repro.harness import format_table  # noqa: E402
from repro.harness.report import RESULTS_DIR  # noqa: E402

WORKLOAD = "turbine_tiny"


def assembly_seconds(report) -> float:
    """Total Stage-3 global-assembly wall time across equations."""
    return sum(
        t for phase, t in report.wall_times.items()
        if phase.endswith("global_assembly")
    )


def run_sweep(n_jobs: int, ranks: int, steps: int, share: bool):
    """Run the sweep serially; returns per-job (assembly_s, adoptions)."""
    cache = PlanCache() if share else None
    rows = []
    for seed in range(n_jobs):
        # One Picard iteration isolates the setup cost: each equation
        # assembles exactly once per step, so the cold capture is not
        # diluted by within-step replays (which are fast either way).
        cfg = SimulationConfig(
            nranks=ranks, world_seed=seed, picard_iterations=1
        )
        sim = NaluWindSimulation(WORKLOAD, cfg)
        if cache is not None:
            sim.world.plan_cache = cache
        report = sim.run(steps)
        adopted = sim.world.metrics.counter_total("assembly.plan_shared")
        rows.append((assembly_seconds(report), float(adopted)))
    return rows


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--jobs", type=int, default=6)
    ap.add_argument("--ranks", type=int, default=2)
    ap.add_argument("--steps", type=int, default=1)
    args = ap.parse_args()

    unshared = run_sweep(args.jobs, args.ranks, args.steps, share=False)
    shared = run_sweep(args.jobs, args.ranks, args.steps, share=True)

    # Jobs in a position to adopt: all but the first (which is cold in
    # both modes and seeds the cache).
    cold_mean = sum(r[0] for r in unshared[1:]) / (args.jobs - 1)
    warm_mean = sum(r[0] for r in shared[1:]) / (args.jobs - 1)
    speedup = cold_mean / warm_mean if warm_mean > 0 else float("inf")

    rows = []
    for i in range(args.jobs):
        rows.append(
            [
                i,
                f"{unshared[i][0] * 1e3:.2f}",
                f"{shared[i][0] * 1e3:.2f}",
                f"{unshared[i][0] / shared[i][0]:.2f}"
                if shared[i][0] > 0 else "-",
                int(shared[i][1]),
            ]
        )
    print(
        format_table(
            f"cross-job plan sharing: {WORKLOAD}, {args.ranks} ranks, "
            f"{args.steps} step(s), global_assembly wall per job",
            ["job", "unshared [ms]", "shared [ms]", "speedup", "adoptions"],
            rows,
            note=(
                f"sharing-eligible jobs (2..{args.jobs}): "
                f"{cold_mean * 1e3:.2f} ms -> {warm_mean * 1e3:.2f} ms "
                f"({speedup:.2f}x; acceptance floor 2x)"
            ),
        )
    )

    doc = {
        "format": "repro.bench.campaign/1",
        "workload": WORKLOAD,
        "ranks": args.ranks,
        "steps": args.steps,
        "jobs": args.jobs,
        "unshared_assembly_s": [r[0] for r in unshared],
        "shared_assembly_s": [r[0] for r in shared],
        "shared_adoptions": [r[1] for r in shared],
        "eligible_unshared_mean_s": cold_mean,
        "eligible_shared_mean_s": warm_mean,
        "speedup": speedup,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    out = os.path.join(RESULTS_DIR, "BENCH_campaign.json")
    with open(out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
    print(f"\nwrote {out}")

    if speedup < 2.0:
        print(f"FAIL: shared-setup speedup {speedup:.2f}x < 2x floor")
        return 1
    print(f"OK: shared-setup speedup {speedup:.2f}x >= 2x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
