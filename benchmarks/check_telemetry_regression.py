#!/usr/bin/env python
"""Diff two exported RunTelemetry JSON files; fail on drift.

Tier-2 perf gate: compare a current run's telemetry against a committed
baseline and exit non-zero when per-phase wall time or per-equation mean
iteration counts drift beyond tolerance.  Works on the artifacts
``benchmarks/conftest.py`` / ``python -m repro trace --output`` write.

Usage::

    python benchmarks/check_telemetry_regression.py baseline.json current.json \
        [--phase-tol 0.5] [--iters-tol 0.1] [--min-phase-seconds 0.005]

Pure-stdlib on purpose (no ``repro`` import) so CI can run it without
installing the package.
"""

from __future__ import annotations

import argparse
import json
import sys

SCHEMA = "repro.telemetry/1"


def load(path: str) -> dict:
    """Load one telemetry document, validating the schema tag."""
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != SCHEMA:
        raise SystemExit(
            f"{path}: schema {doc.get('schema')!r} != expected {SCHEMA!r}"
        )
    return doc


def rel_drift(base: float, cur: float) -> float:
    """Relative change |cur - base| / base (inf when base == 0 != cur)."""
    if base == 0.0:
        return 0.0 if cur == 0.0 else float("inf")
    return abs(cur - base) / base


def mean(xs: list) -> float:
    return sum(xs) / len(xs) if xs else 0.0


def compare(
    base: dict,
    cur: dict,
    phase_tol: float,
    iters_tol: float,
    min_phase_seconds: float,
) -> list[str]:
    """Return a list of failure strings (empty = pass)."""
    failures: list[str] = []

    # Per-phase wall time.  Tiny phases are pure noise on wall clocks, so
    # only phases above `min_phase_seconds` in the baseline gate.
    bp, cp = base.get("phases", {}), cur.get("phases", {})
    for name in sorted(set(bp) | set(cp)):
        b = bp.get(name, {}).get("total_s", 0.0)
        c = cp.get(name, {}).get("total_s", 0.0)
        if name not in bp or name not in cp:
            failures.append(
                f"phase {name!r} only in "
                f"{'current' if name not in bp else 'baseline'}"
            )
            continue
        if b < min_phase_seconds:
            continue
        d = rel_drift(b, c)
        if d > phase_tol:
            failures.append(
                f"phase {name!r} wall time drift {d * 100:.1f}% "
                f"({b:.4f}s -> {c:.4f}s) exceeds {phase_tol * 100:.0f}%"
            )

    # Per-equation mean iterations — deterministic in the simulator, so a
    # tight tolerance catches convergence regressions exactly.
    bs, cs = base.get("solves", {}), cur.get("solves", {})
    for eq in sorted(set(bs) | set(cs)):
        if eq not in bs or eq not in cs:
            failures.append(
                f"equation {eq!r} only in "
                f"{'current' if eq not in bs else 'baseline'}"
            )
            continue
        b = mean(bs[eq].get("iterations", []))
        c = mean(cs[eq].get("iterations", []))
        d = rel_drift(b, c)
        if d > iters_tol:
            failures.append(
                f"{eq} mean iterations drift {d * 100:.1f}% "
                f"({b:.2f} -> {c:.2f}) exceeds {iters_tol * 100:.0f}%"
            )

    # AMG hierarchy quality: complexity blow-ups are setup-cost regressions.
    ba, ca = base.get("amg_setups", []), cur.get("amg_setups", [])
    if ba and ca:
        for key in ("operator_complexity", "grid_complexity"):
            b, c = ba[-1][key], ca[-1][key]
            d = rel_drift(b, c)
            if d > iters_tol:
                failures.append(
                    f"amg {key} drift {d * 100:.1f}% "
                    f"({b:.3f} -> {c:.3f}) exceeds {iters_tol * 100:.0f}%"
                )

    # Resilience/comm/campaign schema: the resilience.* counter names —
    # including the checkpoint.* family — the comm.* transport counters
    # (retries, drops_detected, corrupt_detected, duplicates_discarded),
    # and the campaign.* supervision counters (retries, requeues,
    # quarantined, lease_expired, breaker_trips) must match exactly,
    # label renderings included: the simulator is deterministic, so a
    # vanished/renamed counter or a changed count is a recovery-path
    # change, not noise.
    bm = base.get("metrics", {}).get("counters", {})
    cm = cur.get("metrics", {}).get("counters", {})
    for prefix in ("resilience.", "comm.", "campaign."):
        family = prefix.rstrip(".")
        bres = {k: v for k, v in bm.items() if k.startswith(prefix)}
        cres = {k: v for k, v in cm.items() if k.startswith(prefix)}
        for key in sorted(set(bres) | set(cres)):
            if key not in bres or key not in cres:
                failures.append(
                    f"{family} counter {key!r} only in "
                    f"{'current' if key not in bres else 'baseline'}"
                )
            elif bres[key] != cres[key]:
                failures.append(
                    f"{family} counter {key!r} changed "
                    f"({bres[key]} -> {cres[key]})"
                )

    # Overlapped-exchange profile gauges: the number of split halo
    # rounds is deterministic (exact), while the priced hidden-wait
    # rank-seconds may move within the iteration tolerance when the
    # machine model is retuned.
    bg = base.get("metrics", {}).get("gauges", {})
    cg = cur.get("metrics", {}).get("gauges", {})
    b_rounds = float(bg.get("profile.overlap_rounds", 0.0))
    c_rounds = float(cg.get("profile.overlap_rounds", 0.0))
    if b_rounds != c_rounds:
        failures.append(
            f"profile.overlap_rounds changed ({b_rounds:.0f} -> "
            f"{c_rounds:.0f}): split-exchange schedule drifted"
        )
    b_saved = float(bg.get("profile.overlap_saved_wait_s", 0.0))
    c_saved = float(cg.get("profile.overlap_saved_wait_s", 0.0))
    d = rel_drift(b_saved, c_saved)
    if d > iters_tol:
        failures.append(
            f"profile.overlap_saved_wait_s drift {d * 100:.1f}% "
            f"({b_saved:.4f} -> {c_saved:.4f}) exceeds "
            f"{iters_tol * 100:.0f}%"
        )

    # Recovery summary: failure/recovery-by-action counts must replay
    # identically (fault schedules are seeded).
    bsum = base.get("resilience", {}) or {}
    csum = cur.get("resilience", {}) or {}
    bkey = (bsum.get("failures", 0), bsum.get("recoveries", {}))
    ckey = (csum.get("failures", 0), csum.get("recoveries", {}))
    if bkey != ckey:
        failures.append(
            f"resilience summary changed ({bkey[0]} failures {bkey[1]} "
            f"-> {ckey[0]} failures {ckey[1]})"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns 0 on pass, 1 on drift."""
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="baseline RunTelemetry JSON")
    ap.add_argument("current", help="current RunTelemetry JSON")
    ap.add_argument(
        "--phase-tol", type=float, default=0.5,
        help="max relative per-phase wall-time drift (default 0.5 = 50%%; "
        "wall clocks on shared CI hosts are noisy)",
    )
    ap.add_argument(
        "--iters-tol", type=float, default=0.1,
        help="max relative mean-iteration / AMG-complexity drift "
        "(default 0.1 = 10%%)",
    )
    ap.add_argument(
        "--min-phase-seconds", type=float, default=0.005,
        help="ignore phases below this baseline wall time (default 5 ms)",
    )
    args = ap.parse_args(argv)

    base = load(args.baseline)
    cur = load(args.current)
    for key in ("workload", "nranks", "n_steps"):
        if base.get(key) != cur.get(key):
            print(
                f"warning: {key} differs ({base.get(key)} vs "
                f"{cur.get(key)}); comparison may be meaningless",
                file=sys.stderr,
            )

    failures = compare(
        base, cur, args.phase_tol, args.iters_tol, args.min_phase_seconds
    )
    if failures:
        print(f"TELEMETRY REGRESSION ({len(failures)} failures):")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(
        f"telemetry OK: {base.get('workload')} "
        f"({base.get('nranks')} ranks, {base.get('n_steps')} steps) "
        f"within phase-tol {args.phase_tol:.0%}, iters-tol "
        f"{args.iters_tol:.0%}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
