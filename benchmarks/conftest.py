"""Shared fixtures for the benchmark harness.

Every figure bench consumes one of the session-scoped sweeps below, so the
expensive simulations run once per pytest session.  Scales are adjustable
through environment variables:

* ``REPRO_BENCH_STEPS``          time steps per run (default 2; paper: 50)
* ``REPRO_BENCH_RANKS``          low-res rank sweep (default ``3,6,12,24,48``)
* ``REPRO_BENCH_DUAL_RANKS``     dual-turbine sweep (default ``6,12,24``)
* ``REPRO_BENCH_REFINED_RANKS``  refined sweep (default ``6,12,24,48``)
* ``REPRO_BENCH_REFINE``         refined-mesh refinement factor (default 2;
  the paper's refined mesh corresponds to 3)
"""

import os

import pytest

from repro.core.config import SimulationConfig
from repro.core.simulation import NaluWindSimulation
from repro.harness import (
    emit_telemetry,
    export_sweep_profiles,
    run_strong_scaling,
)
from repro.mesh import make_turbine_low


def _env_list(name: str, default: str) -> list[int]:
    return [int(x) for x in os.environ.get(name, default).split(",") if x]


BENCH_STEPS = int(os.environ.get("REPRO_BENCH_STEPS", "2"))
LOW_RANKS = _env_list("REPRO_BENCH_RANKS", "3,6,12,24,48,96")
DUAL_RANKS = _env_list("REPRO_BENCH_DUAL_RANKS", "6,12,24")
REFINED_RANKS = _env_list("REPRO_BENCH_REFINED_RANKS", "6,12,24,48")
REFINE = int(os.environ.get("REPRO_BENCH_REFINE", "2"))

# Rank -> device-group mappings: the paper ran the dual-turbine mesh on
# 24-288 GPUs and the refined mesh on 768-4320 GPUs; the simulator's rank
# counts are mapped onto device groups so the priced operating points
# (DoFs/GPU, memory/GPU) land on the paper's (see harness.nli_step_times).
DUAL_GPUS_PER_RANK = int(os.environ.get("REPRO_BENCH_DUAL_GPR", "1"))
REFINED_GPUS_PER_RANK = int(os.environ.get("REPRO_BENCH_REFINED_GPR", "90"))


def optimized_config() -> SimulationConfig:
    """The paper's optimized configuration (current implementation)."""
    return SimulationConfig(
        assembly_variant="optimized",
        partition_method="parmetis",
        sgs_inner=2,
    )


def baseline_config() -> SimulationConfig:
    """The paper's baseline GPU configuration: general hypre assembly, RCB
    decomposition, single inner Gauss-Seidel sweep."""
    return SimulationConfig(
        assembly_variant="general",
        partition_method="rcb",
        sgs_inner=1,
    )


def export_sweep_telemetry(points, name: str) -> None:
    """Persist each point's RunTelemetry under ``benchmarks/results/``.

    The JSON artifacts are the baseline/current inputs of
    ``benchmarks/check_telemetry_regression.py`` (tier-2 perf gate).
    """
    for pt in points:
        if pt.report.telemetry is not None:
            emit_telemetry(f"telemetry_{name}_r{pt.ranks}", pt.report.telemetry)


@pytest.fixture(scope="session")
def fig3_sweep():
    """turbine_low strong-scaling sweep, optimized configuration."""
    points = run_strong_scaling(
        "turbine_low", LOW_RANKS, n_steps=BENCH_STEPS, config=optimized_config()
    )
    export_sweep_telemetry(points, "fig3")
    return points


@pytest.fixture(scope="session")
def fig3_baseline_sweep():
    """turbine_low sweep with the paper's baseline configuration."""
    return run_strong_scaling(
        "turbine_low", LOW_RANKS, n_steps=BENCH_STEPS, config=baseline_config()
    )


@pytest.fixture(scope="session")
def fig8_sweep():
    """turbine_dual strong-scaling sweep (profiled: comm-wait vs ranks)."""
    cfg = optimized_config()
    cfg.profile = True
    points = run_strong_scaling(
        "turbine_dual", DUAL_RANKS, n_steps=BENCH_STEPS, config=cfg
    )
    export_sweep_profiles(points, "fig8")
    return points


@pytest.fixture(scope="session")
def fig9_sweep():
    """Refined single-turbine sweep (one step per point: the mesh is big)."""
    from repro.mesh import make_turbine_refined

    points = []
    from dataclasses import replace

    from repro.harness.scaling import ScalingPoint

    for r in REFINED_RANKS:
        cfg = optimized_config()
        cfg.nranks = r
        cfg.profile = True
        sim = NaluWindSimulation(make_turbine_refined(refine=REFINE), cfg)
        points.append(ScalingPoint(ranks=r, report=sim.run(max(1, BENCH_STEPS // 2))))
    export_sweep_profiles(points, "fig9")
    return points


@pytest.fixture(scope="session")
def tiny_telemetry():
    """RunTelemetry of a one-step turbine_tiny run (telemetry benches)."""
    cfg = optimized_config()
    cfg.nranks = 2
    sim = NaluWindSimulation("turbine_tiny", cfg)
    report = sim.run(1)
    emit_telemetry("telemetry_tiny", report.telemetry)
    return report.telemetry


@pytest.fixture(scope="session")
def low_system():
    """The scaled low-resolution turbine mesh system (Figs. 5, ablations)."""
    return make_turbine_low()


@pytest.fixture(scope="session")
def pressure_matrix_low():
    """A real assembled pressure-Poisson ParCSR matrix from turbine_low."""
    cfg = optimized_config()
    cfg.nranks = 6
    sim = NaluWindSimulation("turbine_low", cfg)
    sim.step()
    # Re-assemble the pressure system from the current state.
    from repro.core.operators import boundary_mass_flux, mass_flux

    comp = sim.comp
    mdot = mass_flux(comp, sim.velocity, cfg.density)
    bflux = boundary_mass_flux(comp, sim.velocity, cfg.density)
    import numpy as np

    A, _rhs = sim.pressure.assemble(
        mdot=mdot,
        pressure_correction_bc=np.zeros(comp.n),
        boundary_flux=bflux,
    )
    return A
