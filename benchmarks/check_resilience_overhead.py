#!/usr/bin/env python
"""Gate: resilience guards must add <2% wall-clock on a nominal run.

Runs the same fault-free workload with guards on (the default) and with
the whole resilience layer off, interleaved best-of-N to suppress host
noise, and fails (exit 1) when the guarded run is more than ``--tol``
slower.  The guards are a handful of ``np.isfinite`` scans per solve, so
on the nominal path this should be deep in the noise floor — the gate
exists to keep it there.

Usage::

    PYTHONPATH=src python benchmarks/check_resilience_overhead.py \
        [--workload turbine_tiny] [--steps 2] [--reps 3] [--tol 0.02]
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.core.config import SimulationConfig
from repro.core.simulation import NaluWindSimulation
from repro.resilience import RecoveryPolicy


def run_once(workload: str, steps: int, guards: bool) -> float:
    """Wall seconds of one nominal run with the given guard setting."""
    cfg = SimulationConfig(
        recovery=RecoveryPolicy(
            enabled=guards, guards=guards, recover_non_convergence=guards
        )
    )
    sim = NaluWindSimulation(workload, cfg)
    t0 = time.perf_counter()
    report = sim.run(steps)
    elapsed = time.perf_counter() - t0
    # Sanity: nominal runs never trigger recovery, with or without guards.
    if report.recovery != {}:
        raise SystemExit(
            f"nominal run unexpectedly recovered: {report.recovery}"
        )
    if not np.all(np.isfinite(sim.velocity)):
        raise SystemExit("nominal run produced non-finite fields")
    return elapsed


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns 0 on pass, 1 when overhead exceeds tol."""
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--workload", default="turbine_tiny")
    ap.add_argument("--steps", type=int, default=2)
    ap.add_argument(
        "--reps", type=int, default=3,
        help="repetitions per configuration; best-of wins (default 3)",
    )
    ap.add_argument(
        "--tol", type=float, default=0.02,
        help="max fractional guard overhead (default 0.02 = 2%%)",
    )
    args = ap.parse_args(argv)

    # Warm-up (imports, numpy caches) outside the timed reps, then
    # interleave so slow host drift hits both configurations equally.
    run_once(args.workload, 1, guards=True)
    on: list[float] = []
    off: list[float] = []
    for _ in range(args.reps):
        on.append(run_once(args.workload, args.steps, guards=True))
        off.append(run_once(args.workload, args.steps, guards=False))

    best_on, best_off = min(on), min(off)
    overhead = best_on / best_off - 1.0
    print(
        f"resilience guard overhead: {overhead * 100:+.2f}% "
        f"(guards on {best_on:.3f}s vs off {best_off:.3f}s, "
        f"best of {args.reps} on {args.workload} x {args.steps} steps)"
    )
    if overhead > args.tol:
        print(
            f"FAIL: overhead {overhead * 100:.2f}% exceeds "
            f"{args.tol * 100:.0f}% budget"
        )
        return 1
    print(f"OK: within {args.tol * 100:.0f}% budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
