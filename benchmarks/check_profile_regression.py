#!/usr/bin/env python
"""Validate the ``repro.profile/1`` pipeline; fail on broken invariants.

Tier-2 gate companion to ``check_telemetry_regression.py``.  Two modes:

* **self-check** (default, no arguments): run a small workload under the
  timeline profiler at two rank counts and assert the structural
  invariants the profiler guarantees —

  - the document round-trips through the ``repro.profile/1`` schema;
  - per-rank accounted time (compute + wait + transfer) equals the span
    wall time within tolerance, on every rank;
  - the critical path sums to wall time within tolerance;
  - the roofline join reports an achieved-vs-model fraction in (0, 1]
    for every instrumented kernel;
  - the ``profile.*`` gauges land in the telemetry metrics snapshot;
  - comm-wait fraction rises with rank count (the paper's fig8 story);
  - two identical runs serialize bitwise-identically.

* **drift mode** (``baseline.json current.json``): diff two exported
  profile documents — summary fractions, per-phase wait/imbalance, and
  critical-path length — exit non-zero beyond tolerance.

The self-check runs simulations, so unlike the telemetry gate this
script imports ``repro`` (same pattern as
``check_restart_determinism.py``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

SCHEMA = "repro.profile/1"


def load(path: str) -> dict:
    """Load one profile document, validating the schema tag."""
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != SCHEMA:
        raise SystemExit(
            f"{path}: schema {doc.get('schema')!r} != expected {SCHEMA!r}"
        )
    return doc


def rel_drift(base: float, cur: float) -> float:
    """Relative change |cur - base| / base (inf when base == 0 != cur)."""
    if base == 0.0:
        return 0.0 if cur == 0.0 else float("inf")
    return abs(cur - base) / base


def check_invariants(doc: dict, tol: float) -> list[str]:
    """Structural invariants every profile document must satisfy."""
    failures: list[str] = []
    wall = doc.get("wall_time_s", 0.0)
    if wall <= 0.0:
        failures.append(f"wall_time_s must be positive, got {wall}")

    for r, rt in sorted(doc.get("ranks", {}).items()):
        acc = rt.get("accounted_s", 0.0)
        if rel_drift(wall, acc) > tol:
            failures.append(
                f"rank {r}: accounted {acc:.9f}s != wall {wall:.9f}s "
                f"(compute+wait+transfer must equal span wall time)"
            )

    cp = doc.get("critical_path", {})
    if rel_drift(wall, cp.get("total_s", 0.0)) > tol:
        failures.append(
            f"critical path {cp.get('total_s', 0.0):.9f}s != wall "
            f"{wall:.9f}s"
        )

    for phase, entry in sorted(doc.get("roofline", {}).items()):
        for kernel, k in sorted(entry.get("kernels", {}).items()):
            frac = max(k.get("achieved_bw_frac", 0.0),
                       k.get("achieved_flop_frac", 0.0))
            # Launch-only bookkeeping kernels (zero flops and bytes)
            # legitimately achieve 0 of either roof.
            has_work = k.get("flops", 0.0) > 0.0 or k.get("bytes", 0.0) > 0.0
            if frac > 1.0 + 1e-12 or frac < 0.0 or (has_work and frac == 0.0):
                failures.append(
                    f"roofline {phase}/{kernel}: achieved fraction "
                    f"{frac} outside (0, 1]"
                )
            if k.get("bound") not in ("bandwidth", "flops", "launch"):
                failures.append(
                    f"roofline {phase}/{kernel}: bad bound "
                    f"{k.get('bound')!r}"
                )
    return failures


def compare(base: dict, cur: dict, tol: float) -> list[str]:
    """Drift mode: return failure strings (empty = pass)."""
    failures: list[str] = []
    for key in ("comm_fraction", "wait_fraction", "syncs"):
        b = base.get("summary", {}).get(key, 0.0)
        c = cur.get("summary", {}).get(key, 0.0)
        d = rel_drift(b, c)
        if d > tol:
            failures.append(
                f"summary.{key} drift {d * 100:.1f}% ({b:.4g} -> {c:.4g}) "
                f"exceeds {tol * 100:.0f}%"
            )
    bp, cp = base.get("phases", {}), cur.get("phases", {})
    for name in sorted(set(bp) | set(cp)):
        if name not in bp or name not in cp:
            failures.append(
                f"phase {name!r} only in "
                f"{'current' if name not in bp else 'baseline'}"
            )
            continue
        for key in ("wait_s", "imbalance", "syncs"):
            d = rel_drift(bp[name].get(key, 0.0), cp[name].get(key, 0.0))
            if d > tol:
                failures.append(
                    f"phase {name!r} {key} drift {d * 100:.1f}% exceeds "
                    f"{tol * 100:.0f}%"
                )
    d = rel_drift(
        base.get("critical_path", {}).get("total_s", 0.0),
        cur.get("critical_path", {}).get("total_s", 0.0),
    )
    if d > tol:
        failures.append(
            f"critical path length drift {d * 100:.1f}% exceeds "
            f"{tol * 100:.0f}%"
        )
    return failures


def self_check(workload: str, steps: int, tol: float) -> list[str]:
    """Run the profiled workload at two rank counts; check invariants."""
    from repro.harness import profile_run

    failures: list[str] = []
    docs = {}
    for nranks in (2, 6):
        profile = profile_run(workload, nranks, n_steps=steps)
        doc = profile.to_dict()
        failures += [f"[r{nranks}] {f}" for f in check_invariants(doc, tol)]

        # Schema round-trip.
        from repro.obs import RunProfile

        back = RunProfile.from_json(profile.to_json())
        if back.to_json() != profile.to_json():
            failures.append(f"[r{nranks}] JSON round-trip not identical")

        # Determinism: a second identical run must serialize bitwise-equal
        # (simulated clocks derive only from deterministic tallies).
        again = profile_run(workload, nranks, n_steps=steps)
        if again.to_json() != profile.to_json():
            failures.append(
                f"[r{nranks}] repeated run not bitwise-stable"
            )
        docs[nranks] = doc

    # profile.* gauges must reach the telemetry metrics snapshot, where
    # check_telemetry_regression.py-style drift gates can see them.
    from repro.core.config import SimulationConfig
    from repro.core.simulation import NaluWindSimulation

    cfg = SimulationConfig(nranks=2, profile=True)
    report = NaluWindSimulation(workload, cfg).run(steps)
    gauges = report.telemetry.metrics.get("gauges", {})
    for name in (
        "profile.wall_s",
        "profile.compute_s",
        "profile.wait_s",
        "profile.transfer_s",
        "profile.comm_fraction",
        "profile.wait_fraction",
        "profile.syncs",
        "profile.critical_path_s",
    ):
        if name not in gauges:
            failures.append(f"gauge {name!r} missing from telemetry metrics")

    # The fig8 story: more ranks, larger comm-wait share.
    lo = docs[2]["summary"]["comm_fraction"]
    hi = docs[6]["summary"]["comm_fraction"]
    if not hi > lo:
        failures.append(
            f"comm fraction did not rise with ranks ({lo:.4f} at 2 -> "
            f"{hi:.4f} at 6)"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns 0 on pass, 1 on failure."""
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "baseline", nargs="?", default="",
        help="baseline profile JSON (omit for self-check mode)",
    )
    ap.add_argument(
        "current", nargs="?", default="",
        help="current profile JSON (drift mode)",
    )
    ap.add_argument("--workload", default="turbine_tiny")
    ap.add_argument("--steps", type=int, default=1)
    ap.add_argument(
        "--tol", type=float, default=1e-6,
        help="relative tolerance for identities and drift (default 1e-6; "
        "simulated clocks are deterministic, so tight)",
    )
    args = ap.parse_args(argv)

    if bool(args.baseline) != bool(args.current):
        ap.error("drift mode needs both baseline and current")

    if args.baseline:
        failures = compare(load(args.baseline), load(args.current), args.tol)
        label = f"{args.baseline} vs {args.current}"
    else:
        failures = self_check(args.workload, args.steps, args.tol)
        label = f"self-check {args.workload} ({args.steps} steps)"

    if failures:
        print(f"PROFILE REGRESSION ({len(failures)} failures):")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"profile OK: {label}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
