"""Figure 3 — strong scaling of the NLI time per time step, low-res mesh.

The paper's figure plots average nonlinear-iteration (NLI) time per time
step versus Summit node count for three curves: the CPU run, the baseline
GPU implementation, and the optimized GPU implementation.  The reproduction
prices the same executed runs (optimized and baseline configurations) on
the Summit machine models; the expected shape is

* CPU scaling nearly ideal (slope ~ -1) but slower per node at scale,
* optimized GPU fastest at many nodes but flattening as DoFs/GPU shrink,
* baseline GPU 30-40% above optimized, worst at few nodes where its extra
  device-memory traffic and staging hurt most.
"""

import numpy as np

from repro.core.config import SimulationConfig
from repro.core.simulation import NaluWindSimulation
from repro.harness import emit, loglog_chart, nli_series, series_table
from repro.perf import SUMMIT_CPU_GRP, SUMMIT_GPU


def test_fig3_strong_scaling(benchmark, fig3_sweep, fig3_baseline_sweep):
    gpu = nli_series(fig3_sweep, SUMMIT_GPU, "GPU optimized")
    base = nli_series(fig3_baseline_sweep, SUMMIT_GPU, "GPU baseline")
    cpu = nli_series(fig3_sweep, SUMMIT_CPU_GRP, "CPU")

    emit(
        "fig3",
        series_table(
            "Fig. 3 (scaled): NLI time per step, low-res 1-turbine mesh "
            "(x = Summit nodes, paper-scale pricing)",
            [gpu, base, cpu],
            note="paper: GPU baseline 30-40% slower than optimized; CPU "
            "slope ~ -0.98; GPU flattens at low DoFs/GPU.",
        ),
    )

    emit(
        "fig3_chart",
        loglog_chart(
            "Fig. 3 (scaled, log-log): NLI time per step vs Summit nodes",
            [gpu, base, cpu],
        ),
    )

    # Benchmark the real kernel: one full optimized time step at 6 ranks.
    cfg = SimulationConfig(nranks=6)
    sim = NaluWindSimulation("turbine_low", cfg)
    benchmark.pedantic(sim.step, rounds=1, iterations=1)

    # Shape assertions.
    # 1. Baseline is slower than optimized everywhere.
    assert all(b > g for b, g in zip(base.mean, gpu.mean))
    # 2. GPU strong scaling flattens: the last doubling of ranks buys less
    #    than the first one.
    gain_first = gpu.mean[0] / gpu.mean[1]
    gain_last = gpu.mean[-2] / gpu.mean[-1]
    assert gain_first > gain_last
    # 3. CPU scales closer to ideal than GPU (more negative slope).
    assert cpu.slope() < gpu.slope() + 0.05
