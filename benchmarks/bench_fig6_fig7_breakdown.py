"""Figures 6 and 7 — pressure-Poisson time breakdown, CPU and GPU.

The paper's stacked bars split the pressure-equation time per step into:
graph computation + physics (purple), local assembly (green), global
assembly (red), preconditioner setup (blue), and solve (orange).  Key
shapes: on the CPU, setup+solve dominate but scale well; on the GPU the
local assembly is ~4x faster than CPU while setup+solve scale poorly as
DoFs/GPU shrink; the pressure system consumes 60-70% of a time step at
scale.
"""

import numpy as np

from repro.core.equation_system import PHASES
from repro.harness import emit, equation_breakdown, format_table
from repro.perf import SUMMIT_CPU_GRP, SUMMIT_GPU


def _rows(sweep, machine):
    rows = []
    for pt in sweep:
        bd = equation_breakdown(pt.report, machine, "pressure")
        rows.append(
            [pt.ranks / 6, pt.ranks]
            + [f"{bd[s]:.3f}" for s in PHASES]
            + [f"{sum(bd.values()):.3f}"]
        )
    return rows


HEADERS = ["nodes", "ranks"] + list(PHASES) + ["total"]


def test_fig6_cpu_breakdown(fig3_sweep, benchmark):
    rows = _rows(fig3_sweep, SUMMIT_CPU_GRP)
    emit(
        "fig6",
        format_table(
            "Fig. 6 (scaled): CPU pressure-Poisson breakdown "
            "[s/step, Summit-CPU model]",
            HEADERS,
            rows,
            note="paper: preconditioner setup + solve dominate on the CPU "
            "but scale well.",
        ),
    )
    bd = equation_breakdown(fig3_sweep[-1].report, SUMMIT_CPU_GRP, "pressure")
    assert bd["precond_setup"] + bd["solve"] > 0.5 * sum(bd.values())
    benchmark.pedantic(
        equation_breakdown,
        args=(fig3_sweep[0].report, SUMMIT_CPU_GRP, "pressure"),
        rounds=1,
        iterations=1,
    )


def test_fig7_gpu_breakdown(fig3_sweep, benchmark):
    rows = _rows(fig3_sweep, SUMMIT_GPU)
    emit(
        "fig7",
        format_table(
            "Fig. 7 (scaled): GPU pressure-Poisson breakdown "
            "[s/step, Summit-GPU model]",
            HEADERS,
            rows,
            note="paper: AMG setup+solve dominate and their scaling "
            "degrades as DoFs/GPU decrease; local assembly shows ~4x "
            "speedup over the CPU.",
        ),
    )
    # GPU local assembly beats CPU local assembly by a healthy factor.
    gpu_bd = equation_breakdown(fig3_sweep[0].report, SUMMIT_GPU, "pressure")
    cpu_bd = equation_breakdown(
        fig3_sweep[0].report, SUMMIT_CPU_GRP, "pressure"
    )
    assert cpu_bd["local_assembly"] > 2.0 * gpu_bd["local_assembly"]
    # AMG setup+solve dominate the GPU pressure time at scale.
    bd = equation_breakdown(fig3_sweep[-1].report, SUMMIT_GPU, "pressure")
    assert bd["precond_setup"] + bd["solve"] > 0.5 * sum(bd.values())
    benchmark.pedantic(
        equation_breakdown,
        args=(fig3_sweep[0].report, SUMMIT_GPU, "pressure"),
        rounds=1,
        iterations=1,
    )


def test_pressure_dominates_nli(fig3_sweep, benchmark):
    """Paper §6: 'for 24 Summit nodes, the pressure-Poisson system
    consumes 60%-70% of a time step'."""
    from repro.harness.scaling import default_work_scale
    from repro.perf.cost import CostModel

    pt = fig3_sweep[-1]
    cm = CostModel(SUMMIT_GPU, default_work_scale(pt.report))
    nranks = pt.report.config.nranks
    totals = {"pressure": 0.0, "other": 0.0}
    for delta in pt.report.step_deltas():
        for ph, agg in delta.items():
            t = cm.price_aggregate(agg, nranks).total
            key = "pressure" if ph.startswith("pressure/") else "other"
            totals[key] += t
    frac = totals["pressure"] / (totals["pressure"] + totals["other"])
    print(f"\npressure fraction of NLI at {pt.ranks} ranks: {frac:.2f}")
    assert frac > 0.45
    benchmark.pedantic(
        lambda: cm.price_aggregate(
            next(iter(pt.report.step_deltas()[0].values())), nranks
        ),
        rounds=1,
        iterations=1,
    )
