"""Pattern-frozen assembly fast path: cold vs reused-plan timings.

Simulates the Picard-loop amortization the plan cache targets: the
equation graph is fixed across nonlinear iterations, so after one cold
capture every subsequent assembly is a value-only replay (segmented sums
through cached permutations into frozen ParCSR storage).  Emits
``BENCH_assembly_reuse.json`` under ``benchmarks/results/`` with the
per-iteration wall times and the ``assembly.plan_hits`` telemetry.
"""

import json
import os
import time

import numpy as np

from repro.assembly import (
    AssemblyPlan,
    EquationGraph,
    GraphSpec,
    LocalAssembler,
    assemble_global_matrix,
    assemble_global_vector,
)
from repro.comm import SimWorld
from repro.harness import emit, format_table
from repro.harness.report import RESULTS_DIR
from repro.partition import build_numbering

N_NODES = 20_000
N_EDGES = 90_000
N_RANKS = 8
PICARD_ITERS = 8


def build_problem(seed=0):
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, N_NODES, size=(N_EDGES, 2))
    edges = edges[edges[:, 0] != edges[:, 1]]
    cons = rng.choice(N_NODES, size=N_NODES // 50, replace=False)
    parts = rng.integers(0, N_RANKS, size=N_NODES)
    num = build_numbering(parts, N_RANKS)
    w = SimWorld(N_RANKS)
    g = EquationGraph(w, num, GraphSpec(n=N_NODES, edges=edges,
                                       constraint_rows=cons))
    return w, num, g, edges, cons


def fill_local(w, g, num, edges, cons, it):
    """One Picard iteration's Stage-2 fill (values change, pattern frozen)."""
    rng = np.random.default_rng(1000 + it)
    E = edges.shape[0]
    ge = rng.random(E) + 0.1
    la = LocalAssembler(w, g)
    la.add_edge_matrix(np.stack([ge, -ge, -ge, ge], axis=1))
    la.add_diag(rng.random(g.n) + 1.0)
    la.add_node_rhs(rng.standard_normal(g.n))
    la.add_edge_rhs(rng.standard_normal((E, 2)))
    la.set_constraint_rhs(num.old_to_new[cons], rng.standard_normal(cons.size))
    return la.finalize()


def run_loop(variant="optimized", reuse=True):
    """N Picard iterations of matrix+vector assembly; per-iteration walls."""
    w, num, g, edges, cons = build_problem()
    plan = AssemblyPlan(num, variant, graph=g, name="A") if reuse else None
    locals_ = [
        fill_local(w, g, num, edges, cons, it) for it in range(PICARD_ITERS)
    ]
    walls = []
    for local in locals_:
        t0 = time.perf_counter()
        assemble_global_matrix(w, num, local, variant, plan=plan)
        assemble_global_vector(w, num, local, variant, plan=plan)
        walls.append(time.perf_counter() - t0)
    hits = w.metrics.counter("assembly.plan_hits", equation="A").value
    rebuilds = w.metrics.counter("assembly.plan_rebuilds", equation="A").value
    return walls, hits, rebuilds


def bench():
    results = {
        "n": N_NODES,
        "nranks": N_RANKS,
        "picard_iterations": PICARD_ITERS,
        "variants": {},
    }
    rows = []
    for variant in ("optimized", "sparse_add", "general"):
        cold_walls, _, _ = run_loop(variant, reuse=False)
        warm_walls, hits, rebuilds = run_loop(variant, reuse=True)
        # Iteration 0 of the reuse path is the capture; the steady-state
        # Picard cost is the replay mean.
        cold_mean = float(np.mean(cold_walls))
        replay_mean = float(np.mean(warm_walls[1:]))
        speedup = cold_mean / replay_mean
        results["variants"][variant] = {
            "cold_walls_s": cold_walls,
            "reuse_walls_s": warm_walls,
            "cold_mean_s": cold_mean,
            "capture_s": warm_walls[0],
            "replay_mean_s": replay_mean,
            "speedup": speedup,
            "plan_hits": hits,
            "plan_rebuilds": rebuilds,
        }
        rows.append(
            [
                variant,
                f"{cold_mean * 1e3:.2f}",
                f"{warm_walls[0] * 1e3:.2f}",
                f"{replay_mean * 1e3:.2f}",
                f"{speedup:.2f}x",
                hits,
            ]
        )
    emit(
        "BENCH_assembly_reuse",
        format_table(
            f"Assembly plan reuse over {PICARD_ITERS} Picard iterations "
            f"({N_NODES} rows, {N_RANKS} ranks)",
            ["variant", "cold [ms/it]", "capture [ms]", "replay [ms/it]",
             "speedup", "plan_hits"],
            rows,
            note="cold = full Algorithm 1 every iteration; replay = "
            "value-only segmented-sum scatter through the frozen plan.",
        ),
    )
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(
        os.path.join(RESULTS_DIR, "BENCH_assembly_reuse.json"), "w"
    ) as fh:
        json.dump(results, fh, indent=2)
    return results


def test_bench_assembly_reuse(benchmark):
    results = bench()
    for variant, r in results["variants"].items():
        # Each reuse-loop iteration assembles one matrix and one vector.
        assert r["plan_hits"] == PICARD_ITERS - 1
        assert r["plan_rebuilds"] == 1
        assert r["speedup"] >= 2.0, (
            f"{variant}: replay only {r['speedup']:.2f}x faster than cold"
        )
    benchmark.pedantic(
        run_loop, kwargs={"reuse": True}, rounds=1, iterations=1
    )


if __name__ == "__main__":
    out = bench()
    for v, r in out["variants"].items():
        print(f"{v}: speedup {r['speedup']:.2f}x, plan_hits {r['plan_hits']}")
