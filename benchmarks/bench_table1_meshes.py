"""Table 1 — NREL 5-MW turbine mesh sizes.

Regenerates the paper's Table 1 at the reproduction scale (~1/1000): the
same three workloads built by the same construction rules, reported with
the paper's counts side by side.
"""

from repro.harness import emit, format_table
from repro.mesh import (
    PAPER_TABLE1,
    make_turbine_dual,
    make_turbine_low,
    make_turbine_refined,
)

from conftest import REFINE


def test_table1_mesh_sizes(benchmark):
    builders = {
        "turbine_low": make_turbine_low,
        "turbine_dual": make_turbine_dual,
        "turbine_refined": lambda: make_turbine_refined(refine=REFINE),
    }
    systems = {name: b() for name, b in builders.items()}

    rows = []
    for name, sys_ in systems.items():
        paper = PAPER_TABLE1[name]
        scale = paper / sys_.total_nodes
        stats = [m.stats() for m in sys_.meshes]
        rows.append(
            [
                name,
                f"{paper:,}",
                f"{sys_.total_nodes:,}",
                f"{scale:.0f}x",
                len(sys_.meshes),
                f"{max(s.max_aspect_ratio for s in stats):.0f}",
            ]
        )
    note = (
        "Paper Table 1: 1 Turbine 23,022,027 / 2 Turbines 44,233,109 / "
        "1 Turbine Refined 634,469,604 mesh nodes.\n"
        f"(refined mesh built at refine={REFINE}; the paper's refined mesh "
        "corresponds to refine=3)"
    )
    emit(
        "table1",
        format_table(
            "Table 1 (scaled): NREL 5-MW turbine mesh sizes",
            [
                "workload",
                "paper nodes",
                "scaled nodes",
                "scale",
                "meshes",
                "max AR",
            ],
            rows,
            note,
        ),
    )

    # Benchmark the real mesh-generation kernel.
    benchmark(make_turbine_low)

    low = systems["turbine_low"]
    assert abs(low.total_nodes * 1000 - PAPER_TABLE1["turbine_low"]) < (
        0.05 * PAPER_TABLE1["turbine_low"]
    )
