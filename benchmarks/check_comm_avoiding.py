#!/usr/bin/env python
"""Gate the communication-avoiding solver contracts; fail on violation.

Tier-2 gate companion to ``check_profile_regression.py``.  Two modes:

* **self-check** (default, no arguments) — re-derive the contracts from
  scratch on small workloads:

  - exact allreduce counts: CG charges ``2 + 2*iters``, pipelined CG
    ``2 + iters``, the one-reduce orthogonalizer exactly 1 per Arnoldi
    step;
  - ``matvec(overlap=True)`` is bitwise identical to the synchronous
    path, including under an injected message drop and an injected
    payload corruption handled by the bounded retry protocol;
  - at 6 ranks the priced comm-wait fraction of a profiled run is
    *strictly* lower with the split halo exchange than without, and the
    split rounds show up in ``profile.overlap_rounds``.

* **artifact mode** (``BENCH_comm_avoiding.json``) — validate a bench
  artifact from ``bench_comm_avoiding.py``: every overlap point must
  not exceed its synchronous twin's priced wall time (and must have a
  strictly lower wait fraction at 6 ranks), and the recorded reduction
  counts must match the contract.

The self-check runs simulations, so the script imports ``repro`` (same
pattern as ``check_profile_regression.py``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)


def check_artifact(path: str) -> list[str]:
    """Validate one BENCH_comm_avoiding.json document."""
    failures: list[str] = []
    with open(path) as fh:
        doc = json.load(fh)

    points = doc.get("overlap_sweep", [])
    sync = {(p["figure"], p["ranks"]): p for p in points if not p["overlap"]}
    ovl = {(p["figure"], p["ranks"]): p for p in points if p["overlap"]}
    if set(sync) != set(ovl):
        failures.append("overlap sweep points not paired sync/overlap")
    for key in sorted(set(sync) & set(ovl)):
        s, o = sync[key], ovl[key]
        tag = f"{key[0]} r{key[1]}"
        if o.get("wall_time_s", 0.0) > s.get("wall_time_s", 0.0):
            failures.append(
                f"{tag}: overlap wall time {o['wall_time_s']:.6f}s "
                f"exceeds sync {s['wall_time_s']:.6f}s"
            )
        if key[1] == 6 and not o["wait_fraction"] < s["wait_fraction"]:
            failures.append(
                f"{tag}: overlap wait fraction not strictly lower "
                f"({o['wait_fraction']:.6f} vs {s['wait_fraction']:.6f})"
            )
        if not o["overlap_rounds"] > 0:
            failures.append(f"{tag}: no split rounds recorded under overlap")

    contract = doc.get("reduction_contract", {})
    for name, expect in (("cg", 2), ("pipelined_cg", 1)):
        r = contract.get(name)
        if r is None:
            continue
        want = 2 + expect * r["iterations"]
        if r["collectives"] != want:
            failures.append(
                f"{name}: {r['collectives']} allreduces for "
                f"{r['iterations']} iterations (contract: {want})"
            )
    return failures


def self_check() -> list[str]:
    """Re-derive the contracts on small workloads."""
    import numpy as np
    from scipy import sparse

    from repro.comm import SimWorld
    from repro.core.config import SimulationConfig
    from repro.core.simulation import NaluWindSimulation
    from repro.krylov import CG, PipelinedCG, orthogonalize
    from repro.linalg import ParCSRMatrix
    from repro.resilience.injection import FaultInjector, FaultSpec

    failures: list[str] = []

    def poisson2d(nx):
        T = sparse.diags([-1.0, 2.0, -1.0], [-1, 0, 1], (nx, nx))
        return (
            sparse.kron(sparse.eye(nx), T) + sparse.kron(T, sparse.eye(nx))
        ).tocsr()

    def par(A, nranks=4):
        w = SimWorld(nranks)
        offs = np.linspace(0, A.shape[0], nranks + 1).astype(np.int64)
        return w, ParCSRMatrix(w, A, offs)

    # 1. Exact reduction counts.
    A = poisson2d(12)
    for name, klass, per_iter in (("cg", CG, 2), ("pipelined_cg", PipelinedCG, 1)):
        w, M = par(A)
        res = klass(M, tol=1e-8, max_iters=300).solve(
            M.new_vector(np.ones(A.shape[0]))
        )
        want = 2 + per_iter * res.iterations
        got = w.traffic.collective_count()
        if not res.converged:
            failures.append(f"{name}: did not converge on poisson2d(12)")
        elif got != want:
            failures.append(
                f"{name}: {got} allreduces for {res.iterations} "
                f"iterations (contract: {want})"
            )
    w = SimWorld(2)
    rng = np.random.default_rng(0)
    V, _ = np.linalg.qr(rng.standard_normal((64, 6)))
    orthogonalize(w, V, rng.standard_normal(64), "one_reduce")
    if w.traffic.collective_count() != 1:
        failures.append(
            f"one_reduce orthogonalizer charged "
            f"{w.traffic.collective_count()} allreduces (contract: 1)"
        )

    # 2. Bitwise overlap parity, clean and under injected faults.
    rng = np.random.default_rng(7)
    xv = rng.standard_normal(A.shape[0])
    _w0, M0 = par(A)
    y_ref = M0.matvec(M0.new_vector(xv)).data
    for label, specs in (
        ("clean", ()),
        ("message_drop", (FaultSpec("message_drop", at=0),)),
        ("message_corrupt", (FaultSpec("message_corrupt", at=0),)),
    ):
        w, M = par(A)
        if specs:
            w.fault_injector = FaultInjector(specs)
        y = M.matvec(M.new_vector(xv), overlap=True).data
        if not np.array_equal(y, y_ref):
            failures.append(
                f"matvec(overlap=True) not bitwise identical ({label})"
            )
        if specs and w.metrics.counter_total("comm.retries") < 1.0:
            failures.append(f"retry protocol did not engage ({label})")

    # 3. Profiled run at 6 ranks: wait fraction strictly lower with
    # the split exchange.
    fracs = {}
    for overlap in (False, True):
        cfg = SimulationConfig(nranks=6)
        cfg.profile = True
        for sc in (
            cfg.momentum_solver, cfg.scalar_solver, cfg.pressure_solver
        ):
            sc.overlap = overlap
        rep = NaluWindSimulation("turbine_tiny", cfg).run(1)
        s = rep.profile.summary
        fracs[overlap] = s
        if overlap and not s["overlap_rounds"] > 0:
            failures.append("no split rounds recorded in profiled run")
    if not fracs[True]["wait_fraction"] < fracs[False]["wait_fraction"]:
        failures.append(
            "wait fraction not strictly lower with overlap at 6 ranks "
            f"({fracs[True]['wait_fraction']:.6f} vs "
            f"{fracs[False]['wait_fraction']:.6f})"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "artifact", nargs="?",
        help="BENCH_comm_avoiding.json to validate (default: self-check)",
    )
    args = ap.parse_args(argv)

    failures = (
        check_artifact(args.artifact) if args.artifact else self_check()
    )
    if failures:
        print("comm-avoiding contract violations:")
        for f in failures:
            print(f"  - {f}")
        return 1
    mode = args.artifact or "self-check"
    print(f"comm-avoiding OK: {mode}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
