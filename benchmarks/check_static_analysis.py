#!/usr/bin/env python
"""Run repro-lint + the kernel sanitizer as a CI gate; fail on findings.

Tier-2 correctness gate alongside ``check_telemetry_regression.py`` and
``check_resilience_overhead.py``: invokes ``python -m repro analyze
--strict`` over the source tree and exits non-zero when any RL (static)
or KS (dynamic) finding survives pragma + baseline suppression.  Two
stages: a fast ``--changed`` pass over git-modified files first (fails
the gate early during pre-commit iteration), then the authoritative
full-tree scan with the dynamic checks.  The
shipped baseline (``benchmarks/analysis_baseline.json``) is empty and
must stay empty for ``src/repro`` — it exists so a downstream fork can
grandfather its own debt without editing this gate.

Usage::

    python benchmarks/check_static_analysis.py [paths...] \
        [--baseline benchmarks/analysis_baseline.json] [--no-dynamic]

The analyzer runs in a subprocess through the real CLI entry point so
the gate exercises exactly what ``python -m repro analyze`` ships.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(
    REPO_ROOT, "benchmarks", "analysis_baseline.json"
)


def run_analyzer(
    paths: list[str],
    baseline: str,
    no_dynamic: bool,
    seed: int,
    changed: bool = False,
) -> tuple[int, dict]:
    """Run ``python -m repro analyze --strict --format json``."""
    cmd = [
        sys.executable,
        "-m",
        "repro",
        "analyze",
        "--strict",
        "--format",
        "json",
        "--seed",
        str(seed),
    ]
    if baseline:
        cmd += ["--baseline", baseline]
    if no_dynamic:
        cmd.append("--no-dynamic")
    if changed:
        cmd.append("--changed")
    cmd += paths
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        cmd, cwd=REPO_ROOT, env=env, capture_output=True, text=True
    )
    if proc.stderr.strip():
        print(proc.stderr, file=sys.stderr, end="")
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError:
        print(proc.stdout)
        raise SystemExit(
            f"analyzer emitted non-JSON output (exit {proc.returncode})"
        )
    return proc.returncode, doc


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns 0 on a clean tree, 1 on findings."""
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="paths to analyze (default: src/repro)",
    )
    ap.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help="grandfathered-findings baseline (default: the shipped, "
        "empty benchmarks/analysis_baseline.json)",
    )
    ap.add_argument(
        "--no-dynamic",
        action="store_true",
        help="skip the sanitizer/determinism replay (lint only)",
    )
    ap.add_argument(
        "--seed", type=int, default=0, help="dynamic-replay seed"
    )
    ap.add_argument(
        "--full-only",
        action="store_true",
        help="skip the fast --changed first stage",
    )
    args = ap.parse_args(argv)

    # Stage 1: fast fail on git-modified files (static rules only; the
    # CLI itself falls back to a full scan when git is unavailable, so
    # this stage is at worst a duplicate of stage 2's static half).
    if not args.full_only:
        code, doc = run_analyzer(
            args.paths, args.baseline, True, args.seed, changed=True
        )
        stage1 = doc.get("findings", [])
        if stage1:
            print(
                f"STATIC ANALYSIS GATE FAILED in changed files "
                f"({len(stage1)} findings, full scan skipped):"
            )
            for f in stage1:
                loc = f.get("kernel") or f"{f['path']}:{f['line']}"
                print(
                    f"  - {f['rule']} [{f['severity']}] {loc}: {f['message']}"
                )
            return 1

    # Stage 2: the authoritative full-tree scan (plus dynamic checks).
    code, doc = run_analyzer(
        args.paths, args.baseline, args.no_dynamic, args.seed
    )
    findings = doc.get("findings", [])
    suppressed = doc.get("suppressed", [])
    baselined = doc.get("baselined", [])
    dyn = doc.get("dynamic", {})

    if findings:
        print(f"STATIC ANALYSIS GATE FAILED ({len(findings)} findings):")
        for f in findings:
            loc = f.get("kernel") or f"{f['path']}:{f['line']}"
            print(f"  - {f['rule']} [{f['severity']}] {loc}: {f['message']}")
        return 1
    if code != 0:
        print(f"analyzer exited {code} with no reported findings")
        return code
    if baselined:
        print(
            f"warning: {len(baselined)} finding(s) grandfathered via "
            f"{args.baseline} — debt, not cleanliness",
            file=sys.stderr,
        )
    san = dyn.get("sanitizer", {})
    print(
        "static analysis OK: 0 findings "
        f"({len(suppressed)} pragma-suppressed, {len(baselined)} baselined; "
        f"dynamic: {dyn.get('scatter_checks', 0)} scatter checks, "
        f"{san.get('launches', 0)} sanitized launches)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
