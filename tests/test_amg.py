"""Tests for the BoomerAMG reproduction: SoC, PMIS, interpolation, cycles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.amg import (
    AMGHierarchy,
    AMGOptions,
    AMGPreconditioner,
    C_POINT,
    F_POINT,
    aggressive_strength,
    bamg_direct_interpolation,
    direct_interpolation,
    mm_ext_i_interpolation,
    mm_ext_interpolation,
    pmis_coarsen,
    second_pass_aggressive,
    strength_matrix,
    truncate_interpolation,
)
from repro.comm import SimWorld
from repro.linalg import ParCSRMatrix, ParVector


def poisson2d(nx, ny=None, eps=1.0):
    """(Possibly anisotropic) 2-D Poisson matrix."""
    ny = ny or nx
    Tx = sparse.diags([-1.0, 2.0, -1.0], [-1, 0, 1], (nx, nx))
    Ty = sparse.diags([-eps, 2.0 * eps, -eps], [-1, 0, 1], (ny, ny))
    return (
        sparse.kron(sparse.eye(ny), Tx) + sparse.kron(Ty, sparse.eye(nx))
    ).tocsr()


def par(A, nranks=4, seed=0):
    n = A.shape[0]
    w = SimWorld(nranks)
    offs = np.linspace(0, n, nranks + 1).astype(np.int64)
    return w, ParCSRMatrix(w, A, offs)


class TestStrength:
    def test_isotropic_laplacian_all_strong(self):
        A = poisson2d(8)
        S = strength_matrix(A, theta=0.25)
        # Every off-diagonal of the 5-point stencil is equally strong.
        assert S.nnz == A.nnz - A.shape[0]

    def test_anisotropic_weak_directions_dropped(self):
        A = poisson2d(8, eps=1e-4)
        S = strength_matrix(A, theta=0.25)
        # Only the strong (x) couplings survive: about 2 per interior row.
        assert S.nnz < 0.6 * (A.nnz - A.shape[0])

    def test_no_diagonal(self):
        S = strength_matrix(poisson2d(6), 0.25)
        assert np.all(S.diagonal() == 0)

    def test_theta_range_validated(self):
        with pytest.raises(ValueError):
            strength_matrix(poisson2d(4), theta=1.0)

    def test_positive_offdiagonals_not_strong(self):
        A = sparse.csr_matrix(
            np.array([[2.0, 0.5, -1.0], [0.5, 2.0, -1.0], [-1.0, -1.0, 2.0]])
        )
        S = strength_matrix(A, 0.25)
        assert S[0, 1] == 0.0
        assert S[0, 2] != 0.0

    def test_aggressive_strength_is_distance_two(self):
        # Path graph: 0-1-2-3; S^2+S connects 0 to 2.
        A = sparse.csr_matrix(
            sparse.diags([-1.0, 2.0, -1.0], [-1, 0, 1], (5, 5))
        )
        S = strength_matrix(A, 0.25)
        S2 = aggressive_strength(S)
        assert S2[0, 2] != 0
        assert S2[0, 3] == 0
        assert np.all(S2.diagonal() == 0)


class TestPMIS:
    def _check_valid_cf(self, S, cf):
        G = (S + S.T).tocsr()
        cpts = np.flatnonzero(cf == C_POINT)
        # Independence: no two C-points strongly connected.
        sub = G[cpts][:, cpts]
        assert sub.nnz == 0
        # Every F-point with strong connections sees at least one C point
        # within distance one of the undirected strong graph... PMIS only
        # guarantees maximality of the independent set:
        fpts = np.flatnonzero(cf == F_POINT)
        if fpts.size:
            reach = np.asarray(
                G[fpts][:, cpts].sum(axis=1)
            ).ravel()
            deg = np.asarray(G[fpts].sum(axis=1)).ravel()
            # F points with any strong neighbor must touch a C point OR
            # have had all neighbors assigned F by maximality violations —
            # the latter cannot happen for a maximal independent set.
            assert np.all((reach > 0) | (deg == 0))

    def test_valid_on_isotropic_poisson(self):
        A = poisson2d(12)
        S = strength_matrix(A, 0.25)
        cf = pmis_coarsen(S, np.random.default_rng(0))
        assert np.all((cf == C_POINT) | (cf == F_POINT))
        self._check_valid_cf(S, cf)

    def test_valid_on_anisotropic(self):
        A = poisson2d(12, eps=1e-3)
        S = strength_matrix(A, 0.25)
        cf = pmis_coarsen(S, np.random.default_rng(1))
        self._check_valid_cf(S, cf)

    def test_isolated_points_become_c(self):
        A = sparse.eye(5).tocsr()
        S = strength_matrix(A, 0.25)
        cf = pmis_coarsen(S, np.random.default_rng(0))
        assert np.all(cf == C_POINT)

    def test_coarsening_reduces_size(self):
        A = poisson2d(16)
        S = strength_matrix(A, 0.25)
        cf = pmis_coarsen(S, np.random.default_rng(2))
        frac = (cf == C_POINT).sum() / cf.size
        assert 0.1 < frac < 0.6

    def test_aggressive_second_pass_subset(self):
        A = poisson2d(16)
        S = strength_matrix(A, 0.25)
        rng = np.random.default_rng(3)
        cf1 = pmis_coarsen(S, rng)
        cf2 = second_pass_aggressive(aggressive_strength(S), cf1, rng)
        c1 = set(np.flatnonzero(cf1 == C_POINT))
        c2 = set(np.flatnonzero(cf2 == C_POINT))
        assert c2 <= c1
        assert len(c2) < len(c1)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000), nx=st.integers(4, 14))
    def test_property_mis_independence(self, seed, nx):
        A = poisson2d(nx)
        S = strength_matrix(A, 0.25)
        cf = pmis_coarsen(S, np.random.default_rng(seed))
        G = (S + S.T).tocsr()
        cpts = np.flatnonzero(cf == C_POINT)
        assert G[cpts][:, cpts].nnz == 0


ALL_INTERPS = [
    direct_interpolation,
    bamg_direct_interpolation,
    mm_ext_interpolation,
    mm_ext_i_interpolation,
]


class TestInterpolation:
    @pytest.mark.parametrize("interp", ALL_INTERPS)
    def test_c_rows_are_identity(self, interp):
        A = poisson2d(10)
        S = strength_matrix(A, 0.25)
        cf = pmis_coarsen(S, np.random.default_rng(0))
        P = interp(A, S, cf)
        cpts = np.flatnonzero(cf == C_POINT)
        for k, c in enumerate(cpts[:20]):
            row = P[c].toarray().ravel()
            assert row[k] == 1.0
            assert np.count_nonzero(row) == 1

    @pytest.mark.parametrize(
        "interp", [direct_interpolation, bamg_direct_interpolation]
    )
    def test_rowsum_one_on_zero_rowsum_rows(self, interp):
        # Laplacian with zero row sums (periodic-like closure).
        n = 64
        A = poisson2d(8).tolil()
        rs = np.asarray(A.sum(axis=1)).ravel()
        A.setdiag(A.diagonal() - rs)  # force exact zero row sums
        A = A.tocsr()
        S = strength_matrix(A, 0.25)
        cf = pmis_coarsen(S, np.random.default_rng(0))
        P = interp(A, S, cf)
        fpts = np.flatnonzero(cf == F_POINT)
        rows = np.asarray(P.sum(axis=1)).ravel()
        good = np.abs(rows[fpts] - 1.0) < 1e-10
        # Rows with strong C neighbors must reproduce constants exactly.
        n_cs = np.diff(
            strength_matrix(A, 0.25)[fpts][
                :, np.flatnonzero(cf == C_POINT)
            ].tocsr().indptr
        )
        assert np.all(good[n_cs > 0])

    def test_mm_ext_covers_f_points_without_c_neighbors(self):
        # Anisotropic problem where PMIS leaves F-points with no strong C
        # neighbor: MM-ext must still give them nonzero weights through
        # distance-two paths whenever such paths exist.
        A = poisson2d(14, eps=1e-4)
        S = strength_matrix(A, 0.25)
        cf = pmis_coarsen(S, np.random.default_rng(5))
        P_mm = mm_ext_interpolation(A, S, cf)
        P_dir = direct_interpolation(A, S, cf)
        fpts = np.flatnonzero(cf == F_POINT)
        nnz_mm = np.diff(P_mm.tocsr().indptr)[fpts]
        nnz_dir = np.diff(P_dir.tocsr().indptr)[fpts]
        assert nnz_mm.sum() >= nnz_dir.sum()

    def test_truncation_limits_row_size_and_preserves_rowsum(self):
        A = poisson2d(12)
        S = strength_matrix(A, 0.25)
        cf = pmis_coarsen(S, np.random.default_rng(0))
        P = mm_ext_interpolation(A, S, cf)
        Pt = truncate_interpolation(P, max_elements=2)
        assert np.diff(Pt.indptr).max() <= 2
        rs_before = np.asarray(P.sum(axis=1)).ravel()
        rs_after = np.asarray(Pt.sum(axis=1)).ravel()
        assert np.allclose(rs_before, rs_after, atol=1e-12)

    def test_truncation_keeps_largest(self):
        P = sparse.csr_matrix(np.array([[0.7, 0.2, 0.1], [0.1, 0.1, 0.8]]))
        Pt = truncate_interpolation(P, max_elements=1).toarray()
        assert Pt[0, 0] != 0 and Pt[0, 1] == 0
        assert Pt[1, 2] != 0

    def test_truncation_empty_matrix(self):
        P = sparse.csr_matrix((3, 2))
        Pt = truncate_interpolation(P)
        assert Pt.nnz == 0


class TestHierarchy:
    def test_levels_shrink(self):
        w, M = par(poisson2d(24))
        h = AMGHierarchy(M, AMGOptions(agg_levels=0, interp="direct"))
        sizes = [lvl.A.shape[0] for lvl in h.levels]
        assert all(b < a for a, b in zip(sizes, sizes[1:]))
        assert sizes[-1] <= 64

    def test_aggressive_coarsening_reduces_complexity(self):
        w1, M1 = par(poisson2d(24))
        h_no = AMGHierarchy(M1, AMGOptions(agg_levels=0, interp="mm_ext"))
        w2, M2 = par(poisson2d(24))
        h_agg = AMGHierarchy(M2, AMGOptions(agg_levels=2, interp="mm_ext"))
        # Aggressive coarsening yields a smaller level-1 grid.
        assert h_agg.levels[1].A.shape[0] < h_no.levels[1].A.shape[0]

    def test_complexities_reported(self):
        w, M = par(poisson2d(16))
        h = AMGHierarchy(M)
        assert h.operator_complexity() >= 1.0
        assert h.grid_complexity() >= 1.0
        assert len(h.level_sizes()) == h.num_levels

    def test_coarse_offsets_consistent(self):
        w, M = par(poisson2d(20), nranks=3)
        h = AMGHierarchy(M)
        for lvl in h.levels:
            assert lvl.A.row_offsets[-1] == lvl.A.shape[0]

    def test_galerkin_property(self):
        """A_{l+1} == R A_l P exactly."""
        w, M = par(poisson2d(16))
        h = AMGHierarchy(M, AMGOptions(agg_levels=0, interp="direct"))
        for lvl, nxt in zip(h.levels, h.levels[1:]):
            ref = (lvl.R.A @ lvl.A.A @ lvl.P.A).toarray()
            assert np.allclose(nxt.A.A.toarray(), ref, atol=1e-10)

    def test_unknown_options_rejected(self):
        w, M = par(poisson2d(8))
        with pytest.raises(ValueError):
            AMGHierarchy(M, AMGOptions(interp="bogus"))
        w, M = par(poisson2d(8))
        with pytest.raises(ValueError):
            AMGHierarchy(M, AMGOptions(smoother="bogus"))


class TestVCycle:
    @pytest.mark.parametrize("interp", ["direct", "mm_ext", "mm_ext_i"])
    def test_standalone_vcycle_converges(self, interp):
        w, M = par(poisson2d(20))
        h = AMGHierarchy(M, AMGOptions(interp=interp, agg_levels=1))
        pc = AMGPreconditioner(h)
        rng = np.random.default_rng(0)
        b = M.new_vector(rng.standard_normal(M.shape[0]))
        x, hist = pc.solve(b, tol=1e-8, max_cycles=60)
        assert hist[-1] <= 1e-8
        # Convergence factor bounded away from 1 (direct interpolation with
        # aggressive coarsening is the slowest of the family, ~0.72 here).
        factors = [b / a for a, b in zip(hist[:-2], hist[1:-1]) if a > 0]
        assert np.median(factors) < 0.85

    def test_vcycle_on_anisotropic_problem(self):
        w, M = par(poisson2d(24, eps=1e-3))
        h = AMGHierarchy(M, AMGOptions(interp="mm_ext", smoother_inner=2))
        pc = AMGPreconditioner(h)
        b = M.new_vector(np.random.default_rng(1).standard_normal(M.shape[0]))
        _x, hist = pc.solve(b, tol=1e-6, max_cycles=80)
        assert hist[-1] <= 1e-6

    def test_apply_is_linear(self):
        w, M = par(poisson2d(12))
        h = AMGHierarchy(M)
        pc = AMGPreconditioner(h)
        rng = np.random.default_rng(2)
        r1 = M.new_vector(rng.standard_normal(M.shape[0]))
        r2 = M.new_vector(rng.standard_normal(M.shape[0]))
        z12 = pc.apply(M.new_vector(r1.data + 2.0 * r2.data))
        z1 = pc.apply(r1)
        z2 = pc.apply(r2)
        assert np.allclose(z12.data, z1.data + 2.0 * z2.data, atol=1e-9)

    def test_setup_and_cycle_record_work(self):
        w, M = par(poisson2d(16))
        with w.phase_scope("setup"):
            h = AMGHierarchy(M)
        pc = AMGPreconditioner(h)
        with w.phase_scope("cycle"):
            pc.apply(M.new_vector(np.ones(M.shape[0])))
        assert w.ops.total("setup").flops > 0
        assert w.ops.total("cycle").flops > 0
        assert w.traffic.message_count("cycle") > 0
