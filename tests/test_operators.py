"""Tests for the edge-based finite-volume operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import SimWorld
from repro.core import CompositeMesh
from repro.core.operators import (
    boundary_mass_flux,
    diffusion_coefficients,
    diffusion_pairs,
    divergence_of_velocity,
    edge_average,
    edge_divergence,
    green_gauss_gradient,
    least_squares_gradient,
    mass_flux,
    upwind_advection_coefficients,
)
from repro.mesh import make_background_only, make_turbine_tiny
from repro.overset.assembler import NodeStatus


@pytest.fixture(scope="module")
def box():
    """Background-only composite (regular metric, all sides open)."""
    return CompositeMesh(SimWorld(2), make_background_only())


@pytest.fixture(scope="module")
def turbine():
    return CompositeMesh(SimWorld(2), make_turbine_tiny())


class TestEdgeAverages:
    def test_scalar_average(self, box):
        f = box.coords[:, 0]
        fe = edge_average(box, f)
        a, b = box.edges[:, 0], box.edges[:, 1]
        assert np.allclose(fe, 0.5 * (f[a] + f[b]))

    def test_vector_average_shape(self, box):
        v = np.random.default_rng(0).standard_normal((box.n, 3))
        ve = edge_average(box, v)
        assert ve.shape == (box.n_edges, 3)


class TestDiffusion:
    def test_scalar_coefficient(self, box):
        g = diffusion_coefficients(box, 2.0)
        assert np.allclose(g, 2.0 * box.edge_area / box.edge_length)

    def test_nodal_coefficient_uses_edge_average(self, box):
        k = np.full(box.n, 3.0)
        g = diffusion_coefficients(box, k)
        assert np.allclose(g, 3.0 * box.edge_area / box.edge_length)

    def test_pairs_layout_is_laplacian(self):
        g = np.array([2.0])
        p = diffusion_pairs(g)
        assert p.tolist() == [[2.0, -2.0, -2.0, 2.0]]

    def test_laplacian_annihilates_constants(self, turbine):
        """The assembled diffusion operator maps constants to zero."""
        g = diffusion_coefficients(turbine, 1.0)
        ones = np.ones(turbine.n)
        # row sums of the edge-pair operator = divergence of zero flux.
        flux = g * (ones[turbine.edges[:, 1]] - ones[turbine.edges[:, 0]])
        div = edge_divergence(turbine, flux)
        assert np.abs(div).max() < 1e-12


class TestUpwind:
    @settings(max_examples=30, deadline=None)
    @given(m=st.floats(-100, 100))
    def test_property_row_sums_cancel(self, m):
        """Advection of a constant field is a pure divergence: the 2x2
        block's rows sum to +-mdot."""
        c = upwind_advection_coefficients(np.array([m]))[0]
        assert c[0] + c[1] == pytest.approx(m)
        assert c[2] + c[3] == pytest.approx(-m)

    def test_upwind_picks_upstream_value(self):
        c = upwind_advection_coefficients(np.array([5.0, -5.0]))
        # Positive flux: row a depends only on u_a.
        assert c[0, 0] == 5.0 and c[0, 1] == 0.0
        # Negative flux: row a depends only on u_b.
        assert c[1, 0] == 0.0 and c[1, 1] == -5.0


class TestGradients:
    def test_lsq_gradient_exact_for_linear(self, turbine):
        f = 3.0 - 2.0 * turbine.coords[:, 0] + 0.7 * turbine.coords[:, 2]
        g = least_squares_gradient(turbine, f)
        active = turbine.statuses != NodeStatus.HOLE
        assert np.allclose(
            g[active], [[-2.0, 0.0, 0.7]], atol=1e-8
        )

    def test_lsq_gradient_zero_for_constant(self, turbine):
        g = least_squares_gradient(turbine, np.full(turbine.n, 7.0))
        assert np.abs(g).max() < 1e-10

    def test_green_gauss_interior_accuracy(self, box):
        f = 2.0 * box.coords[:, 1]
        g = green_gauss_gradient(box, f)
        interior = np.setdiff1d(
            np.arange(box.n), box.meshes[0].all_boundary_nodes()
        )
        assert np.allclose(g[interior, 1], 2.0, atol=0.3)

    def test_lsq_beats_green_gauss_on_blades(self, turbine):
        """On stretched curvilinear cells LSQ stays exact; GG does not."""
        f = turbine.coords[:, 0]
        g_lsq = least_squares_gradient(turbine, f)
        g_gg = green_gauss_gradient(turbine, f)
        nbg = turbine.meshes[0].n_nodes
        err_lsq = np.abs(g_lsq[nbg:, 0] - 1.0).max()
        err_gg = np.abs(g_gg[nbg:, 0] - 1.0).max()
        assert err_lsq < 1e-8
        assert err_gg > err_lsq


class TestMassFlux:
    def test_uniform_flow_flux_matches_area_projection(self, box):
        u = np.tile([2.0, 0.0, 0.0], (box.n, 1))
        mdot = mass_flux(box, u, 1.0)
        S_x = box.edge_area * box.edge_dir[:, 0]
        assert np.allclose(mdot, 2.0 * S_x)

    def test_rhie_chow_scalar_and_array_tau_agree(self, box):
        rng = np.random.default_rng(0)
        u = rng.standard_normal((box.n, 3))
        p = rng.standard_normal(box.n)
        m_s = mass_flux(box, u, 1.0, pressure=p, tau=0.3)
        m_a = mass_flux(
            box, u, 1.0, pressure=p, tau=np.full(box.n_edges, 0.3)
        )
        assert np.allclose(m_s, m_a)

    def test_rhie_chow_damps_checkerboard(self, box):
        """An oscillatory pressure mode produces a corrective flux."""
        # Checkerboard-ish pressure from parity of lattice indices.
        p = np.sin(box.coords[:, 0] * 50.0)
        u = np.zeros((box.n, 3))
        m0 = mass_flux(box, u, 1.0)
        m1 = mass_flux(box, u, 1.0, pressure=p, tau=0.1)
        assert np.abs(m1 - m0).max() > 0.0

    def test_ale_flux_zero_for_co_moving_fluid(self, turbine):
        """Fluid moving with the grid has no advective flux."""
        u = turbine.grid_velocity.copy()
        mdot = mass_flux(turbine, u, 1.0)
        scale = max(np.abs(turbine.grid_velocity).max(), 1.0)
        assert np.abs(mdot).max() < 1e-9 * scale * turbine.edge_area.max()


class TestDivergenceClosure:
    def test_uniform_flow_globally_conservative(self, box):
        """Total divergence (with boundary faces) telescopes to zero."""
        u = np.tile([8.0, 1.0, -2.0], (box.n, 1))
        div = divergence_of_velocity(box, u, 1.2)
        scale = np.abs(
            boundary_mass_flux(box, u, 1.2)
        ).max()
        assert abs(div.sum()) < 1e-9 * scale * box.n
        # And node-wise zero for a constant field on the rectilinear box.
        assert np.abs(div).max() < 1e-9 * scale

    def test_boundary_faces_close_the_dual_surfaces(self, box):
        """Sum of edge area vectors +- boundary faces = 0 per node
        (discrete divergence theorem for constant fields)."""
        net = np.zeros((box.n, 3))
        S = box.edge_area[:, None] * box.edge_dir
        np.add.at(net, box.edges[:, 0], S)
        np.add.at(net, box.edges[:, 1], -S)
        np.add.at(
            net, box.boundary_face_nodes, box.boundary_face_vectors
        )
        assert np.abs(net).max() < 1e-9 * box.edge_area.max()

    def test_linear_velocity_divergence(self, box):
        """div(u) for u = (x, 0, 0) integrates to the cell volumes."""
        u = np.stack(
            [box.coords[:, 0], np.zeros(box.n), np.zeros(box.n)], axis=1
        )
        div = divergence_of_velocity(box, u, 1.0)
        interior = np.setdiff1d(
            np.arange(box.n), box.meshes[0].all_boundary_nodes()
        )
        ratio = div[interior] / box.node_volume[interior]
        assert np.allclose(ratio, 1.0, atol=1e-9)
