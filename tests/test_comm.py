"""Tests for the simulated communication substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import (
    CommCorruptionError,
    CommDeadlockError,
    CommRetriesExhaustedError,
    MailboxLeakError,
    MessageEnvelope,
    SimWorld,
    build_exchange_pattern,
    payload_checksum,
)
from repro.comm.exchange import (
    exchange_halo,
    exchange_halo_begin,
    exchange_halo_finish,
    owner_of,
)
from repro.comm.traffic import TrafficLog
from repro.resilience import FaultInjector, FaultSpec


class TestTrafficLog:
    def test_message_counts_and_bytes(self):
        log = TrafficLog()
        log.record_message(0, 1, 100, "a")
        log.record_message(1, 0, 50, "a")
        log.record_message(0, 2, 10, "b")
        assert log.message_count() == 3
        assert log.message_count("a") == 2
        assert log.message_bytes("a") == 150
        assert log.message_bytes() == 160

    def test_max_rank_statistics(self):
        log = TrafficLog()
        log.record_message(0, 1, 100, "x")
        log.record_message(0, 2, 100, "x")
        log.record_message(1, 0, 500, "x")
        assert log.max_rank_messages("x") == 2
        assert log.max_rank_bytes("x") == 500

    def test_collectives(self):
        log = TrafficLog()
        log.record_collective("allreduce", 8, 8, "solve")
        assert log.collective_count("solve") == 1
        assert log.collective_bytes("solve") == 8
        assert log.collective_count("other") == 0

    def test_phases_and_clear(self):
        log = TrafficLog()
        log.record_message(0, 1, 1, "p1")
        log.record_collective("barrier", 2, 0, "p2")
        assert log.phases() == ["p1", "p2"]
        log.clear()
        assert log.message_count() == 0
        assert log.phases() == []

    def test_bulk_record_consistent_global_count(self):
        """Bulk record_messages counts like `count` separate messages.

        Regression: message_count(None) used to return len(messages),
        disagreeing with the per-phase aggregates and the
        comm.total_messages gauge after a bulk record.
        """
        log = TrafficLog()
        log.record_messages(0, 1, count=5, nbytes=500, phase="setup")
        log.record_message(0, 2, 10, "solve")
        assert log.message_count() == 6
        assert log.message_count("setup") == 5
        assert log.message_count() == sum(
            log.message_count(ph) for ph in log.phases()
        )
        # The detailed list keeps one summary record per bulk call.
        assert len(log.messages) == 2
        assert log.max_rank_messages("setup") == 5

    def test_bulk_record_matches_total_messages_gauge(self):
        from repro.obs.metrics import MetricsRegistry

        log = TrafficLog()
        log.record_messages(1, 0, count=7, nbytes=70, phase="graph")
        log.record_message(1, 2, 8, "graph")
        reg = MetricsRegistry()
        log.publish_metrics(reg)
        assert reg.gauge("comm.total_messages").value == log.message_count()
        assert log.message_count() == 8


class TestSimWorld:
    def test_world_size_validation(self):
        with pytest.raises(ValueError):
            SimWorld(0)

    def test_phase_scope_nesting(self):
        w = SimWorld(2)
        assert w.phase == "default"
        with w.phase_scope("outer"):
            assert w.phase == "outer"
            with w.phase_scope("inner"):
                assert w.phase == "inner"
            assert w.phase == "outer"
        assert w.phase == "default"

    def test_send_recv_roundtrip(self):
        w = SimWorld(2)
        c0, c1 = w.comms()
        payload = np.arange(5.0)
        c0.send(1, payload)
        got = c1.recv(0)
        assert np.array_equal(got, payload)
        assert w.traffic.message_count() == 1
        assert w.traffic.message_bytes() == payload.nbytes

    def test_send_to_self_rejected(self):
        w = SimWorld(2)
        with pytest.raises(ValueError):
            w.comm(0).send(0, np.zeros(1))

    def test_recv_without_send_raises(self):
        w = SimWorld(2)
        with pytest.raises(RuntimeError):
            w.comm(1).recv(0)

    def test_fifo_message_order(self):
        w = SimWorld(2)
        w.comm(0).send(1, 1)
        w.comm(0).send(1, 2)
        assert w.comm(1).recv(0) == 1
        assert w.comm(1).recv(0) == 2

    def test_alltoallv_delivery(self):
        w = SimWorld(3)
        send = [[None] * 3 for _ in range(3)]
        send[0][1] = np.array([1.0])
        send[0][2] = np.array([2.0])
        send[2][0] = np.array([3.0])
        recv = w.alltoallv(send)
        assert recv[1][0][0] == 1.0
        assert recv[2][0][0] == 2.0
        assert recv[0][0][0] == 3.0
        assert w.traffic.message_count() == 3

    def test_alltoallv_skips_empty_arrays(self):
        w = SimWorld(2)
        send = [[None, np.zeros(0)], [None, None]]
        recv = w.alltoallv(send)
        assert recv == [[], []]
        assert w.traffic.message_count() == 0

    def test_alltoallv_self_payload_is_local_not_traffic(self):
        """Diagonal src == dst payloads are delivered but not recorded.

        A rank keeping its own data is a local copy, not a network
        message (SimComm.send rejects self-sends for the same reason), so
        per-phase counts and busiest-rank statistics must not include it.
        """
        w = SimWorld(2)
        send = [
            [np.array([1.0]), np.array([2.0])],
            [None, np.array([3.0])],
        ]
        with w.phase_scope("exchange"):
            recv = w.alltoallv(send)
        # Delivery includes the diagonals, in sender-rank order.
        assert recv[0][0][0] == 1.0
        assert [p[0] for p in recv[1]] == [2.0, 3.0]
        # Only the off-diagonal 0 -> 1 message hits the log.
        assert w.traffic.message_count() == 1
        assert w.traffic.message_count("exchange") == 1
        assert w.traffic.max_rank_messages("exchange") == 1
        assert w.traffic.max_rank_bytes("exchange") == 8

    def test_allreduce_and_allgather(self):
        w = SimWorld(4)
        total = w.allreduce([1.0, 2.0, 3.0, 4.0])
        assert total == 10.0
        gathered = w.allgather([10, 20, 30, 40])
        assert gathered == [10, 20, 30, 40]
        assert w.traffic.collective_count() == 2

    def test_pending_messages(self):
        w = SimWorld(2)
        assert w.pending_messages() == 0
        w.comm(0).send(1, 5)
        assert w.pending_messages() == 1
        w.comm(1).recv(0)
        assert w.pending_messages() == 0


class TestExchangePattern:
    def test_owner_of(self):
        offs = np.array([0, 3, 6, 10])
        assert list(owner_of(np.array([0, 2, 3, 5, 6, 9]), offs)) == [
            0,
            0,
            1,
            1,
            2,
            2,
        ]

    def test_basic_pattern_and_halo(self):
        offs = np.array([0, 3, 6])
        pat = build_exchange_pattern(
            offs, [np.array([4]), np.array([0, 2])]
        )
        assert pat.per_rank[0].n_ext == 1
        assert pat.per_rank[1].n_ext == 2
        assert pat.total_messages() == 2
        w = SimWorld(2)
        ext = exchange_halo(
            w, pat, [np.array([1.0, 2.0, 3.0]), np.array([4.0, 5.0, 6.0])]
        )
        assert ext[0].tolist() == [5.0]
        assert ext[1].tolist() == [1.0, 3.0]

    def test_unsorted_ext_ids_rejected(self):
        offs = np.array([0, 3, 6])
        with pytest.raises(ValueError):
            build_exchange_pattern(offs, [np.array([5, 4]), np.array([])])

    def test_owned_ids_in_ext_rejected(self):
        offs = np.array([0, 3, 6])
        with pytest.raises(ValueError):
            build_exchange_pattern(offs, [np.array([1]), np.array([])])

    @settings(max_examples=25, deadline=None)
    @given(
        nranks=st.integers(2, 5),
        per_rank=st.integers(2, 8),
        seed=st.integers(0, 1000),
    )
    def test_halo_exchange_matches_global_gather(
        self, nranks, per_rank, seed
    ):
        """Property: exchanged external values equal the owners' values."""
        rng = np.random.default_rng(seed)
        n = nranks * per_rank
        offs = np.arange(nranks + 1) * per_rank
        x = rng.standard_normal(n)
        ext_ids = []
        for r in range(nranks):
            owned = np.arange(offs[r], offs[r + 1])
            others = np.setdiff1d(np.arange(n), owned)
            take = rng.choice(
                others, size=min(3, others.size), replace=False
            )
            ext_ids.append(np.unique(take))
        pat = build_exchange_pattern(offs, ext_ids)
        w = SimWorld(nranks)
        owned = [x[offs[r] : offs[r + 1]] for r in range(nranks)]
        ext = exchange_halo(w, pat, owned)
        for r in range(nranks):
            assert np.allclose(ext[r], x[ext_ids[r]])


def two_rank_halo():
    """The basic 2-rank pattern/owned fixture used by the retry tests."""
    pat = build_exchange_pattern(
        np.array([0, 3, 6]), [np.array([4]), np.array([0, 2])]
    )
    owned = [np.array([1.0, 2.0, 3.0]), np.array([4.0, 5.0, 6.0])]
    return pat, owned


class TestEnvelopeTransport:
    def test_payload_checksum_detects_bit_flip(self):
        a = np.arange(8.0)
        before = payload_checksum(a)
        a[3] += 1e-12
        assert payload_checksum(a) != before

    def test_payload_checksum_covers_tuple_payloads(self):
        idx = np.arange(3)
        vals = np.ones(3)
        before = payload_checksum((idx, idx, vals))
        vals[1] = 2.0
        assert payload_checksum((idx, idx, vals)) != before

    def test_envelope_stamped_and_verified(self):
        payload = np.arange(4.0)
        env = MessageEnvelope(seq=0, src=0, dst=1, phase="p", payload=payload)
        assert env.checksum == payload_checksum(payload)
        assert env.verify()
        env.payload = payload + 1.0  # corrupted in flight
        assert not env.verify()

    def test_per_channel_sequence_numbers(self):
        w = SimWorld(3)
        w.comm(0).send(1, 1.0)
        w.comm(0).send(1, 2.0)
        w.comm(2).send(1, 3.0)
        assert [e.seq for e in w._mailboxes[(0, 1)]] == [0, 1]
        assert [e.seq for e in w._mailboxes[(2, 1)]] == [0]
        for src in (0, 0, 2):
            w.comm(1).recv(src)

    def test_deadlock_error_carries_pending_snapshot(self):
        """Regression: a hung recv names the phase and every in-flight
        message, not just 'no message posted'."""
        w = SimWorld(3)
        with w.phase_scope("assembly/scatter"):
            w.comm(0).send(1, np.ones(2))
        with w.phase_scope("halo/x"):
            with pytest.raises(CommDeadlockError) as ei:
                w.comm(1).recv(2)
        err = ei.value
        assert err.phase == "halo/x"
        assert (err.src, err.dst) == (2, 1)
        assert err.pending == [
            {
                "src": 0,
                "dst": 1,
                "phase": "assembly/scatter",
                "count": 1,
                "seqs": [0],
            }
        ]
        d = err.to_dict()
        assert d["type"] == "CommDeadlockError"
        assert d["pending"][0]["phase"] == "assembly/scatter"

    def test_duplicate_discarded_by_sequence_number(self):
        w = SimWorld(2)
        w.fault_injector = FaultInjector(
            (FaultSpec("message_duplicate", at=0),)
        )
        payload = np.arange(3.0)
        w.comm(0).send(1, payload)
        assert w.pending_messages() == 2  # both copies hit the wire
        assert np.array_equal(w.comm(1).recv(0), payload)
        # The stale copy is drained, not delivered (and not leaked).
        assert w.pending_messages() == 0
        assert (
            w.metrics.counter_total("comm.duplicates_discarded") == 1
        )
        # The duplicate transmitted twice, so traffic records two sends.
        assert w.traffic.message_count() == 2

    def test_corruption_detected_on_receive(self):
        w = SimWorld(2)
        w.fault_injector = FaultInjector(
            (FaultSpec("message_corrupt", at=0),)
        )
        with w.phase_scope("halo/x"):
            w.comm(0).send(1, np.ones(4))
            with pytest.raises(CommCorruptionError) as ei:
                w.comm(1).recv(0)
        err = ei.value
        assert (err.src, err.dst, err.seq) == (0, 1, 0)
        assert err.expected_checksum != err.actual_checksum
        assert w.metrics.counter_total("comm.corrupt_detected") == 1

    def test_drop_leaves_channel_empty(self):
        w = SimWorld(2)
        w.fault_injector = FaultInjector((FaultSpec("message_drop", at=0),))
        w.comm(0).send(1, np.ones(4))
        assert w.pending_messages() == 0
        # The transmission was still recorded: it was lost on the wire,
        # not at the source.
        assert w.traffic.message_count() == 1
        with pytest.raises(CommDeadlockError):
            w.comm(1).recv(0)


class TestHaloRetryProtocol:
    def test_dropped_message_is_retried_transparently(self):
        pat, owned = two_rank_halo()
        w = SimWorld(2)
        w.fault_injector = FaultInjector((FaultSpec("message_drop", at=0),))
        ext = exchange_halo(w, pat, owned)
        assert ext[0].tolist() == [5.0]
        assert ext[1].tolist() == [1.0, 3.0]
        assert w.metrics.counter_total("comm.retries") == 1
        assert w.metrics.counter_total("comm.drops_detected") == 1
        assert w.pending_messages() == 0

    def test_corrupted_message_is_retried_transparently(self):
        pat, owned = two_rank_halo()
        w = SimWorld(2)
        w.fault_injector = FaultInjector(
            (FaultSpec("message_corrupt", at=0),)
        )
        ext = exchange_halo(w, pat, owned)
        assert ext[1].tolist() == [1.0, 3.0]
        assert w.metrics.counter_total("comm.retries") == 1
        assert w.metrics.counter_total("comm.corrupt_detected") == 1

    def test_duplicate_is_transparent_to_halo(self):
        pat, owned = two_rank_halo()
        w = SimWorld(2)
        w.fault_injector = FaultInjector(
            (FaultSpec("message_duplicate", at=0),)
        )
        ext = exchange_halo(w, pat, owned)
        assert ext[0].tolist() == [5.0]
        assert ext[1].tolist() == [1.0, 3.0]
        assert w.metrics.counter_total("comm.duplicates_discarded") == 1
        assert w.pending_messages() == 0

    def test_faulted_halo_matches_nominal_bitwise(self):
        pat, owned = two_rank_halo()
        nominal = exchange_halo(SimWorld(2), pat, owned)
        w = SimWorld(2)
        w.fault_injector = FaultInjector(
            (
                FaultSpec("message_drop", at=0),
                FaultSpec("message_corrupt", at=1),
            )
        )
        recovered = exchange_halo(w, pat, owned)
        for a, b in zip(nominal, recovered):
            assert a.tobytes() == b.tobytes()

    def test_retry_budget_exhaustion_raises_structured_error(self):
        pat, owned = two_rank_halo()
        w = SimWorld(2)
        w.comm_max_retries = 0
        w.fault_injector = FaultInjector((FaultSpec("message_drop", at=0),))
        with w.phase_scope("halo/x"):
            with pytest.raises(CommRetriesExhaustedError) as ei:
                exchange_halo(w, pat, owned)
        err = ei.value
        assert (err.src, err.dst) == (0, 1)
        assert err.attempts == 1
        assert err.last_error == "dropped"
        assert err.phase == "halo/x"

    def test_shape_mismatch_consumes_retry_budget(self):
        """A wrong-length payload is a corruption like any other: it is
        re-requested within the retry budget instead of escalating
        past it (the real message is next on the channel)."""
        pat, owned = two_rank_halo()
        w = SimWorld(2)
        # Out-of-band junk on the (0, 1) channel reaches the halo
        # receive first: checksum-valid but the wrong shape.
        w._post(0, 1, np.zeros(7))
        ext = exchange_halo(w, pat, owned)
        assert ext[1].tolist() == [1.0, 3.0]
        assert w.metrics.counter_total("comm.retries") == 1
        assert w.metrics.counter_total("comm.corrupt_detected") == 1
        w.purge_pending()

    def test_shape_mismatch_exhausts_budget_when_retries_disabled(self):
        pat, owned = two_rank_halo()
        w = SimWorld(2)
        w.comm_max_retries = 0
        w._post(0, 1, np.zeros(7))
        with pytest.raises(CommRetriesExhaustedError) as ei:
            exchange_halo(w, pat, owned)
        assert ei.value.last_error == "truncated"
        w.purge_pending()


class TestLeakDetection:
    def test_barrier_passes_when_all_messages_consumed(self):
        w = SimWorld(2)
        w.comm(0).send(1, 1.0)
        w.comm(1).recv(0)
        w.barrier()

    def test_barrier_raises_on_leaked_message(self):
        w = SimWorld(2)
        w.comm(0).send(1, 1.0)
        with pytest.raises(MailboxLeakError):
            w.barrier()

    def test_leak_report_carries_phase_label(self):
        """Regression: a leaked mailbox is reported with the phase its
        oldest undelivered message was posted under."""
        w = SimWorld(3)
        with w.phase_scope("assembly/scatter"):
            w.comm(0).send(2, np.ones(2))
            w.comm(0).send(2, np.ones(2))
        with pytest.raises(MailboxLeakError) as ei:
            w.assert_no_pending(context="end-of-phase")
        err = ei.value
        assert err.pending == [
            {
                "src": 0,
                "dst": 2,
                "phase": "assembly/scatter",
                "count": 2,
                "seqs": [0, 1],
            }
        ]
        assert "assembly/scatter" in str(err)
        assert "end-of-phase" in str(err)

    def test_leak_check_opt_out(self):
        w = SimWorld(2)
        w.leak_check = False
        w.comm(0).send(1, 1.0)
        w.barrier()  # no leak check: legacy permissive behavior
        assert w.pending_messages() == 1

    def test_no_leaks_in_halo_workload(self):
        rng = np.random.default_rng(3)
        pat, _ = two_rank_halo()
        w = SimWorld(2)
        for round_ in range(4):
            owned = [rng.standard_normal(3) for _ in range(2)]
            with w.phase_scope(f"halo/round{round_}"):
                exchange_halo(w, pat, owned)
            assert w.pending_messages() == 0
            w.barrier()

    def test_no_leaks_in_amg_setup_workload(self):
        from scipy import sparse

        from repro.amg import AMGHierarchy, AMGPreconditioner
        from repro.linalg import ParCSRMatrix, ParVector

        n = 32
        A = sparse.diags(
            [-1.0, 2.0, -1.0], [-1, 0, 1], (n, n), format="csr"
        )
        w = SimWorld(4)
        offs = np.linspace(0, n, 5).astype(np.int64)
        Ap = ParCSRMatrix(w, A, offs)
        with w.phase_scope("amg/setup"):
            hierarchy = AMGHierarchy(Ap)
        w.barrier()
        pre = AMGPreconditioner(hierarchy)
        with w.phase_scope("amg/cycle"):
            pre.apply(ParVector(w, offs, np.ones(n)))
        w.barrier()
        assert w.pending_messages() == 0

    def test_no_leaks_across_simulation_step(self):
        """Assembly + halo + AMG workloads of a full step leave no
        message in flight: the end-of-run barrier's leak check passes."""
        from repro.core.simulation import NaluWindSimulation

        sim = NaluWindSimulation("turbine_tiny")
        assert sim.world.leak_check
        sim.run(1)
        assert sim.world.pending_messages() == 0
        sim.world.barrier()


class TestSplitHaloGuard:
    """The runtime twin of the RL007 static rule: a second
    exchange_halo_begin on a pattern whose first round is still in
    flight would double-post every send, so it raises instead."""

    def _fixture(self):
        offs = np.array([0, 3, 6])
        pat = build_exchange_pattern(offs, [np.array([4]), np.array([0, 2])])
        owned = [np.array([1.0, 2.0, 3.0]), np.array([4.0, 5.0, 6.0])]
        return SimWorld(2), pat, owned

    def test_double_begin_raises_and_counts(self):
        w, pat, owned = self._fixture()
        h = exchange_halo_begin(w, pat, owned)
        with pytest.raises(RuntimeError, match="twice on the same pattern"):
            exchange_halo_begin(w, pat, owned)
        assert w.metrics.counter_total("comm.double_begin") == 1
        # The first round is still intact and drains normally.
        ext = exchange_halo_finish(w, h)
        assert ext[0].tolist() == [5.0]
        assert w.pending_messages() == 0

    def test_begin_finish_begin_is_legal(self):
        w, pat, owned = self._fixture()
        for _ in range(3):
            ext = exchange_halo_finish(
                w, exchange_halo_begin(w, pat, owned)
            )
            assert ext[1].tolist() == [1.0, 3.0]
        assert w.metrics.counter_total("comm.double_begin") == 0

    def test_purge_pending_clears_inflight_set(self):
        w, pat, owned = self._fixture()
        exchange_halo_begin(w, pat, owned)
        # Recovery path: the ladder abandons the round wholesale.
        w.purge_pending()
        h = exchange_halo_begin(w, pat, owned)
        ext = exchange_halo_finish(w, h)
        assert ext[0].tolist() == [5.0]

    def test_distinct_patterns_may_overlap(self):
        w, pat, owned = self._fixture()
        offs = np.array([0, 3, 6])
        pat2 = build_exchange_pattern(
            offs, [np.array([4]), np.array([0, 2])]
        )
        h1 = exchange_halo_begin(w, pat, owned)
        h2 = exchange_halo_begin(w, pat2, owned)
        assert exchange_halo_finish(w, h2)[0].tolist() == [5.0]
        assert exchange_halo_finish(w, h1)[0].tolist() == [5.0]
