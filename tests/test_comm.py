"""Tests for the simulated communication substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import SimWorld, build_exchange_pattern
from repro.comm.exchange import exchange_halo, owner_of
from repro.comm.traffic import TrafficLog


class TestTrafficLog:
    def test_message_counts_and_bytes(self):
        log = TrafficLog()
        log.record_message(0, 1, 100, "a")
        log.record_message(1, 0, 50, "a")
        log.record_message(0, 2, 10, "b")
        assert log.message_count() == 3
        assert log.message_count("a") == 2
        assert log.message_bytes("a") == 150
        assert log.message_bytes() == 160

    def test_max_rank_statistics(self):
        log = TrafficLog()
        log.record_message(0, 1, 100, "x")
        log.record_message(0, 2, 100, "x")
        log.record_message(1, 0, 500, "x")
        assert log.max_rank_messages("x") == 2
        assert log.max_rank_bytes("x") == 500

    def test_collectives(self):
        log = TrafficLog()
        log.record_collective("allreduce", 8, 8, "solve")
        assert log.collective_count("solve") == 1
        assert log.collective_bytes("solve") == 8
        assert log.collective_count("other") == 0

    def test_phases_and_clear(self):
        log = TrafficLog()
        log.record_message(0, 1, 1, "p1")
        log.record_collective("barrier", 2, 0, "p2")
        assert log.phases() == ["p1", "p2"]
        log.clear()
        assert log.message_count() == 0
        assert log.phases() == []

    def test_bulk_record_consistent_global_count(self):
        """Bulk record_messages counts like `count` separate messages.

        Regression: message_count(None) used to return len(messages),
        disagreeing with the per-phase aggregates and the
        comm.total_messages gauge after a bulk record.
        """
        log = TrafficLog()
        log.record_messages(0, 1, count=5, nbytes=500, phase="setup")
        log.record_message(0, 2, 10, "solve")
        assert log.message_count() == 6
        assert log.message_count("setup") == 5
        assert log.message_count() == sum(
            log.message_count(ph) for ph in log.phases()
        )
        # The detailed list keeps one summary record per bulk call.
        assert len(log.messages) == 2
        assert log.max_rank_messages("setup") == 5

    def test_bulk_record_matches_total_messages_gauge(self):
        from repro.obs.metrics import MetricsRegistry

        log = TrafficLog()
        log.record_messages(1, 0, count=7, nbytes=70, phase="graph")
        log.record_message(1, 2, 8, "graph")
        reg = MetricsRegistry()
        log.publish_metrics(reg)
        assert reg.gauge("comm.total_messages").value == log.message_count()
        assert log.message_count() == 8


class TestSimWorld:
    def test_world_size_validation(self):
        with pytest.raises(ValueError):
            SimWorld(0)

    def test_phase_scope_nesting(self):
        w = SimWorld(2)
        assert w.phase == "default"
        with w.phase_scope("outer"):
            assert w.phase == "outer"
            with w.phase_scope("inner"):
                assert w.phase == "inner"
            assert w.phase == "outer"
        assert w.phase == "default"

    def test_send_recv_roundtrip(self):
        w = SimWorld(2)
        c0, c1 = w.comms()
        payload = np.arange(5.0)
        c0.send(1, payload)
        got = c1.recv(0)
        assert np.array_equal(got, payload)
        assert w.traffic.message_count() == 1
        assert w.traffic.message_bytes() == payload.nbytes

    def test_send_to_self_rejected(self):
        w = SimWorld(2)
        with pytest.raises(ValueError):
            w.comm(0).send(0, np.zeros(1))

    def test_recv_without_send_raises(self):
        w = SimWorld(2)
        with pytest.raises(RuntimeError):
            w.comm(1).recv(0)

    def test_fifo_message_order(self):
        w = SimWorld(2)
        w.comm(0).send(1, 1)
        w.comm(0).send(1, 2)
        assert w.comm(1).recv(0) == 1
        assert w.comm(1).recv(0) == 2

    def test_alltoallv_delivery(self):
        w = SimWorld(3)
        send = [[None] * 3 for _ in range(3)]
        send[0][1] = np.array([1.0])
        send[0][2] = np.array([2.0])
        send[2][0] = np.array([3.0])
        recv = w.alltoallv(send)
        assert recv[1][0][0] == 1.0
        assert recv[2][0][0] == 2.0
        assert recv[0][0][0] == 3.0
        assert w.traffic.message_count() == 3

    def test_alltoallv_skips_empty_arrays(self):
        w = SimWorld(2)
        send = [[None, np.zeros(0)], [None, None]]
        recv = w.alltoallv(send)
        assert recv == [[], []]
        assert w.traffic.message_count() == 0

    def test_alltoallv_self_payload_is_local_not_traffic(self):
        """Diagonal src == dst payloads are delivered but not recorded.

        A rank keeping its own data is a local copy, not a network
        message (SimComm.send rejects self-sends for the same reason), so
        per-phase counts and busiest-rank statistics must not include it.
        """
        w = SimWorld(2)
        send = [
            [np.array([1.0]), np.array([2.0])],
            [None, np.array([3.0])],
        ]
        with w.phase_scope("exchange"):
            recv = w.alltoallv(send)
        # Delivery includes the diagonals, in sender-rank order.
        assert recv[0][0][0] == 1.0
        assert [p[0] for p in recv[1]] == [2.0, 3.0]
        # Only the off-diagonal 0 -> 1 message hits the log.
        assert w.traffic.message_count() == 1
        assert w.traffic.message_count("exchange") == 1
        assert w.traffic.max_rank_messages("exchange") == 1
        assert w.traffic.max_rank_bytes("exchange") == 8

    def test_allreduce_and_allgather(self):
        w = SimWorld(4)
        total = w.allreduce([1.0, 2.0, 3.0, 4.0])
        assert total == 10.0
        gathered = w.allgather([10, 20, 30, 40])
        assert gathered == [10, 20, 30, 40]
        assert w.traffic.collective_count() == 2

    def test_pending_messages(self):
        w = SimWorld(2)
        assert w.pending_messages() == 0
        w.comm(0).send(1, 5)
        assert w.pending_messages() == 1
        w.comm(1).recv(0)
        assert w.pending_messages() == 0


class TestExchangePattern:
    def test_owner_of(self):
        offs = np.array([0, 3, 6, 10])
        assert list(owner_of(np.array([0, 2, 3, 5, 6, 9]), offs)) == [
            0,
            0,
            1,
            1,
            2,
            2,
        ]

    def test_basic_pattern_and_halo(self):
        offs = np.array([0, 3, 6])
        pat = build_exchange_pattern(
            offs, [np.array([4]), np.array([0, 2])]
        )
        assert pat.per_rank[0].n_ext == 1
        assert pat.per_rank[1].n_ext == 2
        assert pat.total_messages() == 2
        w = SimWorld(2)
        ext = exchange_halo(
            w, pat, [np.array([1.0, 2.0, 3.0]), np.array([4.0, 5.0, 6.0])]
        )
        assert ext[0].tolist() == [5.0]
        assert ext[1].tolist() == [1.0, 3.0]

    def test_unsorted_ext_ids_rejected(self):
        offs = np.array([0, 3, 6])
        with pytest.raises(ValueError):
            build_exchange_pattern(offs, [np.array([5, 4]), np.array([])])

    def test_owned_ids_in_ext_rejected(self):
        offs = np.array([0, 3, 6])
        with pytest.raises(ValueError):
            build_exchange_pattern(offs, [np.array([1]), np.array([])])

    @settings(max_examples=25, deadline=None)
    @given(
        nranks=st.integers(2, 5),
        per_rank=st.integers(2, 8),
        seed=st.integers(0, 1000),
    )
    def test_halo_exchange_matches_global_gather(
        self, nranks, per_rank, seed
    ):
        """Property: exchanged external values equal the owners' values."""
        rng = np.random.default_rng(seed)
        n = nranks * per_rank
        offs = np.arange(nranks + 1) * per_rank
        x = rng.standard_normal(n)
        ext_ids = []
        for r in range(nranks):
            owned = np.arange(offs[r], offs[r + 1])
            others = np.setdiff1d(np.arange(n), owned)
            take = rng.choice(
                others, size=min(3, others.size), replace=False
            )
            ext_ids.append(np.unique(take))
        pat = build_exchange_pattern(offs, ext_ids)
        w = SimWorld(nranks)
        owned = [x[offs[r] : offs[r + 1]] for r in range(nranks)]
        ext = exchange_halo(w, pat, owned)
        for r in range(nranks):
            assert np.allclose(ext[r], x[ext_ids[r]])
