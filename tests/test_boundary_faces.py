"""Tests for boundary dual-face geometry and the multi-RHS momentum path."""

import numpy as np
import pytest

from repro.mesh import HexMesh


def uniform_box(shape=(5, 4, 3), extent=(1.0, 1.0, 1.0)):
    axes = [np.linspace(0, extent[a], shape[a]) for a in range(3)]
    X = np.stack(np.meshgrid(*axes, indexing="ij"), axis=-1)
    return HexMesh.from_block("box", X)


class TestBoundaryFaceVectors:
    def test_total_side_area(self):
        m = uniform_box((5, 4, 3), (2.0, 3.0, 4.0))
        ids, vecs = m.boundary_face_vectors(0, hi=True)
        # xhi side area = 3 * 4 = 12, outward +x.
        assert vecs[:, 0].sum() == pytest.approx(12.0)
        assert np.allclose(vecs[:, 1:], 0.0, atol=1e-12)

    def test_lo_side_points_outward_negative(self):
        m = uniform_box()
        _ids, vecs = m.boundary_face_vectors(1, hi=False)
        assert np.all(vecs[:, 1] < 0)

    def test_rim_halving(self):
        m = uniform_box((3, 3, 3))
        ids, vecs = m.boundary_face_vectors(2, hi=True)
        mags = np.abs(vecs[:, 2])
        # Corner faces are quarter-size relative to the face center.
        assert mags.max() == pytest.approx(4 * mags.min())

    def test_periodic_axis_rejected(self):
        u = np.linspace(0, 2 * np.pi, 8, endpoint=False)
        r = np.linspace(1.0, 2.0, 4)
        z = np.linspace(0.0, 1.0, 3)
        U, R, Z = np.meshgrid(u, r, z, indexing="ij")
        X = np.stack([R * np.cos(U), R * np.sin(U), Z], axis=-1)
        m = HexMesh.from_block("ring", X, periodic=(True, False, False))
        with pytest.raises(ValueError):
            m.boundary_face_vectors(0, hi=True)

    def test_closed_surface_sums_to_zero(self):
        """All six sides' outward areas cancel (divergence theorem)."""
        m = uniform_box((4, 5, 6), (1.0, 2.0, 3.0))
        total = np.zeros(3)
        for axis in range(3):
            for hi in (False, True):
                _ids, vecs = m.boundary_face_vectors(axis, hi)
                total += vecs.sum(axis=0)
        assert np.allclose(total, 0.0, atol=1e-12)


class TestMomentumMultiRHS:
    def test_component_rhs_matches_full_assembly(self):
        """The RHS-only path (reset_rhs + fill_rhs + Algorithm 2) must give
        the same vector as a full re-assembly for that component."""
        from repro import NaluWindSimulation, SimulationConfig
        from repro.assembly.global_assembly import assemble_global_vector
        from repro.core.operators import boundary_mass_flux, mass_flux

        cfg = SimulationConfig(nranks=3)
        sim = NaluWindSimulation("turbine_tiny", cfg)
        sim.step()
        comp = sim.comp
        mdot = mass_flux(comp, sim.velocity, cfg.density)
        bflux = boundary_mass_flux(comp, sim.velocity, cfg.density)
        mu = sim.effective_viscosity()

        # Full assembly for component 1.
        _A, rhs_full = sim.momentum.assemble(
            mdot=mdot,
            mu_eff=mu,
            component=1,
            velocity=sim.velocity,
            velocity_old=sim.velocity_old,
            pressure=sim.pressure_field,
            boundary_flux=bflux,
        )
        # RHS-only path for the same component (matrix values from the
        # assemble above are reused; only the RHS buffers reset).
        m = sim.momentum
        m.assembler.reset_rhs()
        m.fill_rhs(
            m.assembler, 1, sim.velocity, sim.velocity_old,
            sim.pressure_field,
        )
        local = m.assembler.finalize()
        rhs_only = assemble_global_vector(
            sim.world, comp.numbering, local, cfg.assembly_variant
        )
        assert np.allclose(rhs_only.data, rhs_full.data, atol=1e-12)
