"""Per-rank timeline profiler, profile document, and roofline join.

Unit tests drive :class:`~repro.obs.timeline.TimelineProfiler` with a
transparent unit pricer (1 flop = 1 s, 1 byte of p2p = 1 s) so every
expected duration is exact; integration tests run the real simulator
under ``config.profile`` and check the invariants the regression gate
pins — the per-rank accounting identity, the critical-path sum, roofline
fractions, metrics publication, and bitwise stability.
"""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

from repro.__main__ import main
from repro.core.config import SimulationConfig
from repro.core.simulation import NaluWindSimulation
from repro.obs import (
    PROFILE_SCHEMA,
    RunProfile,
    TimelineProfiler,
    render_profile_summary,
    to_chrome_trace,
)
from repro.perf import CostModel, OpRecorder, get_machine, roofline_join


class UnitMachine:
    """Pricing rates of 1 so expected times are the raw work numbers."""

    name = "unit"
    eff_flops = 1.0
    eff_bw = float("inf")
    launch_overhead = 0.0


class UnitPricer:
    """flops -> seconds 1:1; one p2p byte -> one second; collectives free."""

    machine = UnitMachine()
    work_scale = 1.0

    def kernel_time(self, work):
        return float(work.flops)

    def p2p_time(self, n_messages, nbytes):
        return float(nbytes)

    def collective_time(self, count, nbytes, world_size):
        return 0.0


def make_profiler(nranks: int) -> tuple[TimelineProfiler, OpRecorder]:
    ops = OpRecorder()
    return TimelineProfiler(nranks, pricer=UnitPricer(), ops=ops), ops


class TestTimelineUnit:
    def test_compute_flush_prices_tally_deltas(self):
        prof, ops = make_profiler(2)
        ops.record("default", 0, "k", flops=2.0)
        ops.record("default", 1, "k", flops=5.0)
        prof.finalize()
        assert prof.wall_time == 5.0
        # Rank 0: 2 s compute + 3 s terminal wait on rank 1.
        totals = prof.rank_totals()
        assert totals[0]["compute_s"] == 2.0
        assert totals[0]["wait_s"] == 3.0
        assert totals[1]["compute_s"] == 5.0
        assert totals[1]["wait_s"] == 0.0
        for t in totals:
            assert t["accounted_s"] == prof.wall_time

    def test_collective_waits_on_straggler(self):
        prof, ops = make_profiler(3)
        for r, flops in enumerate((1.0, 4.0, 2.0)):
            ops.record("default", r, "k", flops=flops)
        prof.on_collective("allreduce", 8.0)
        # Everyone syncs to rank 1 at t=4 (collective itself free here).
        assert prof.t == [4.0, 4.0, 4.0]
        waits = [s for s in prof.segments[0] if s.kind == "wait"]
        assert len(waits) == 1
        assert waits[0].duration == 3.0
        assert waits[0].extra == 1  # waited on the straggler
        stats = prof.exchange_stats()
        assert stats["allreduce"]["count"] == 1.0
        assert stats["allreduce"]["wait_s"] == 3.0 + 0.0 + 2.0

    def test_halo_waits_only_on_senders(self):
        prof, ops = make_profiler(3)
        for r, flops in enumerate((1.0, 9.0, 3.0)):
            ops.record("default", r, "k", flops=flops)
        # Ring: rank r receives only from rank r-1; no transfer bytes.
        senders = [[2], [0], [1]]
        prof.on_p2p_round(
            "halo", [1] * 3, [0.0] * 3, [1] * 3, [0.0] * 3, senders
        )
        # Rank 0 waits for rank 2 (t=3), NOT the global straggler rank 1.
        assert prof.t[0] == 3.0
        assert prof.segments[0][-1].kind == "wait"
        assert prof.segments[0][-1].extra == 2
        # Rank 1 was latest among {1, 0}: no wait at all.
        assert prof.t[1] == 9.0
        # Rank 2 waits for rank 1.
        assert prof.t[2] == 9.0

    def test_halo_transfer_is_max_of_directions(self):
        prof, ops = make_profiler(2)
        ops.record("default", 0, "k", flops=1.0)
        ops.record("default", 1, "k", flops=1.0)
        prof.on_p2p_round(
            "halo", [1, 1], [4.0, 2.0], [1, 1], [2.0, 4.0], [[1], [0]]
        )
        # Send 4 B vs recv 2 B on rank 0: overlapped -> 4 s.
        assert prof.t == [5.0, 5.0]
        assert prof.segments[0][-1].kind == "transfer"
        assert prof.segments[0][-1].duration == 4.0
        assert prof.segments[0][-1].extra == "halo"

    def test_phase_attribution_and_stats(self):
        prof, ops = make_profiler(2)
        ops.record("default", 0, "k", flops=1.0)
        ops.record("default", 1, "k", flops=1.0)
        prof.on_phase_begin("eq/solve")
        ops.record("eq/solve", 0, "k", flops=2.0)
        ops.record("eq/solve", 1, "k", flops=6.0)
        prof.on_collective("allreduce", 8.0)
        prof.on_phase_end("eq/solve")
        prof.finalize()
        cstats = prof.phase_compute_stats()
        assert cstats["eq/solve"]["max_s"] == 6.0
        assert cstats["eq/solve"]["mean_s"] == 4.0
        assert cstats["eq/solve"]["imbalance"] == 1.5
        assert cstats["eq/solve"]["straggler_rank"] == 1.0
        comm = prof.phase_comm_stats()
        assert comm["eq/solve"]["wait_s"] == 4.0
        assert comm["eq/solve"]["syncs"] == 1.0

    def test_phase_mismatch_raises(self):
        prof, _ops = make_profiler(1)
        prof.on_phase_begin("a")
        with pytest.raises(RuntimeError, match="phase stack"):
            prof.on_phase_end("b")

    def test_critical_path_hops_through_waits(self):
        prof, ops = make_profiler(2)
        ops.record("default", 0, "k", flops=2.0)
        ops.record("default", 1, "k", flops=5.0)
        prof.on_collective("barrier", 0.0)
        ops.record("default", 0, "k2", flops=4.0)
        ops.record("default", 1, "k2", flops=1.0)
        prof.finalize()
        assert prof.wall_time == 9.0
        path = prof.critical_path()
        # Straggler at the end is rank 0; its wait-free prefix hops back
        # through the barrier to rank 1's 5 s of compute.
        assert [(p["rank"], p["duration_s"]) for p in path] == [
            (1, 5.0),
            (0, 4.0),
        ]
        assert sum(p["duration_s"] for p in path) == prof.wall_time

    def test_critical_path_requires_finalize(self):
        prof, _ops = make_profiler(1)
        with pytest.raises(RuntimeError, match="finalize"):
            prof.critical_path()

    def test_finalize_is_idempotent(self):
        prof, ops = make_profiler(2)
        ops.record("default", 0, "k", flops=1.0)
        ops.record("default", 1, "k", flops=3.0)
        prof.finalize()
        n = sum(len(s) for s in prof.segments)
        prof.finalize()
        assert sum(len(s) for s in prof.segments) == n

    def test_markers_record_frontier_time(self):
        prof, ops = make_profiler(1)
        ops.record("default", 0, "k", flops=2.5)
        prof._flush_compute()
        prof.on_marker("solve", equation="momentum", iterations=7)
        (t, name, attrs) = prof.markers[0]
        assert (t, name) == (2.5, "solve")
        assert attrs == {"equation": "momentum", "iterations": 7}

    def test_chrome_trace_structure(self):
        prof, ops = make_profiler(2)
        ops.record("default", 0, "k", flops=1.0)
        ops.record("default", 1, "k", flops=2.0)
        prof.on_marker("step", index=0)
        prof.finalize()
        doc = to_chrome_trace(prof, workload="unit")
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert {e["ph"] for e in events} == {"M", "X", "i"}
        xs = [e for e in events if e["ph"] == "X"]
        # Wait events carry the waited-on rank for hover inspection.
        waits = [e for e in xs if e["cat"] == "wait"]
        assert waits and all(
            "waited_on_rank" in e["args"] for e in waits
        )
        # Timestamps are microseconds.
        assert any(e["dur"] == 1e6 for e in xs)
        tids = {e["tid"] for e in xs}
        assert tids == {0, 1}


class TestRooflineJoin:
    def test_fractions_bounded_and_bound_classified(self):
        ops = OpRecorder()
        machine = get_machine("summit-gpu")
        pricer = CostModel(machine)
        prof = TimelineProfiler(2, pricer=pricer, ops=ops)
        # A big bandwidth-heavy kernel and a launch-dominated one.
        for r in range(2):
            ops.record("eq/solve", r, "spmv", flops=1e9, nbytes=1e12, launches=1)
            ops.record("eq/solve", r, "tiny", flops=10.0, nbytes=10.0, launches=50)
        prof.on_phase_begin("eq/solve")
        prof.on_phase_end("eq/solve")
        prof.finalize()
        join = roofline_join(ops, prof, pricer)
        kernels = join["eq/solve"]["kernels"]
        assert set(kernels) == {"spmv", "tiny"}
        spmv = kernels["spmv"]
        assert spmv["bound"] == "bandwidth"
        assert 0.0 < spmv["achieved_bw_frac"] <= 1.0
        assert kernels["tiny"]["bound"] == "launch"
        for k in kernels.values():
            assert 0.0 <= k["achieved_bw_frac"] <= 1.0
            assert 0.0 <= k["achieved_flop_frac"] <= 1.0
        # Kernel model times cover the whole phase: coverage == 1.
        assert join["eq/solve"]["coverage"] == pytest.approx(1.0)


@pytest.fixture(scope="module")
def profiled_run():
    """One-step profiled turbine_tiny run shared by integration tests."""
    cfg = SimulationConfig(nranks=2, profile=True)
    sim = NaluWindSimulation("turbine_tiny", cfg)
    report = sim.run(1)
    return sim, report


class TestProfileIntegration:
    def test_document_schema_and_roundtrip(self, profiled_run):
        _sim, report = profiled_run
        p = report.profile
        assert p is not None and p.schema == PROFILE_SCHEMA
        back = RunProfile.from_json(p.to_json())
        assert back.to_dict() == p.to_dict()
        with pytest.raises(ValueError, match="schema"):
            RunProfile.from_dict({"schema": "bogus/9"})

    def test_accounting_identity_every_rank(self, profiled_run):
        _sim, report = profiled_run
        p = report.profile
        assert p.wall_time_s > 0.0
        assert p.rank_accounting_error() < 1e-12 * max(p.wall_time_s, 1.0)
        s = p.summary
        assert s["accounted_s"] == pytest.approx(
            s["compute_s"] + s["wait_s"] + s["transfer_s"]
        )

    def test_critical_path_sums_to_wall(self, profiled_run):
        _sim, report = profiled_run
        p = report.profile
        assert p.critical_path["total_s"] == pytest.approx(
            p.wall_time_s, rel=1e-9
        )
        assert p.critical_path["segments"]

    def test_roofline_covers_all_instrumented_kernels(self, profiled_run):
        sim, report = profiled_run
        p = report.profile
        for phase in sim.world.ops.phases():
            kernels = sim.world.ops.kernels(phase)
            if not kernels:
                continue
            assert phase in p.roofline
            assert set(p.roofline[phase]["kernels"]) == set(kernels)
            for k in p.roofline[phase]["kernels"].values():
                assert k["bound"] in ("bandwidth", "flops", "launch")
                assert 0.0 <= k["achieved_bw_frac"] <= 1.0
                assert 0.0 <= k["achieved_flop_frac"] <= 1.0

    def test_profile_metrics_published(self, profiled_run):
        _sim, report = profiled_run
        gauges = report.telemetry.metrics["gauges"]
        assert gauges["profile.wall_s"] == pytest.approx(
            report.profile.wall_time_s
        )
        assert "profile.comm_fraction" in gauges
        assert "profile.critical_path_s" in gauges
        assert any(k.startswith("profile.phase_wait_s{") for k in gauges)

    def test_exchange_stats_present(self, profiled_run):
        _sim, report = profiled_run
        by_kind = report.profile.exchanges["by_kind"]
        assert "halo" in by_kind and "allreduce" in by_kind
        assert by_kind["halo"]["count"] > 0

    def test_markers_emitted(self, profiled_run):
        sim, _report = profiled_run
        names = [m[1] for m in sim.world.profiler.markers]
        assert "step" in names and "picard" in names and "solve" in names

    def test_bitwise_stable_across_runs(self):
        docs = []
        for _ in range(2):
            cfg = SimulationConfig(nranks=2, profile=True)
            report = NaluWindSimulation("turbine_tiny", cfg).run(1)
            docs.append(report.profile.to_json())
        assert docs[0] == docs[1]

    def test_profile_off_by_default(self, profiled_run):
        cfg = SimulationConfig(nranks=1)
        sim = NaluWindSimulation("turbine_tiny", cfg)
        assert sim.world.profiler is None
        assert sim.run(1).profile is None

    def test_summary_renders(self, profiled_run):
        _sim, report = profiled_run
        text = render_profile_summary(report.profile)
        assert text.startswith("profile: turbine_tiny (2 ranks")
        assert "critical path:" in text
        assert "roofline" in text


class TestInjectableClock:
    def test_fake_clock_gives_deterministic_spans(self):
        def run_once():
            ticks = iter(range(10**6))

            cfg = SimulationConfig(
                nranks=1, clock=lambda: float(next(ticks))
            )
            sim = NaluWindSimulation("turbine_tiny", cfg)
            report = sim.run(1)
            return report.telemetry.spans

        a, b = run_once(), run_once()
        assert a == b
        # Every duration is a whole number of ticks under the fake clock.
        def all_durations(spans):
            for s in spans:
                yield s["duration"]
                yield from all_durations(s["children"])

        durations = list(all_durations(a))
        assert durations and all(d == int(d) for d in durations)

    def test_clock_must_be_callable(self):
        with pytest.raises(ValueError, match="clock"):
            SimulationConfig(clock=42).validate()  # type: ignore[arg-type]


class TestProfileCLI:
    def test_profile_json_output_file(self, tmp_path):
        out = tmp_path / "p.json"
        rc = main(
            [
                "profile", "turbine_tiny", "--steps", "1", "--ranks", "2",
                "-o", str(out),
            ]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == PROFILE_SCHEMA
        assert set(doc["ranks"]) == {"0", "1"}

    def test_profile_chrome_format(self, tmp_path):
        out = tmp_path / "p.chrome.json"
        rc = main(
            [
                "profile", "turbine_tiny", "--steps", "1", "--ranks", "2",
                "--format", "chrome", "--output", str(out),
            ]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_profile_summary_stdout(self, capsys):
        rc = main(
            [
                "profile", "turbine_tiny", "--steps", "1", "--ranks", "2",
                "--format", "summary",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "profile: turbine_tiny" in out

    def test_trace_short_output_flag(self, tmp_path):
        out = tmp_path / "t.json"
        rc = main(
            [
                "trace", "turbine_tiny", "--steps", "1", "--ranks", "2",
                "-o", str(out),
            ]
        )
        assert rc == 0
        assert json.loads(out.read_text())["schema"] == "repro.telemetry/1"


def _load_gate():
    path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "benchmarks",
        "check_profile_regression.py",
    )
    spec = importlib.util.spec_from_file_location("check_profile", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestProfileGate:
    def test_drift_mode_identical_passes(self, tmp_path, profiled_run):
        _sim, report = profiled_run
        p = tmp_path / "p.json"
        p.write_text(report.profile.to_json())
        gate = _load_gate()
        assert gate.main([str(p), str(p)]) == 0

    def test_drift_mode_detects_change(self, tmp_path, profiled_run, capsys):
        _sim, report = profiled_run
        gate = _load_gate()
        base = tmp_path / "base.json"
        base.write_text(report.profile.to_json())
        doc = report.profile.to_dict()
        doc["summary"]["comm_fraction"] *= 3.0
        cur = tmp_path / "cur.json"
        cur.write_text(json.dumps(doc))
        assert gate.main([str(base), str(cur)]) == 1
        assert "comm_fraction" in capsys.readouterr().out

    def test_invariant_checker_flags_broken_accounting(self, profiled_run):
        _sim, report = profiled_run
        gate = _load_gate()
        doc = report.profile.to_dict()
        assert gate.check_invariants(doc, 1e-6) == []
        doc["ranks"]["0"]["accounted_s"] *= 0.5
        assert any(
            "accounted" in f for f in gate.check_invariants(doc, 1e-6)
        )
