"""Tests for the extension features: CG, Chebyshev, deterministic/Kahan
assembly, postprocessing, and the exascale projection."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.amg import AMGHierarchy, AMGOptions, AMGPreconditioner
from repro.assembly.local import SCATTER_MODES, _segmented_kahan
from repro.comm import SimWorld
from repro.core import CompositeMesh, SimulationConfig
from repro.core.postprocess import (
    q_criterion,
    strain_rate_magnitude,
    velocity_gradient,
    vorticity,
    vorticity_magnitude,
    wake_deficit_profile,
)
from repro.harness import paper_projection, project_capability
from repro.krylov import CG, GMRES
from repro.linalg import ParCSRMatrix
from repro.mesh import make_turbine_tiny
from repro.smoothers import ChebyshevSmoother, JacobiSmoother


def poisson2d(nx):
    T = sparse.diags([-1.0, 2.0, -1.0], [-1, 0, 1], (nx, nx))
    return (
        sparse.kron(sparse.eye(nx), T) + sparse.kron(T, sparse.eye(nx))
    ).tocsr()


def par(A, nranks=4):
    n = A.shape[0]
    w = SimWorld(nranks)
    offs = np.linspace(0, n, nranks + 1).astype(np.int64)
    return w, ParCSRMatrix(w, A, offs)


class TestCG:
    def test_converges_on_spd(self):
        A = poisson2d(16)
        w, M = par(A)
        rng = np.random.default_rng(0)
        x_true = rng.standard_normal(A.shape[0])
        b = M.new_vector(A @ x_true)
        res = CG(M, tol=1e-10, max_iters=1000).solve(b)
        assert res.converged
        assert np.allclose(res.x.data, x_true, atol=1e-6)

    def test_amg_preconditioned_cg_beats_plain(self):
        A = poisson2d(20)
        w1, M1 = par(A)
        b1 = M1.new_vector(np.ones(A.shape[0]))
        plain = CG(M1, tol=1e-8, max_iters=2000).solve(b1)
        w2, M2 = par(A)
        b2 = M2.new_vector(np.ones(A.shape[0]))
        # CG needs an SPD preconditioner: symmetric smoothing in the cycle.
        h = AMGHierarchy(
            M2,
            AMGOptions(smoother="two_stage_gs", smoother_symmetric=True,
                       smoother_inner=2),
        )
        pre = CG(M2, preconditioner=AMGPreconditioner(h), tol=1e-8).solve(b2)
        assert pre.converged
        assert pre.iterations < plain.iterations / 2

    def test_zero_rhs(self):
        A = poisson2d(6)
        w, M = par(A, nranks=2)
        res = CG(M).solve(M.new_vector(np.zeros(A.shape[0])))
        assert res.converged and res.iterations == 0

    def test_initial_guess(self):
        A = poisson2d(8)
        w, M = par(A)
        rng = np.random.default_rng(1)
        x_true = rng.standard_normal(A.shape[0])
        b = M.new_vector(A @ x_true)
        x0 = M.new_vector(x_true.copy())
        res = CG(M, tol=1e-8).solve(b, x0=x0)
        assert res.iterations == 0

    def test_reduction_count_two_per_iteration(self):
        A = poisson2d(10)
        w, M = par(A)
        b = M.new_vector(np.ones(A.shape[0]))
        before = w.traffic.collective_count()
        res = CG(M, tol=1e-6, max_iters=50).solve(b)
        colls = w.traffic.collective_count() - before
        # 2 dots + 1 norm per iteration, plus setup reductions.
        assert colls <= 3 * res.iterations + 5

    def test_jacobi_preconditioned(self):
        A = poisson2d(12)
        w, M = par(A)
        b = M.new_vector(np.ones(A.shape[0]))
        res = CG(M, preconditioner=JacobiSmoother(M), tol=1e-8, max_iters=500).solve(b)
        assert res.converged


class TestChebyshev:
    def test_smoother_contracts_high_frequencies(self):
        A = poisson2d(16)
        n = A.shape[0]
        w, M = par(A)
        sm = ChebyshevSmoother(M, degree=3)
        rng = np.random.default_rng(0)
        x_true = rng.standard_normal(n)
        b = M.new_vector(A @ x_true)
        x = M.new_vector(np.zeros(n))
        e0 = np.linalg.norm(x_true)
        for _ in range(6):
            sm.smooth(b, x)
        e1 = np.linalg.norm(x.data - x_true)
        assert e1 < e0

    def test_eigmax_estimate_bounds_spectrum(self):
        A = poisson2d(12)
        w, M = par(A)
        sm = ChebyshevSmoother(M)
        dinv_a = sparse.diags(1.0 / A.diagonal()) @ A
        true_max = np.abs(
            np.linalg.eigvals(dinv_a.toarray())
        ).max()
        assert sm.eig_max >= true_max * 0.95

    def test_degree_validation(self):
        A = poisson2d(4)
        w, M = par(A, nranks=1)
        with pytest.raises(ValueError):
            ChebyshevSmoother(M, degree=0)

    def test_amg_with_chebyshev_smoother_converges(self):
        A = poisson2d(20)
        w, M = par(A)
        h = AMGHierarchy(M, AMGOptions(smoother="chebyshev"))
        pc = AMGPreconditioner(h)
        b = M.new_vector(np.ones(A.shape[0]))
        res = GMRES(M, preconditioner=pc, tol=1e-8).solve(b)
        assert res.converged

    def test_apply_equals_smooth_from_zero(self):
        A = poisson2d(8)
        w, M = par(A, nranks=2)
        sm = ChebyshevSmoother(M, degree=4)
        r = M.new_vector(np.random.default_rng(3).standard_normal(A.shape[0]))
        z1 = sm.apply(r)
        x = M.new_vector(np.zeros(A.shape[0]))
        sm.smooth(r, x)
        assert np.allclose(z1.data, x.data)


class TestAssemblyModes:
    def _run(self, mode):
        from repro import NaluWindSimulation

        cfg = SimulationConfig(nranks=3, assembly_mode=mode)
        sim = NaluWindSimulation("turbine_tiny", cfg)
        sim.step()
        return sim

    def test_all_modes_produce_same_fields(self):
        sims = {m: self._run(m) for m in SCATTER_MODES}
        base = sims["atomic"].velocity
        for m in ("deterministic", "compensated"):
            assert np.allclose(sims[m].velocity, base, rtol=1e-10, atol=1e-12)

    def test_deterministic_mode_costs_more(self):
        s_at = self._run("atomic")
        s_det = self._run("deterministic")
        b_at = s_at.world.ops.kernel_total("asm_det_sort").bytes
        b_det = s_det.world.ops.kernel_total("asm_det_sort").bytes
        assert b_at == 0.0
        assert b_det > 0.0

    def test_invalid_mode_rejected(self):
        cfg = SimulationConfig(assembly_mode="bogus")
        with pytest.raises(ValueError):
            cfg.validate()

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 5000), n=st.integers(1, 400))
    def test_property_kahan_matches_fsum(self, seed, n):
        rng = np.random.default_rng(seed)
        slots = rng.integers(0, 12, n)
        vals = rng.standard_normal(n) * 10.0 ** rng.integers(
            -6, 6, n
        ).astype(float)
        out = np.zeros(12)
        _segmented_kahan(out, slots, vals)
        for s in range(12):
            ref = math.fsum(vals[slots == s])
            assert out[s] == pytest.approx(ref, rel=1e-14, abs=1e-300)

    def test_kahan_beats_naive_on_cancellation(self):
        # Large alternating terms with a tiny survivor.
        big = 1e16
        vals = np.array([big, 1.0, -big, 1.0])
        slots = np.zeros(4, dtype=np.int64)
        naive = np.zeros(1)
        np.add.at(naive, slots, vals)
        kahan = np.zeros(1)
        _segmented_kahan(kahan, slots, vals)
        assert kahan[0] == pytest.approx(2.0)


@pytest.fixture(scope="module")
def tiny_comp():
    return CompositeMesh(SimWorld(2), make_turbine_tiny())


class TestPostprocess:
    def test_gradient_of_linear_velocity(self, tiny_comp):
        comp = tiny_comp
        G_true = np.array(
            [[0.1, 0.2, -0.3], [0.0, -0.5, 0.4], [0.7, 0.0, 0.2]]
        )
        u = comp.coords @ G_true.T
        G = velocity_gradient(comp, u)
        assert np.allclose(G, G_true[None, :, :], atol=1e-8)

    def test_vorticity_of_rigid_rotation(self, tiny_comp):
        comp = tiny_comp
        # u = omega x r with omega = (0, 0, 2): curl = (0, 0, 4).
        omega = np.array([0.0, 0.0, 2.0])
        u = np.cross(np.broadcast_to(omega, (comp.n, 3)), comp.coords)
        w = vorticity(comp, u)
        assert np.allclose(w, 2 * omega[None, :], atol=1e-8)
        assert np.allclose(
            vorticity_magnitude(comp, u), 4.0, atol=1e-8
        )

    def test_q_criterion_signs(self, tiny_comp):
        comp = tiny_comp
        # Pure rotation: Q > 0 everywhere.
        omega = np.array([0.0, 0.0, 1.0])
        u_rot = np.cross(np.broadcast_to(omega, (comp.n, 3)), comp.coords)
        assert np.all(q_criterion(comp, u_rot) > 0)
        # Pure strain (irrotational): Q < 0.
        u_strain = np.stack(
            [
                comp.coords[:, 0],
                -comp.coords[:, 1],
                np.zeros(comp.n),
            ],
            axis=1,
        )
        assert np.all(q_criterion(comp, u_strain) < 0)

    def test_uniform_flow_is_featureless(self, tiny_comp):
        comp = tiny_comp
        u = np.tile([8.0, 0.0, 0.0], (comp.n, 1))
        assert np.allclose(q_criterion(comp, u), 0.0, atol=1e-10)
        assert np.allclose(vorticity_magnitude(comp, u), 0.0, atol=1e-10)
        assert np.allclose(strain_rate_magnitude(comp, u), 0.0, atol=1e-10)

    def test_wake_profile_of_uniform_flow(self, tiny_comp):
        comp = tiny_comp
        u = np.tile([8.0, 0.0, 0.0], (comp.n, 1))
        d = wake_deficit_profile(
            comp, u, 8.0, np.array([60.0, 120.0]), radius=60.0
        )
        assert np.allclose(d[np.isfinite(d)], 0.0, atol=1e-12)

    def test_shape_validation(self, tiny_comp):
        with pytest.raises(ValueError):
            velocity_gradient(tiny_comp, np.zeros((3, 3)))


class TestCapabilityProjection:
    def test_paper_numbers_reproduced(self):
        rows = paper_projection()
        by_label = {r.label: r for r in rows}
        # Paper §6: ~4 billion nodes on full Summit; 20-30 billion for
        # exascale.
        assert by_label["full Summit"].mesh_nodes == pytest.approx(
            4.06e9, rel=0.02
        )
        assert 20e9 <= by_label["exascale (5x Summit)"].mesh_nodes <= 30e9
        assert by_label["full Summit"].peak_pflops == pytest.approx(200.0)

    def test_projection_scales_linearly(self):
        rows = project_capability(1000.0, 10, paper_scale=1.0)
        demo, summit, exa = rows
        assert demo.mesh_nodes == 1000.0
        assert exa.mesh_nodes == pytest.approx(5 * summit.mesh_nodes)
