"""Communication-avoiding contracts: reduction counts and overlap parity.

Two executable contracts from the paper's solver chapter (§4.2-§4.3):

* every Krylov kernel charges an *exact* number of allreduces per
  iteration — mgs ``j+1``, cgs2 ``3``, one-reduce ``1`` per Arnoldi
  step; CG ``2``/iteration; pipelined CG ``1``/iteration — pinned here
  against :class:`~repro.comm.traffic.TrafficLog` so a hidden reduction
  cannot ship silently again;
* the split halo exchange (``matvec(overlap=True)``) is a *scheduling*
  change only: results stay bitwise identical to the synchronous path on
  every workload, including under injected message drops and corruption
  handled by the bounded retry protocol.
"""

import numpy as np
import pytest
from scipy import sparse

from repro.comm import SimWorld
from repro.core import CompositeMesh, PhaseTimers, SimulationConfig
from repro.core.config import SolverConfig
from repro.core.operators import boundary_mass_flux, mass_flux
from repro.core.physics import PressurePoissonSystem
from repro.krylov import CG, PipelinedCG, make_krylov_solver, orthogonalize
from repro.linalg import ParCSRMatrix
from repro.mesh import make_turbine_tiny
from repro.resilience.injection import FaultInjector, FaultSpec
from repro.smoothers import make_smoother


def poisson2d(nx):
    T = sparse.diags([-1.0, 2.0, -1.0], [-1, 0, 1], (nx, nx))
    return (
        sparse.kron(sparse.eye(nx), T) + sparse.kron(T, sparse.eye(nx))
    ).tocsr()


def nonsym(n, seed=0):
    rng = np.random.default_rng(seed)
    A = sparse.random(n, n, density=0.08, random_state=seed, format="csr")
    A = A + sparse.diags(np.abs(A).sum(axis=1).A1 + 1.0)
    return A.tocsr()


def par(A, nranks=4):
    n = A.shape[0]
    w = SimWorld(nranks)
    offs = np.linspace(0, n, nranks + 1).astype(np.int64)
    return w, ParCSRMatrix(w, A, offs)


@pytest.fixture(scope="module")
def pressure_system():
    """Assembled pressure-Poisson matrix from the tiny turbine mesh."""
    cfg = SimulationConfig(nranks=3)
    w = SimWorld(cfg.nranks)
    comp = CompositeMesh(w, make_turbine_tiny(), cfg.partition_method)
    pres = PressurePoissonSystem(comp, cfg, PhaseTimers())
    u = np.tile([8.0, 0, 0], (comp.n, 1))
    mdot = mass_flux(comp, u, cfg.density)
    bflux = boundary_mass_flux(comp, u, cfg.density)
    A, rhs = pres.assemble(
        mdot=mdot,
        pressure_correction_bc=np.zeros(comp.n),
        boundary_flux=bflux,
    )
    return w, A, rhs


class TestReductionContracts:
    """Exact allreduce counts, pinned per kernel against the TrafficLog."""

    @pytest.mark.parametrize("j", [1, 3, 6])
    def test_orthogonalize_counts(self, j):
        expected = {"mgs": j + 1, "cgs2": 3, "one_reduce": 1}
        for variant, count in expected.items():
            w = SimWorld(2)
            rng = np.random.default_rng(0)
            V, _ = np.linalg.qr(rng.standard_normal((64, j)))
            x = rng.standard_normal(64)
            orthogonalize(w, V, x, variant)
            assert w.traffic.collective_count() == count, variant

    def test_cg_two_reductions_per_iteration(self):
        A = poisson2d(12)
        w, M = par(A)
        b = M.new_vector(np.ones(A.shape[0]))
        res = CG(M, tol=1e-8, max_iters=300).solve(b)
        assert res.converged
        # bnorm + initial fused (rz, ||r||^2) + per iteration (p.Ap +
        # fused pair).
        assert w.traffic.collective_count() == 2 + 2 * res.iterations

    def test_pipelined_cg_one_reduction_per_iteration(self):
        A = poisson2d(12)
        w, M = par(A)
        b = M.new_vector(np.ones(A.shape[0]))
        res = PipelinedCG(M, tol=1e-8, max_iters=300).solve(b)
        assert res.converged
        # bnorm + one fused (gamma, delta, ||r||^2) triple per
        # iteration, plus the triple evaluated at the converged step.
        assert w.traffic.collective_count() == 2 + res.iterations

    def test_overlap_does_not_change_collectives_or_bits(self):
        A = poisson2d(12)
        results = []
        for overlap in (False, True):
            w, M = par(A)
            b = M.new_vector(np.ones(A.shape[0]))
            res = PipelinedCG(
                M, tol=1e-8, max_iters=300, overlap=overlap
            ).solve(b)
            results.append((res, w.traffic.collective_count()))
        (sync, n_sync), (ovl, n_ovl) = results
        assert n_sync == n_ovl
        assert ovl.iterations == sync.iterations
        assert np.array_equal(ovl.x.data, sync.x.data)


class TestDeclaredContracts:
    """The @reduction_contract declarations (verified statically by
    RL009) must agree with the dynamically measured collective counts —
    the static and runtime views of one budget."""

    def test_all_four_kernels_carry_contracts(self):
        from repro.krylov import GMRES
        from repro.smoothers.chebyshev import ChebyshevSmoother

        assert CG.solve.__reduction_contract__ == {
            "setup": 2,
            "per_iteration": 2,
            "per_restart": None,
            "assume": {},
        }
        assert PipelinedCG.solve.__reduction_contract__ == {
            "setup": 1,
            "per_iteration": 1,
            "per_restart": None,
            "assume": {},
        }
        assert GMRES.solve.__reduction_contract__ == {
            "setup": 1,
            "per_iteration": 1,
            "per_restart": 2,
            "assume": {"orthogonalize": 1},
        }
        # Chebyshev is the reduction-free smoother: an explicitly
        # declared zero, not an absent declaration.
        c = ChebyshevSmoother.smooth.__reduction_contract__
        assert c["setup"] == 0 and c["per_iteration"] == 0

    def test_cg_contract_matches_measured_collectives(self):
        A = poisson2d(12)
        w, M = par(A)
        b = M.new_vector(np.ones(A.shape[0]))
        res = CG(M, tol=1e-8, max_iters=300).solve(b)
        c = CG.solve.__reduction_contract__
        assert (
            c["setup"] + c["per_iteration"] * res.iterations
            == w.traffic.collective_count()
        )

    def test_pipelined_cg_contract_matches_measured_collectives(self):
        A = poisson2d(12)
        w, M = par(A)
        b = M.new_vector(np.ones(A.shape[0]))
        res = PipelinedCG(M, tol=1e-8, max_iters=300).solve(b)
        c = PipelinedCG.solve.__reduction_contract__
        # The pipelined loop body runs iterations + 1 times (the fused
        # triple is evaluated once more at the converged step).
        assert (
            c["setup"] + c["per_iteration"] * (res.iterations + 1)
            == w.traffic.collective_count()
        )


class TestOverlapParity:
    """matvec(overlap=True) must be bitwise identical to the sync path."""

    @pytest.mark.parametrize("nranks", [2, 4, 6])
    @pytest.mark.parametrize("workload", ["poisson", "nonsym"])
    def test_matvec_bitwise_parity(self, workload, nranks):
        A = poisson2d(12) if workload == "poisson" else nonsym(120, seed=4)
        rng = np.random.default_rng(7)
        xv = rng.standard_normal(A.shape[0])

        w1, M1 = par(A, nranks)
        y_sync = M1.matvec(M1.new_vector(xv))
        w2, M2 = par(A, nranks)
        y_ovl = M2.matvec(M2.new_vector(xv), overlap=True)

        assert np.array_equal(y_ovl.data, y_sync.data)
        assert w1.metrics.counter_total("comm.overlapped_exchanges") == 0
        assert w2.metrics.counter_total("comm.overlapped_exchanges") == 1

    def test_parity_on_assembled_pressure_matrix(self, pressure_system):
        w, A, rhs = pressure_system
        x = A.new_vector(rhs.data.copy())
        y_sync = A.matvec(x)
        y_ovl = A.matvec(x, overlap=True)
        assert np.array_equal(y_ovl.data, y_sync.data)

    def test_parity_under_message_drop(self):
        A = poisson2d(10)
        rng = np.random.default_rng(3)
        xv = rng.standard_normal(A.shape[0])
        _w0, M0 = par(A, 4)
        y_ref = M0.matvec(M0.new_vector(xv))

        w, M = par(A, 4)
        w.fault_injector = FaultInjector((FaultSpec("message_drop", at=0),))
        y = M.matvec(M.new_vector(xv), overlap=True)
        assert np.array_equal(y.data, y_ref.data)
        assert w.metrics.counter_total("comm.retries") >= 1.0

    def test_parity_under_message_corruption(self):
        A = poisson2d(10)
        rng = np.random.default_rng(3)
        xv = rng.standard_normal(A.shape[0])
        _w0, M0 = par(A, 4)
        y_ref = M0.matvec(M0.new_vector(xv))

        w, M = par(A, 4)
        w.fault_injector = FaultInjector(
            (FaultSpec("message_corrupt", at=0),)
        )
        y = M.matvec(M.new_vector(xv), overlap=True)
        assert np.array_equal(y.data, y_ref.data)
        assert w.metrics.counter_total("comm.corrupt_detected") >= 1.0
        assert w.metrics.counter_total("comm.retries") >= 1.0


class TestPipelinedCG:
    """Behavior of the pipelined variant beyond the reduction contract."""

    def test_matches_cg_on_pressure_poisson(self):
        A = poisson2d(16)
        rng = np.random.default_rng(0)
        x_true = rng.standard_normal(A.shape[0])

        w1, M1 = par(A)
        cg = CG(M1, tol=1e-8, max_iters=400).solve(
            M1.new_vector(A @ x_true)
        )
        w2, M2 = par(A)
        pcg = PipelinedCG(M2, tol=1e-8, max_iters=400).solve(
            M2.new_vector(A @ x_true)
        )
        assert cg.converged and pcg.converged
        assert np.allclose(pcg.x.data, x_true, atol=1e-6)
        # Same Krylov space, same tolerance: iteration counts agree to
        # within rounding slack from the recurrence reordering.
        assert abs(pcg.iterations - cg.iterations) <= 2

    def test_preconditioned_converges(self):
        A = poisson2d(16)
        w, M = par(A)
        b = M.new_vector(np.ones(A.shape[0]))
        res = PipelinedCG(
            M, preconditioner=make_smoother("jacobi", M), tol=1e-8,
            max_iters=400
        ).solve(b)
        assert res.converged
        assert res.method == "pipelined_cg"

    def test_zero_rhs(self):
        A = poisson2d(8)
        w, M = par(A, nranks=2)
        res = PipelinedCG(M).solve(M.new_vector(np.zeros(A.shape[0])))
        assert res.converged
        assert res.iterations == 0
        assert np.all(res.x.data == 0.0)

    def test_nan_rhs_stops_without_spinning(self):
        A = poisson2d(8)
        w, M = par(A, nranks=2)
        rhs = np.ones(A.shape[0])
        rhs[0] = np.nan
        res = PipelinedCG(M, max_iters=50).solve(M.new_vector(rhs))
        assert not res.converged
        assert res.iterations == 0

    def test_factory_dispatch(self):
        A = poisson2d(8)
        w, M = par(A, nranks=2)
        cfg = SolverConfig(method="pipelined_cg", tol=1e-8, overlap=True)
        solver = make_krylov_solver(M, cfg=cfg)
        assert isinstance(solver, PipelinedCG)
        assert solver.overlap is True
        res = solver.solve(M.new_vector(np.ones(A.shape[0])))
        assert res.converged
        assert res.method == "pipelined_cg"
