"""Tests for the CLI (`python -m repro`) and the VTK exporter."""

import os

import numpy as np
import pytest

from repro.__main__ import main
from repro.comm import SimWorld
from repro.core import CompositeMesh
from repro.mesh import make_turbine_tiny
from repro.mesh.vtk_io import write_composite_vtk, write_mesh_vtk, write_vtk


@pytest.fixture(scope="module")
def tiny_comp():
    return CompositeMesh(SimWorld(2), make_turbine_tiny())


class TestVTK:
    def test_write_basic_grid(self, tmp_path):
        coords = np.array(
            [
                [0, 0, 0], [1, 0, 0], [1, 1, 0], [0, 1, 0],
                [0, 0, 1], [1, 0, 1], [1, 1, 1], [0, 1, 1],
            ],
            dtype=float,
        )
        cells = np.arange(8, dtype=np.int64)[None, :]
        path = write_vtk(
            str(tmp_path / "box"),
            coords,
            cells,
            {"p": np.arange(8.0), "u": np.ones((8, 3))},
        )
        text = open(path).read()
        assert text.startswith("# vtk DataFile Version 3.0")
        assert "POINTS 8 double" in text
        assert "CELLS 1 9" in text
        assert "CELL_TYPES 1" in text
        assert "SCALARS p double 1" in text
        assert "VECTORS u double" in text

    def test_extension_appended(self, tmp_path):
        coords = np.zeros((8, 3))
        coords[1:] = np.eye(3).repeat(3, 0)[:7]
        cells = np.arange(8)[None, :]
        path = write_vtk(str(tmp_path / "noext"), coords, cells)
        assert path.endswith(".vtk")
        assert os.path.exists(path)

    def test_bad_field_shape_rejected(self, tmp_path):
        coords = np.zeros((8, 3))
        cells = np.arange(8)[None, :]
        with pytest.raises(ValueError):
            write_vtk(
                str(tmp_path / "bad"), coords, cells, {"f": np.zeros(5)}
            )

    def test_mesh_export(self, tmp_path, tiny_comp):
        mesh = tiny_comp.meshes[1]
        path = write_mesh_vtk(str(tmp_path / "blade"), mesh)
        text = open(path).read()
        assert f"POINTS {mesh.n_nodes} double" in text
        assert f"CELL_TYPES {mesh.cells.shape[0]}" in text

    def test_composite_export_slices_fields(self, tmp_path, tiny_comp):
        comp = tiny_comp
        paths = write_composite_vtk(
            str(tmp_path / "flow"),
            comp,
            {"pressure": np.arange(float(comp.n))},
        )
        assert len(paths) == len(comp.meshes)
        for p in paths:
            assert os.path.exists(p)
        # Status field always present.
        assert "overset_status" in open(paths[0]).read()


class TestCLI:
    def test_project_command(self, capsys):
        assert main(["project"]) == 0
        out = capsys.readouterr().out
        assert "full Summit" in out
        assert "4.06B" in out

    def test_run_command_tiny(self, capsys, tmp_path):
        rc = main(
            [
                "run",
                "--workload", "turbine_tiny",
                "--steps", "1",
                "--ranks", "2",
                "--vtk", str(tmp_path / "flow"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "NLI time/step" in out
        assert "mass residual" in out
        assert os.path.exists(str(tmp_path / "flow_background.vtk"))

    def test_scaling_command(self, capsys):
        rc = main(
            [
                "scaling",
                "--workload", "turbine_tiny",
                "--ranks", "2,4",
                "--steps", "1",
                "--machines", "summit-gpu,eagle-gpu",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "log-log slopes" in out

    def test_partition_command(self, capsys):
        rc = main(["partition", "--workload", "turbine_tiny", "--ranks", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "RCB" in out and "multilevel" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["bogus"])
