"""Decomposition-invariance of the physics.

The domain decomposition must not change *what* is computed, only how the
work is laid out: with converged linear solves, the flow fields after a
time step agree across rank counts to solver tolerance (the hybrid
smoothers change the preconditioner, hence the iteration path, but not the
solution the Krylov method converges to)."""

import numpy as np
import pytest

from repro import NaluWindSimulation, SimulationConfig


def run_one_step(nranks: int, partition: str = "parmetis"):
    cfg = SimulationConfig(nranks=nranks, partition_method=partition)
    # Tight tolerances so the decomposition effect is below the comparison
    # threshold.
    cfg.momentum_solver.tol = 1e-9
    cfg.scalar_solver.tol = 1e-9
    cfg.pressure_solver.tol = 1e-9
    sim = NaluWindSimulation("turbine_tiny", cfg)
    sim.run(1)
    return sim


@pytest.fixture(scope="module")
def ref_sim():
    return run_one_step(1)


class TestRankInvariance:
    @pytest.mark.parametrize("nranks", [2, 5])
    def test_velocity_invariant(self, ref_sim, nranks):
        sim = run_one_step(nranks)
        scale = np.abs(ref_sim.velocity).max()
        assert (
            np.abs(sim.velocity - ref_sim.velocity).max() < 1e-5 * scale
        )

    @pytest.mark.parametrize("nranks", [2, 5])
    def test_pressure_invariant(self, ref_sim, nranks):
        sim = run_one_step(nranks)
        scale = max(np.abs(ref_sim.pressure_field).max(), 1.0)
        assert (
            np.abs(sim.pressure_field - ref_sim.pressure_field).max()
            < 1e-4 * scale
        )

    def test_partitioner_choice_invariant(self, ref_sim):
        sim = run_one_step(3, partition="rcb")
        scale = np.abs(ref_sim.velocity).max()
        assert (
            np.abs(sim.velocity - ref_sim.velocity).max() < 1e-5 * scale
        )

    def test_iteration_counts_do_depend_on_ranks(self, ref_sim):
        """The *work* is decomposition-dependent (hybrid smoothers weaken
        with more, smaller blocks) even though the answer is not."""
        sim = run_one_step(8)
        ref_iters = sum(
            r.iterations for r in ref_sim.pressure.solve_records
        )
        iters = sum(r.iterations for r in sim.pressure.solve_records)
        assert iters >= ref_iters
