"""Tests for the campaign service: job specs, sweep expansion, the
content-addressed result store, the durable manifest, the runner
(cache-hit bitwise identity, resume-after-kill, setup sharing), and the
supervised execution layer (crash-at-every-boundary fault domains,
hang detection, lease takeover, quarantine, failure breaker)."""

import json
import os

import pytest

from repro.__main__ import main
from repro.campaign import (
    Campaign,
    CampaignManifest,
    CampaignSpec,
    FailureBreaker,
    JobSpec,
    ManifestError,
    ResultStore,
    SupervisorPolicy,
    failure_context,
    lease_is_live,
    read_lease,
    write_lease,
)
from repro.campaign import merge_overrides, set_path
from repro.core.config import SimulationConfig
from repro.core.simulation import NaluWindSimulation
from repro.obs.metrics import MetricsRegistry
from repro.resilience import FaultInjector, FaultSpec, SolverFailure


def tiny_spec(name="t", seeds=(0, 1), steps=1, **kw):
    return CampaignSpec(
        name=name,
        workload="turbine_tiny",
        steps=steps,
        seeds=seeds,
        base={"nranks": 2},
        **kw,
    )


class TestOverrides:
    def test_merge_is_deep(self):
        merged = merge_overrides(
            {"amg": {"theta": 0.1}, "nranks": 2},
            {"amg": {"agg_levels": 1}},
        )
        assert merged == {
            "amg": {"theta": 0.1, "agg_levels": 1},
            "nranks": 2,
        }

    def test_merge_later_wins(self):
        assert merge_overrides({"dt": 0.1}, {"dt": 0.2}) == {"dt": 0.2}

    def test_set_path_nests(self):
        doc = set_path({}, "amg.theta", 0.5)
        doc = set_path(doc, "amg.interp", "direct")
        assert doc == {"amg": {"theta": 0.5, "interp": "direct"}}
        assert set_path({}, "dt", 0.1) == {"dt": 0.1}


class TestJobSpec:
    def test_digest_is_stable_and_content_addressed(self):
        a = JobSpec("turbine_tiny", steps=2, seed=1, overrides={"nranks": 2})
        b = JobSpec("turbine_tiny", steps=2, seed=1, overrides={"nranks": 2})
        c = JobSpec("turbine_tiny", steps=2, seed=2, overrides={"nranks": 2})
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()
        assert a.job_id == a.digest()[:12]

    def test_durability_keys_do_not_fragment_the_cache(self):
        a = JobSpec("turbine_tiny", overrides={"nranks": 2})
        b = JobSpec(
            "turbine_tiny",
            overrides={"nranks": 2, "checkpoint_every": 5,
                       "checkpoint_dir": "elsewhere"},
        )
        assert a.digest() == b.digest()

    def test_seed_maps_to_world_seed(self):
        job = JobSpec("turbine_tiny", seed=7, overrides={"nranks": 2})
        assert job.build_config().world_seed == 7

    def test_world_seed_override_rejected(self):
        with pytest.raises(ValueError):
            JobSpec("turbine_tiny", overrides={"world_seed": 3}).validate()

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            JobSpec("no_such_workload").validate()

    def test_round_trip(self):
        job = JobSpec("turbine_tiny", steps=3, seed=2,
                      overrides={"nranks": 2})
        again = JobSpec.from_dict(job.to_dict())
        assert again.digest() == job.digest()


class TestCampaignSpec:
    def test_expand_grid_times_seeds(self):
        spec = tiny_spec(
            seeds=(0, 1), grid={"picard_iterations": [1, 2], "dt": [0.1]}
        )
        jobs = spec.expand()
        assert len(jobs) == 4  # 2 grid points x 2 seeds
        assert len({j.digest() for j in jobs}) == 4

    def test_expand_list_entries(self):
        spec = tiny_spec(
            seeds=(0,),
            list_entries=({"dt": 0.1}, {"dt": 0.2}),
        )
        jobs = spec.expand()
        assert [j.build_config().dt for j in jobs] == [0.1, 0.2]

    def test_duplicate_jobs_rejected(self):
        spec = tiny_spec(seeds=(0, 0))
        with pytest.raises(ValueError, match="duplicate"):
            spec.expand()

    def test_round_trip(self):
        spec = tiny_spec(grid={"dt": [0.1, 0.2]})
        again = CampaignSpec.from_dict(spec.to_dict())
        assert [j.digest() for j in again.expand()] == [
            j.digest() for j in spec.expand()
        ]

    def test_unknown_spec_key_rejected(self):
        doc = tiny_spec().to_dict()
        doc["bogus"] = 1
        with pytest.raises(ValueError):
            CampaignSpec.from_dict(doc)


class TestResultStore:
    def doc(self, digest):
        from repro.campaign import RESULT_FORMAT

        return {"format": RESULT_FORMAT, "digest": digest, "x": 1}

    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put("abc", self.doc("abc"))
        assert store.get("abc") == self.doc("abc")
        assert "abc" in store and len(store) == 1

    def test_corrupt_file_is_a_miss(self, tmp_path):
        store = ResultStore(str(tmp_path))
        with open(store.path("abc"), "w") as fh:
            fh.write("{not json")
        assert store.get("abc") is None

    def test_digest_mismatch_is_a_miss(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put("abc", self.doc("OTHER"))
        assert store.get("abc") is None


class TestManifest:
    def test_save_load_round_trip(self, tmp_path):
        spec = tiny_spec()
        m = CampaignManifest(str(tmp_path), spec)
        m.register(spec.expand())
        m.save()
        again = CampaignManifest.load(str(tmp_path))
        assert again.jobs.keys() == m.jobs.keys()
        assert again.status_counts()["pending"] == 2

    def test_mark_persists(self, tmp_path):
        spec = tiny_spec()
        m = CampaignManifest(str(tmp_path), spec)
        jobs = spec.expand()
        m.register(jobs)
        m.mark(jobs[0].digest(), "failed", error="boom")
        again = CampaignManifest.load(str(tmp_path))
        assert again.jobs[jobs[0].digest()]["status"] == "failed"
        assert again.jobs[jobs[0].digest()]["error"] == "boom"

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(ManifestError):
            CampaignManifest.load(str(tmp_path / "nope"))

    def test_bad_status_rejected(self, tmp_path):
        m = CampaignManifest(str(tmp_path), tiny_spec())
        m.register(tiny_spec().expand())
        with pytest.raises(ValueError):
            m.mark(next(iter(m.jobs)), "exploded")


@pytest.mark.slow
class TestCampaignRunner:
    def test_serial_run_and_cache_hit_bitwise_identity(self, tmp_path):
        spec = tiny_spec(name="bitwise")
        m1 = MetricsRegistry()
        camp1 = Campaign(spec, str(tmp_path / "a"), metrics=m1)
        s1 = camp1.run()
        assert s1["status_counts"]["done"] == 2
        assert s1["cache_hits"] == 0 and s1["jobs_run"] == 2

        # A fresh campaign sharing the store: 100% cache hits, nothing
        # executed.
        camp2 = Campaign(
            spec,
            str(tmp_path / "b"),
            store_dir=str(tmp_path / "a" / "store"),
        )
        s2 = camp2.run()
        assert s2["cache_hits"] == 2 and s2["jobs_run"] == 0
        assert s2["status_counts"]["done"] == 2

        # An independent fresh run produces byte-identical stored
        # documents (the cache returns results bitwise-identically).
        camp3 = Campaign(spec, str(tmp_path / "c"))
        camp3.run()
        for job in camp1.jobs:
            d = job.digest()
            b1 = camp1.store.get_bytes(d)
            assert b1 is not None
            assert b1 == camp3.store.get_bytes(d)

    def test_rerun_same_root_skips_done_jobs(self, tmp_path):
        spec = tiny_spec(name="rerun")
        root = str(tmp_path / "camp")
        Campaign(spec, root).run()
        s2 = Campaign(spec, root).run()
        # Done jobs skip via the manifest, not the cache.
        assert s2["jobs_run"] == 0 and s2["cache_hits"] == 0
        assert s2["status_counts"]["done"] == 2

    def test_max_jobs_budget_then_resume(self, tmp_path):
        spec = tiny_spec(name="budget")
        root = str(tmp_path / "camp")
        s1 = Campaign(spec, root).run(max_jobs=1)
        assert s1["jobs_run"] == 1
        assert s1["status_counts"]["done"] == 1
        assert s1["status_counts"]["pending"] == 1
        s2 = Campaign.resume(root).run()
        assert s2["jobs_run"] == 1  # only the deferred job executes
        assert s2["status_counts"]["done"] == 2

    def test_resume_after_kill_uses_checkpoint_ring(self, tmp_path):
        spec = tiny_spec(name="kill", seeds=(0,), steps=2,
                         checkpoint_every=1)
        root = str(tmp_path / "camp")
        camp = Campaign(spec, root)
        job = camp.jobs[0]
        digest = job.digest()

        # Simulate a mid-job kill: run only the first step with the
        # job's ring enabled, leave the manifest saying "running".
        config = job.build_config()
        config.checkpoint_every = 1
        config.checkpoint_keep = spec.checkpoint_keep
        config.checkpoint_dir = camp._ckpt_dir(job)
        NaluWindSimulation(job.workload, config).run(1)
        camp.manifest.register(camp.jobs)
        camp.manifest.mark(digest, "running")

        resumed = Campaign.resume(root)
        summary = resumed.run()
        assert summary["status_counts"]["done"] == 1
        assert summary["jobs_resumed"] == 1
        doc = resumed.store.get(digest)
        entry = summary["jobs"][digest]
        assert entry["status"] == "done"

        # The resumed job's final state matches an uninterrupted run
        # bitwise (field digests, divergence norms, step index).
        ref = Campaign(spec, str(tmp_path / "ref"))
        ref.run()
        ref_doc = ref.store.get(digest)
        assert doc["state"] == ref_doc["state"]

    def test_worker_pool_matches_serial_bitwise(self, tmp_path):
        spec = tiny_spec(name="pool")
        serial = Campaign(spec, str(tmp_path / "serial"))
        serial.run()
        parallel = Campaign(spec, str(tmp_path / "par"), workers=2)
        s = parallel.run()
        assert s["status_counts"]["done"] == 2
        for job in spec.expand():
            d = job.digest()
            assert serial.store.get_bytes(d) == parallel.store.get_bytes(d)

    def test_setup_sharing_across_jobs(self, tmp_path):
        # Two jobs with identical mesh topology (only the seed differs):
        # the second adopts the first's captured assembly plans.
        spec = tiny_spec(name="share")
        s = Campaign(spec, str(tmp_path / "camp")).run()
        assert s["plan_shared"] > 0

    def test_invalid_config_rejected_at_expand(self, tmp_path):
        spec = tiny_spec(name="fail", seeds=(0,))
        spec.base = merge_overrides(
            spec.base, {"picard_iterations": 0}
        )
        with pytest.raises(ValueError):
            Campaign(spec, str(tmp_path / "camp"))

    def test_dry_run_executes_nothing(self, tmp_path):
        spec = tiny_spec(name="dry")
        camp = Campaign(spec, str(tmp_path / "camp"))
        summary = camp.run(dry_run=True)
        assert summary["dry_run"] and summary["total_jobs"] == 2
        assert all(r["status"] == "pending" for r in summary["jobs"])
        assert len(camp.store) == 0


def fast_policy(**kw):
    kw.setdefault("backoff_base_s", 0.01)
    kw.setdefault("backoff_max_s", 0.05)
    kw.setdefault("poll_s", 0.02)
    return SupervisorPolicy(**kw)


class TestSupervisorPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"poll_s": 0.0},
            {"job_timeout_s": -1.0},
            {"backoff_factor": 0.5},
            {"breaker_threshold": 0.0},
            {"breaker_window": 0},
            {"store_io_retries": -1},
        ],
    )
    def test_rejects_bad_settings(self, kwargs):
        with pytest.raises(ValueError):
            SupervisorPolicy(**kwargs).validate()

    def test_backoff_is_deterministic_and_capped(self):
        p = SupervisorPolicy(
            backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=0.3
        )
        assert [p.backoff(k) for k in range(4)] == [0.1, 0.2, 0.3, 0.3]


class TestFailureContext:
    def test_classifies_and_truncates(self):
        try:
            raise OSError("disk on fire")
        except OSError as exc:
            ctx = failure_context(exc)
        assert ctx["ok"] is False
        assert ctx["taxonomy"] == "io_error"
        assert ctx["error_type"] == "OSError"
        assert "disk on fire" in ctx["error"]
        assert "OSError" in ctx["traceback"]
        assert len(ctx["traceback"]) <= 2000

    def test_solver_failure_keeps_its_kind(self):
        ctx = failure_context(
            SolverFailure("diverged", kind="non_convergence")
        )
        assert ctx["taxonomy"] == "non_convergence"


class TestFailureBreaker:
    def test_trips_halves_and_recovers(self):
        br = FailureBreaker(
            8, window=4, min_events=4, threshold=0.5, cooldown=2
        )
        assert br.allowed == 8
        assert not br.record(True)
        assert not br.record(False)
        assert not br.record(True)
        # 4th outcome makes the window eligible; 2/4 failures >= 0.5.
        assert br.record(False)
        assert br.allowed == 4 and br.trips == 1
        # Two consecutive successes restore one halving step.
        br.record(True)
        assert br.allowed == 4
        br.record(True)
        assert br.allowed == 8

    def test_floor_is_one_and_needs_min_events(self):
        br = FailureBreaker(2, window=4, min_events=3, threshold=0.5)
        assert not br.record(False)
        assert not br.record(False)  # only 2 events < min_events
        assert br.record(False)
        assert br.allowed == 1
        # At the floor, further failures cannot trip again.
        assert not br.record(False)
        assert br.trips == 1


class TestLeases:
    def test_round_trip_and_liveness(self, tmp_path):
        job_dir = str(tmp_path / "job")
        write_lease(job_dir, "n-1", beat=3)
        lease = read_lease(job_dir)
        assert lease["pid"] == os.getpid()
        assert lease["nonce"] == "n-1" and lease["beat"] == 3
        assert lease_is_live(lease)  # our own pid is alive

    def test_dead_pid_is_stale(self, tmp_path):
        job_dir = str(tmp_path / "job")
        os.makedirs(job_dir)
        with open(os.path.join(job_dir, "lease.json"), "w") as fh:
            json.dump({"pid": 2**22 + 12345, "nonce": "x", "beat": 0}, fh)
        assert not lease_is_live(read_lease(job_dir))

    def test_torn_lease_reads_as_none(self, tmp_path):
        job_dir = str(tmp_path / "job")
        os.makedirs(job_dir)
        with open(os.path.join(job_dir, "lease.json"), "w") as fh:
            fh.write("{half a lease")
        assert read_lease(job_dir) is None
        assert not lease_is_live(None)


@pytest.mark.slow
class TestSupervisedRunner:
    @pytest.mark.parametrize(
        "point", ["spawn", "lease", "run", "ckpt", "store"]
    )
    def test_crash_at_every_boundary_bitwise(self, tmp_path, point):
        # Kill the worker at each fault-domain boundary: before the
        # lease, right after it, mid-solve (first checkpoint event),
        # mid-checkpoint-write (between tmp write and atomic replace),
        # and after the solve but before the outcome report.  Every
        # variant must retry to completion with a result bitwise-equal
        # to an undisturbed run.
        spec = tiny_spec(
            name=f"crash_{point}", seeds=(0,), steps=2, checkpoint_every=1
        )
        job = spec.expand()[0]
        ref = Campaign(spec, str(tmp_path / "ref"))
        ref.run()
        chaos = FaultInjector(
            (
                FaultSpec(
                    kind="worker_crash", at=0, point=point, job=job.job_id
                ),
            ),
            seed=3,
        )
        camp = Campaign(
            spec,
            str(tmp_path / "chaos"),
            workers=1,
            policy=fast_policy(),
            chaos=chaos,
        )
        s = camp.run()
        assert s["status_counts"]["done"] == 1
        assert s["retries"] == 1 and s["quarantined"] == 0
        assert chaos.exhausted()
        b_ref = ref.store.get_bytes(job.digest())
        assert b_ref is not None
        assert camp.store.get_bytes(job.digest()) == b_ref

    def test_timeout_kills_and_requeues(self, tmp_path):
        # A worker hung before its first heartbeat is caught by the
        # attempt wall-clock budget, SIGKILLed, and the job requeued.
        spec = tiny_spec(name="hang", seeds=(0,), steps=1)
        job = spec.expand()[0]
        chaos = FaultInjector(
            (
                FaultSpec(
                    kind="worker_hang", at=0, point="spawn", job=job.job_id
                ),
            )
        )
        camp = Campaign(
            spec,
            str(tmp_path / "c"),
            workers=1,
            # Budget well above a clean attempt's wall time (a tiny job
            # runs ~2s): only the hung attempt may trip it.
            policy=fast_policy(job_timeout_s=8.0),
            chaos=chaos,
        )
        s = camp.run()
        assert s["status_counts"]["done"] == 1
        assert s["requeues"] == 1 and s["lease_expired"] == 1
        assert s["retries"] == 0
        entry = camp.manifest.jobs[job.digest()]
        assert entry["attempts"][0]["taxonomy"] == "job_timeout"

    def test_quarantine_after_max_attempts_keeps_context(self, tmp_path):
        spec = tiny_spec(name="poison", seeds=(0, 1))
        jobs = spec.expand()
        chaos = FaultInjector(
            (
                FaultSpec(
                    kind="worker_crash", at=0, point="spawn",
                    job=jobs[0].job_id,
                ),
                FaultSpec(
                    kind="worker_crash", at=1, point="lease",
                    job=jobs[0].job_id,
                ),
            )
        )
        camp = Campaign(
            spec,
            str(tmp_path / "c"),
            workers=1,
            policy=fast_policy(max_attempts=2),
            chaos=chaos,
        )
        s = camp.run()
        assert s["status_counts"] == {
            "pending": 0, "running": 0, "done": 1, "failed": 0,
            "quarantined": 1,
        }
        assert s["retries"] == 1 and s["quarantined"] == 1
        entry = camp.manifest.jobs[jobs[0].digest()]
        assert entry["status"] == "quarantined"
        assert entry["taxonomy"] == "worker_crash"
        assert entry["error_type"] == "WorkerCrash"
        assert len(entry["attempts"]) == 2
        assert [a["attempt"] for a in entry["attempts"]] == [0, 1]
        # The summary surfaces the attempt count per job.
        assert s["jobs"][jobs[0].digest()]["attempts"] == 2
        # Resuming the campaign skips the quarantined job entirely.
        s2 = Campaign.resume(
            str(tmp_path / "c"), workers=1, policy=fast_policy()
        ).run()
        assert s2["jobs_run"] == 0
        assert s2["status_counts"]["quarantined"] == 1

    def test_deterministic_failure_is_not_retried(self, tmp_path):
        # Solver divergence with recovery off raises a SolverFailure
        # whose taxonomy is non-transient: no retry budget burned,
        # immediate quarantine with the traceback persisted.
        spec = tiny_spec(name="det", seeds=(0,), steps=2)
        spec.base = merge_overrides(
            spec.base,
            {
                "faults": [
                    {"kind": "exchange_nan", "at": 40, "entries": 1}
                ],
                "fault_seed": 7,
                "recovery": {"enabled": False},
            },
        )
        job = spec.expand()[0]
        camp = Campaign(
            spec,
            str(tmp_path / "c"),
            workers=1,
            policy=fast_policy(max_attempts=3),
        )
        s = camp.run()
        assert s["retries"] == 0 and s["quarantined"] == 1
        entry = camp.manifest.jobs[job.digest()]
        assert entry["taxonomy"].startswith("nonfinite")
        assert len(entry["attempts"]) == 1
        assert "SolverFailure" in entry["traceback"]

    def test_store_write_faults_absorbed_by_retries(self, tmp_path):
        spec = tiny_spec(name="storeio", seeds=(0,))
        job = spec.expand()[0]
        chaos = FaultInjector(
            (FaultSpec(kind="io_fail", at=0, entries=2, job=job.digest()),)
        )
        camp = Campaign(
            spec,
            str(tmp_path / "c"),
            workers=1,
            policy=fast_policy(store_io_retries=3),
            chaos=chaos,
        )
        s = camp.run()
        assert s["status_counts"]["done"] == 1
        assert s["store_retries"] == 2
        assert s["retries"] == 0 and s["quarantined"] == 0

    def test_store_write_fault_exhaustion_costs_the_attempt(self, tmp_path):
        # A window wider than the store retry budget classifies the
        # attempt io_error (transient), so the whole job retries — and
        # with max_attempts=1 it quarantines.
        spec = tiny_spec(name="storedead", seeds=(0,))
        job = spec.expand()[0]
        chaos = FaultInjector(
            (FaultSpec(kind="io_fail", at=0, entries=20, job=job.digest()),)
        )
        camp = Campaign(
            spec,
            str(tmp_path / "c"),
            workers=1,
            policy=fast_policy(max_attempts=1, store_io_retries=2),
            chaos=chaos,
        )
        s = camp.run()
        assert s["status_counts"]["quarantined"] == 1
        assert s["store_retries"] == 2
        entry = camp.manifest.jobs[job.digest()]
        assert entry["taxonomy"] == "io_error"

    def test_live_lease_is_not_taken_over(self, tmp_path):
        # A `running` manifest entry whose lease holder is alive (here:
        # this very process) must be left alone — the pre-lease runner
        # would have re-run it, double-executing a live job.
        spec = tiny_spec(name="lease", seeds=(0,))
        root = str(tmp_path / "c")
        camp = Campaign(spec, root)
        job = camp.jobs[0]
        camp.manifest.mark(job.digest(), "running")
        write_lease(camp._job_dir(job), "held-elsewhere")
        s = Campaign.resume(root).run()
        assert s["jobs_run"] == 0
        assert s["status_counts"]["running"] == 1
        assert s["lease_expired"] == 0

    def test_stale_lease_takeover_is_counted(self, tmp_path):
        spec = tiny_spec(name="stale", seeds=(0,))
        root = str(tmp_path / "c")
        camp = Campaign(spec, root)
        job = camp.jobs[0]
        camp.manifest.mark(job.digest(), "running")
        job_dir = camp._job_dir(job)
        os.makedirs(job_dir, exist_ok=True)
        with open(os.path.join(job_dir, "lease.json"), "w") as fh:
            json.dump({"pid": 2**22 + 54321, "nonce": "dead", "beat": 1}, fh)
        s = Campaign.resume(root).run()
        assert s["status_counts"]["done"] == 1
        assert s["lease_expired"] == 1

    def test_supervised_matches_unsupervised_bitwise(self, tmp_path):
        spec = tiny_spec(name="par")
        plain = Campaign(spec, str(tmp_path / "plain"))
        plain.run()
        sup = Campaign(
            spec, str(tmp_path / "sup"), workers=2, policy=fast_policy()
        )
        s = sup.run()
        assert s["status_counts"]["done"] == 2
        assert s["supervised"] is True
        for job in spec.expand():
            d = job.digest()
            assert plain.store.get_bytes(d) == sup.store.get_bytes(d)


@pytest.mark.slow
class TestCampaignCLI:
    def write_spec(self, tmp_path, **kw):
        doc = tiny_spec(name="cli", seeds=(0,), **kw).to_dict()
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(doc))
        return str(path)

    def test_dry_run_table(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path)
        rc = main(
            ["campaign", spec, "--dry-run", "-d", str(tmp_path / "c")]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "campaign plan: cli" in out
        assert "turbine_tiny" in out

    def test_run_then_resume_directory(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path)
        root = str(tmp_path / "c")
        assert main(["campaign", spec, "-d", root]) == 0
        out = capsys.readouterr().out
        assert "done 1/1" in out
        # Resuming the directory re-runs nothing.
        assert main(["campaign", root, "--format", "json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["jobs_run"] == 0
        assert summary["status_counts"]["done"] == 1

    def test_output_file(self, tmp_path):
        spec = self.write_spec(tmp_path)
        out = tmp_path / "summary.json"
        rc = main(
            ["campaign", spec, "--dry-run", "-d", str(tmp_path / "c"),
             "--format", "json", "-o", str(out)]
        )
        assert rc == 0
        assert json.loads(out.read_text())["dry_run"]

    def test_bad_spec_exits_1(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["campaign", str(bad)]) == 1

    def test_supervised_run_exits_0(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path)
        rc = main(
            ["campaign", spec, "--supervised", "-d", str(tmp_path / "c"),
             "--format", "json"]
        )
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["supervised"] is True
        assert summary["status_counts"]["done"] == 1

    def test_quarantined_jobs_exit_3(self, tmp_path, capsys):
        doc = tiny_spec(name="cli_poison", seeds=(0,), steps=2).to_dict()
        doc["base"] = merge_overrides(
            doc["base"],
            {
                "faults": [
                    {"kind": "exchange_nan", "at": 40, "entries": 1}
                ],
                "fault_seed": 7,
                "recovery": {"enabled": False},
            },
        )
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(doc))
        rc = main(
            ["campaign", str(path), "--supervised", "--max-attempts", "2",
             "-d", str(tmp_path / "c"), "--format", "json"]
        )
        assert rc == 3
        summary = json.loads(capsys.readouterr().out)
        assert summary["status_counts"]["quarantined"] == 1
        assert summary["retries"] == 0  # deterministic: no retry burned

    def test_unknown_workload_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["run", "--workload", "no_such_workload"])
        assert exc.value.code == 2

    def test_list_workloads_exits_0(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", "--list"])
        assert exc.value.code == 0
        assert "turbine_tiny" in capsys.readouterr().out

    def test_run_config_file(self, tmp_path, capsys):
        cfg = SimulationConfig(nranks=2)
        path = tmp_path / "cfg.json"
        path.write_text(json.dumps(cfg.to_dict()))
        rc = main(
            ["run", "--workload", "turbine_tiny", "--steps", "1",
             "--config", str(path)]
        )
        assert rc == 0
        assert "2 ranks" in capsys.readouterr().out
