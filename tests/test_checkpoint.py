"""Tests for durable checkpoint/restart: format, retention, bitwise resume."""

import os

import numpy as np
import pytest

from repro.core.config import SimulationConfig
from repro.core.simulation import NaluWindSimulation
from repro.mesh import FieldManager, HexMesh
from repro.obs.metrics import MetricsRegistry
from repro.resilience import (
    CheckpointCorruptionError,
    CheckpointError,
    CheckpointManager,
    CheckpointNotFoundError,
    CheckpointWriteError,
    FaultInjector,
    FaultSpec,
    deserialize_checkpoint,
    read_checkpoint,
    serialize_checkpoint,
)
from repro.resilience.checkpoint import FILE_PATTERN, MAGIC, checkpoint_step


def sample_state():
    rng = np.random.default_rng(5)
    arrays = {
        "velocity": rng.standard_normal((7, 3)),
        "pressure": rng.standard_normal(7) * 1e-18,
        "ids": np.arange(7, dtype=np.int64),
    }
    meta = {"step_index": 3, "dt": 0.5, "nested": {"angles": [0.1, 0.2]}}
    return arrays, meta


class TestFormat:
    def test_roundtrip_is_bitwise(self):
        arrays, meta = sample_state()
        got_arrays, got_meta = deserialize_checkpoint(
            serialize_checkpoint(arrays, meta)
        )
        assert got_meta == meta
        assert sorted(got_arrays) == sorted(arrays)
        for name, arr in arrays.items():
            got = got_arrays[name]
            assert got.dtype == arr.dtype
            assert got.shape == arr.shape
            assert got.tobytes() == arr.tobytes()

    def test_restored_arrays_are_writable_copies(self):
        arrays, meta = sample_state()
        got, _ = deserialize_checkpoint(serialize_checkpoint(arrays, meta))
        got["velocity"][0, 0] = 42.0  # frombuffer views would raise here

    def test_bad_magic_rejected(self):
        arrays, meta = sample_state()
        blob = serialize_checkpoint(arrays, meta)
        with pytest.raises(CheckpointCorruptionError):
            deserialize_checkpoint(b"NOTCKPT!" + blob[len(MAGIC):])

    def test_truncation_rejected(self):
        blob = serialize_checkpoint(*sample_state())
        for cut in (4, len(MAGIC) + 4, len(blob) - 3):
            with pytest.raises(CheckpointCorruptionError):
                deserialize_checkpoint(blob[:cut])

    def test_payload_bit_flip_rejected(self):
        blob = bytearray(serialize_checkpoint(*sample_state()))
        blob[-1] ^= 0x01
        with pytest.raises(CheckpointCorruptionError):
            deserialize_checkpoint(bytes(blob))

    def test_garbled_header_rejected(self):
        bad = MAGIC + (4).to_bytes(8, "little") + b"\xff\xfe{!"
        with pytest.raises(CheckpointCorruptionError):
            deserialize_checkpoint(bad)

    def test_wrong_schema_rejected(self):
        blob = serialize_checkpoint(*sample_state())
        tampered = blob.replace(b"repro.checkpoint/1", b"repro.checkpoint/9")
        with pytest.raises(CheckpointCorruptionError):
            deserialize_checkpoint(tampered)

    def test_checkpoint_step_parsing(self):
        assert checkpoint_step(FILE_PATTERN.format(step=42)) == 42
        assert checkpoint_step("/ring/" + FILE_PATTERN.format(step=7)) == 7
        assert checkpoint_step("notes.txt") == -1
        assert checkpoint_step("ckpt-xyz.ckpt") == -1


class TestManager:
    def test_save_is_atomic_and_loadable(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path / "ring"))
        arrays, meta = sample_state()
        path = mgr.save(3, arrays, meta)
        assert os.path.basename(path) == FILE_PATTERN.format(step=3)
        assert not any(
            n.endswith(".tmp") for n in os.listdir(tmp_path / "ring")
        )
        got_arrays, got_meta = mgr.load(path)
        assert got_meta == meta
        assert got_arrays["velocity"].tobytes() == arrays["velocity"].tobytes()

    def test_retention_ring_prunes_oldest(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path), keep=2)
        arrays, meta = sample_state()
        for step in (1, 2, 3):
            mgr.save(step, arrays, meta)
        assert [checkpoint_step(p) for p in mgr.list_checkpoints()] == [2, 3]

    def test_load_latest_good_falls_back_past_corrupt(self, tmp_path):
        metrics = MetricsRegistry()
        mgr = CheckpointManager(str(tmp_path), metrics=metrics)
        arrays, meta = sample_state()
        mgr.save(1, arrays, dict(meta, step_index=1))
        newest = mgr.save(2, arrays, dict(meta, step_index=2))
        with open(newest, "r+b") as fh:
            fh.seek(-1, os.SEEK_END)
            fh.write(b"\x00")
        _, got_meta, got_path = mgr.load_latest_good()
        assert got_meta["step_index"] == 1
        assert checkpoint_step(got_path) == 1
        assert (
            metrics.counter_total("resilience.checkpoint.corrupt_detected")
            == 1
        )

    def test_load_latest_good_exhausts_ring(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path))
        path = mgr.save(1, *sample_state())
        with open(path, "wb") as fh:
            fh.write(b"garbage")
        with pytest.raises(CheckpointNotFoundError):
            mgr.load_latest_good()

    def test_empty_ring_raises_not_found(self, tmp_path):
        with pytest.raises(CheckpointNotFoundError):
            CheckpointManager(str(tmp_path / "none")).load_latest_good()

    def test_write_retries_through_injected_fault_window(self, tmp_path):
        metrics = MetricsRegistry()
        mgr = CheckpointManager(
            str(tmp_path),
            max_io_retries=3,
            injector=FaultInjector((FaultSpec("io_fail", at=0, entries=2),)),
            metrics=metrics,
        )
        path = mgr.save(1, *sample_state())
        assert os.path.exists(path)
        assert (
            metrics.counter_total("resilience.checkpoint.write_retries") == 2
        )
        assert (
            metrics.counter_total("resilience.checkpoint.write_failures") == 0
        )

    def test_write_retry_budget_exhausted(self, tmp_path):
        metrics = MetricsRegistry()
        mgr = CheckpointManager(
            str(tmp_path),
            max_io_retries=2,
            injector=FaultInjector((FaultSpec("io_fail", at=0, entries=5),)),
            metrics=metrics,
        )
        with pytest.raises(CheckpointWriteError):
            mgr.save(1, *sample_state())
        assert (
            metrics.counter_total("resilience.checkpoint.write_failures") == 1
        )
        # The failed write never replaced anything: the ring stays empty.
        assert mgr.list_checkpoints() == []

    def test_read_injected_fault_surfaces_as_corruption(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path))
        path = mgr.save(1, *sample_state())
        inj = FaultInjector((FaultSpec("io_fail", at=0),))
        with pytest.raises(CheckpointCorruptionError):
            read_checkpoint(path, injector=inj)
        # The fault was one-shot: a retry succeeds.
        read_checkpoint(path, injector=inj)

    def test_missing_file_raises_not_found(self, tmp_path):
        with pytest.raises(CheckpointNotFoundError):
            read_checkpoint(str(tmp_path / "nope.ckpt"))

    def test_manager_validates_settings(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(str(tmp_path), keep=0)
        with pytest.raises(ValueError):
            CheckpointManager(str(tmp_path), max_io_retries=-1)


class TestStateDictRoundTrips:
    def test_metrics_registry_roundtrip_is_lossless(self):
        src = MetricsRegistry()
        src.counter("solve.count", equation="pressure").inc(3)
        src.counter("solve.count", equation="momentum").inc()
        src.gauge("amg.levels").set(4.0)
        src.gauge("unwritten.gauge")
        src.histogram("solve.iters").observe(12.0)
        src.histogram("solve.iters").observe(3.0)
        dst = MetricsRegistry()
        dst.counter("stale.counter").inc(99)  # replaced, not merged
        dst.load_state(src.state_dict())
        assert dst.as_dict() == src.as_dict()
        assert dst.counter_total("stale.counter") == 0
        assert dst.gauge("unwritten.gauge")._written is False
        # A restored registry keeps accumulating from the restored values.
        dst.counter("solve.count", equation="pressure").inc()
        assert dst.counter_total("solve.count") == 5

    def test_field_manager_roundtrip_preserves_aliases(self):
        axes = [np.linspace(0.0, 1.0, 3)] * 3
        X = np.stack(np.meshgrid(*axes, indexing="ij"), axis=-1)
        fm = FieldManager(HexMesh.from_block("box", X))
        vel = fm.register("velocity", ncomp=3, time_states=2)
        fm.register("pressure")
        vel[:] = 1.0
        fm.shift_time_states()
        snap = fm.state_dict()
        vel[:] = 2.0
        fm.load_state(snap)
        # In-place restore: pre-existing aliases see the old values again.
        assert np.all(vel == 1.0)
        assert np.all(fm.old("velocity") == 1.0)

    def test_field_manager_rejects_unregistered_state(self):
        axes = [np.linspace(0.0, 1.0, 3)] * 3
        X = np.stack(np.meshgrid(*axes, indexing="ij"), axis=-1)
        fm = FieldManager(HexMesh.from_block("box", X))
        with pytest.raises(KeyError):
            fm.load_state({"ghost": np.zeros(27)})


FIELDS = (
    "velocity",
    "velocity_old",
    "pressure_field",
    "pressure_correction",
    "scalar_field",
    "scalar_old",
    "mdot",
)


class TestSimulationRestart:
    def test_restart_resumes_bitwise(self, tmp_path):
        sim_a = NaluWindSimulation(
            "turbine_tiny",
            SimulationConfig(
                checkpoint_every=1, checkpoint_dir=str(tmp_path / "a")
            ),
        )
        sim_a.run(2)
        ckpt = str(tmp_path / "a" / FILE_PATTERN.format(step=1))
        sim_b = NaluWindSimulation(
            "turbine_tiny",
            SimulationConfig(
                checkpoint_every=1,
                checkpoint_dir=str(tmp_path / "b"),
                restart_from=ckpt,
            ),
        )
        assert sim_b.step_index == 1
        rep_b = sim_b.run(2)
        assert rep_b.n_steps == 1  # total-from-t=0 semantics
        for name in FIELDS:
            assert (
                getattr(sim_a, name).tobytes()
                == getattr(sim_b, name).tobytes()
            ), name
        for ma, mb in zip(sim_a.system.blades, sim_b.system.blades):
            assert ma.coords.tobytes() == mb.coords.tobytes()
        assert [r.angle for r in sim_a.system.rotations] == [
            r.angle for r in sim_b.system.rotations
        ]
        assert sim_a.divergence_norms == sim_b.divergence_norms
        # Counter parity: the restored run's totals match the
        # uninterrupted run's, including its own checkpoint writes.
        for counter in ("solve.count", "resilience.checkpoint.writes"):
            assert sim_a.world.metrics.counter_total(
                counter
            ) == sim_b.world.metrics.counter_total(counter), counter

    def test_restart_from_ring_directory_uses_newest(self, tmp_path):
        ring = str(tmp_path / "ring")
        sim_a = NaluWindSimulation(
            "turbine_tiny",
            SimulationConfig(checkpoint_every=1, checkpoint_dir=ring),
        )
        sim_a.run(2)
        sim_b = NaluWindSimulation(
            "turbine_tiny", SimulationConfig(restart_from=ring)
        )
        assert sim_b.step_index == 2

    def test_restart_rejects_nranks_mismatch(self, tmp_path):
        ring = str(tmp_path / "ring")
        sim = NaluWindSimulation(
            "turbine_tiny",
            SimulationConfig(
                nranks=2, checkpoint_every=1, checkpoint_dir=ring
            ),
        )
        sim.run(1)
        with pytest.raises(CheckpointError):
            NaluWindSimulation(
                "turbine_tiny",
                SimulationConfig(nranks=3, restart_from=ring),
            )

    def test_restart_rejects_workload_mismatch(self, tmp_path):
        ring = str(tmp_path / "ring")
        sim = NaluWindSimulation(
            "turbine_tiny",
            SimulationConfig(checkpoint_every=1, checkpoint_dir=ring),
        )
        sim.run(1)
        arrays, meta = sim._checkpoint_manager().load(
            os.path.join(ring, FILE_PATTERN.format(step=1))
        )
        with pytest.raises(CheckpointError):
            sim2 = NaluWindSimulation("turbine_tiny")
            sim2.workload_name = "turbine_low"
            sim2._restore_durable_state(arrays, meta, cold=True)

    def test_resume_total_applies_only_to_first_run(self, tmp_path):
        ring = str(tmp_path / "ring")
        NaluWindSimulation(
            "turbine_tiny",
            SimulationConfig(checkpoint_every=2, checkpoint_dir=ring),
        ).run(2)
        sim = NaluWindSimulation(
            "turbine_tiny", SimulationConfig(restart_from=ring)
        )
        rep = sim.run(2)  # already at step 2: nothing to advance
        assert rep.n_steps == 0
        assert sim.step_index == 2
        sim.run(1)  # subsequent calls advance as usual
        assert sim.step_index == 3

    def test_recovery_summary_reports_checkpoint_activity(self, tmp_path):
        sim = NaluWindSimulation(
            "turbine_tiny",
            SimulationConfig(
                checkpoint_every=1, checkpoint_dir=str(tmp_path)
            ),
        )
        rep = sim.run(2)
        assert rep.recovery["checkpoint"]["writes"] == 2
        assert rep.recovery["checkpoint"]["restores"] == 0

    def test_checkpoint_and_restart_hub_events(self, tmp_path):
        ring = str(tmp_path / "ring")
        sim = NaluWindSimulation(
            "turbine_tiny",
            SimulationConfig(checkpoint_every=1, checkpoint_dir=ring),
        )
        ckpts = []
        sim.world.hub.subscribe("checkpoint", lambda **kw: ckpts.append(kw))
        sim.run(2)
        assert [e["step"] for e in ckpts] == [1, 2]
        assert all(os.path.exists(e["path"]) for e in ckpts)

        restarts = []
        sim_b = NaluWindSimulation("turbine_tiny")
        sim_b.world.hub.subscribe("restart", lambda **kw: restarts.append(kw))
        sim_b._load_restart(ring)
        assert restarts == [
            {
                "step": 2,
                "path": os.path.join(ring, FILE_PATTERN.format(step=2)),
                "source": "cold",
            }
        ]

    def test_config_validates_checkpoint_settings(self):
        with pytest.raises(ValueError):
            SimulationConfig(checkpoint_every=-1).validate()
        with pytest.raises(ValueError):
            SimulationConfig(checkpoint_keep=0).validate()
        with pytest.raises(ValueError):
            SimulationConfig(checkpoint_every=1, checkpoint_dir="").validate()
        SimulationConfig(
            checkpoint_every=1, checkpoint_dir="ring"
        ).validate()
