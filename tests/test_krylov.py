"""Tests for GMRES and the low-synchronization Gram-Schmidt kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.comm import SimWorld
from repro.krylov import GMRES, batched_dots, orthogonalize
from repro.linalg import ParCSRMatrix, ParVector
from repro.smoothers import JacobiSmoother, make_smoother


def poisson2d(nx):
    T = sparse.diags([-1.0, 2.0, -1.0], [-1, 0, 1], (nx, nx))
    return (sparse.kron(sparse.eye(nx), T) + sparse.kron(T, sparse.eye(nx))).tocsr()


def nonsym(n, seed=0):
    rng = np.random.default_rng(seed)
    A = sparse.random(n, n, density=0.08, random_state=seed, format="csr")
    A = A + sparse.diags(np.abs(A).sum(axis=1).A1 + 1.0)
    return A.tocsr()


def par(A, nranks=4):
    n = A.shape[0]
    w = SimWorld(nranks)
    offs = np.linspace(0, n, nranks + 1).astype(np.int64)
    return w, ParCSRMatrix(w, A, offs)


class TestGramSchmidt:
    def test_batched_dots_values(self):
        w = SimWorld(2)
        rng = np.random.default_rng(0)
        V = rng.standard_normal((20, 4))
        x = rng.standard_normal(20)
        d = batched_dots(w, V, x)
        assert np.allclose(d, V.T @ x)
        assert w.traffic.collective_count() == 1

    @pytest.mark.parametrize("variant", ["mgs", "cgs2", "one_reduce"])
    def test_orthogonalize_produces_orthogonal_vector(self, variant):
        rng = np.random.default_rng(1)
        w = SimWorld(2)
        V, _ = np.linalg.qr(rng.standard_normal((50, 6)))
        x = rng.standard_normal(50)
        wvec = x.copy()
        h, beta = orthogonalize(w, V, wvec, variant)
        assert np.abs(V.T @ wvec).max() < 1e-10
        assert beta == pytest.approx(np.linalg.norm(wvec), rel=1e-6)
        # Reconstruction: x == V h + w.
        assert np.allclose(V @ h + wvec, x, atol=1e-10)

    def test_empty_basis(self):
        w = SimWorld(2)
        x = np.array([3.0, 4.0])
        h, beta = orthogonalize(w, np.zeros((2, 0)), x.copy(), "one_reduce")
        assert h.size == 0
        assert beta == pytest.approx(5.0)

    def test_unknown_variant(self):
        w = SimWorld(1)
        with pytest.raises(ValueError):
            orthogonalize(w, np.zeros((3, 1)), np.zeros(3), "qr")

    def test_reduction_count_ordering(self):
        """one_reduce <= cgs2 <= mgs reductions per Arnoldi step."""
        counts = {}
        for variant in ("mgs", "cgs2", "one_reduce"):
            w = SimWorld(4)
            rng = np.random.default_rng(0)
            V, _ = np.linalg.qr(rng.standard_normal((64, 8)))
            x = rng.standard_normal(64)
            orthogonalize(w, V, x, variant)
            counts[variant] = w.traffic.collective_count()
        assert counts["one_reduce"] <= counts["cgs2"] <= counts["mgs"]
        assert counts["one_reduce"] == 1


class TestGMRES:
    @pytest.mark.parametrize("variant", ["mgs", "cgs2", "one_reduce"])
    def test_converges_unpreconditioned(self, variant):
        A = nonsym(150, seed=2)
        w, M = par(A)
        rng = np.random.default_rng(0)
        x_true = rng.standard_normal(150)
        b = M.new_vector(A @ x_true)
        res = GMRES(M, tol=1e-10, gs_variant=variant, max_iters=150).solve(b)
        assert res.converged
        assert np.allclose(res.x.data, x_true, atol=1e-6)

    def test_true_residual_matches_reported(self):
        A = nonsym(100, seed=3)
        w, M = par(A)
        b = M.new_vector(np.random.default_rng(1).standard_normal(100))
        res = GMRES(M, tol=1e-8).solve(b)
        true = np.linalg.norm(b.data - A @ res.x.data)
        assert true == pytest.approx(res.residual_norm, rel=1e-6)

    def test_right_preconditioning_reduces_iterations(self):
        A = poisson2d(16)
        w1, M1 = par(A)
        b1 = M1.new_vector(np.ones(A.shape[0]))
        plain = GMRES(M1, tol=1e-8, max_iters=400, restart=200).solve(b1)
        w2, M2 = par(A)
        b2 = M2.new_vector(np.ones(A.shape[0]))
        pre = GMRES(
            M2, preconditioner=make_smoother("sgs2", M2), tol=1e-8,
            max_iters=400
        ).solve(b2)
        assert pre.converged
        assert pre.iterations < plain.iterations

    def test_zero_rhs(self):
        A = nonsym(30)
        w, M = par(A, nranks=2)
        res = GMRES(M).solve(M.new_vector(np.zeros(30)))
        assert res.converged
        assert res.iterations == 0
        assert np.all(res.x.data == 0)

    def test_initial_guess_honored(self):
        A = nonsym(60, seed=5)
        w, M = par(A)
        rng = np.random.default_rng(0)
        x_true = rng.standard_normal(60)
        b = M.new_vector(A @ x_true)
        x0 = M.new_vector(x_true + 1e-8 * rng.standard_normal(60))
        res = GMRES(M, tol=1e-6).solve(b, x0=x0)
        assert res.iterations <= 2

    def test_restart_still_converges(self):
        A = poisson2d(12)
        w, M = par(A)
        b = M.new_vector(np.ones(A.shape[0]))
        res = GMRES(
            M,
            preconditioner=JacobiSmoother(M),
            tol=1e-8,
            restart=10,
            max_iters=500,
        ).solve(b)
        assert res.converged

    def test_max_iters_reported_unconverged(self):
        A = poisson2d(16)
        w, M = par(A)
        b = M.new_vector(np.ones(A.shape[0]))
        res = GMRES(M, tol=1e-14, max_iters=3).solve(b)
        assert not res.converged
        assert res.iterations == 3

    def test_residual_history_monotone_within_cycle(self):
        A = nonsym(100, seed=7)
        w, M = par(A)
        b = M.new_vector(np.random.default_rng(2).standard_normal(100))
        res = GMRES(M, tol=1e-10, restart=100).solve(b)
        h = res.residual_history
        assert all(b <= a * (1 + 1e-12) for a, b in zip(h[1:-1], h[2:]))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 200), nranks=st.integers(1, 5))
    def test_property_solution_independent_of_rank_count(self, seed, nranks):
        """Unpreconditioned GMRES arithmetic does not depend on the
        decomposition (the simulator exchanges exact values)."""
        A = nonsym(40, seed=seed)
        rng = np.random.default_rng(seed)
        bdat = rng.standard_normal(40)
        w, M = par(A, nranks=nranks)
        res = GMRES(M, tol=1e-10, max_iters=80).solve(
            M.new_vector(bdat.copy())
        )
        w1, M1 = par(A, nranks=1)
        ref = GMRES(M1, tol=1e-10, max_iters=80).solve(
            M1.new_vector(bdat.copy())
        )
        assert np.allclose(res.x.data, ref.x.data, atol=1e-8)


class TestGivensBreakdown:
    """Regression: the denom == 0 breakdown path used to keep the
    degenerate column (k = j + 1 with H[j, j] = 0), so the back
    substitution divided by zero and poisoned the solution with NaN."""

    def test_breakdown_keeps_solution_finite(self):
        # b lies in the operator's null direction: the first Arnoldi
        # vector maps to zero, denom = hypot(0, 0) = 0 at j = 0.
        A = sparse.csr_matrix(np.array([[0.0, 0.0], [0.0, 1.0]]))
        w, M = par(A, nranks=1)
        b = M.new_vector(np.array([1.0, 0.0]))
        res = GMRES(M, tol=1e-10, max_iters=50).solve(b)
        assert np.all(np.isfinite(res.x.data))
        assert np.isfinite(res.residual_norm)
        assert not res.converged
        # The true residual is reported: x stayed at 0, so r = b.
        assert res.residual_norm == pytest.approx(1.0)

    def test_breakdown_terminates_instead_of_restart_looping(self):
        # With no progress possible, a restart would rebuild the same
        # degenerate Krylov space forever; the solve must return.
        A = sparse.csr_matrix(np.zeros((3, 3)))
        w, M = par(A, nranks=1)
        b = M.new_vector(np.array([1.0, 2.0, 3.0]))
        res = GMRES(M, tol=1e-12, max_iters=10_000).solve(b)
        assert not res.converged
        assert np.all(np.isfinite(res.x.data))

    def test_nan_rhs_returns_promptly(self):
        # A poisoned RHS cannot converge; the solver reports it without
        # spinning NaN arithmetic through max_iters.
        A = poisson2d(5)
        w, M = par(A)
        data = np.ones(25)
        data[3] = np.nan
        res = GMRES(M, max_iters=500).solve(M.new_vector(data))
        assert not res.converged
        assert res.iterations == 0

    def test_nan_operand_stops_cg(self):
        from repro.krylov import CG

        A = poisson2d(5)
        w, M = par(A)
        data = np.ones(25)
        data[3] = np.nan
        res = CG(M, max_iters=500).solve(M.new_vector(data))
        assert not res.converged
        assert res.iterations <= 1
