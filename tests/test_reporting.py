"""Tests for chart rendering and hierarchy diagnostics."""

import numpy as np
import pytest
from scipy import sparse

from repro.amg import AMGHierarchy
from repro.comm import SimWorld
from repro.harness import loglog_chart
from repro.harness.scaling import NLISeries
from repro.linalg import ParCSRMatrix
from repro.perf import SUMMIT_GPU


def series(label, nodes, mean):
    return NLISeries(
        label=label,
        machine=SUMMIT_GPU,
        nodes=nodes,
        ranks=[int(6 * n) for n in nodes],
        mean=mean,
        std=[0.0] * len(nodes),
    )


class TestLogLogChart:
    def test_contains_markers_and_legend(self):
        s1 = series("gpu", [1.0, 2.0, 4.0], [8.0, 5.0, 3.0])
        s2 = series("cpu", [1.0, 2.0, 4.0], [50.0, 26.0, 14.0])
        out = loglog_chart("t", [s1, s2], width=30, height=8)
        assert "o = gpu" in out and "* = cpu" in out
        assert out.count("o") >= 3
        assert "[nodes]" in out

    def test_monotone_series_renders_monotone(self):
        s = series("gpu", [1.0, 10.0], [10.0, 1.0])
        out = loglog_chart("t", [s], width=20, height=6)
        lines = [l for l in out.splitlines() if l.startswith(" " * 10 + "|")]
        # First marker row (top) is the slow point at small node count:
        # its 'o' sits left; the bottom row's 'o' sits right.
        tops = [l for l in lines if "o" in l]
        assert tops[0].index("o") < tops[-1].index("o")

    def test_empty_series_handled(self):
        s = series("gpu", [], [])
        out = loglog_chart("t", [s])
        assert "(no data)" in out

    def test_slope_of_ideal_scaling(self):
        s = series("x", [1.0, 2.0, 4.0, 8.0], [8.0, 4.0, 2.0, 1.0])
        assert s.slope() == pytest.approx(-1.0)


class TestLevelTable:
    def test_table_lists_all_levels(self):
        nx = 20
        T = sparse.diags([-1.0, 2.0, -1.0], [-1, 0, 1], (nx, nx))
        A = (
            sparse.kron(sparse.eye(nx), T) + sparse.kron(T, sparse.eye(nx))
        ).tocsr()
        w = SimWorld(2)
        M = ParCSRMatrix(w, A, np.array([0, 200, 400]))
        h = AMGHierarchy(M)
        table = h.level_table()
        assert "operator complexity" in table
        # One data row per level.
        data_rows = [
            l for l in table.splitlines() if l[:3].strip().isdigit()
        ]
        assert len(data_rows) == h.num_levels
        assert "400" in data_rows[0]
