"""Golden-output tests for the obs/export.py text renderers.

The renderers were previously only exercised incidentally (through CLI
smoke tests); these tests pin the exact text for a small hand-built
:class:`~repro.obs.telemetry.RunTelemetry`, so format drift — column
widths, number formatting, ordering — is an explicit decision, not an
accident.  The inputs are synthetic (no simulation run), so every
number in the goldens is exact.
"""

from __future__ import annotations

from repro.obs import RunTelemetry, render_flat_report, render_span_tree
from repro.obs.tracer import Span


def _telemetry() -> RunTelemetry:
    step = Span(name="step", start=0.0, duration=0.012, attrs={"index": 0})
    picard = Span(name="picard", start=0.002, duration=0.008, attrs={"index": 0})
    solve = Span(name="momentum/solve", start=0.004, duration=0.005)
    picard.children.append(solve)
    step.children.append(picard)
    return RunTelemetry(
        workload="unit",
        nranks=2,
        n_steps=1,
        total_nodes=100,
        spans=[step.to_dict()],
        phases={
            "momentum/solve": {"total_s": 0.005, "count": 1},
            "motion": {"total_s": 0.001, "count": 1},
        },
        solves={
            "momentum": {
                "iterations": [3, 5],
                "residual_norms": [1.25e-6, 4.5e-7],
            }
        },
        amg_setups=[
            {
                "num_levels": 4,
                "grid_complexity": 1.625,
                "operator_complexity": 2.25,
            }
        ],
        traffic={
            "total_messages": 12,
            "total_message_bytes": 4096,
            "total_collectives": 7,
        },
    )


GOLDEN_TREE = """\
span tree: unit (2 ranks, 1 steps)
----------------------------------
step                                         12.000 ms  (self 4.000 ms) [index=0]
  picard                                      8.000 ms  (self 3.000 ms) [index=0]
    momentum/solve                            5.000 ms  (self 5.000 ms)"""


GOLDEN_TREE_DEPTH1 = """\
span tree: unit (2 ranks, 1 steps)
----------------------------------
step                                         12.000 ms  (self 4.000 ms) [index=0]
  picard                                      8.000 ms  (self 3.000 ms) [index=0]"""


GOLDEN_FLAT = """\
run telemetry: unit (2 ranks, 1 steps, 100 nodes)
=================================================
phase                                   total [s]   count
  momentum/solve                           0.0050       1
  motion                                   0.0010       1
equation       solves  mean iters  last residual
  momentum          2        4.00       4.500e-07
amg: 1 setups; last hierarchy 4 levels, grid complexity 1.62, operator complexity 2.25
traffic: 12 messages / 4096 B p2p, 7 collectives"""


def test_render_span_tree_golden():
    assert render_span_tree(_telemetry()) == GOLDEN_TREE


def test_render_span_tree_depth_cap():
    assert render_span_tree(_telemetry(), max_depth=1) == GOLDEN_TREE_DEPTH1


def test_render_span_tree_empty():
    t = RunTelemetry(workload="unit", nranks=1, n_steps=0)
    out = render_span_tree(t)
    assert out.splitlines()[-1] == "(no spans recorded)"


def test_render_flat_report_golden():
    assert render_flat_report(_telemetry()) == GOLDEN_FLAT


def test_render_flat_report_no_optional_sections():
    t = RunTelemetry(workload="unit", nranks=1, n_steps=1, total_nodes=10)
    out = render_flat_report(t)
    # No AMG / traffic lines when those sections are empty.
    assert "amg:" not in out
    assert "traffic:" not in out
    assert out.startswith("run telemetry: unit (1 ranks, 1 steps, 10 nodes)")
