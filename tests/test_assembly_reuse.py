"""Tests for the pattern-frozen assembly fast path and setup reuse.

Covers the AssemblyPlan capture/replay equivalence (the fast path must
produce *exactly* the operator the cold path would — values, indptr,
indices, diag/offd split — across all three assembly variants), plan
invalidation on graph rebuild, the AMG numeric refresh, and the unified
Krylov/smoother APIs that ride along.
"""

import warnings

import numpy as np
import pytest

from repro.amg.hierarchy import AMGHierarchy, AMGOptions
from repro.assembly import (
    AssemblyPlan,
    EquationGraph,
    GraphSpec,
    HypreIJMatrix,
    LocalAssembler,
    assemble_global_matrix,
    assemble_global_vector,
)
from repro.comm import SimWorld
from repro.core import CompositeMesh, PhaseTimers, SimulationConfig
from repro.krylov import (
    CG,
    GMRES,
    KrylovResult,
    make_krylov_solver,
)
from repro.linalg.parcsr import ParCSRMatrix
from repro.mesh import make_turbine_tiny
from repro.partition import build_numbering
from repro.smoothers import (
    JacobiSmoother,
    TwoStageGS,
    make_smoother,
)

VARIANTS = ("optimized", "sparse_add", "general")


def build_problem(seed=0, n=80, E=200, nranks=4, ncons=5):
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n, size=(E, 2))
    edges = edges[edges[:, 0] != edges[:, 1]]
    cons = rng.choice(n, size=ncons, replace=False)
    parts = rng.integers(0, nranks, size=n)
    num = build_numbering(parts, nranks)
    w = SimWorld(nranks)
    g = EquationGraph(w, num, GraphSpec(n=n, edges=edges, constraint_rows=cons))
    return rng, w, num, g, edges, cons


def fill_local(w, g, num, edges, cons, value_seed):
    """One Stage-2 fill with values drawn from ``value_seed``."""
    rng = np.random.default_rng(value_seed)
    E = edges.shape[0]
    ge = rng.random(E) + 0.1
    la = LocalAssembler(w, g)
    la.add_edge_matrix(np.stack([ge, -ge, -ge, ge], axis=1))
    la.add_diag(rng.random(g.n) + 1.0)
    la.add_node_rhs(rng.standard_normal(g.n))
    la.add_edge_rhs(rng.standard_normal((E, 2)))
    la.set_constraint_rhs(num.old_to_new[cons], rng.standard_normal(cons.size))
    return la.finalize()


def assert_matrices_identical(m_fast: ParCSRMatrix, m_cold: ParCSRMatrix):
    """Exact (bitwise) structural + numeric equality of two ParCSR matrices."""
    assert np.array_equal(m_fast.A.indptr, m_cold.A.indptr)
    assert np.array_equal(m_fast.A.indices, m_cold.A.indices)
    assert np.array_equal(m_fast.A.data, m_cold.A.data)
    for bf, bc in zip(m_fast.blocks, m_cold.blocks):
        assert np.array_equal(bf.col_map_offd, bc.col_map_offd)
        for attr in ("diag", "offd"):
            f, c = getattr(bf, attr), getattr(bc, attr)
            assert np.array_equal(f.indptr, c.indptr)
            assert np.array_equal(f.indices, c.indices)
            assert np.array_equal(f.data, c.data)


class TestMatrixFastPath:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_replay_bitwise_equal_to_cold(self, variant):
        """Fast path must reproduce the cold path exactly, per variant."""
        _rng, w, num, g, edges, cons = build_problem(seed=7)
        plan = AssemblyPlan(num, variant, graph=g, name="A")

        local1 = fill_local(w, g, num, edges, cons, value_seed=1)
        am1 = assemble_global_matrix(w, num, local1, variant, plan=plan)
        assert plan.matrix_ready
        assert am1.matrix is plan.matrix

        # New values, same pattern: replay and compare with a cold run.
        local2 = fill_local(w, g, num, edges, cons, value_seed=2)
        am_fast = assemble_global_matrix(w, num, local2, variant, plan=plan)
        am_cold = assemble_global_matrix(w, num, local2, variant)
        assert am_fast.matrix is plan.matrix  # in-place update
        assert am_fast.diag_nnz == am_cold.diag_nnz
        assert am_fast.offd_nnz == am_cold.offd_nnz
        assert_matrices_identical(am_fast.matrix, am_cold.matrix)

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_vector_replay_bitwise_equal_to_cold(self, variant):
        _rng, w, num, g, edges, cons = build_problem(seed=13)
        plan = AssemblyPlan(num, variant, graph=g, name="b")

        local1 = fill_local(w, g, num, edges, cons, value_seed=3)
        assemble_global_vector(w, num, local1, variant, plan=plan)
        assert plan.vector_ready

        local2 = fill_local(w, g, num, edges, cons, value_seed=4)
        rhs_fast = assemble_global_vector(w, num, local2, variant, plan=plan)
        rhs_cold = assemble_global_vector(w, num, local2, variant)
        assert np.array_equal(rhs_fast.data, rhs_cold.data)

    def test_replay_over_many_fills(self):
        """Plan stays valid over repeated value updates (Picard loop)."""
        _rng, w, num, g, edges, cons = build_problem(seed=3)
        plan = AssemblyPlan(num, "optimized", graph=g, name="A")
        assemble_global_matrix(
            w, num, fill_local(w, g, num, edges, cons, 0), "optimized",
            plan=plan,
        )
        for k in range(1, 5):
            local = fill_local(w, g, num, edges, cons, k)
            fast = assemble_global_matrix(
                w, num, local, "optimized", plan=plan
            )
            cold = assemble_global_matrix(w, num, local, "optimized")
            assert_matrices_identical(fast.matrix, cold.matrix)

    def test_variant_mismatch_rejected(self):
        _rng, w, num, g, edges, cons = build_problem()
        plan = AssemblyPlan(num, "optimized", graph=g)
        local = fill_local(w, g, num, edges, cons, 0)
        with pytest.raises(ValueError):
            assemble_global_matrix(w, num, local, "general", plan=plan)
        with pytest.raises(ValueError):
            assemble_global_vector(w, num, local, "general", plan=plan)

    def test_plan_telemetry_counters(self):
        _rng, w, num, g, edges, cons = build_problem(seed=21)
        plan = AssemblyPlan(num, "optimized", graph=g, name="A")
        hits = w.metrics.counter("assembly.plan_hits", equation="A")
        rebuilds = w.metrics.counter("assembly.plan_rebuilds", equation="A")
        assemble_global_matrix(
            w, num, fill_local(w, g, num, edges, cons, 0), "optimized",
            plan=plan,
        )
        assert rebuilds.value == 1 and hits.value == 0
        for _ in range(3):
            assemble_global_matrix(
                w, num, fill_local(w, g, num, edges, cons, 1), "optimized",
                plan=plan,
            )
        assert rebuilds.value == 1 and hits.value == 3


class TestUpdateRankValues:
    def test_pattern_frozen_value_update(self):
        _rng, w, num, g, edges, cons = build_problem(seed=5)
        local = fill_local(w, g, num, edges, cons, 0)
        am = assemble_global_matrix(w, num, local, "optimized")
        M = am.matrix
        # Doubling every rank's values must equal doubling the CSR.
        ref = 2.0 * M.A.toarray()
        for r in range(num.nranks):
            s = M.A.indptr[M.row_offsets[r]]
            e = M.A.indptr[M.row_offsets[r + 1]]
            M.update_rank_values(r, 2.0 * M.A.data[s:e])
        assert np.array_equal(M.A.toarray(), ref)
        for r, b in enumerate(M.blocks):
            lo, hi = M.row_offsets[r], M.row_offsets[r + 1]
            clo, chi = M.col_offsets[r], M.col_offsets[r + 1]
            assert np.array_equal(
                b.diag.toarray(), ref[lo:hi, clo:chi]
            )

    def test_wrong_size_rejected(self):
        _rng, w, num, g, edges, cons = build_problem(seed=5)
        am = assemble_global_matrix(
            w, num, fill_local(w, g, num, edges, cons, 0), "optimized"
        )
        with pytest.raises(ValueError):
            am.matrix.update_rank_values(0, np.zeros(3))


class TestGraphRevision:
    def test_rebuild_bumps_revision(self):
        _rng, w, num, g, edges, cons = build_problem(seed=9)
        g2 = EquationGraph(
            w, num, GraphSpec(n=g.n, edges=edges, constraint_rows=cons)
        )
        assert g2.revision > g.revision

    def test_mesh_motion_invalidates_plan(self):
        """A graph rebuild (mesh motion) forces a plan recapture."""
        cfg = SimulationConfig(nranks=3)
        w = SimWorld(cfg.nranks)
        comp = CompositeMesh(w, make_turbine_tiny(), cfg.partition_method)
        from repro.core.physics import ScalarTransportSystem

        scal = ScalarTransportSystem(comp, cfg, PhaseTimers())
        E = comp.edges.shape[0]
        kwargs = dict(
            mdot=np.ones(E),
            scalar=np.full(comp.n, 1e-2),
            scalar_old=np.full(comp.n, 1e-2),
        )
        scal.assemble(**kwargs)
        plan1 = scal._plan
        assert plan1 is not None and plan1.matrix_ready
        scal.assemble(**kwargs)
        assert scal._plan is plan1  # unchanged graph: same plan, fast path
        hits = w.metrics.counter("assembly.plan_hits", equation="scalar")
        assert hits.value == 1

        scal.update_graph()  # mesh motion rebuilds Stage 1
        scal.assemble(**kwargs)
        assert scal._plan is not plan1  # stale revision dropped
        assert scal._plan.graph_revision == scal.graph.revision
        rebuilds = w.metrics.counter(
            "assembly.plan_rebuilds", equation="scalar"
        )
        assert rebuilds.value == 2

    def test_reuse_disabled_no_plan(self):
        cfg = SimulationConfig(nranks=2, reuse_assembly_plan=False)
        w = SimWorld(cfg.nranks)
        comp = CompositeMesh(w, make_turbine_tiny(), cfg.partition_method)
        from repro.core.physics import ScalarTransportSystem

        scal = ScalarTransportSystem(comp, cfg, PhaseTimers())
        E = comp.edges.shape[0]
        scal.assemble(
            mdot=np.ones(E),
            scalar=np.full(comp.n, 1e-2),
            scalar_old=np.full(comp.n, 1e-2),
        )
        assert scal._plan is None


class TestIJReuse:
    def test_ij_matrix_freezes_and_invalidates(self):
        """Same staged pattern replays; a new pattern drops the plan."""
        n, nranks = 12, 2
        parts = np.repeat(np.arange(nranks), n // nranks)
        num = build_numbering(parts, nranks)
        w = SimWorld(nranks)
        ij = HypreIJMatrix(w, num, reuse_plan=True)
        i = np.arange(n, dtype=np.int64)

        def stage(scale):
            for r in range(nranks):
                lo, hi = num.offsets[r], num.offsets[r + 1]
                sel = slice(lo, hi)
                ij.set_values2(
                    r, i[sel], i[sel], scale * np.ones(hi - lo)
                )
                other = (lo + np.arange(2)) % n
                other = other[(other < lo) | (other >= hi)]
                ij.add_to_values2(
                    r, other, other, scale * np.ones(other.size)
                )

        stage(1.0)
        am1 = ij.assemble()
        data1 = am1.matrix.A.data.copy()
        plan = ij._plan
        assert plan is not None and plan.matrix_ready
        stage(2.0)
        am2 = ij.assemble()
        assert ij._plan is plan  # same pattern: reuse
        assert am2.matrix is am1.matrix  # in-place value update
        assert np.array_equal(am2.matrix.A.data, 2.0 * data1)
        # Different pattern: plan dropped, recaptured on next assemble.
        ij.set_values2(
            0,
            np.zeros(1, dtype=np.int64),
            np.ones(1, dtype=np.int64),
            np.ones(1),
        )
        assert ij._plan is None
        ij.assemble()
        assert ij._plan is not None and ij._plan is not plan


class TestAMGRefresh:
    def _poisson(self, w, n=96, nranks=4):
        rng = np.random.default_rng(11)
        from scipy import sparse

        main = 2.0 * np.ones(n)
        off = -1.0 * np.ones(n - 1)
        A = sparse.diags([off, main, off], [-1, 0, 1]).tocsr()
        offsets = np.linspace(0, n, nranks + 1).astype(np.int64)
        return ParCSRMatrix(w, A, offsets)

    def test_refresh_is_linear_in_fine_values(self):
        """Frozen P/R makes RAP linear: scaling A_0 scales every level."""
        w = SimWorld(4)
        M = self._poisson(w)
        h = AMGHierarchy(M, AMGOptions(agg_levels=0, interp="direct"))
        before = [lvl.A.A.toarray().copy() for lvl in h.levels]
        assert len(h.levels) >= 2

        M.refresh_values(2.0 * M.A)
        h.refresh()
        for lvl, ref in zip(h.levels, before):
            assert np.allclose(lvl.A.A.toarray(), 2.0 * ref, atol=1e-12)
        assert w.metrics.counter("amg.refresh_count").value == 1

    def test_refresh_same_values_is_identity(self):
        w = SimWorld(2)
        M = self._poisson(w, n=64, nranks=2)
        h = AMGHierarchy(M, AMGOptions(agg_levels=0, interp="direct"))
        before = [lvl.A.A.toarray().copy() for lvl in h.levels]
        h.refresh()
        for lvl, ref in zip(h.levels, before):
            assert np.allclose(lvl.A.A.toarray(), ref, atol=1e-12)

    def test_refresh_rejects_pattern_change(self):
        w = SimWorld(2)
        M = self._poisson(w, n=64, nranks=2)
        h = AMGHierarchy(M, AMGOptions(agg_levels=0, interp="direct"))
        other = self._poisson(w, n=32, nranks=2)
        with pytest.raises(ValueError):
            h.refresh(other)

    def test_pressure_system_refresh_between_rebuilds(self):
        cfg = SimulationConfig(nranks=2, precond_rebuild_every=3)
        w = SimWorld(cfg.nranks)
        comp = CompositeMesh(w, make_turbine_tiny(), cfg.partition_method)
        from repro.core.physics import PressurePoissonSystem

        pres = PressurePoissonSystem(comp, cfg, PhaseTimers())
        E = comp.edges.shape[0]
        kwargs = dict(
            mdot=np.zeros(E),
            pressure_correction_bc=np.zeros(comp.n),
        )
        A, b = pres.assemble(**kwargs)
        pres.solve(A, b)
        assert w.metrics.counter("amg.setups").value == 1
        assert w.metrics.counter("amg.refresh_count").value == 0
        A, b = pres.assemble(**kwargs)
        pres.solve(A, b)  # intermediate solve: numeric refresh, no rebuild
        assert w.metrics.counter("amg.setups").value == 1
        assert w.metrics.counter("amg.refresh_count").value == 1


class TestKrylovAPI:
    def _system(self):
        w = SimWorld(2)
        from scipy import sparse

        n = 40
        A = sparse.diags(
            [-np.ones(n - 1), 3.0 * np.ones(n), -np.ones(n - 1)],
            [-1, 0, 1],
        ).tocsr()
        offsets = np.array([0, n // 2, n], dtype=np.int64)
        M = ParCSRMatrix(w, A, offsets)
        b = M.new_vector(np.ones(n))
        return M, b

    def test_factory_dispatches_gmres_and_cg(self):
        M, b = self._system()
        cfg_g = SimulationConfig().momentum_solver
        solver = make_krylov_solver(M, None, cfg_g)
        assert isinstance(solver, GMRES)
        res = solver.solve(b)
        assert isinstance(res, KrylovResult)
        assert res.method == "gmres" and res.converged

        cfg_c = SimulationConfig().pressure_solver
        cfg_c.method = "cg"
        solver = make_krylov_solver(M, None, cfg_c)
        assert isinstance(solver, CG)
        res = solver.solve(b)
        assert res.method == "cg" and res.converged

    def test_unknown_method_rejected(self):
        M, b = self._system()

        class Cfg:
            method = "bicgstab"

        with pytest.raises(ValueError):
            make_krylov_solver(M, None, Cfg())

    def test_config_validates_method(self):
        cfg = SimulationConfig()
        cfg.pressure_solver.method = "bogus"
        with pytest.raises(ValueError):
            cfg.validate()

    def test_config_validates_reuse_toggles(self):
        cfg = SimulationConfig(precond_rebuild_every=0)
        with pytest.raises(ValueError):
            cfg.validate()

    def test_removed_result_aliases_raise(self):
        import repro.krylov as krylov

        with pytest.raises(AttributeError):
            krylov.GMRESResult
        with pytest.raises(AttributeError):
            krylov.CGResult
        assert "GMRESResult" not in krylov.__all__
        assert "CGResult" not in krylov.__all__


class TestSmootherFactory:
    def _matrix(self):
        w = SimWorld(2)
        from scipy import sparse

        n = 24
        A = sparse.diags(
            [-np.ones(n - 1), 4.0 * np.ones(n), -np.ones(n - 1)],
            [-1, 0, 1],
        ).tocsr()
        return ParCSRMatrix(w, A, np.array([0, n // 2, n], dtype=np.int64))

    def test_registry_builds_every_name(self):
        from repro.smoothers import SMOOTHER_NAMES

        M = self._matrix()
        b = M.new_vector(np.ones(M.shape[0]))
        for name in SMOOTHER_NAMES:
            with warnings.catch_warnings():
                warnings.simplefilter("error", DeprecationWarning)
                sm = make_smoother(name, M)  # factory path stays silent
            z = sm.apply(b)
            assert np.all(np.isfinite(z.data))

    def test_sgs2_factory_defaults(self):
        M = self._matrix()
        sm = make_smoother("sgs2", M)
        assert isinstance(sm, TwoStageGS)
        assert sm.symmetric and sm.inner_sweeps == 2 and sm.outer_sweeps == 2

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_smoother("ilu", self._matrix())

    def test_direct_construction_warns(self):
        M = self._matrix()
        with pytest.warns(DeprecationWarning, match="make_smoother"):
            JacobiSmoother(M)
        with pytest.warns(DeprecationWarning, match="two_stage_gs"):
            TwoStageGS(M)
