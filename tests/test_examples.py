"""Smoke tests: every example script runs end to end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, argv: list[str]) -> None:
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    _run("quickstart.py", [])
    out = capsys.readouterr().out
    assert "simulated NLI time/step" in out


def test_partitioning_study(capsys):
    _run("partitioning_study.py", ["4"])
    out = capsys.readouterr().out
    assert "RCB" in out and "multilevel" in out


def test_assembly_pipeline_tour(capsys):
    _run("assembly_pipeline_tour.py", [])
    out = capsys.readouterr().out
    assert "IJ-interface assembly matches" in out
    assert "max |diff| = 0.00e+00" in out


def test_amg_solver_tour(capsys):
    _run("amg_solver_tour.py", [])
    out = capsys.readouterr().out
    assert "AMG(mm_ext)" in out
    assert "SGS2 only" in out


@pytest.mark.slow
def test_turbine_wake_study(capsys):
    _run("turbine_wake_study.py", ["1"])
    out = capsys.readouterr().out
    assert "Axial wake profile" in out
