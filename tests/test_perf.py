"""Tests for the op recorder, machine catalog, and cost model."""

import numpy as np
import pytest

from repro.comm import SimWorld
from repro.perf import (
    CostModel,
    EAGLE_GPU,
    MACHINES,
    OpRecorder,
    SUMMIT_CPU,
    SUMMIT_GPU,
    get_machine,
)
from repro.perf.cost import PhaseAggregate, collect_phase_aggregates
from repro.perf.opcounts import KernelTally


class TestOpRecorder:
    def test_record_and_tally(self):
        rec = OpRecorder()
        rec.record("p", 0, "spmv", flops=10, nbytes=100)
        rec.record("p", 0, "spmv", flops=5, nbytes=50, launches=2)
        t = rec.tally("p", 0)
        assert t.flops == 15
        assert t.bytes == 150
        assert t.launches == 3

    def test_max_rank_tally(self):
        rec = OpRecorder()
        rec.record("p", 0, "k", flops=10, nbytes=1)
        rec.record("p", 1, "k", flops=5, nbytes=100)
        t = rec.max_rank_tally("p")
        assert t.flops == 10
        assert t.bytes == 100

    def test_total_across_phases(self):
        rec = OpRecorder()
        rec.record("a", 0, "k", flops=1)
        rec.record("b", 1, "k", flops=2)
        assert rec.total().flops == 3
        assert rec.total("a").flops == 1

    def test_kernel_total(self):
        rec = OpRecorder()
        rec.record("a", 0, "spmv", flops=1)
        rec.record("b", 2, "spmv", flops=4)
        rec.record("a", 0, "sort", flops=8)
        assert rec.kernel_total("spmv").flops == 5

    def test_peak_alloc_tracks_high_water_mark(self):
        rec = OpRecorder()
        rec.record_alloc(0, 100)
        rec.record_alloc(0, 50)
        rec.record_alloc(0, -120)
        rec.record_alloc(0, 10)
        assert rec.peak_alloc(0) == 150
        rec.record_alloc(1, 500)
        assert rec.peak_alloc() == 500

    def test_phases_and_ranks(self):
        rec = OpRecorder()
        rec.record("z", 3, "k")
        rec.record("a", 1, "k")
        assert rec.phases() == ["a", "z"]
        assert rec.ranks("z") == [3]


class TestMachines:
    def test_catalog_contents(self):
        assert set(MACHINES) == {
            "summit-gpu",
            "summit-cpu",
            "summit-cpu-grp",
            "eagle-gpu",
            "eagle-cpu",
            "eagle-cpu-grp",
        }

    def test_get_machine_unknown(self):
        with pytest.raises(KeyError):
            get_machine("frontier")

    def test_eagle_has_lower_message_latency_than_summit(self):
        # The Fig. 11 headline is carried by the MPI-stack difference.
        assert EAGLE_GPU.msg_latency < SUMMIT_GPU.msg_latency

    def test_gpu_devices_per_node(self):
        assert SUMMIT_GPU.devices_per_node == 6
        assert EAGLE_GPU.devices_per_node == 2

    def test_effective_rates(self):
        m = SUMMIT_GPU
        assert m.eff_flops == m.peak_flops * m.flop_eff
        assert m.eff_bw == m.mem_bw * m.bw_eff

    def test_with_override(self):
        m = SUMMIT_GPU.with_(msg_latency=1e-9)
        assert m.msg_latency == 1e-9
        assert m.name == SUMMIT_GPU.name


class TestCostModel:
    def test_kernel_time_is_roofline(self):
        cm = CostModel(SUMMIT_GPU)
        # Pure-flops tally.
        t_flops = cm.kernel_time(KernelTally(flops=SUMMIT_GPU.eff_flops, bytes=0, launches=0))
        assert t_flops == pytest.approx(1.0)
        # Pure-bytes tally.
        t_bytes = cm.kernel_time(KernelTally(flops=0, bytes=SUMMIT_GPU.eff_bw, launches=0))
        assert t_bytes == pytest.approx(1.0)

    def test_launch_overhead_dominates_tiny_kernels(self):
        cm = CostModel(SUMMIT_GPU)
        t = cm.kernel_time(KernelTally(flops=1, bytes=8, launches=100))
        assert t == pytest.approx(100 * SUMMIT_GPU.launch_overhead, rel=1e-3)

    def test_cpu_has_no_launch_overhead(self):
        cm = CostModel(SUMMIT_CPU)
        t = cm.kernel_time(KernelTally(flops=0, bytes=0, launches=1000))
        assert t == 0.0

    def test_memory_penalty(self):
        cm = CostModel(SUMMIT_GPU)
        assert cm.memory_penalty(1e9) == 1.0
        over = cm.memory_penalty(2 * SUMMIT_GPU.device_memory)
        assert over > 1.0

    def test_work_scale_scales_volume_not_launches(self):
        cm1 = CostModel(SUMMIT_GPU, work_scale=1.0)
        cm1000 = CostModel(SUMMIT_GPU, work_scale=1000.0)
        tally = KernelTally(flops=1e9, bytes=1e9, launches=0)
        assert cm1000.kernel_time(tally) == pytest.approx(
            1000 * cm1.kernel_time(tally)
        )
        launch_only = KernelTally(flops=0, bytes=0, launches=5)
        assert cm1000.kernel_time(launch_only) == cm1.kernel_time(launch_only)

    def test_collective_time_log_depth(self):
        cm = CostModel(SUMMIT_GPU)
        t2 = cm.collective_time(1, 8, 2)
        t16 = cm.collective_time(1, 8, 16)
        assert t16 == pytest.approx(4 * t2, rel=0.01)
        assert cm.collective_time(1, 8, 1) == 0.0

    def test_phase_pricing_from_world(self):
        w = SimWorld(2)
        with w.phase_scope("work"):
            w.ops.record("work", 0, "k", flops=1e9, nbytes=1e9)
            w.traffic.record_message(0, 1, 1000, "work")
        cm = CostModel(SUMMIT_GPU)
        times = cm.run_time(w)
        assert "work" in times
        assert times["work"].compute > 0
        assert times["work"].comm > 0

    def test_single_rank_run_has_no_comm(self):
        w = SimWorld(1)
        w.ops.record("p", 0, "k", flops=1e6, nbytes=1e6)
        cm = CostModel(SUMMIT_GPU)
        assert cm.run_time(w)["p"].comm == 0.0


class TestPhaseAggregate:
    def test_minus_plus_roundtrip(self):
        a = PhaseAggregate(flops=10, bytes=20, msgs=3)
        b = PhaseAggregate(flops=4, bytes=5, msgs=1)
        d = a.minus(b)
        assert d.flops == 6 and d.bytes == 15 and d.msgs == 2
        assert d.plus(b).flops == a.flops

    def test_collect_from_world(self):
        w = SimWorld(2)
        with w.phase_scope("x"):
            w.ops.record("x", 1, "k", flops=7, nbytes=9, launches=2)
            w.traffic.record_message(1, 0, 64, "x")
            w.traffic.record_collective("allreduce", 2, 8, "x")
        aggs = collect_phase_aggregates(w)
        assert aggs["x"].flops == 7
        assert aggs["x"].msgs == 1
        assert aggs["x"].colls == 1

    def test_price_aggregate_matches_phase_time(self):
        w = SimWorld(2)
        with w.phase_scope("x"):
            w.ops.record("x", 0, "k", flops=1e8, nbytes=1e8)
            w.traffic.record_message(0, 1, 4096, "x")
        cm = CostModel(SUMMIT_GPU)
        direct = cm.phase_time(w, "x")
        via_agg = cm.price_aggregate(
            collect_phase_aggregates(w)["x"], w.size, w.ops.peak_alloc()
        )
        assert via_agg.total == pytest.approx(direct.total)
