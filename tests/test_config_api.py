"""Tests for the SimulationConfig serialization API (to_dict/from_dict,
stable_hash) introduced for the campaign service."""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FaultSpec, SimulationConfig, SolverConfig
from repro.serialize import canonical_json, stable_digest


class TestRoundTrip:
    def test_default_config_fixpoint(self):
        cfg = SimulationConfig()
        doc = cfg.to_dict()
        again = SimulationConfig.from_dict(doc)
        assert again.to_dict() == doc

    def test_round_trip_preserves_equality(self):
        cfg = SimulationConfig(nranks=3, picard_iterations=2, dt=0.25)
        cfg.pressure_solver.method = "cg"
        cfg.amg.theta = 0.5
        again = SimulationConfig.from_dict(cfg.to_dict())
        assert again == cfg

    def test_faults_round_trip(self):
        cfg = SimulationConfig(
            faults=[FaultSpec(kind="message_drop", at=1)]
        )
        again = SimulationConfig.from_dict(cfg.to_dict())
        assert tuple(again.faults) == tuple(cfg.faults)

    def test_doc_is_json_serializable(self):
        doc = SimulationConfig().to_dict()
        assert json.loads(json.dumps(doc)) == doc

    def test_absent_keys_take_defaults(self):
        cfg = SimulationConfig.from_dict({"nranks": 2})
        ref = SimulationConfig(nranks=2)
        assert cfg == ref

    def test_nested_solver_merge_with_defaults(self):
        cfg = SimulationConfig.from_dict(
            {"pressure_solver": {"method": "cg"}}
        )
        assert cfg.pressure_solver.method == "cg"
        # Unspecified nested keys keep the dataclass defaults.
        assert cfg.pressure_solver.tol == SolverConfig().tol

    @settings(max_examples=25, deadline=None)
    @given(
        nranks=st.integers(1, 8),
        picard=st.integers(1, 4),
        dt=st.floats(1e-4, 1.0, allow_nan=False),
        relax=st.floats(0.1, 1.0, allow_nan=False),
        seed=st.integers(0, 10_000),
    )
    def test_round_trip_property(self, nranks, picard, dt, relax, seed):
        cfg = SimulationConfig(
            nranks=nranks,
            picard_iterations=picard,
            dt=dt,
            velocity_relax=relax,
            world_seed=seed,
        )
        doc = cfg.to_dict()
        again = SimulationConfig.from_dict(doc)
        assert again == cfg
        assert again.to_dict() == doc
        assert again.stable_hash() == cfg.stable_hash()


class TestStrictness:
    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            SimulationConfig.from_dict({"granks": 2})

    def test_unknown_nested_key_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig.from_dict({"amg": {"bogus": 1}})

    def test_bool_is_not_int(self):
        with pytest.raises(ValueError):
            SimulationConfig.from_dict({"nranks": True})

    def test_int_accepted_for_float(self):
        cfg = SimulationConfig.from_dict({"dt": 1})
        assert cfg.dt == 1.0 and isinstance(cfg.dt, float)

    def test_validation_still_applies(self):
        with pytest.raises(ValueError):
            SimulationConfig.from_dict({"nranks": 0})
        with pytest.raises(ValueError):
            SimulationConfig.from_dict({"world_seed": -1})

    def test_runtime_clock_not_serializable(self):
        cfg = SimulationConfig(clock=lambda: 0.0)
        with pytest.raises(ValueError, match="clock"):
            cfg.to_dict()

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig.from_dict([("nranks", 2)])


class TestStableHash:
    def test_key_order_insensitive(self):
        doc = SimulationConfig().to_dict()
        shuffled = dict(reversed(list(doc.items())))
        assert stable_digest(doc) == stable_digest(shuffled)
        assert canonical_json(doc) == canonical_json(shuffled)

    def test_every_field_moves_the_hash(self):
        base = SimulationConfig()
        base_hash = base.stable_hash()
        # A representative mutation per field category.
        mutations = {
            "nranks": 7,
            "dt": 0.123,
            "partition_method": "rcb",
            "assembly_variant": "general",
            "inflow_velocity": (9.0, 0.0, 0.0),
            "world_seed": 99,
            "checkpoint_every": 5,
        }
        seen = {base_hash}
        for field, value in mutations.items():
            cfg = dataclasses.replace(base, **{field: value})
            h = cfg.stable_hash()
            assert h not in seen, f"{field} did not change the hash"
            seen.add(h)

    def test_nested_field_moves_the_hash(self):
        a = SimulationConfig()
        b = SimulationConfig()
        b.amg.theta = 0.9
        assert a.stable_hash() != b.stable_hash()

    def test_exclude_durability_keys(self):
        a = SimulationConfig()
        b = SimulationConfig(
            checkpoint_every=3, checkpoint_dir="elsewhere", checkpoint_keep=9
        )
        ex = SimulationConfig.DURABILITY_KEYS
        assert a.stable_hash() != b.stable_hash()
        assert a.stable_hash(exclude=ex) == b.stable_hash(exclude=ex)

    def test_solver_config_hash(self):
        a = SolverConfig()
        b = SolverConfig(tol=1e-3)
        assert a.stable_hash() != b.stable_hash()
        assert a.stable_hash() == SolverConfig().stable_hash()
