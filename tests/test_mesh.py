"""Tests for the mesh substrate: topology, metrics, generators, motion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import (
    BladeSpec,
    FieldManager,
    HexMesh,
    build_block_topology,
    geometric_stretching,
    graded_axis,
    make_background_mesh,
    make_blade_mesh,
    make_turbine_dual,
    make_turbine_low,
    node_adjacency,
    rotation_matrix,
)
from repro.mesh.topology import boundary_node_sets


def uniform_box(shape=(4, 4, 4), extent=1.0):
    axes = [np.linspace(0, extent, s) for s in shape]
    X = np.stack(np.meshgrid(*axes, indexing="ij"), axis=-1)
    return HexMesh.from_block("box", X)


class TestTopology:
    def test_cell_and_edge_counts_open_block(self):
        topo = build_block_topology((3, 4, 5))
        assert topo.cells.shape == (2 * 3 * 4, 8)
        ne = 2 * 4 * 5 + 3 * 3 * 5 + 3 * 4 * 4
        assert topo.edges.shape == (ne, 2)

    def test_cell_and_edge_counts_periodic(self):
        topo = build_block_topology((4, 3, 3), periodic=(True, False, False))
        assert topo.cells.shape == (4 * 2 * 2, 8)
        # Periodic direction contributes n (not n-1) edges per line.
        ne = 4 * 3 * 3 + 4 * 2 * 3 + 4 * 3 * 2
        assert topo.edges.shape == (ne, 2)

    def test_edges_are_unique(self):
        topo = build_block_topology((4, 4, 4))
        key = topo.edges[:, 0] * 10**6 + topo.edges[:, 1]
        assert np.unique(key).size == key.size

    def test_too_small_block_rejected(self):
        with pytest.raises(ValueError):
            build_block_topology((1, 3, 3))

    def test_boundary_sets_cover_shell(self):
        shape = (4, 5, 6)
        b = boundary_node_sets(shape, (False, False, False))
        assert set(b) == {"xlo", "xhi", "ylo", "yhi", "zlo", "zhi"}
        assert b["xlo"].size == 5 * 6
        assert b["zhi"].size == 4 * 5
        shell = np.unique(np.concatenate(list(b.values())))
        interior = 2 * 3 * 4
        assert shell.size == 4 * 5 * 6 - interior

    def test_periodic_direction_has_no_sides(self):
        b = boundary_node_sets((4, 4, 4), (True, False, False))
        assert "xlo" not in b and "xhi" not in b

    def test_node_adjacency_symmetric(self):
        topo = build_block_topology((3, 3, 3))
        indptr, indices = node_adjacency(27, topo.edges)
        # Center node of a 3x3x3 block has 6 neighbors.
        center = 13
        assert indptr[center + 1] - indptr[center] == 6


class TestHexMeshMetrics:
    def test_uniform_box_volumes_sum_to_domain(self):
        m = uniform_box((5, 5, 5), extent=2.0)
        assert m.node_volume.sum() == pytest.approx(8.0, rel=1e-12)

    def test_uniform_box_edge_metrics(self):
        m = uniform_box((5, 5, 5), extent=1.0)
        h = 0.25
        assert np.allclose(m.edge_length, h)
        # Interior transverse dual-face area = h*h.
        assert m.edge_area.max() == pytest.approx(h * h, rel=1e-12)

    def test_edge_dirs_unit(self):
        m = uniform_box((4, 4, 4))
        assert np.allclose(np.linalg.norm(m.edge_dir, axis=1), 1.0)

    def test_stats(self):
        m = uniform_box((4, 4, 4))
        st_ = m.stats()
        assert st_.n_nodes == 64
        assert st_.max_aspect_ratio == pytest.approx(1.0)
        assert st_.volume_ratio == pytest.approx(8.0)  # corner vs interior

    def test_node_graph_interior_degree(self):
        m = uniform_box((5, 5, 5))
        g = m.node_graph()
        deg = np.diff(g.indptr)
        assert deg.max() == 6
        assert deg.min() == 3

    def test_boundary_nodes_union(self):
        m = uniform_box((4, 4, 4))
        both = m.boundary_nodes("xlo", "xhi")
        assert both.size == 2 * 16
        with pytest.raises(KeyError):
            m.boundary_nodes("nope")

    def test_bad_lattice_shape_rejected(self):
        with pytest.raises(ValueError):
            HexMesh.from_block("bad", np.zeros((3, 3, 3)))


class TestGenerators:
    def test_graded_axis_uniform(self):
        ax = graded_axis(0.0, 1.0, 11)
        assert np.allclose(np.diff(ax), 0.1)

    def test_graded_axis_clusters_at_center(self):
        ax = graded_axis(-1.0, 1.0, 41, cluster=6.0, center=0.5)
        d = np.diff(ax)
        mid = np.argmin(np.abs(ax[:-1]))
        assert d[mid] < d[0]
        assert d[mid] < d[-1]
        assert np.all(d > 0)
        assert ax[0] == -1.0 and ax[-1] == pytest.approx(1.0)

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(3, 40),
        first=st.floats(1e-4, 0.2),
    )
    def test_geometric_stretching_properties(self, n, first):
        r = geometric_stretching(n, first)
        assert r[0] == 0.0
        assert r[-1] == pytest.approx(1.0)
        d = np.diff(r)
        assert np.all(d > 0)
        # Growth is monotone (geometric).
        assert np.all(d[1:] >= d[:-1] * (1 - 1e-9))

    def test_background_mesh_boundaries(self):
        m = make_background_mesh(
            "bg", ((0, 10), (0, 5), (0, 5)), (6, 5, 5)
        )
        assert m.n_nodes == 6 * 5 * 5
        assert set(m.boundaries) == {
            "xlo",
            "xhi",
            "ylo",
            "yhi",
            "zlo",
            "zhi",
        }

    def test_blade_mesh_structure(self):
        spec = BladeSpec(n_around=12, n_radial=6, n_span=5)
        m = make_blade_mesh("blade", spec)
        assert m.n_nodes == 12 * 6 * 5
        assert set(m.boundaries) == {"wall", "outer", "root", "tip"}
        assert m.boundaries["wall"].size == 12 * 5

    def test_blade_mesh_high_aspect_ratio(self):
        spec = BladeSpec(n_around=16, n_radial=10, n_span=8, first_cell_frac=1e-3)
        m = make_blade_mesh("blade", spec)
        assert m.stats().max_aspect_ratio > 50


class TestMotion:
    def test_rotation_matrix_orthogonal(self):
        R = rotation_matrix(np.array([1.0, 2.0, 3.0]), 0.7)
        assert np.allclose(R @ R.T, np.eye(3), atol=1e-12)
        assert np.linalg.det(R) == pytest.approx(1.0)

    def test_zero_axis_rejected(self):
        with pytest.raises(ValueError):
            rotation_matrix(np.zeros(3), 0.5)

    def test_rigid_rotation_preserves_metrics(self):
        spec = BladeSpec(n_around=12, n_radial=6, n_span=5)
        m = make_blade_mesh("blade", spec)
        from repro.mesh import RigidRotation

        rot = RigidRotation(axis=(1, 0, 0), center=(0, 0, 0), omega=1.0)
        vol0 = m.node_volume.copy()
        len0 = m.edge_length.copy()
        area0 = m.edge_area.copy()
        rot.apply(m, 0.37)
        assert np.allclose(m.node_volume, vol0, rtol=1e-9)
        assert np.allclose(m.edge_length, len0, rtol=1e-9)
        assert np.allclose(m.edge_area, area0, rtol=1e-9)
        assert rot.angle == pytest.approx(0.37)

    def test_grid_velocity_is_omega_cross_r(self):
        from repro.mesh import RigidRotation

        rot = RigidRotation(axis=(0, 0, 1), center=(0, 0, 0), omega=2.0)
        v = rot.grid_velocity(np.array([[1.0, 0.0, 0.0]]))
        assert np.allclose(v, [[0.0, 2.0, 0.0]])


class TestTurbineWorkloads:
    def test_scaled_node_counts_track_table1(self):
        low = make_turbine_low()
        dual = make_turbine_dual()
        # 1/1000-scale Table 1 within 5%.
        assert abs(low.total_nodes - 23_022) / 23_022 < 0.05
        assert abs(dual.total_nodes - 44_233) / 44_233 < 0.05

    def test_single_turbine_has_three_blades(self):
        s = make_turbine_low()
        assert len(s.blades) == 3
        assert len(s.rotations) == 3

    def test_dual_turbine_has_six_blades(self):
        assert len(make_turbine_dual().blades) == 6

    def test_advance_rotor_moves_blades_not_background(self):
        s = make_turbine_low()
        bg0 = s.background.coords.copy()
        bl0 = s.blades[0].coords.copy()
        s.advance_rotor(0.1)
        assert np.array_equal(s.background.coords, bg0)
        assert not np.allclose(s.blades[0].coords, bl0)


class TestFieldManager:
    def test_register_and_get(self):
        m = uniform_box((3, 3, 3))
        fm = FieldManager(m)
        v = fm.register("velocity", ncomp=3, value=1.0)
        assert v.shape == (27, 3)
        assert fm.get("velocity") is v
        assert fm.register("velocity", ncomp=3) is v  # idempotent

    def test_scalar_field_shape(self):
        fm = FieldManager(uniform_box((3, 3, 3)))
        p = fm.register("pressure")
        assert p.shape == (27,)

    def test_missing_field_raises(self):
        fm = FieldManager(uniform_box((3, 3, 3)))
        with pytest.raises(KeyError):
            fm.get("nope")

    def test_time_state_shift(self):
        fm = FieldManager(uniform_box((3, 3, 3)))
        u = fm.register("u", time_states=2)
        u[:] = 5.0
        assert not np.any(fm.old("u") == 5.0)
        fm.shift_time_states()
        assert np.all(fm.old("u") == 5.0)

    def test_old_without_time_states_raises(self):
        fm = FieldManager(uniform_box((3, 3, 3)))
        fm.register("u")
        with pytest.raises(KeyError):
            fm.old("u")

    def test_nbytes_accounting(self):
        fm = FieldManager(uniform_box((3, 3, 3)))
        fm.register("u", ncomp=3, time_states=2)
        assert fm.nbytes() == 2 * 27 * 3 * 8
