"""Tests for the equation systems' physics assembly and helpers."""

import numpy as np
import pytest

from repro.comm import SimWorld
from repro.core import CompositeMesh, PhaseTimers, SimulationConfig
from repro.core.operators import boundary_mass_flux, mass_flux
from repro.core.physics import (
    MomentumSystem,
    PressurePoissonSystem,
    ScalarTransportSystem,
)
from repro.mesh import make_turbine_tiny
from repro.overset.assembler import NodeStatus


@pytest.fixture(scope="module")
def setup():
    cfg = SimulationConfig(nranks=3)
    w = SimWorld(cfg.nranks)
    comp = CompositeMesh(w, make_turbine_tiny(), cfg.partition_method)
    timers = PhaseTimers()
    mom = MomentumSystem(comp, cfg, timers)
    pres = PressurePoissonSystem(comp, cfg, timers)
    scal = ScalarTransportSystem(comp, cfg, timers)
    return cfg, comp, mom, pres, scal


class TestConstraintSets:
    def test_momentum_constraints_cover_walls_and_farfield(self, setup):
        _cfg, comp, mom, _p, _s = setup
        cons = set(mom.constraint_rows().tolist())
        assert set(comp.wall_nodes().tolist()) <= cons
        assert set(comp.background_boundary("xlo").tolist()) <= cons
        # Outflow is free for momentum.
        outflow = set(comp.background_boundary("xhi").tolist())
        strictly_outflow = outflow - set(
            np.concatenate(
                [
                    comp.background_boundary(s)
                    for s in ("ylo", "yhi", "zlo", "zhi")
                ]
            ).tolist()
        )
        assert strictly_outflow & cons == set()

    def test_pressure_constraints_are_outflow_plus_overset(self, setup):
        _cfg, comp, _m, pres, _s = setup
        cons = set(pres.constraint_rows().tolist())
        assert set(comp.background_boundary("xhi").tolist()) <= cons
        assert set(comp.fringe_nodes().tolist()) <= cons
        # Inflow pressure rows are free (Neumann).
        inflow_only = set(comp.background_boundary("xlo").tolist()) - set(
            comp.background_boundary("yhi").tolist()
        )
        # Most inflow rows are not constrained.
        assert len(inflow_only - cons) > 0.5 * len(inflow_only)

    def test_fringe_and_holes_always_constrained(self, setup):
        _cfg, comp, mom, pres, scal = setup
        fr = set(comp.fringe_nodes().tolist())
        for eq in (mom, pres, scal):
            assert fr <= set(eq.constraint_rows().tolist())


class TestProjectionTau:
    def test_tau_bounded_by_dt(self, setup):
        cfg, comp, mom, _p, _s = setup
        u = np.tile([8.0, 0, 0], (comp.n, 1))
        mdot = mass_flux(comp, u, cfg.density)
        bflux = boundary_mass_flux(comp, u, cfg.density)
        mu = np.full(comp.n, cfg.viscosity)
        tau = mom.projection_tau(mdot, mu, bflux)
        assert np.all(tau > 0)
        assert np.all(tau <= cfg.dt * (1 + 1e-12))

    def test_tau_small_in_advection_dominated_cells(self, setup):
        cfg, comp, mom, _p, _s = setup
        u = np.tile([8.0, 0, 0], (comp.n, 1))
        mdot = mass_flux(comp, u, cfg.density)
        bflux = boundary_mass_flux(comp, u, cfg.density)
        mu = np.full(comp.n, cfg.viscosity)
        tau = mom.projection_tau(mdot, mu, bflux)
        # Somewhere the flow dominates the time term.
        assert tau.min() < 0.5 * cfg.dt

    def test_row_diagonal_positive(self, setup):
        cfg, comp, mom, _p, _s = setup
        u = np.tile([8.0, 0, 0], (comp.n, 1))
        mdot = mass_flux(comp, u, cfg.density)
        bflux = boundary_mass_flux(comp, u, cfg.density)
        a_p = mom.row_diagonal(mdot, np.full(comp.n, 1e-3), bflux)
        assert np.all(a_p > 0)


class TestBoundaryFieldHelpers:
    def test_boundary_velocity_values(self, setup):
        cfg, comp, mom, _p, _s = setup
        rng = np.random.default_rng(0)
        u = rng.standard_normal((comp.n, 3))
        bc = mom.boundary_velocity(u)
        far = comp.background_boundary("xlo")
        assert np.allclose(bc[far], np.asarray(cfg.inflow_velocity))
        wall = comp.wall_nodes()
        assert np.allclose(bc[wall], comp.grid_velocity[wall])
        for ds in comp.donor_sets:
            assert np.allclose(
                bc[ds.receptors], ds.interpolate(u), atol=1e-12
            )

    def test_boundary_scalar_values(self, setup):
        _cfg, comp, _m, _p, scal = setup
        s = np.random.default_rng(1).random(comp.n)
        bc = scal.boundary_scalar(s)
        assert np.allclose(
            bc[comp.background_boundary("xlo")], scal.inflow_value
        )
        assert np.allclose(bc[comp.wall_nodes()], scal.wall_value)


class TestAssembledSystems:
    def test_momentum_matrix_constraint_rows_identity(self, setup):
        cfg, comp, mom, _p, _s = setup
        u = np.tile([8.0, 0, 0], (comp.n, 1))
        mdot = mass_flux(comp, u, cfg.density)
        bflux = boundary_mass_flux(comp, u, cfg.density)
        A, rhs = mom.assemble(
            mdot=mdot,
            mu_eff=np.full(comp.n, cfg.viscosity),
            component=0,
            velocity=u,
            velocity_old=u,
            pressure=np.zeros(comp.n),
            boundary_flux=bflux,
        )
        o2n = comp.numbering.old_to_new
        cons_new = o2n[mom.constraint_rows()]
        Acsr = A.A
        for row in cons_new[:40]:
            lo, hi = Acsr.indptr[row], Acsr.indptr[row + 1]
            assert hi - lo == 1
            assert Acsr.indices[lo] == row
            assert Acsr.data[lo] == 1.0

    def test_momentum_diagonally_positive(self, setup):
        cfg, comp, mom, _p, _s = setup
        u = np.tile([8.0, 0, 0], (comp.n, 1))
        mdot = mass_flux(comp, u, cfg.density)
        bflux = boundary_mass_flux(comp, u, cfg.density)
        A, _ = mom.assemble(
            mdot=mdot,
            mu_eff=np.full(comp.n, cfg.viscosity),
            component=0,
            velocity=u,
            velocity_old=u,
            pressure=np.zeros(comp.n),
            boundary_flux=bflux,
        )
        assert np.all(A.diagonal() > 0)

    def test_pressure_matrix_symmetric_on_free_block(self, setup):
        cfg, comp, _m, pres, _s = setup
        u = np.tile([8.0, 0, 0], (comp.n, 1))
        mdot = mass_flux(comp, u, cfg.density)
        bflux = boundary_mass_flux(comp, u, cfg.density)
        A, _ = pres.assemble(
            mdot=mdot,
            pressure_correction_bc=np.zeros(comp.n),
            boundary_flux=bflux,
        )
        o2n = comp.numbering.old_to_new
        free_new = np.setdiff1d(
            np.arange(comp.n), o2n[pres.constraint_rows()]
        )
        sub = A.A[free_new][:, free_new]
        asym = abs(sub - sub.T)
        assert asym.max() < 1e-12 * abs(sub).max()

    def test_pressure_solve_record_keeps_history(self, setup):
        cfg, comp, _m, pres, _s = setup
        u = np.tile([8.0, 0, 0], (comp.n, 1))
        mdot = mass_flux(comp, u, cfg.density)
        bflux = boundary_mass_flux(comp, u, cfg.density)
        A, rhs = pres.assemble(
            mdot=mdot,
            pressure_correction_bc=np.zeros(comp.n),
            boundary_flux=bflux,
        )
        before = len(pres.solve_records)
        res = pres.solve(A, rhs)
        assert res.converged
        assert len(pres.solve_records) == before + 1
        assert pres.solve_records[-1].iterations == res.iterations

    def test_scalar_matrix_is_m_matrix_like(self, setup):
        cfg, comp, _m, _p, scal = setup
        u = np.tile([8.0, 0, 0], (comp.n, 1))
        mdot = mass_flux(comp, u, cfg.density)
        bflux = boundary_mass_flux(comp, u, cfg.density)
        s = np.full(comp.n, scal.inflow_value)
        A, _ = scal.assemble(
            mdot=mdot,
            scalar=s,
            scalar_old=s,
            boundary_flux=bflux,
        )
        coo = A.A.tocoo()
        off = coo.row != coo.col
        # Upwind + diffusion: off-diagonals non-positive.
        assert coo.data[off].max() <= 1e-12
