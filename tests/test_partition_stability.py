"""Partition determinism: tie-breaks must not depend on sort internals.

The multilevel partitioner's rebalance pass drains overloaded parts in
ascending vertex-weight order.  With quicksort the order of equal-weight
vertices depended on introsort pivot choices — i.e. on NumPy version and
platform — which made the final partition (and everything downstream:
rank numbering, assembly plans, telemetry) platform-dependent.  The
stable sort pins ties to index order; these tests pin that behavior.
"""

import numpy as np
from scipy import sparse

from repro.partition.multilevel import _rebalance, multilevel_partition


def _star_graph(n: int) -> sparse.csr_matrix:
    """Vertices 0..n-2 each adjacent to hub n-1 (symmetric)."""
    leaves = np.arange(n - 1)
    rows = np.concatenate([leaves, np.full(n - 1, n - 1)])
    cols = np.concatenate([np.full(n - 1, n - 1), leaves])
    return sparse.csr_matrix(
        (np.ones(rows.size), (rows, cols)), shape=(n, n)
    )


class TestRebalanceStability:
    def test_tied_weights_drain_in_index_order(self):
        # Part 0 holds five unit-weight leaves (overloaded, cap = 3);
        # every leaf borders the hub in part 1, so all five are equally
        # movable.  Stable ordering means the two lowest-indexed leaves
        # move — any other outcome is an unstable tie-break.
        A = _star_graph(6)
        vwgt = np.ones(6)
        parts = np.array([0, 0, 0, 0, 0, 1])
        out = _rebalance(A, vwgt, parts, nparts=2, tol=0.0)
        assert out.tolist() == [1, 1, 0, 0, 0, 1]

    def test_rebalance_is_repeatable(self):
        rng = np.random.default_rng(7)
        n = 40
        g = sparse.random(
            n, n, density=0.2, random_state=np.random.RandomState(7)
        )
        A = ((g + g.T) > 0).astype(float).tocsr()
        # Heavily tied weights: only three distinct values over 40 nodes.
        vwgt = rng.integers(1, 4, size=n).astype(float)
        parts = rng.integers(0, 4, size=n)
        a = _rebalance(A, vwgt, parts, nparts=4, tol=0.1)
        b = _rebalance(A, vwgt, parts, nparts=4, tol=0.1)
        assert np.array_equal(a, b)

    def test_multilevel_partition_repeatable_with_tied_weights(self):
        rng = np.random.default_rng(3)
        n = 300
        g = sparse.random(
            n, n, density=0.03, random_state=np.random.RandomState(3)
        )
        A = ((g + g.T) > 0).astype(float).tocsr()
        vwgt = np.ones(n)  # fully tied
        a = multilevel_partition(A, 6, vertex_weights=vwgt)
        b = multilevel_partition(A, 6, vertex_weights=vwgt)
        assert np.array_equal(a, b)
        assert np.unique(a).size == 6
