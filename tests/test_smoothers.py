"""Tests for Jacobi, hybrid GS, and two-stage GS / SGS2 (paper §4.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.comm import SimWorld
from repro.linalg import ParCSRMatrix, ParVector
from repro.smoothers import (
    HybridGS,
    JacobiSmoother,
    L1JacobiSmoother,
    TwoStageGS,
    make_smoother,
)


def poisson2d(nx):
    T = sparse.diags([-1.0, 2.0, -1.0], [-1, 0, 1], (nx, nx))
    return (sparse.kron(sparse.eye(nx), T) + sparse.kron(T, sparse.eye(nx))).tocsr()


def par(A, nranks=4):
    n = A.shape[0]
    w = SimWorld(nranks)
    offs = np.linspace(0, n, nranks + 1).astype(np.int64)
    return w, ParCSRMatrix(w, A, offs)


def spectral_radius_of_error_op(A, smoother, n, trials=6, sweeps=8, seed=0):
    """Estimate the error-propagation contraction via power iteration."""
    rng = np.random.default_rng(seed)
    x_true = rng.standard_normal(n)
    b = ParVector(smoother.A.world, smoother.A.row_offsets, A @ x_true)
    x = ParVector(smoother.A.world, smoother.A.row_offsets, np.zeros(n))
    e0 = np.linalg.norm(x_true)
    for _ in range(sweeps):
        smoother.smooth(b, x)
    e1 = np.linalg.norm(x.data - x_true)
    return (e1 / e0) ** (1.0 / sweeps)


class TestJacobi:
    def test_converges_on_poisson(self):
        A = poisson2d(8)
        w, M = par(A)
        sm = JacobiSmoother(M, omega=0.8)
        rho = spectral_radius_of_error_op(A, sm, A.shape[0])
        assert rho < 1.0

    def test_zero_diagonal_rejected(self):
        A = sparse.csr_matrix(np.array([[0.0, 1.0], [1.0, 2.0]]))
        w, M = par(A, nranks=1)
        with pytest.raises(ValueError):
            JacobiSmoother(M)

    def test_apply_is_scaled_residual(self):
        A = poisson2d(4)
        w, M = par(A, nranks=2)
        sm = JacobiSmoother(M, omega=0.5, sweeps=1)
        r = M.new_vector(np.ones(A.shape[0]))
        z = sm.apply(r)
        assert np.allclose(z.data, 0.5 * r.data / A.diagonal())

    def test_l1_jacobi_unconditionally_contracts_on_spd(self):
        A = poisson2d(8)
        w, M = par(A)
        sm = L1JacobiSmoother(M)
        rho = spectral_radius_of_error_op(A, sm, A.shape[0])
        assert rho < 1.0


class TestTwoStageGS:
    def test_neumann_expansion_converges_to_exact_hybrid_gs(self):
        A = poisson2d(10)
        n = A.shape[0]
        w, M = par(A)
        b = M.new_vector(np.random.default_rng(0).standard_normal(n))
        exact = HybridGS(M).apply(b)
        errs = []
        for s in (0, 1, 2, 4, 16, 200):
            w2, M2 = par(A)
            b2 = M2.new_vector(b.data.copy())
            z = TwoStageGS(M2, inner_sweeps=s).apply(b2)
            errs.append(np.linalg.norm(z.data - exact.data))
        # Monotone improvement and exactness in the nilpotency limit.
        assert all(b <= a + 1e-14 for a, b in zip(errs, errs[1:]))
        assert errs[-1] < 1e-12

    def test_zero_inner_sweeps_is_jacobi(self):
        """Paper: 'this special case corresponds to Jacobi-Richardson'."""
        A = poisson2d(6)
        w, M = par(A, nranks=2)
        b = M.new_vector(np.ones(A.shape[0]))
        z = TwoStageGS(M, inner_sweeps=0).apply(b)
        assert np.allclose(z.data, b.data / A.diagonal())

    def test_single_rank_matches_true_gs(self):
        """With one rank, hybrid GS == classical global Gauss-Seidel."""
        A = poisson2d(6)
        n = A.shape[0]
        w, M = par(A, nranks=1)
        b = M.new_vector(np.random.default_rng(1).standard_normal(n))
        z = HybridGS(M).apply(b)
        # Reference forward solve (L+D) z = b.
        LD = sparse.tril(A).toarray()
        ref = np.linalg.solve(LD, b.data)
        assert np.allclose(z.data, ref, atol=1e-10)

    def test_more_ranks_weaker_smoother(self):
        """Hybrid relaxation degrades with rank count (block-Jacobi limit)."""
        A = poisson2d(12)
        n = A.shape[0]
        rhos = []
        for nranks in (1, 8):
            w, M = par(A, nranks=nranks)
            sm = TwoStageGS(M, inner_sweeps=4)
            rhos.append(spectral_radius_of_error_op(A, sm, n))
        assert rhos[1] > rhos[0]

    def test_symmetric_variant_contracts_faster(self):
        A = poisson2d(10)
        n = A.shape[0]
        w1, M1 = par(A)
        rho_f = spectral_radius_of_error_op(
            A, TwoStageGS(M1, inner_sweeps=2), n
        )
        w2, M2 = par(A)
        rho_s = spectral_radius_of_error_op(
            A, TwoStageGS(M2, inner_sweeps=2, symmetric=True), n
        )
        assert rho_s < rho_f

    def test_invalid_sweep_counts(self):
        A = poisson2d(4)
        w, M = par(A, nranks=1)
        with pytest.raises(ValueError):
            TwoStageGS(M, inner_sweeps=-1)
        with pytest.raises(ValueError):
            TwoStageGS(M, outer_sweeps=0)

    def test_outer_sweeps_communicate(self):
        A = poisson2d(8)
        w, M = par(A)
        sm = TwoStageGS(M, inner_sweeps=1, outer_sweeps=2)
        with w.phase_scope("smooth"):
            sm.apply(M.new_vector(np.ones(A.shape[0])))
        # The second outer iteration needs a full residual: halo messages.
        assert w.traffic.message_count("smooth") > 0

    def test_preconditioner_application_with_zero_guess(self):
        """apply(r) must equal smooth(b=r, x=0)."""
        A = poisson2d(6)
        w, M = par(A, nranks=2)
        r = M.new_vector(np.random.default_rng(5).standard_normal(A.shape[0]))
        sm = TwoStageGS(M, inner_sweeps=2, outer_sweeps=2, symmetric=True)
        z1 = sm.apply(r)
        x = M.new_vector(np.zeros(A.shape[0]))
        sm.smooth(r, x)
        assert np.allclose(z1.data, x.data, atol=1e-12)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 500), s=st.integers(0, 3))
    def test_property_inner_sweeps_match_neumann_series(self, seed, s):
        """g after s sweeps == degree-s Neumann expansion applied to r."""
        rng = np.random.default_rng(seed)
        n = 20
        A = sparse.random(n, n, density=0.3, random_state=seed, format="csr")
        A = A + sparse.diags(np.abs(A).sum(axis=1).A1 + 1.0)
        w, M = par(A.tocsr(), nranks=1)
        r = rng.standard_normal(n)
        sm = TwoStageGS(M, inner_sweeps=s)
        g = sm._jr_solve(r, lower=True)
        D = A.diagonal()
        L = sparse.tril(A, k=-1).tocsr()
        # Neumann: sum_{j=0..s} (-D^-1 L)^j D^-1 r.
        term = r / D
        ref = term.copy()
        for _ in range(s):
            term = -(L @ term) / D
            ref += term
        assert np.allclose(g, ref, atol=1e-10)


class TestSGS2:
    def test_sgs2_gmres_under_five_iterations(self):
        """Paper §4.2: SGS2(2,2) gives GMRES convergence in < 5 iterations
        on diagonally dominant transport systems."""
        from repro.krylov import GMRES

        rng = np.random.default_rng(0)
        n = 400
        # Advection-diffusion-like: diagonally dominant nonsymmetric.
        A = poisson2d(20) * 0.1
        A = A + sparse.diags(np.full(n, 4.0))
        A = A + sparse.random(n, n, density=0.01, random_state=1) * 0.3
        A = A.tocsr()
        w, M = par(A)
        b = M.new_vector(rng.standard_normal(n))
        res = GMRES(
            M, preconditioner=make_smoother("sgs2", M), tol=1e-5
        ).solve(b)
        assert res.converged
        assert res.iterations < 5

    def test_sgs2_factory_defaults(self):
        A = poisson2d(4)
        w, M = par(A, nranks=1)
        sm = make_smoother("sgs2", M)
        assert sm.inner_sweeps == 2
        assert sm.outer_sweeps == 2
        assert sm.symmetric
