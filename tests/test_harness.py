"""Tests for the strong-scaling harness and report rendering."""

import numpy as np
import pytest

from repro.core.config import SimulationConfig
from repro.harness import (
    default_work_scale,
    equation_breakdown,
    format_table,
    nli_series,
    nli_step_times,
    run_strong_scaling,
    series_table,
)
from repro.perf import EAGLE_GPU, SUMMIT_CPU_GRP, SUMMIT_GPU


@pytest.fixture(scope="module")
def tiny_sweep():
    return run_strong_scaling(
        "turbine_tiny", [2, 4], n_steps=2, config=SimulationConfig()
    )


class TestScalingHarness:
    def test_sweep_shape(self, tiny_sweep):
        assert [pt.ranks for pt in tiny_sweep] == [2, 4]
        for pt in tiny_sweep:
            assert pt.report.n_steps == 2
            assert pt.report.config.nranks == pt.ranks

    def test_step_times_positive(self, tiny_sweep):
        times = nli_step_times(tiny_sweep[0].report, SUMMIT_GPU)
        assert times.shape == (2,)
        assert np.all(times > 0)

    def test_series_construction(self, tiny_sweep):
        s = nli_series(tiny_sweep, SUMMIT_GPU, "gpu")
        assert s.ranks == [2, 4]
        assert s.nodes == [2 / 6, 4 / 6]
        assert len(s.mean) == 2
        assert all(m > 0 for m in s.mean)
        assert isinstance(s.slope(), float)

    def test_work_scale_default(self, tiny_sweep):
        # turbine_tiny has no paper-scale counterpart: scale 1.
        assert default_work_scale(tiny_sweep[0].report) == 1.0

    def test_work_scale_known_workload(self):
        class FakeReport:
            workload = "turbine_low"
            total_nodes = 23_022

        assert default_work_scale(FakeReport()) == pytest.approx(1000.0, rel=0.01)

    def test_machine_ordering_preserved(self, tiny_sweep):
        """Eagle's cheaper messages make it no slower than Summit on the
        same run at the same rank count."""
        s_gpu = nli_series(tiny_sweep, SUMMIT_GPU)
        e_gpu = nli_series(tiny_sweep, EAGLE_GPU)
        assert all(e <= s * 1.05 for e, s in zip(e_gpu.mean, s_gpu.mean))

    def test_equation_breakdown_phases(self, tiny_sweep):
        bd = equation_breakdown(tiny_sweep[0].report, SUMMIT_GPU, "pressure")
        assert set(bd) == {
            "graph",
            "local_assembly",
            "global_assembly",
            "precond_setup",
            "solve",
        }
        assert bd["solve"] > 0

    def test_breakdown_sums_below_total(self, tiny_sweep):
        """One equation's breakdown is at most the whole NLI time."""
        rep = tiny_sweep[0].report
        bd = equation_breakdown(rep, SUMMIT_GPU, "pressure")
        total = nli_step_times(rep, SUMMIT_GPU).mean()
        assert sum(bd.values()) <= total * 1.001


class TestReportRendering:
    def test_format_table_alignment(self):
        out = format_table(
            "T", ["a", "bb"], [[1, 2.5], ["x", "yy"]], note="n"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert out.endswith("n")

    def test_series_table_contains_slopes(self, tiny_sweep):
        s = nli_series(tiny_sweep, SUMMIT_GPU, "gpu")
        c = nli_series(tiny_sweep, SUMMIT_CPU_GRP, "cpu")
        out = series_table("title", [s, c])
        assert "log-log slopes" in out
        assert "gpu mean [s]" in out
        assert "cpu mean [s]" in out
