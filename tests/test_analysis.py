"""Kernel sanitizer + repro-lint: rule fixtures and replay contracts.

Static half: one known-bad snippet and a clean twin per lint rule
(RL001-RL006, RL010), plus the pragma and baseline suppression paths.  Dynamic
half: planted races/unstable reductions must be *caught* (KS001-KS003),
and the shipped scatter modes / Algorithm 1-2 paths must replay bitwise
under permuted simulated-thread schedules — the executable form of the
paper's §3.2-§3.3 determinism contract.
"""

import json

import numpy as np
import pytest

from repro.analysis import (
    ATOMIC_BOUND_SAFETY,
    AnalysisReport,
    KernelSanitizer,
    ThreadSchedule,
    apply_baseline,
    atomic_deviation_bound,
    check_assembly_pipeline,
    check_scatter_modes,
    lint_paths,
    lint_source,
    load_baseline,
    render_json,
    replay_scatter,
    run_dynamic_checks,
    write_baseline,
)
from repro.analysis.determinism import _build_problem
from repro.assembly.graph import EquationGraph, GraphSpec
from repro.assembly.local import SCATTER_MODES, LocalAssembler
from repro.comm.simcomm import SimWorld
from repro.obs.metrics import MetricsRegistry

# -- lint rule fixtures: (rule, bad snippet, clean twin, lint path) ----------

NEUTRAL = "src/repro/core/fixture.py"
KERNEL = "src/repro/assembly/fixture.py"
CAMPAIGN = "src/repro/campaign/fixture.py"

FIXTURES = [
    (
        "RL001",
        "import numpy as np\norder = np.argsort(x)\n",
        'import numpy as np\norder = np.argsort(x, kind="stable")\n',
        NEUTRAL,
    ),
    (
        "RL002",
        # Both twins record (so RL005 stays quiet); only the ufunc differs.
        "import numpy as np\n"
        "def scatter(world, t, s, v):\n"
        "    np.add.at(t, s, v)\n"
        "    world.ops.record(world.phase, 0, 'scatter', nbytes=8.0)\n",
        # maximum.at is exactly associative/commutative — exempt.
        "import numpy as np\n"
        "def scatter(world, t, s, v):\n"
        "    np.maximum.at(t, s, v)\n"
        "    world.ops.record(world.phase, 0, 'scatter', nbytes=8.0)\n",
        KERNEL,
    ),
    (
        "RL003",
        "import numpy as np\nrng = np.random.default_rng()\n",
        "import numpy as np\nrng = np.random.default_rng(1234)\n",
        NEUTRAL,
    ),
    (
        "RL004",
        "from repro.smoothers.jacobi import JacobiSmoother\n"
        "sm = JacobiSmoother(A, omega=0.8)\n",
        "from repro.smoothers import make_smoother\n"
        'sm = make_smoother("jacobi", A, omega=0.8)\n',
        NEUTRAL,
    ),
    (
        "RL005",
        "import numpy as np\n"
        "def pack(keys, vals):\n"
        "    order = np.lexsort(keys)\n"
        "    return vals[order]\n",
        "import numpy as np\n"
        "def pack(world, keys, vals):\n"
        "    order = np.lexsort(keys)\n"
        "    world.ops.record(world.phase, 0, 'pack', nbytes=8.0)\n"
        "    return vals[order]\n",
        KERNEL,
    ),
    (
        "RL006",
        'world.phase_scope("assembly")\n',
        'with world.phase_scope("assembly"):\n    pass\n',
        NEUTRAL,
    ),
    (
        "RL010",
        "def drain(jobs):\n"
        "    for j in jobs:\n"
        "        try:\n"
        "            j.run()\n"
        "        except Exception:\n"
        "            continue\n",
        "def drain(jobs, manifest):\n"
        "    for j in jobs:\n"
        "        try:\n"
        "            j.run()\n"
        "        except Exception as exc:\n"
        "            manifest.mark(j.digest, failure_context(exc))\n",
        CAMPAIGN,
    ),
]


class TestLintRules:
    @pytest.mark.parametrize(
        "rule,bad,clean,path", FIXTURES, ids=[f[0] for f in FIXTURES]
    )
    def test_bad_fixture_fires_and_clean_twin_does_not(
        self, rule, bad, clean, path
    ):
        got = lint_source(bad, path)
        assert [f.rule for f in got.findings] == [rule]
        assert not lint_source(clean, path).findings

    def test_rl005_matmul_in_krylov_scope(self):
        # The regression that motivated extending RL005: a hidden
        # reduction (``V.T @ w``) in the one-reduce orthogonalizer
        # shipped with no op accounting.  ``krylov`` is kernel scope now
        # and ``@`` counts as bulk data motion.
        bad = "def orthogonalize(V, w):\n    h2 = V.T @ w\n    return h2\n"
        path = "src/repro/krylov/fixture.py"
        assert [f.rule for f in lint_source(bad, path).findings] == ["RL005"]
        clean = (
            "def orthogonalize(world, V, w):\n"
            "    h2 = V.T @ w\n"
            "    world.ops.record(world.phase, 0, 'multidot', nbytes=8.0)\n"
            "    return h2\n"
        )
        assert not lint_source(clean, path).findings
        # Outside the kernel packages, matmul stays unflagged.
        assert not lint_source(bad, "src/repro/obs/fixture.py").findings

    def test_rl005_registry_dispatch_edge(self):
        # A kernel reachable only through dict dispatch used to be
        # invisible to the accounting fixpoint: the dispatcher recorded,
        # but no call edge connected it to the registered function.
        bad = (
            "import numpy as np\n"
            "def _fast(keys, vals):\n"
            "    order = np.lexsort(keys)\n"
            "    return vals[order]\n"
            '_KERNELS = {"fast": _fast}\n'
            "def pack(world, name, keys, vals):\n"
            "    return _KERNELS[name](keys, vals)\n"
        )
        got = lint_source(bad, KERNEL)
        assert [f.rule for f in got.findings] == ["RL005"]
        assert got.findings[0].qualname == "_fast"
        # The dispatcher accounting now flows over the registry edge.
        clean = bad.replace(
            "    return _KERNELS[name](keys, vals)\n",
            "    world.ops.record(world.phase, 0, 'pack', nbytes=8.0)\n"
            "    return _KERNELS[name](keys, vals)\n",
        )
        assert not lint_source(clean, KERNEL).findings

    def test_rl005_subscript_registration_shape(self):
        # Incremental `REGISTRY[key] = fn` registration resolves too.
        clean = (
            "import numpy as np\n"
            "def _fast(keys, vals):\n"
            "    order = np.lexsort(keys)\n"
            "    return vals[order]\n"
            "_KERNELS = {}\n"
            '_KERNELS["fast"] = _fast\n'
            "def pack(world, name, keys, vals):\n"
            "    world.ops.record(world.phase, 0, 'pack', nbytes=8.0)\n"
            "    return _KERNELS[name](keys, vals)\n"
        )
        assert not lint_source(clean, KERNEL).findings

    def test_rl001_method_form(self):
        bad = "idx = weights.argsort()\n"
        clean = 'idx = weights.argsort(kind="stable")\n'
        assert [f.rule for f in lint_source(bad, NEUTRAL).findings] == [
            "RL001"
        ]
        assert not lint_source(clean, NEUTRAL).findings

    def test_rl002_scoped_to_kernel_packages(self):
        bad = FIXTURES[1][1]
        # The same raw np.add.at outside assembly/linalg/amg/smoothers is
        # host-side bookkeeping, not a device kernel: no finding.
        assert not lint_source(bad, NEUTRAL).findings

    def test_rl002_registered_wrapper_is_allowed(self):
        src = (
            "import numpy as np\n"
            "class LocalAssembler:\n"
            "    def _scatter(self, t, s, v):\n"
            "        np.add.at(t, s, v)\n"
            "        self._record_scatter(v.size, 'scatter')\n"
        )
        assert not lint_source(src, KERNEL).findings

    def test_rl006_raw_stack_manipulation(self):
        got = lint_source('world._pop_phase("assembly")\n', NEUTRAL)
        assert [f.rule for f in got.findings] == ["RL006"]

    def test_rl010_scoped_to_campaign_package(self):
        # The same swallow outside campaign/ is somebody else's
        # convention — only the fault-domain layer is held to taxonomy
        # bookkeeping.
        bad = FIXTURES[-1][1]
        assert not lint_source(bad, NEUTRAL).findings

    def test_rl010_narrow_except_unflagged(self):
        src = (
            "import os\n"
            "def release(path):\n"
            "    try:\n"
            "        os.unlink(path)\n"
            "    except OSError:\n"
            "        pass\n"
        )
        assert not lint_source(src, CAMPAIGN).findings

    def test_rl010_bare_except_flagged(self):
        src = (
            "def run(job):\n"
            "    try:\n"
            "        job()\n"
            "    except:\n"
            "        return None\n"
        )
        assert [f.rule for f in lint_source(src, CAMPAIGN).findings] == [
            "RL010"
        ]

    def test_rl010_reraise_and_record_helper_accepted(self):
        reraise = (
            "def run(job):\n"
            "    try:\n"
            "        job()\n"
            "    except Exception:\n"
            "        raise\n"
        )
        assert not lint_source(reraise, CAMPAIGN).findings
        recorded = (
            "def run(job, log):\n"
            "    try:\n"
            "        job()\n"
            "    except Exception as exc:\n"
            "        record_failure(log, exc)\n"
        )
        assert not lint_source(recorded, CAMPAIGN).findings

    def test_syntax_error_is_a_finding_not_a_crash(self):
        got = lint_source("def broken(:\n", NEUTRAL)
        assert [f.rule for f in got.findings] == ["RL000"]


class TestSuppression:
    def test_pragma_same_line(self):
        src = "import numpy as np\no = np.argsort(x)  # repro: allow(RL001)\n"
        got = lint_source(src, NEUTRAL)
        assert not got.findings
        assert [f.rule for f in got.suppressed] == ["RL001"]

    def test_pragma_in_comment_block_above(self):
        src = (
            "import numpy as np\n"
            "# repro: allow(RL001) — justification may run over\n"
            "# several comment lines before the statement.\n"
            "o = np.argsort(x)\n"
        )
        got = lint_source(src, NEUTRAL)
        assert not got.findings and len(got.suppressed) == 1

    def test_pragma_does_not_cover_other_rules(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  # repro: allow(RL001)\n"
        )
        got = lint_source(src, NEUTRAL)
        assert [f.rule for f in got.findings] == ["RL003"]

    def test_baseline_roundtrip(self, tmp_path):
        bad = tmp_path / "core"
        bad.mkdir()
        f = bad / "legacy.py"
        f.write_text("import numpy as np\norder = np.argsort(x)\n")
        first = lint_paths([str(tmp_path)])
        assert [x.rule for x in first.findings] == ["RL001"]

        base = tmp_path / "baseline.json"
        write_baseline(str(base), first)
        doc = json.loads(base.read_text())
        assert doc["schema"] == "repro.analysis-baseline/2"

        again = lint_paths([str(tmp_path)])
        apply_baseline(again, load_baseline(str(base)))
        assert not again.findings
        assert [x.rule for x in again.baselined] == ["RL001"]

    def test_baseline_distinguishes_identical_line_text(self, tmp_path):
        # The /1 collision: two textually identical bad lines in one
        # file shared a (rule, path, line-text) key, so baselining the
        # first silently masked the second.  /2 keys add the enclosing
        # qualname and an occurrence index.
        pkg = tmp_path / "core"
        pkg.mkdir()
        f = pkg / "dup.py"
        f.write_text(
            "import numpy as np\n"
            "def a(x):\n"
            "    return np.argsort(x)\n"
        )
        first = lint_paths([str(tmp_path)])
        assert [x.rule for x in first.findings] == ["RL001"]
        base = tmp_path / "baseline.json"
        write_baseline(str(base), first)

        f.write_text(
            "import numpy as np\n"
            "def a(x):\n"
            "    return np.argsort(x)\n"
            "def b(x):\n"
            "    return np.argsort(x)\n"
        )
        again = lint_paths([str(tmp_path)])
        assert len(again.findings) == 2
        apply_baseline(again, load_baseline(str(base)))
        # Only the grandfathered site stays masked; the new identical
        # line in function b is live.
        assert [x.rule for x in again.baselined] == ["RL001"]
        assert again.baselined[0].qualname == "a"
        assert [(x.line, x.qualname) for x in again.findings] == [(5, "b")]

    def test_legacy_v1_baseline_keeps_any_occurrence_semantics(
        self, tmp_path
    ):
        pkg = tmp_path / "core"
        pkg.mkdir()
        f = pkg / "dup.py"
        f.write_text(
            "import numpy as np\n"
            "def a(x):\n"
            "    return np.argsort(x)\n"
            "def b(x):\n"
            "    return np.argsort(x)\n"
        )
        legacy = {
            "schema": "repro.analysis-baseline/1",
            "findings": [
                {
                    "rule": "RL001",
                    "path": str(f),
                    "line_text": "return np.argsort(x)",
                }
            ],
        }
        base = tmp_path / "baseline.json"
        base.write_text(json.dumps(legacy))
        report = lint_paths([str(tmp_path)])
        assert len(report.findings) == 2
        apply_baseline(report, load_baseline(str(base)))
        # Historical behavior preserved: one /1 entry masks every
        # occurrence of that line text.
        assert not report.findings
        assert len(report.baselined) == 2

    def test_unknown_baseline_schema_is_an_error(self, tmp_path):
        base = tmp_path / "baseline.json"
        base.write_text('{"schema": "repro.analysis-baseline/9"}')
        with pytest.raises(ValueError, match="schema"):
            load_baseline(str(base))

    def test_suppression_counts_into_metrics(self):
        src = "import numpy as np\no = np.argsort(x)  # repro: allow(RL001)\n"
        report = lint_source(src, NEUTRAL)
        m = MetricsRegistry()
        report.publish_metrics(m)
        assert m.counter("analysis.suppressed", rule="RL001").value == 1.0
        assert m.counter_total("analysis.findings") == 0.0


class TestCLI:
    def _run(self, argv):
        from repro.__main__ import main

        return main(argv)

    def test_strict_gate_fails_on_bad_tree(self, tmp_path, capsys):
        pkg = tmp_path / "assembly"
        pkg.mkdir()
        (pkg / "bad.py").write_text(
            "import numpy as np\n"
            "def scatter(t, s, v):\n"
            "    np.add.at(t, s, v)\n"
        )
        code = self._run(
            ["analyze", "--strict", "--no-dynamic", str(tmp_path)]
        )
        assert code == 1
        assert "RL002" in capsys.readouterr().out

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(
            'import numpy as np\no = np.argsort(x, kind="stable")\n'
        )
        assert (
            self._run(["analyze", "--strict", "--no-dynamic", str(tmp_path)])
            == 0
        )

    def test_json_format_carries_schema(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        self._run(
            ["analyze", "--no-dynamic", "--format", "json", str(tmp_path)]
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.analysis/2"
        assert "metrics" in doc and "dynamic" in doc

    def test_changed_scope_on_shipped_tree_exits_zero(self):
        # --changed narrows lint to the git-modified subset (and falls
        # back to a full scan when git is unavailable); either way the
        # shipped tree must gate clean.
        assert (
            self._run(
                [
                    "analyze",
                    "--strict",
                    "--no-dynamic",
                    "--changed",
                    "src/repro",
                ]
            )
            == 0
        )

    def test_shipped_tree_is_clean(self):
        # The acceptance criterion: the repo lints clean under --strict.
        assert (
            self._run(["analyze", "--strict", "--no-dynamic", "src/repro"])
            == 0
        )


# -- dynamic half ------------------------------------------------------------


def _mk_assembler(mode="deterministic", seed=0):
    edges, cons, num = _build_problem(seed, 30, 70, 2, 3)
    world = SimWorld(2)
    graph = EquationGraph(
        world, num, GraphSpec(n=30, edges=edges, constraint_rows=cons)
    )
    return LocalAssembler(world, graph, mode=mode), num, cons, edges


class TestSanitizer:
    def test_planted_conflicting_write_detected(self):
        # Duplicate constraint rows in one launch: raw last-writer-wins
        # assignment with overlapping writers — must surface as KS001.
        la, num, cons, _ = _mk_assembler()
        la.sanitizer = KernelSanitizer()
        rows = num.old_to_new[cons]
        dup = np.concatenate([rows, rows[:1]])
        la.set_constraint_rhs(dup, np.arange(dup.size, dtype=float))
        assert [f.rule for f in la.sanitizer.findings] == ["KS001"]
        assert "assemble_rhs_bc" in la.sanitizer.findings[0].kernel

    def test_unique_contract_violation_detected(self):
        san = KernelSanitizer()
        san.observe(
            "assemble_diag", np.zeros(8), np.array([3, 3, 5]), "unique"
        )
        assert [f.rule for f in san.findings] == ["KS002"]

    def test_declared_reduce_and_atomic_conflicts_are_not_findings(self):
        san = KernelSanitizer()
        slots = np.array([1, 1, 2, 2, 2])
        san.observe("k", np.zeros(4), slots, "reduce")
        san.observe("k", np.zeros(4), slots, "atomic")
        assert not san.findings
        assert san.nondeterministic_launches == 1
        s = san.summary()
        assert s["launches"] == 2 and s["conflicting_launches"] == 2

    def test_clean_pipeline_run_produces_no_sanitizer_findings(self):
        la, num, cons, edges = _mk_assembler()
        la.sanitizer = KernelSanitizer()
        rng = np.random.default_rng(3)
        E = edges.shape[0]
        ge = rng.standard_normal(E)
        la.add_edge_matrix(np.stack([ge, -ge, -ge, ge], axis=1))
        la.add_diag(rng.random(la.graph.n) + 1.0)
        la.set_constraint_rhs(num.old_to_new[cons], np.zeros(cons.size))
        assert not la.sanitizer.findings
        assert la.sanitizer.summary()["launches"] >= 3


class TestDeterminismReplay:
    def test_planted_unstable_reduction_detected(self):
        # An implementation that sorts the arrival-ordered list (or uses
        # an unstable sort) leaks schedule dependence into the
        # "deterministic" modes: the harness must flag it.
        report = check_scatter_modes(seed=2, sort_kind="unstable")
        rules = {f.rule for f in report.findings}
        assert "KS003" in rules
        kernels = {f.kernel for f in report.findings}
        assert "scatter:deterministic" in kernels

    @pytest.mark.parametrize("mode", SCATTER_MODES)
    def test_permuted_order_contract_per_mode(self, mode):
        rng = np.random.default_rng(11)
        n, m = 32, 300
        slots = rng.integers(0, n, size=m)
        vals = rng.standard_normal(m) * 10.0 ** rng.integers(-9, 1, size=m)
        ref = replay_scatter(n, slots, vals, mode, np.arange(m))
        for k in range(3):
            out = replay_scatter(
                n, slots, vals, mode, rng.permutation(m)
            )
            if mode == "atomic":
                bound = ATOMIC_BOUND_SAFETY * atomic_deviation_bound(
                    n, slots, vals
                )
                assert np.all(np.abs(out - ref) <= bound)
            else:
                # Bitwise, not approximate: the §3.3 contract.
                assert np.array_equal(out, ref)

    def test_atomic_reorder_actually_moves_bits(self):
        # The harness must be able to *see* reassociation, or the bound
        # check is vacuous.
        rng = np.random.default_rng(5)
        n, m = 8, 500
        slots = rng.integers(0, n, size=m)
        vals = rng.standard_normal(m) * 10.0 ** rng.integers(-9, 1, size=m)
        ref = replay_scatter(n, slots, vals, "atomic", np.arange(m))
        devs = [
            np.abs(
                replay_scatter(n, slots, vals, "atomic", rng.permutation(m))
                - ref
            ).max()
            for _ in range(8)
        ]
        assert max(devs) > 0.0

    def test_scatter_modes_clean(self):
        report = check_scatter_modes(seed=0)
        assert not report.findings
        assert report.dynamic_stats["scatter_checks"] == 12
        assert (
            report.dynamic_stats["atomic_max_deviation"]
            <= report.dynamic_stats["atomic_bound"]
        )

    def test_assembly_pipeline_clean_across_schedules_and_variants(self):
        report = check_assembly_pipeline(seed=0)
        assert not report.findings, [f.message for f in report.findings]
        san = report.dynamic_stats["sanitizer"]
        assert san["findings"] == 0 and san["launches"] > 0

    def test_run_dynamic_checks_roundtrip(self):
        report = run_dynamic_checks(seed=1)
        assert not report.errors()
        doc = json.loads(render_json(report))
        assert doc["dynamic"]["modes"] == list(SCATTER_MODES)

    def test_thread_schedule_is_seed_deterministic(self):
        a, b = ThreadSchedule(9), ThreadSchedule(9)
        assert np.array_equal(a.order(100), b.order(100))
        assert not np.array_equal(
            ThreadSchedule(9).order(100), ThreadSchedule(10).order(100)
        )

    def test_phase_imbalance_detected(self):
        world = SimWorld(2)
        world.assert_phase_balanced()
        cm = world.phase_scope("leaky")
        cm.__enter__()
        with pytest.raises(RuntimeError, match="phase stack not balanced"):
            world.assert_phase_balanced()
        cm.__exit__(None, None, None)
        world.assert_phase_balanced()


class TestReportPlumbing:
    def test_exit_code_strict_vs_default(self):
        from repro.analysis.findings import Finding

        r = AnalysisReport()
        r.findings.append(
            Finding(
                rule="RL005",
                path="x.py",
                line=1,
                severity="warning",
                message="m",
            )
        )
        assert r.exit_code(strict=False) == 0
        assert r.exit_code(strict=True) == 1

    def test_findings_counted_into_metrics(self):
        report = lint_source(
            "import numpy as np\no = np.argsort(x)\n", NEUTRAL
        )
        m = MetricsRegistry()
        report.publish_metrics(m)
        assert m.counter("analysis.findings", rule="RL001").value == 1.0
