"""Tests for overset assembly: trilinear maps, holes, fringes, donors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import BladeSpec, make_blade_mesh, make_turbine_dual, make_turbine_low
from repro.overset import (
    NodeStatus,
    OversetAssembler,
    contains,
    invert_map,
    shape_functions,
    shape_gradients,
)


def linear_field(x):
    return 1.0 + 2.0 * x[:, 0] - 3.0 * x[:, 1] + 0.5 * x[:, 2]


class TestTrilinear:
    def test_partition_of_unity(self):
        rng = np.random.default_rng(0)
        xi = rng.uniform(-1, 1, (50, 3))
        N = shape_functions(xi)
        assert np.allclose(N.sum(axis=1), 1.0)

    def test_corner_values(self):
        from repro.overset.trilinear import _CORNERS

        N = shape_functions(_CORNERS)
        assert np.allclose(N, np.eye(8), atol=1e-14)

    def test_gradient_consistency(self):
        rng = np.random.default_rng(1)
        xi = rng.uniform(-0.9, 0.9, (5, 3))
        G = shape_gradients(xi)
        eps = 1e-6
        for d in range(3):
            xp = xi.copy()
            xp[:, d] += eps
            xm = xi.copy()
            xm[:, d] -= eps
            fd = (shape_functions(xp) - shape_functions(xm)) / (2 * eps)
            assert np.allclose(G[:, :, d], fd, atol=1e-8)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_invert_map_recovers_reference_coords(self, seed):
        rng = np.random.default_rng(seed)
        # Random mildly distorted hex.
        base = np.array(
            [
                [0, 0, 0],
                [1, 0, 0],
                [1, 1, 0],
                [0, 1, 0],
                [0, 0, 1],
                [1, 0, 1],
                [1, 1, 1],
                [0, 1, 1],
            ],
            dtype=float,
        )
        corners = base + 0.15 * rng.uniform(-1, 1, (8, 3))
        xi_true = rng.uniform(-0.95, 0.95, (1, 3))
        pt = shape_functions(xi_true) @ corners
        xi, ok = invert_map(corners[None, :, :], pt)
        assert ok[0]
        assert np.allclose(xi[0], xi_true[0], atol=1e-8)
        assert contains(xi)[0]

    def test_contains_boundary_tolerance(self):
        xi = np.array([[1.0 + 1e-8, 0.0, 0.0], [1.5, 0.0, 0.0]])
        inside = contains(xi, tol=1e-6)
        assert inside[0] and not inside[1]

    def test_empty_batch(self):
        xi, ok = invert_map(np.zeros((0, 8, 3)), np.zeros((0, 3)))
        assert xi.shape == (0, 3)
        assert ok.shape == (0,)


@pytest.fixture(scope="module")
def low_system():
    s = make_turbine_low()
    conn = OversetAssembler(s.meshes).assemble()
    return s, conn


@pytest.fixture(scope="module")
def dual_system():
    s = make_turbine_dual()
    conn = OversetAssembler(s.meshes).assemble()
    return s, conn


class TestOversetAssembly:
    def test_every_blade_rim_is_fringe(self, low_system):
        s, conn = low_system
        for k, mesh in enumerate(s.meshes[1:], start=1):
            outer = mesh.boundaries["outer"]
            wall = mesh.boundaries["wall"]
            rim = np.setdiff1d(outer, wall)
            assert np.all(conn.statuses[k][rim] == NodeStatus.FRINGE)

    def test_wall_nodes_are_not_fringe(self, low_system):
        s, conn = low_system
        for k, mesh in enumerate(s.meshes[1:], start=1):
            wall = mesh.boundaries["wall"]
            assert not np.any(conn.statuses[k][wall] == NodeStatus.FRINGE)

    def test_donor_weights_sum_to_one(self, low_system):
        _s, conn = low_system
        for ds in conn.donor_sets:
            assert np.allclose(ds.weights.sum(axis=1), 1.0, atol=1e-12)

    def test_linear_field_reproduced_exactly(self, low_system):
        s, conn = low_system
        for ds in conn.donor_sets:
            donor_vals = linear_field(s.meshes[ds.donor_mesh].coords)
            got = ds.interpolate(donor_vals)
            want = linear_field(
                s.meshes[ds.receptor_mesh].coords[ds.receptors]
            )
            assert np.allclose(got, want, atol=1e-6)

    def test_vector_field_interpolation(self, low_system):
        s, conn = low_system
        ds = conn.donor_sets[0]
        field = s.meshes[ds.donor_mesh].coords.copy()  # identity field
        got = ds.interpolate(field)
        want = s.meshes[ds.receptor_mesh].coords[ds.receptors]
        assert np.allclose(got, want, atol=1e-6)

    def test_dual_system_cuts_holes(self, dual_system):
        _s, conn = dual_system
        holes = conn.hole_nodes(0)
        assert holes.size > 0

    def test_hole_neighbors_never_field(self, dual_system):
        s, conn = dual_system
        g = s.background.node_graph().tocoo()
        st_ = conn.statuses[0]
        bad = (st_[g.row] == NodeStatus.HOLE) & (
            st_[g.col] == NodeStatus.FIELD
        )
        assert not np.any(bad)

    def test_background_fringe_has_nearbody_donors(self, dual_system):
        _s, conn = dual_system
        bg_fringe = conn.fringe_nodes(0)
        covered = np.concatenate(
            [
                ds.receptors
                for ds in conn.donor_sets
                if ds.receptor_mesh == 0
            ]
        ) if any(d.receptor_mesh == 0 for d in conn.donor_sets) else np.array([])
        assert np.array_equal(np.sort(covered), np.sort(bg_fringe))

    def test_statuses_cover_all_meshes(self, low_system):
        s, conn = low_system
        assert len(conn.statuses) == len(s.meshes)
        for st_, m in zip(conn.statuses, s.meshes):
            assert st_.shape == (m.n_nodes,)

    def test_connectivity_updates_after_rotation(self):
        s = make_turbine_dual()
        asm = OversetAssembler(s.meshes)
        conn0 = asm.assemble()
        h0 = conn0.hole_nodes(0)
        s.advance_rotor(0.8)  # large rotation
        conn1 = asm.assemble()
        h1 = conn1.hole_nodes(0)
        # Hole set changes as the rotor sweeps (not necessarily count).
        assert h1.size > 0
        # Donors remain linear-exact after motion.
        for ds in conn1.donor_sets:
            donor_vals = linear_field(s.meshes[ds.donor_mesh].coords)
            got = ds.interpolate(donor_vals)
            want = linear_field(
                s.meshes[ds.receptor_mesh].coords[ds.receptors]
            )
            assert np.allclose(got, want, atol=1e-5)
