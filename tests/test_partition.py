"""Tests for RCB, the multilevel partitioner, metrics, and renumbering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.partition import (
    balance_stats,
    build_numbering,
    components_per_rank,
    edge_cut,
    heavy_edge_matching,
    multilevel_partition,
    nnz_per_rank,
    rcb_partition,
)


def grid_graph(nx, ny):
    """2-D lattice adjacency."""
    n = nx * ny
    ids = np.arange(n).reshape(nx, ny)
    e = []
    e.append(np.stack([ids[:-1].ravel(), ids[1:].ravel()], axis=1))
    e.append(np.stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()], axis=1))
    e = np.concatenate(e)
    ones = np.ones(e.shape[0])
    g = sparse.coo_matrix(
        (
            np.concatenate([ones, ones]),
            (
                np.concatenate([e[:, 0], e[:, 1]]),
                np.concatenate([e[:, 1], e[:, 0]]),
            ),
        ),
        shape=(n, n),
    )
    return g.tocsr()


class TestRCB:
    def test_counts_balanced_power_of_two(self):
        rng = np.random.default_rng(0)
        pts = rng.random((1000, 3))
        parts = rcb_partition(pts, 8)
        counts = np.bincount(parts, minlength=8)
        assert counts.max() - counts.min() <= 8

    def test_non_power_of_two_parts(self):
        rng = np.random.default_rng(1)
        pts = rng.random((999, 3))
        parts = rcb_partition(pts, 7)
        assert parts.max() == 6
        counts = np.bincount(parts)
        assert counts.max() / counts.min() < 1.2

    def test_weighted_median(self):
        # All weight on the left half: a 2-part split puts the boundary
        # inside the heavy region.
        pts = np.stack([np.arange(100.0), np.zeros(100), np.zeros(100)], 1)
        w = np.where(pts[:, 0] < 50, 10.0, 1.0)
        parts = rcb_partition(pts, 2, weights=w)
        w0 = w[parts == 0].sum()
        w1 = w[parts == 1].sum()
        assert abs(w0 - w1) / (w0 + w1) < 0.1

    def test_single_part(self):
        parts = rcb_partition(np.random.rand(10, 3), 1)
        assert np.all(parts == 0)

    def test_invalid_nparts(self):
        with pytest.raises(ValueError):
            rcb_partition(np.random.rand(5, 3), 0)

    def test_weight_shape_validated(self):
        with pytest.raises(ValueError):
            rcb_partition(np.random.rand(5, 3), 2, weights=np.ones(4))

    def test_spatial_locality(self):
        # RCB parts are coordinate slabs: every part's bounding box along
        # the cut dimension is disjoint for a 2-way split.
        rng = np.random.default_rng(2)
        pts = rng.random((500, 3)) * [10, 1, 1]
        parts = rcb_partition(pts, 2)
        x0 = pts[parts == 0][:, 0]
        x1 = pts[parts == 1][:, 0]
        assert x0.max() <= x1.min() + 1e-12 or x1.max() <= x0.min() + 1e-12


class TestHeavyEdgeMatching:
    def test_matching_reduces_size(self):
        g = grid_graph(20, 20)
        rng = np.random.default_rng(0)
        agg = heavy_edge_matching(g, rng)
        nc = agg.max() + 1
        assert nc < 0.75 * g.shape[0]

    def test_aggregates_are_pairs_or_singletons(self):
        g = grid_graph(10, 10)
        agg = heavy_edge_matching(g, np.random.default_rng(0))
        counts = np.bincount(agg)
        assert counts.max() <= 2

    def test_matched_pairs_are_adjacent(self):
        g = grid_graph(8, 8)
        agg = heavy_edge_matching(g, np.random.default_rng(3))
        counts = np.bincount(agg)
        pair_ids = np.flatnonzero(counts == 2)
        gcsr = g.tocsr()
        for pid in pair_ids[:20]:
            a, b = np.flatnonzero(agg == pid)
            assert gcsr[a, b] != 0

    def test_prefers_heavy_edges(self):
        # Path graph 0-1-2 with a heavy 1-2 edge: 1 should pair with 2.
        g = sparse.csr_matrix(
            np.array(
                [
                    [0.0, 1.0, 0.0],
                    [1.0, 0.0, 100.0],
                    [0.0, 100.0, 0.0],
                ]
            )
        )
        agg = heavy_edge_matching(g, np.random.default_rng(0))
        assert agg[1] == agg[2]
        assert agg[0] != agg[1]


class TestMultilevel:
    def test_parts_valid_and_balanced(self):
        g = grid_graph(30, 30)
        parts = multilevel_partition(g, 6, options=None)
        assert parts.min() == 0 and parts.max() == 5
        counts = np.bincount(parts)
        assert counts.max() / counts.mean() < 1.25

    def test_vertex_weight_balancing(self):
        g = grid_graph(20, 20)
        vw = np.ones(400)
        vw[:100] = 10.0
        parts = multilevel_partition(g, 4, vertex_weights=vw)
        loads = np.zeros(4)
        np.add.at(loads, parts, vw)
        assert loads.max() / loads.mean() < 1.3

    def test_single_part_shortcut(self):
        g = grid_graph(5, 5)
        assert np.all(multilevel_partition(g, 1) == 0)

    def test_cut_quality_vs_random(self):
        g = grid_graph(24, 24)
        parts = multilevel_partition(g, 4)
        rng = np.random.default_rng(0)
        random_parts = rng.integers(0, 4, g.shape[0])
        assert edge_cut(g, parts) < 0.5 * edge_cut(g, random_parts)

    def test_invalid_inputs(self):
        g = grid_graph(4, 4)
        with pytest.raises(ValueError):
            multilevel_partition(g, 0)
        with pytest.raises(ValueError):
            multilevel_partition(g, 2, vertex_weights=np.ones(3))

    @settings(max_examples=10, deadline=None)
    @given(nparts=st.integers(2, 6), seed=st.integers(0, 50))
    def test_property_every_part_nonempty(self, nparts, seed):
        g = grid_graph(15, 15)
        rng = np.random.default_rng(seed)
        vw = rng.random(g.shape[0]) + 0.5
        parts = multilevel_partition(g, nparts, vertex_weights=vw)
        assert np.bincount(parts, minlength=nparts).min() > 0


class TestMetrics:
    def test_nnz_per_rank(self):
        A = sparse.csr_matrix(np.array([[1, 1], [1, 0.0]]))
        parts = np.array([0, 1])
        counts = nnz_per_rank(A, parts)
        assert counts.tolist() == [2, 1]

    def test_balance_stats(self):
        A = sparse.random(100, 100, density=0.05, random_state=0).tocsr()
        parts = np.arange(100) % 4
        bs = balance_stats(A, parts)
        assert bs.nparts == 4
        assert bs.minimum <= bs.median <= bs.maximum
        assert bs.spread == bs.maximum - bs.minimum

    def test_edge_cut_counts_crossings_once(self):
        g = grid_graph(4, 1)
        parts = np.array([0, 0, 1, 1])
        assert edge_cut(g, parts) == 1

    def test_components_per_rank_detects_slivers(self):
        g = grid_graph(6, 1)  # path of 6
        parts = np.array([0, 1, 0, 0, 1, 0])
        comps = components_per_rank(g, parts)
        assert comps[0] == 3  # {0}, {2,3}, {5}
        assert comps[1] == 2


class TestRenumbering:
    def test_round_trip(self):
        parts = np.array([2, 0, 1, 0, 2, 1])
        num = build_numbering(parts, 3)
        assert np.array_equal(
            num.old_to_new[num.new_to_old], np.arange(6)
        )
        assert num.offsets.tolist() == [0, 2, 4, 6]

    def test_rank_blocks_contiguous(self):
        rng = np.random.default_rng(0)
        parts = rng.integers(0, 4, 100)
        num = build_numbering(parts, 4)
        for r in range(4):
            olds = num.owned_old_ids(r)
            assert np.all(parts[olds] == r)

    def test_stable_within_rank(self):
        parts = np.array([1, 0, 1, 0])
        num = build_numbering(parts, 2)
        assert num.owned_old_ids(0).tolist() == [1, 3]
        assert num.owned_old_ids(1).tolist() == [0, 2]

    def test_empty_trailing_rank(self):
        parts = np.array([0, 0, 1])
        num = build_numbering(parts, 4)
        assert num.offsets.tolist() == [0, 2, 3, 3, 3]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            build_numbering(np.array([0, 5]), 2)

    def test_owner_of_new(self):
        parts = np.array([1, 0, 1, 0])
        num = build_numbering(parts, 2)
        owners = num.owner_of_new(np.arange(4))
        assert owners.tolist() == [0, 0, 1, 1]

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(1, 60), nranks=st.integers(1, 6), seed=st.integers(0, 99))
    def test_property_permutation(self, n, nranks, seed):
        rng = np.random.default_rng(seed)
        parts = rng.integers(0, nranks, n)
        num = build_numbering(parts, nranks)
        assert np.array_equal(np.sort(num.old_to_new), np.arange(n))
        # Block sizes match part counts.
        counts = np.bincount(parts, minlength=nranks)
        assert np.array_equal(np.diff(num.offsets), counts)
