"""Tests for the three-stage assembly pipeline (paper §3, Algorithms 1-2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assembly import (
    EquationGraph,
    GraphSpec,
    HypreIJMatrix,
    HypreIJVector,
    LocalAssembler,
    assemble_global_matrix,
    assemble_global_vector,
    reduce_by_key,
    stable_sort_by_key,
)
from repro.comm import SimWorld
from repro.partition import build_numbering


class TestPrimitives:
    def test_stable_sort_by_key(self):
        i = np.array([2, 0, 2, 1])
        j = np.array([1, 5, 0, 3])
        v = np.array([10.0, 20.0, 30.0, 40.0])
        (i_s, j_s), v_s = stable_sort_by_key((i, j), v)
        assert i_s.tolist() == [0, 1, 2, 2]
        assert j_s.tolist() == [5, 3, 0, 1]
        assert v_s.tolist() == [20.0, 40.0, 30.0, 10.0]

    def test_sort_stability(self):
        i = np.array([1, 1, 1])
        j = np.array([2, 2, 2])
        v = np.array([1.0, 2.0, 3.0])
        (_i, _j), v_s = stable_sort_by_key((i, j), v)
        assert v_s.tolist() == [1.0, 2.0, 3.0]

    def test_reduce_by_key_sums_runs(self):
        i = np.array([0, 0, 1, 1, 1, 2])
        j = np.array([0, 0, 1, 1, 2, 2])
        v = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        (i_u, j_u), v_u = reduce_by_key((i, j), v)
        assert i_u.tolist() == [0, 1, 1, 2]
        assert j_u.tolist() == [0, 1, 2, 2]
        assert v_u.tolist() == [3.0, 7.0, 5.0, 6.0]

    def test_reduce_empty(self):
        (i_u,), v_u = reduce_by_key(
            (np.zeros(0, dtype=np.int64),), np.zeros(0)
        )
        assert i_u.size == 0 and v_u.size == 0

    def test_sort_requires_keys(self):
        with pytest.raises(ValueError):
            stable_sort_by_key((), np.zeros(3))

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(0, 200))
    def test_property_sort_reduce_equals_coo_sum(self, seed, n):
        """sort+reduce over random duplicated COO == scipy duplicate sum."""
        from scipy import sparse

        rng = np.random.default_rng(seed)
        i = rng.integers(0, 10, n)
        j = rng.integers(0, 10, n)
        v = rng.standard_normal(n)
        (i_s, j_s), v_s = stable_sort_by_key((i, j), v)
        (i_u, j_u), v_u = reduce_by_key((i_s, j_s), v_s)
        ref = sparse.coo_matrix((v, (i, j)), shape=(10, 10)).toarray()
        got = sparse.coo_matrix((v_u, (i_u, j_u)), shape=(10, 10)).toarray()
        assert np.allclose(got, ref, atol=1e-12)


def build_random_problem(seed=0, n=80, E=200, nranks=4, ncons=5):
    """Random 'mesh' + partition + graph for pipeline tests."""
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n, size=(E, 2))
    edges = edges[edges[:, 0] != edges[:, 1]]
    cons = rng.choice(n, size=ncons, replace=False)
    parts = rng.integers(0, nranks, size=n)
    num = build_numbering(parts, nranks)
    w = SimWorld(nranks)
    spec = GraphSpec(n=n, edges=edges, constraint_rows=cons)
    g = EquationGraph(w, num, spec)
    return rng, w, num, g, edges, cons


def reference_assembly(num, edges, cons, n, ge, diag, node_rhs, erhs, bc_vals):
    """Dense reference of matrix and RHS in new numbering."""
    o2n = num.old_to_new
    is_con = np.zeros(n, bool)
    is_con[o2n[cons]] = True
    A = np.zeros((n, n))
    b = np.zeros(n)
    ea, eb = o2n[edges[:, 0]], o2n[edges[:, 1]]
    for k in range(edges.shape[0]):
        a_, b_ = ea[k], eb[k]
        if not is_con[a_]:
            A[a_, a_] += ge[k]
            A[a_, b_] -= ge[k]
            b[a_] += erhs[k, 0]
        if not is_con[b_]:
            A[b_, b_] += ge[k]
            A[b_, a_] -= ge[k]
            b[b_] += erhs[k, 1]
    A[np.arange(n), np.arange(n)] += diag
    free = ~is_con
    b[free] += node_rhs[free]
    b[o2n[cons]] = bc_vals
    return A, b


class TestGraph:
    def test_owned_patterns_sorted_unique(self):
        _rng, _w, num, g, _e, _c = build_random_problem()
        for r in range(num.nranks):
            i, j = g.owned_pattern(r)
            key = i * 10**6 + j
            assert np.all(np.diff(key) > 0)
            # Owned rows really owned.
            lo, hi = num.offsets[r], num.offsets[r + 1]
            if i.size:
                assert i.min() >= lo and i.max() < hi

    def test_shared_rows_owned_elsewhere(self):
        _rng, _w, num, g, _e, _c = build_random_problem()
        for r in range(num.nranks):
            i, _j = g.shared_pattern(r)
            if i.size:
                owners = num.owner_of_new(i)
                assert np.all(owners != r)

    def test_every_row_has_diagonal(self):
        _rng, _w, num, g, _e, _c = build_random_problem()
        diag_found = np.zeros(g.n, dtype=bool)
        for r in range(num.nranks):
            i, j = g.owned_pattern(r)
            diag_found[i[i == j]] = True
        assert np.all(diag_found)

    def test_constraint_rows_are_identity_only(self):
        _rng, _w, num, g, _e, cons = build_random_problem()
        con_new = set(num.old_to_new[cons].tolist())
        for r in range(num.nranks):
            for pat in (g.owned_pattern(r), g.shared_pattern(r)):
                i, j = pat
                mask = np.isin(i, list(con_new))
                assert np.all(i[mask] == j[mask])

    def test_nnz_recv_matches_shared_sums(self):
        _rng, _w, num, g, _e, _c = build_random_problem()
        total_sent = sum(
            g.shared_pattern(r)[0].size for r in range(num.nranks)
        )
        total_recv = sum(g.nnz_recv(r) for r in range(num.nranks))
        assert total_sent == total_recv

    def test_spec_size_mismatch_rejected(self):
        parts = np.zeros(5, dtype=np.int64)
        num = build_numbering(parts, 1)
        w = SimWorld(1)
        spec = GraphSpec(
            n=6,
            edges=np.zeros((0, 2), dtype=np.int64),
            constraint_rows=np.zeros(0, dtype=np.int64),
        )
        with pytest.raises(ValueError):
            EquationGraph(w, num, spec)


class TestPipelineEndToEnd:
    @pytest.mark.parametrize("variant", ["optimized", "sparse_add", "general"])
    def test_matrix_and_vector_match_reference(self, variant):
        rng, w, num, g, edges, cons = build_random_problem(seed=7)
        n = g.n
        E = edges.shape[0]
        ge = rng.random(E) + 0.1
        diag = rng.random(n) + 1.0
        node_rhs = rng.standard_normal(n)
        erhs = rng.standard_normal((E, 2))
        bc_vals = rng.standard_normal(cons.size)

        la = LocalAssembler(w, g)
        la.add_edge_matrix(np.stack([ge, -ge, -ge, ge], axis=1))
        la.add_diag(diag)
        la.add_node_rhs(node_rhs)
        la.add_edge_rhs(erhs)
        la.set_constraint_rhs(num.old_to_new[cons], bc_vals)
        local = la.finalize()

        am = assemble_global_matrix(w, num, local, variant=variant)
        rhs = assemble_global_vector(w, num, local, variant=variant)

        Aref, bref = reference_assembly(
            num, edges, cons, n, ge, diag, node_rhs, erhs, bc_vals
        )
        assert np.allclose(am.matrix.A.toarray(), Aref, atol=1e-12)
        assert np.allclose(rhs.data, bref, atol=1e-12)

    def test_variants_agree_with_each_other(self):
        results = []
        for variant in ("optimized", "sparse_add", "general"):
            rng, w, num, g, edges, cons = build_random_problem(seed=11)
            E = edges.shape[0]
            rng2 = np.random.default_rng(99)
            ge = rng2.random(E) + 0.1
            la = LocalAssembler(w, g)
            la.add_edge_matrix(np.stack([ge, -ge, -ge, ge], axis=1))
            la.add_diag(np.ones(g.n))
            local = la.finalize()
            am = assemble_global_matrix(w, num, local, variant=variant)
            results.append(am.matrix.A.toarray())
        assert np.allclose(results[0], results[1])
        assert np.allclose(results[0], results[2])

    def test_general_variant_costs_more(self):
        """The baseline ('general') path must record more data motion."""
        recorded = {}
        for variant in ("optimized", "general"):
            rng, w, num, g, edges, cons = build_random_problem(seed=5)
            ge = rng.random(edges.shape[0]) + 0.1
            la = LocalAssembler(w, g)
            la.add_edge_matrix(np.stack([ge, -ge, -ge, ge], axis=1))
            la.add_diag(np.ones(g.n))
            local = la.finalize()
            with w.phase_scope("ga"):
                assemble_global_matrix(w, num, local, variant=variant)
            recorded[variant] = w.ops.total("ga").bytes
        assert recorded["general"] > recorded["optimized"]

    def test_unknown_variant_rejected(self):
        rng, w, num, g, edges, cons = build_random_problem()
        la = LocalAssembler(w, g)
        la.add_diag(np.ones(g.n))
        local = la.finalize()
        with pytest.raises(ValueError):
            assemble_global_matrix(w, num, local, variant="bogus")
        with pytest.raises(ValueError):
            assemble_global_vector(w, num, local, variant="bogus")

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 5000),
        nranks=st.integers(1, 6),
    )
    def test_property_assembled_matrix_matches_reference(self, seed, nranks):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(10, 50))
        E = int(rng.integers(5, 120))
        edges = rng.integers(0, n, size=(E, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        if edges.shape[0] == 0:
            return
        cons = rng.choice(n, size=min(3, n), replace=False)
        parts = rng.integers(0, nranks, size=n)
        num = build_numbering(parts, nranks)
        w = SimWorld(nranks)
        g = EquationGraph(
            w, num, GraphSpec(n=n, edges=edges, constraint_rows=cons)
        )
        E2 = edges.shape[0]
        ge = rng.random(E2) + 0.1
        diag = rng.random(n) + 1.0
        la = LocalAssembler(w, g)
        la.add_edge_matrix(np.stack([ge, -ge, -ge, ge], axis=1))
        la.add_diag(diag)
        local = la.finalize()
        am = assemble_global_matrix(w, num, local)
        Aref, _ = reference_assembly(
            num,
            edges,
            cons,
            n,
            ge,
            diag,
            np.zeros(n),
            np.zeros((E2, 2)),
            np.zeros(cons.size),
        )
        assert np.allclose(am.matrix.A.toarray(), Aref, atol=1e-12)


class TestCoupledFringeGraph:
    def test_fringe_donor_columns_present(self):
        rng = np.random.default_rng(0)
        n = 40
        edges = rng.integers(0, n, size=(60, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        fringe = np.array([3, 7])
        donors = rng.integers(10, 40, size=(2, 8))
        parts = rng.integers(0, 3, n)
        num = build_numbering(parts, 3)
        w = SimWorld(3)
        spec = GraphSpec(
            n=n,
            edges=edges,
            constraint_rows=fringe,
            fringe_rows=fringe,
            fringe_donors=donors,
            coupled_fringe=True,
        )
        g = EquationGraph(w, num, spec)
        la = LocalAssembler(w, g)
        la.add_diag(np.ones(n))
        weights = rng.random((2, 8))
        la.add_fringe_matrix(weights)
        local = la.finalize()
        am = assemble_global_matrix(w, num, local)
        A = am.matrix.A.toarray()
        o2n = num.old_to_new
        for k, fr in enumerate(fringe):
            row = A[o2n[fr]]
            for d in range(8):
                col = o2n[donors[k, d]]
                assert row[col] != 0.0

    def test_uncoupled_graph_rejects_fringe_fill(self):
        _rng, w, num, g, _e, _c = build_random_problem()
        la = LocalAssembler(w, g)
        with pytest.raises(RuntimeError):
            la.add_fringe_matrix(np.ones((1, 8)))


class TestIJInterface:
    def test_six_call_assembly_matches_direct(self):
        rng = np.random.default_rng(4)
        n = 24
        nranks = 3
        parts = rng.integers(0, nranks, n)
        num = build_numbering(parts, nranks)
        w = SimWorld(nranks)

        ij = HypreIJMatrix(w, num)
        ijv = HypreIJVector(w, num)
        Aref = np.zeros((n, n))
        bref = np.zeros(n)
        # Set owned values first, then stage the off-rank additions — the
        # semantics of the IJ API (sets land before the assemble-time adds).
        for r in range(nranks):
            lo, hi = num.offsets[r], num.offsets[r + 1]
            rows = rng.integers(lo, hi, 12)
            cols = rng.integers(0, n, 12)
            vals = rng.standard_normal(12)
            ij.set_values2(r, rows, cols, vals)
            for i, j, v in zip(rows, cols, vals):
                Aref[i, j] += v  # duplicates accumulate within SetValues2
            owned_idx = np.arange(lo, hi)
            ov = rng.standard_normal(owned_idx.size)
            ijv.set_values2(r, owned_idx, ov)
            bref[owned_idx] = ov
        for r in range(nranks):
            lo, hi = num.offsets[r], num.offsets[r + 1]
            other = np.setdiff1d(np.arange(n), np.arange(lo, hi))
            orows = rng.choice(other, 5)
            ocols = rng.integers(0, n, 5)
            ovals = rng.standard_normal(5)
            ij.add_to_values2(r, orows, ocols, ovals)
            for i, j, v in zip(orows, ocols, ovals):
                Aref[i, j] += v
            vrows = rng.choice(other, 4)
            vvals = rng.standard_normal(4)
            ijv.add_to_values2(r, vrows, vvals)
            for i, v in zip(vrows, vvals):
                bref[i] += v

        am = ij.assemble()
        rhs = ijv.assemble()
        assert np.allclose(am.matrix.A.toarray(), Aref, atol=1e-12)
        assert np.allclose(rhs.data, bref, atol=1e-12)

    def test_set_values_rejects_foreign_rows(self):
        parts = np.array([0, 0, 1, 1])
        num = build_numbering(parts, 2)
        w = SimWorld(2)
        ij = HypreIJMatrix(w, num)
        with pytest.raises(ValueError):
            ij.set_values2(0, np.array([3]), np.array([0]), np.array([1.0]))
        with pytest.raises(ValueError):
            ij.add_to_values2(0, np.array([0]), np.array([0]), np.array([1.0]))
