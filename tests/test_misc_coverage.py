"""Additional coverage: cycle options, pattern stats, metric geometry."""

import numpy as np
import pytest
from scipy import sparse

from repro.amg import AMGCycleOptions, AMGHierarchy, AMGPreconditioner
from repro.assembly import EquationGraph, GraphSpec
from repro.comm import SimWorld, build_exchange_pattern
from repro.krylov import GMRES
from repro.linalg import ParCSRMatrix
from repro.mesh import HexMesh
from repro.partition import build_numbering
from repro.perf import CostModel, SUMMIT_GPU


def poisson2d(nx):
    T = sparse.diags([-1.0, 2.0, -1.0], [-1, 0, 1], (nx, nx))
    return (
        sparse.kron(sparse.eye(nx), T) + sparse.kron(T, sparse.eye(nx))
    ).tocsr()


class TestCycleOptions:
    def test_more_smoothing_fewer_outer_iterations(self):
        A = poisson2d(16)
        n = A.shape[0]
        iters = {}
        for sweeps in (1, 3):
            w = SimWorld(2)
            M = ParCSRMatrix(w, A, np.array([0, n // 2, n]))
            h = AMGHierarchy(M)
            pc = AMGPreconditioner(
                h, AMGCycleOptions(pre_sweeps=sweeps, post_sweeps=sweeps)
            )
            b = M.new_vector(np.ones(n))
            res = GMRES(M, preconditioner=pc, tol=1e-8).solve(b)
            iters[sweeps] = res.iterations
        assert iters[3] <= iters[1]

    def test_zero_presmoothing_still_converges(self):
        A = poisson2d(12)
        n = A.shape[0]
        w = SimWorld(2)
        M = ParCSRMatrix(w, A, np.array([0, n // 2, n]))
        pc = AMGPreconditioner(
            AMGHierarchy(M), AMGCycleOptions(pre_sweeps=0, post_sweeps=1)
        )
        b = M.new_vector(np.ones(n))
        res = GMRES(M, preconditioner=pc, tol=1e-8, max_iters=100).solve(b)
        assert res.converged


class TestGraphAccounting:
    def test_group_sizes_partition_nnz_total(self):
        rng = np.random.default_rng(3)
        n, E = 50, 140
        edges = rng.integers(0, n, size=(E, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        parts = rng.integers(0, 4, n)
        num = build_numbering(parts, 4)
        w = SimWorld(4)
        g = EquationGraph(
            w,
            num,
            GraphSpec(
                n=n,
                edges=edges,
                constraint_rows=np.array([0, 1], dtype=np.int64),
            ),
        )
        total = sum(
            g.groups[r][k].size for r in range(4) for k in (0, 1)
        )
        assert total == g.nnz_total

    def test_contrib_per_rank_counts_everything(self):
        rng = np.random.default_rng(4)
        n, E = 30, 60
        edges = rng.integers(0, n, size=(E, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        parts = rng.integers(0, 3, n)
        num = build_numbering(parts, 3)
        w = SimWorld(3)
        g = EquationGraph(
            w,
            num,
            GraphSpec(
                n=n,
                edges=edges,
                constraint_rows=np.zeros(0, dtype=np.int64),
            ),
        )
        # 4 entries per edge + one diagonal per row.
        assert g.contrib_per_rank.sum() == 4 * edges.shape[0] + n


class TestPatternStats:
    def test_total_messages_and_halo(self):
        offs = np.array([0, 3, 6, 9])
        pat = build_exchange_pattern(
            offs,
            [np.array([4, 7]), np.array([0]), np.array([1, 4])],
        )
        assert pat.total_halo_entries() == 5
        # rank0 -> {1,2}? rank0 needs 4 (rank1) and 7 (rank2): rank1 and
        # rank2 each send once to rank0; rank1 needs 0 -> rank0 sends once;
        # rank2 needs 1 (rank0) and 4 (rank1).
        assert pat.total_messages() == 5
        assert pat.nranks == 3


class TestCostModelScaling:
    def test_surface_scale_two_thirds_power(self):
        cm = CostModel(SUMMIT_GPU, work_scale=1000.0)
        assert cm.surface_scale == pytest.approx(100.0)

    def test_p2p_scaling_uses_surface(self):
        cm1 = CostModel(SUMMIT_GPU, work_scale=1.0)
        cm8 = CostModel(SUMMIT_GPU, work_scale=8.0)
        t1 = cm1.p2p_time(0, 1e6)
        t8 = cm8.p2p_time(0, 1e6)
        assert t8 == pytest.approx(4.0 * t1)


class TestPeriodicMeshGeometry:
    def test_annulus_volume(self):
        """Periodic O-grid dual volumes sum to the analytic ring volume."""
        nu, nr, nz = 48, 12, 6
        u = np.linspace(0, 2 * np.pi, nu, endpoint=False)
        r = np.linspace(1.0, 2.0, nr)
        z = np.linspace(0.0, 1.0, nz)
        U, R, Z = np.meshgrid(u, r, z, indexing="ij")
        X = np.stack([R * np.cos(U), R * np.sin(U), Z], axis=-1)
        m = HexMesh.from_block("ring", X, periodic=(True, False, False))
        exact = np.pi * (4.0 - 1.0) * 1.0
        # Second-order chord-vs-arc discretization error of the circle.
        assert m.node_volume.sum() == pytest.approx(exact, rel=1e-2)

    def test_periodic_edge_count_wraps(self):
        nu, nr, nz = 8, 3, 3
        u = np.linspace(0, 2 * np.pi, nu, endpoint=False)
        r = np.linspace(1.0, 2.0, nr)
        z = np.linspace(0.0, 1.0, nz)
        U, R, Z = np.meshgrid(u, r, z, indexing="ij")
        X = np.stack([R * np.cos(U), R * np.sin(U), Z], axis=-1)
        m = HexMesh.from_block("ring", X, periodic=(True, False, False))
        expected = nu * nr * nz + nu * (nr - 1) * nz + nu * nr * (nz - 1)
        assert m.edges.shape[0] == expected
