"""Tests for the unified telemetry layer (repro.obs)."""

import importlib.util
import json
import os

import numpy as np
import pytest

from repro.__main__ import main
from repro.comm import SimWorld
from repro.core import NaluWindSimulation, PhaseTimers, SimulationConfig
from repro.obs import (
    MetricsRegistry,
    ObserverHub,
    RunTelemetry,
    Span,
    Tracer,
    collect_run_telemetry,
    render_flat_report,
    render_span_tree,
)


class FakeClock:
    """Deterministic monotone clock."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 1.0
        return self.t


@pytest.fixture(scope="module")
def tiny_run():
    """One-step turbine_tiny run shared by the integration tests."""
    cfg = SimulationConfig(nranks=2)
    sim = NaluWindSimulation("turbine_tiny", cfg)
    report = sim.run(1)
    return sim, report


class TestTracer:
    def test_nesting_structure(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("a"):
            with tr.span("b"):
                with tr.span("c"):
                    pass
            with tr.span("b"):
                pass
        assert [r.name for r in tr.roots] == ["a"]
        a = tr.roots[0]
        assert [c.name for c in a.children] == ["b", "b"]
        assert [c.name for c in a.children[0].children] == ["c"]
        assert tr.counts() == {"a": 1, "b": 2, "c": 1}

    def test_current_and_depth(self):
        tr = Tracer(clock=FakeClock())
        assert tr.current is None
        with tr.span("outer"):
            assert tr.current.name == "outer"
            assert tr.depth == 1
            with tr.span("inner"):
                assert tr.current.name == "inner"
                assert tr.depth == 2
        assert tr.current is None and tr.depth == 0

    def test_timing_monotonicity(self):
        """Children start after the parent, end before it, and their
        durations sum to no more than the parent's."""
        tr = Tracer(clock=FakeClock())
        with tr.span("p"):
            with tr.span("c1"):
                pass
            with tr.span("c2"):
                pass
        for _d, s in tr.walk():
            assert s.duration >= 0.0
            for c in s.children:
                assert c.start >= s.start
                assert c.end <= s.end
            assert sum(c.duration for c in s.children) <= s.duration
            assert s.self_time() >= 0.0

    def test_totals_accumulate_across_roots(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("x"):
            pass
        with tr.span("x"):
            pass
        assert tr.counts()["x"] == 2
        assert tr.totals()["x"] > 0.0
        assert len(tr.find("x")) == 2

    def test_span_dict_roundtrip(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("root", kind="test"):
            with tr.span("leaf"):
                pass
        d = tr.to_dicts()
        back = Span.from_dict(d[0])
        assert back.name == "root"
        assert back.attrs == {"kind": "test"}
        assert back.children[0].name == "leaf"
        assert back.to_dict() == d[0]

    def test_exception_closes_span(self):
        tr = Tracer(clock=FakeClock())
        with pytest.raises(ValueError):
            with tr.span("boom"):
                raise ValueError("x")
        assert tr.depth == 0
        assert tr.roots[0].duration > 0.0


class TestPhaseTimers:
    def test_snapshot_totals_default_shape(self):
        t = PhaseTimers()
        with t.measure("a"):
            pass
        snap = t.snapshot()
        assert isinstance(snap["a"], float)

    def test_snapshot_with_counts(self):
        t = PhaseTimers()
        for _ in range(3):
            with t.measure("a"):
                pass
        snap = t.snapshot(counts=True)
        assert snap["a"]["count"] == 3
        assert snap["a"]["total_s"] == pytest.approx(t.total("a"))

    def test_merge_combines_totals_and_counts(self):
        t1, t2 = PhaseTimers(), PhaseTimers()
        with t1.measure("a"):
            pass
        with t2.measure("a"):
            pass
        with t2.measure("b"):
            pass
        out = t1.merge(t2)
        assert out is t1
        assert t1.count("a") == 2
        assert t1.count("b") == 1
        assert t1.total("a") >= t2.total("a")

    def test_tracer_backed_measure_creates_spans(self):
        tr = Tracer(clock=FakeClock())
        t = PhaseTimers(tracer=tr)
        with tr.span("step"):
            with t.measure("eq/solve"):
                pass
        # Span nested under "step", totals identical to the span duration.
        spans = tr.find("eq/solve")
        assert len(spans) == 1
        assert tr.roots[0].children[0] is spans[0]
        assert t.total("eq/solve") == pytest.approx(spans[0].duration)
        assert t.count("eq/solve") == 1

    def test_tracer_backed_measure_survives_exception(self):
        t = PhaseTimers(tracer=Tracer(clock=FakeClock()))
        with pytest.raises(RuntimeError):
            with t.measure("x"):
                raise RuntimeError("boom")
        assert t.count("x") == 1
        assert t.total("x") > 0.0


class TestPhaseScope:
    def test_balanced_scopes_ok(self):
        w = SimWorld(2)
        with w.phase_scope("a"):
            with w.phase_scope("b"):
                assert w.phase == "b"
            assert w.phase == "a"
        assert w.phase == "default"

    def test_pop_from_empty_raises(self):
        w = SimWorld(2)
        with pytest.raises(RuntimeError, match="underflow"):
            w._pop_phase("anything")

    def test_mismatched_pop_raises(self):
        w = SimWorld(2)
        cm = w.phase_scope("outer")
        cm.__enter__()
        # Simulate stack corruption by an errant observer.
        w._phase_stack.append("stray")
        with pytest.raises(RuntimeError, match="unbalanced"):
            cm.__exit__(None, None, None)


class TestMetrics:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2.0)
        reg.gauge("g").set(7.5)
        h = reg.histogram("h")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert reg.counter("c").value == 3.0
        assert reg.gauge("g").value == 7.5
        assert h.count == 3 and h.mean == pytest.approx(2.0)
        assert h.min == 1.0 and h.max == 3.0

    def test_labels_distinguish_instruments(self):
        reg = MetricsRegistry()
        reg.counter("solve.count", equation="pressure").inc()
        reg.counter("solve.count", equation="momentum").inc(4)
        assert reg.counter("solve.count", equation="pressure").value == 1
        assert reg.counter_total("solve.count") == 5
        d = reg.as_dict()
        assert d["counters"]["solve.count{equation=momentum}"] == 4

    def test_negative_counter_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1.0)

    def test_merge_across_simulated_ranks(self):
        """Per-rank registries reduce like an MPI allreduce: counters and
        histograms sum, gauges keep the latest written value."""
        ranks = []
        for r in range(4):
            reg = MetricsRegistry()
            reg.counter("msgs").inc(10 * (r + 1))
            reg.histogram("iters").observe(float(r))
            reg.gauge("levels").set(5 + r)
            ranks.append(reg)
        total = MetricsRegistry()
        for reg in ranks:
            total.merge(reg)
        assert total.counter("msgs").value == 10 + 20 + 30 + 40
        h = total.histogram("iters")
        assert h.count == 4 and h.min == 0.0 and h.max == 3.0
        assert total.gauge("levels").value == 8  # last writer wins

    def test_merge_returns_self_and_chains(self):
        a, b, c = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
        b.counter("x").inc()
        c.counter("x").inc()
        assert a.merge(b).merge(c).counter("x").value == 2


class TestObserverHub:
    def test_subscribe_emit_unsubscribe(self):
        hub = ObserverHub()
        seen = []
        off = hub.subscribe("ev", lambda **kw: seen.append(kw))
        assert hub.has("ev")
        hub.emit("ev", a=1)
        off()
        hub.emit("ev", a=2)
        assert seen == [{"a": 1}]
        assert not hub.has("ev")

    def test_emit_without_observers_is_noop(self):
        hub = ObserverHub()
        hub.emit("nobody", x=1)  # must not raise

    def test_solve_and_amg_hooks_fire_during_simulation(self):
        cfg = SimulationConfig(nranks=2)
        sim = NaluWindSimulation("turbine_tiny", cfg)
        solves = []
        amg = []
        exchanges = []
        sim.world.hub.subscribe(
            "solve", lambda equation, record, **_: solves.append(equation)
        )
        sim.world.hub.subscribe(
            "amg_setup", lambda stats, **_: amg.append(stats)
        )
        off = sim.world.hub.subscribe(
            "exchange", lambda kind, **_: exchanges.append(kind)
        )
        sim.step()
        off()
        n_solves = sum(len(eq.solve_records) for eq in sim.systems)
        assert len(solves) == n_solves
        # Pressure AMG rebuilds every solve by default.
        assert len(amg) == len(sim.pressure.solve_records)
        assert amg[0].num_levels >= 2
        assert "allreduce" in exchanges


class TestRunTelemetry:
    def test_json_roundtrip(self, tiny_run):
        _sim, report = tiny_run
        t = report.telemetry
        assert t is not None
        back = RunTelemetry.from_json(t.to_json())
        assert back.to_dict() == t.to_dict()

    def test_schema_rejected_on_mismatch(self):
        with pytest.raises(ValueError, match="schema"):
            RunTelemetry.from_dict({"schema": "bogus/9"})

    def test_phase_totals_match_phase_timers(self, tiny_run):
        sim, report = tiny_run
        t = report.telemetry
        snap = sim.timers.snapshot(counts=True)
        assert set(t.phases) == set(snap)
        for name, st in snap.items():
            assert t.phases[name]["total_s"] == pytest.approx(st["total_s"])
            assert t.phases[name]["count"] == st["count"]
        assert t.phase_total("pressure/solve") > 0.0

    def test_traffic_matches_traffic_log(self, tiny_run):
        sim, report = tiny_run
        tr = report.telemetry.traffic
        log = sim.world.traffic
        # Totals are logical message counts, consistent with the per-rank
        # and per-phase aggregates (bulk records expanded).
        assert tr["total_message_bytes"] == log.message_bytes()
        per_rank = log.rank_totals()
        assert set(tr["per_rank"]) == {"0", "1"}
        for r, d in per_rank.items():
            assert tr["per_rank"][str(r)]["messages"] == d["messages"]
            assert tr["per_rank"][str(r)]["bytes"] == d["bytes"]
        assert tr["total_messages"] == sum(
            v["messages"] for v in tr["per_rank"].values()
        )
        for ph in log.phases():
            assert tr["per_phase"][ph]["messages"] == log.message_count(ph)
            assert tr["per_phase"][ph]["message_bytes"] == log.message_bytes(
                ph
            )

    def test_solver_histories_present(self, tiny_run):
        _sim, report = tiny_run
        t = report.telemetry
        for eq in ("momentum", "pressure", "scalar"):
            s = t.solves[eq]
            assert len(s["iterations"]) == len(s["residual_histories"])
            assert all(len(h) >= 1 for h in s["residual_histories"])
            # History tail matches the relative final norm direction:
            # every entry is a positive relative residual.
            assert all(v >= 0.0 for h in s["residual_histories"] for v in h)
        assert t.mean_iterations("pressure") > 0.0

    def test_amg_complexities_per_level(self, tiny_run):
        _sim, report = tiny_run
        setups = report.telemetry.amg_setups
        assert setups, "pressure AMG setups must be recorded"
        s = setups[0]
        assert s["num_levels"] == len(s["levels"])
        assert s["grid_complexity"] == pytest.approx(
            sum(l["row_frac"] for l in s["levels"])
        )
        assert s["operator_complexity"] == pytest.approx(
            sum(l["nnz_frac"] for l in s["levels"])
        )
        assert s["levels"][0]["row_frac"] == 1.0

    def test_metrics_snapshot_included(self, tiny_run):
        _sim, report = tiny_run
        m = report.telemetry.metrics
        assert m["counters"]["solve.count{equation=pressure}"] >= 1
        assert m["gauges"]["amg.levels"] >= 2
        assert m["gauges"]["comm.total_messages"] > 0

    def test_spans_nest_under_steps(self, tiny_run):
        _sim, report = tiny_run
        t = report.telemetry
        roots = [Span.from_dict(d) for d in t.spans]
        assert [r.name for r in roots] == ["step"]
        names = {s.name for _d, s in roots[0].walk()}
        assert "picard" in names
        assert "pressure/solve" in names

    def test_renderers(self, tiny_run):
        _sim, report = tiny_run
        t = report.telemetry
        tree = render_span_tree(t)
        assert "step" in tree and "pressure/solve" in tree
        shallow = render_span_tree(t, max_depth=0)
        assert "pressure/solve" not in shallow
        flat = render_flat_report(t)
        assert "mean iters" in flat and "operator complexity" in flat

    def test_collect_without_report(self, tiny_run):
        sim, report = tiny_run
        t2 = collect_run_telemetry(sim)
        assert t2.n_steps == report.n_steps
        assert t2.phases == report.telemetry.phases


class TestRecordHistoryFlag:
    def test_gmres_history_disabled(self, tiny_run):
        sim, _report = tiny_run
        from repro.krylov.gmres import GMRES
        from repro.linalg.parvector import ParVector

        A = sim.pressure._matrix
        b = A.matvec(
            ParVector(sim.world, A.row_offsets, np.ones(A.shape[0]))
        )
        res_on = GMRES(A, tol=1e-8, max_iters=20).solve(b)
        res_off = GMRES(
            A, tol=1e-8, max_iters=20, record_history=False
        ).solve(b)
        assert len(res_on.residual_history) >= res_on.iterations
        assert res_off.residual_history == []
        assert res_off.iterations == res_on.iterations
        assert res_off.residual_norm == pytest.approx(res_on.residual_norm)

    def test_solve_records_carry_history(self, tiny_run):
        sim, _report = tiny_run
        rec = sim.pressure.solve_records[0]
        assert len(rec.residual_history) >= rec.iterations

    def test_config_flag_disables_record_history(self):
        cfg = SimulationConfig(nranks=2)
        cfg.momentum_solver.record_history = False
        cfg.pressure_solver.record_history = False
        cfg.scalar_solver.record_history = False
        sim = NaluWindSimulation("turbine_tiny", cfg)
        sim.step()
        for eq in sim.systems:
            assert all(r.residual_history == [] for r in eq.solve_records)


class TestTraceCLI:
    def test_trace_emits_valid_json(self, capsys):
        rc = main(
            ["trace", "turbine_tiny", "--steps", "1", "--ranks", "2"]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.telemetry/1"
        assert doc["workload"] == "turbine_tiny"
        assert doc["nranks"] == 2
        # The acceptance-criteria payload sections all present.
        assert doc["spans"] and doc["phases"] and doc["solves"]
        assert doc["traffic"]["per_rank"]
        assert doc["amg_setups"][0]["operator_complexity"] > 1.0
        # Round-trips through the dataclass.
        t = RunTelemetry.from_dict(doc)
        assert json.loads(t.to_json()) == doc

    def test_trace_output_file(self, tmp_path):
        out = tmp_path / "t.json"
        rc = main(
            [
                "trace", "turbine_tiny", "--steps", "1", "--ranks", "2",
                "--output", str(out),
            ]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro.telemetry/1"

    def test_trace_tree_format(self, capsys):
        rc = main(
            [
                "trace", "turbine_tiny", "--steps", "1", "--ranks", "2",
                "--format", "tree", "--max-depth", "1",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "span tree" in out and "step" in out


def _load_checker():
    path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "benchmarks",
        "check_telemetry_regression.py",
    )
    spec = importlib.util.spec_from_file_location("check_telemetry", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestRegressionChecker:
    def test_identical_telemetry_passes(self, tiny_run, tmp_path, capsys):
        _sim, report = tiny_run
        checker = _load_checker()
        p = tmp_path / "base.json"
        p.write_text(report.telemetry.to_json())
        rc = checker.main([str(p), str(p)])
        assert rc == 0
        assert "telemetry OK" in capsys.readouterr().out

    def test_iteration_drift_fails(self, tiny_run, tmp_path, capsys):
        _sim, report = tiny_run
        checker = _load_checker()
        base = tmp_path / "base.json"
        base.write_text(report.telemetry.to_json())
        doc = report.telemetry.to_dict()
        doc["solves"]["pressure"]["iterations"] = [
            i * 3 for i in doc["solves"]["pressure"]["iterations"]
        ]
        cur = tmp_path / "cur.json"
        cur.write_text(json.dumps(doc))
        rc = checker.main([str(base), str(cur)])
        assert rc == 1
        assert "mean iterations drift" in capsys.readouterr().out

    def test_resilience_drift_fails(self, tiny_run, tmp_path, capsys):
        _sim, report = tiny_run
        checker = _load_checker()
        base = tmp_path / "base.json"
        base.write_text(report.telemetry.to_json())
        doc = report.telemetry.to_dict()
        doc["metrics"]["counters"][
            "resilience.failures{equation=momentum,kind=non_convergence}"
        ] = 1
        doc["resilience"] = {
            "failures": 1,
            "recoveries": {"rollback_restep": 1},
            "events": [],
        }
        cur = tmp_path / "cur.json"
        cur.write_text(json.dumps(doc))
        rc = checker.main([str(base), str(cur)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "resilience counter" in out
        assert "resilience summary changed" in out

    def test_phase_time_drift_fails(self, tiny_run, tmp_path, capsys):
        _sim, report = tiny_run
        checker = _load_checker()
        base = tmp_path / "base.json"
        base.write_text(report.telemetry.to_json())
        doc = report.telemetry.to_dict()
        for ph in doc["phases"].values():
            ph["total_s"] *= 10.0
        cur = tmp_path / "cur.json"
        cur.write_text(json.dumps(doc))
        rc = checker.main([str(base), str(cur)])
        assert rc == 1
        assert "wall time drift" in capsys.readouterr().out

    def test_bad_schema_rejected(self, tmp_path):
        checker = _load_checker()
        p = tmp_path / "bad.json"
        p.write_text(json.dumps({"schema": "nope"}))
        with pytest.raises(SystemExit):
            checker.load(str(p))
