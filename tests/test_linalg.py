"""Tests for ParCSR matrices, ParVectors, and SpGEMM accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.comm import SimWorld
from repro.linalg import (
    ParCSRMatrix,
    ParVector,
    galerkin_product,
    spgemm,
    spgemm_products,
    spmv_bytes,
)


def random_system(n=120, nranks=4, density=0.05, seed=0):
    rng = np.random.default_rng(seed)
    A = sparse.random(n, n, density=density, random_state=seed, format="csr")
    A = A + sparse.eye(n)
    w = SimWorld(nranks)
    offs = np.linspace(0, n, nranks + 1).astype(np.int64)
    return w, ParCSRMatrix(w, A.tocsr(), offs), rng


class TestParVector:
    def test_local_views_are_zero_copy(self):
        w = SimWorld(3)
        offs = np.array([0, 2, 4, 6])
        v = ParVector(w, offs, np.arange(6.0))
        v.local(1)[0] = 99.0
        assert v.data[2] == 99.0

    def test_dot_matches_numpy_and_records_allreduce(self):
        w = SimWorld(4)
        offs = np.array([0, 3, 6, 9, 12])
        rng = np.random.default_rng(0)
        x = ParVector(w, offs, rng.standard_normal(12))
        y = ParVector(w, offs, rng.standard_normal(12))
        before = w.traffic.collective_count()
        d = x.dot(y)
        assert d == pytest.approx(x.data @ y.data)
        assert w.traffic.collective_count() == before + 1

    def test_norm(self):
        w = SimWorld(2)
        v = ParVector(w, np.array([0, 2, 4]), np.array([3.0, 0, 0, 4.0]))
        assert v.norm() == pytest.approx(5.0)

    def test_axpy_and_scale_inplace(self):
        w = SimWorld(2)
        offs = np.array([0, 2, 4])
        x = ParVector(w, offs, np.ones(4))
        y = ParVector(w, offs, np.full(4, 2.0))
        x.axpy(3.0, y)
        assert np.allclose(x.data, 7.0)
        x.scale(0.5)
        assert np.allclose(x.data, 3.5)

    def test_shape_mismatch_rejected(self):
        w = SimWorld(2)
        with pytest.raises(ValueError):
            ParVector(w, np.array([0, 2, 4]), np.zeros(3))


class TestParCSR:
    def test_matvec_matches_global(self):
        w, M, rng = random_system()
        x = M.new_vector(rng.standard_normal(M.shape[1]))
        y = M.matvec(x)
        assert np.allclose(y.data, M.A @ x.data)

    def test_residual(self):
        w, M, rng = random_system(seed=3)
        x = M.new_vector(rng.standard_normal(M.shape[0]))
        b = M.new_vector(rng.standard_normal(M.shape[0]))
        r = M.residual(b, x)
        assert np.allclose(r.data, b.data - M.A @ x.data)

    def test_diag_offd_partition_of_nnz(self):
        _w, M, _ = random_system()
        total = sum(b.diag.nnz + b.offd.nnz for b in M.blocks)
        assert total == M.nnz

    def test_col_map_offd_sorted_unique_external(self):
        _w, M, _ = random_system()
        for r, b in enumerate(M.blocks):
            cm = b.col_map_offd
            if cm.size:
                assert np.all(np.diff(cm) > 0)
                lo, hi = M.col_offsets[r], M.col_offsets[r + 1]
                assert np.all((cm < lo) | (cm >= hi))

    def test_offd_fraction_grows_with_ranks(self):
        n = 240
        A = sparse.random(n, n, density=0.03, random_state=1, format="csr") + sparse.eye(n)
        fr = []
        for nranks in (2, 8):
            w = SimWorld(nranks)
            offs = np.linspace(0, n, nranks + 1).astype(np.int64)
            fr.append(ParCSRMatrix(w, A.tocsr(), offs).offd_fraction())
        assert fr[1] > fr[0]

    def test_block_diagonal_keeps_only_within_rank(self):
        _w, M, _ = random_system()
        bd = M.block_diagonal()
        coo = bd.tocoo()
        ro = M.row_offsets
        rowner = np.searchsorted(ro, coo.row, side="right") - 1
        cowner = np.searchsorted(ro, coo.col, side="right") - 1
        assert np.all(rowner == cowner)

    def test_matvec_records_traffic_and_ops(self):
        w, M, rng = random_system()
        x = M.new_vector(rng.standard_normal(M.shape[1]))
        with w.phase_scope("spmv_test"):
            M.matvec(x)
        assert w.traffic.message_count("spmv_test") > 0
        assert w.ops.total("spmv_test").flops == pytest.approx(2.0 * M.nnz)

    def test_single_rank_no_messages(self):
        n = 50
        A = sparse.random(n, n, density=0.1, random_state=0, format="csr") + sparse.eye(n)
        w = SimWorld(1)
        M = ParCSRMatrix(w, A.tocsr(), np.array([0, n]))
        x = M.new_vector(np.ones(n))
        M.matvec(x)
        assert w.traffic.message_count() == 0

    def test_rectangular_matrix(self):
        w = SimWorld(2)
        P = sparse.random(10, 4, density=0.5, random_state=0, format="csr")
        M = ParCSRMatrix(
            w, P, row_offsets=np.array([0, 5, 10]), col_offsets=np.array([0, 2, 4])
        )
        x = ParVector(w, np.array([0, 2, 4]), np.arange(4.0))
        y = M.matvec(x)
        assert np.allclose(y.data, P @ x.data)

    def test_bad_offsets_rejected(self):
        w = SimWorld(2)
        A = sparse.eye(10).tocsr()
        with pytest.raises(ValueError):
            ParCSRMatrix(w, A, np.array([0, 5, 9]))

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(8, 80),
        nranks=st.integers(1, 6),
        seed=st.integers(0, 500),
    )
    def test_property_spmv_matches_global(self, n, nranks, seed):
        rng = np.random.default_rng(seed)
        A = sparse.random(
            n, n, density=0.15, random_state=seed, format="csr"
        ) + sparse.eye(n)
        w = SimWorld(nranks)
        # Random (possibly uneven) contiguous partition.
        cuts = np.sort(rng.integers(0, n + 1, nranks - 1)) if nranks > 1 else np.array([], dtype=int)
        offs = np.concatenate([[0], cuts, [n]]).astype(np.int64)
        M = ParCSRMatrix(w, A.tocsr(), offs)
        x = M.new_vector(rng.standard_normal(n))
        y = M.matvec(x)
        assert np.allclose(y.data, A @ x.data, atol=1e-10)


class TestSpGEMM:
    def test_products_count(self):
        A = sparse.csr_matrix(np.array([[1.0, 1.0], [0.0, 1.0]]))
        B = sparse.csr_matrix(np.array([[1.0, 0.0], [1.0, 1.0]]))
        # Row 0 of A hits B-rows 0 (1 nnz) and 1 (2 nnz); row 1 hits row 1.
        assert spgemm_products(A, B) == 1 + 2 + 2

    def test_spgemm_matches_scipy_and_records(self):
        w = SimWorld(2)
        A = sparse.random(30, 30, density=0.2, random_state=0, format="csr")
        B = sparse.random(30, 30, density=0.2, random_state=1, format="csr")
        offs = np.array([0, 15, 30])
        with w.phase_scope("gemm"):
            C = spgemm(w, A, B, offs)
        assert np.allclose(C.toarray(), (A @ B).toarray())
        assert w.ops.total("gemm").flops > 0

    def test_galerkin_product_is_rap(self):
        w = SimWorld(2)
        A = sparse.random(40, 40, density=0.15, random_state=0, format="csr")
        P = sparse.random(40, 10, density=0.3, random_state=1, format="csr")
        R = sparse.csr_matrix(P.T)
        Ac = galerkin_product(
            w, R, A, P, np.array([0, 20, 40]), np.array([0, 5, 10])
        )
        assert np.allclose(Ac.toarray(), (P.T @ A @ P).toarray())

    def test_spmv_bytes_model(self):
        assert spmv_bytes(100, 10) == 12 * 100 + 8 * 100 + 12 * 10
