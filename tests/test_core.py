"""Integration tests for the CFD pipeline: composite mesh, physics, stepping."""

import numpy as np
import pytest

from repro import NaluWindSimulation, SimulationConfig
from repro.comm import SimWorld
from repro.core import CompositeMesh, PHASES
from repro.core.operators import (
    diffusion_coefficients,
    edge_divergence,
    green_gauss_gradient,
    mass_flux,
    upwind_advection_coefficients,
)
from repro.mesh import make_background_only, make_turbine_tiny
from repro.overset.assembler import NodeStatus


@pytest.fixture(scope="module")
def tiny_comp():
    w = SimWorld(3)
    return CompositeMesh(w, make_turbine_tiny())


@pytest.fixture(scope="module")
def tunnel_sim():
    cfg = SimulationConfig(nranks=2, dt=0.1)
    sim = NaluWindSimulation("background_only", cfg)
    report = sim.run(2)
    return sim, report


@pytest.fixture(scope="module")
def tiny_sim():
    cfg = SimulationConfig(nranks=3)
    sim = NaluWindSimulation("turbine_tiny", cfg)
    report = sim.run(2)
    return sim, report


class TestCompositeMesh:
    def test_dof_count(self, tiny_comp):
        assert tiny_comp.n == sum(m.n_nodes for m in tiny_comp.meshes)

    def test_numbering_is_rank_block(self, tiny_comp):
        num = tiny_comp.numbering
        assert num.offsets[-1] == tiny_comp.n
        for r in range(num.nranks):
            olds = num.owned_old_ids(r)
            assert np.all(tiny_comp.parts[olds] == r)

    def test_active_edges_exclude_holes(self, tiny_comp):
        hole = tiny_comp.statuses == NodeStatus.HOLE
        assert not np.any(hole[tiny_comp.edges])

    def test_grid_velocity_zero_on_background(self, tiny_comp):
        nbg = tiny_comp.meshes[0].n_nodes
        assert np.all(tiny_comp.grid_velocity[:nbg] == 0.0)

    def test_grid_velocity_nonzero_on_blades(self, tiny_comp):
        nbg = tiny_comp.meshes[0].n_nodes
        blade_speed = np.linalg.norm(
            tiny_comp.grid_velocity[nbg:], axis=1
        )
        assert blade_speed.max() > 1.0  # tip speed of a spinning rotor

    def test_rcb_partition_option(self):
        w = SimWorld(4)
        comp = CompositeMesh(w, make_turbine_tiny(), partition_method="rcb")
        assert np.bincount(comp.parts, minlength=4).min() > 0

    def test_donor_sets_in_global_ids(self, tiny_comp):
        for ds in tiny_comp.donor_sets:
            assert ds.receptors.max() < tiny_comp.n
            assert ds.donors.max() < tiny_comp.n


class TestOperators:
    def test_diffusion_coefficients_positive(self, tiny_comp):
        g = diffusion_coefficients(tiny_comp, 1.0)
        assert np.all(g > 0)

    def test_uniform_flow_has_zero_divergence(self, tiny_comp):
        u = np.tile([3.0, 0.0, 0.0], (tiny_comp.n, 1))
        # Uniform flow through the *static background* is exactly
        # divergence-free; restrict the check to background interior nodes.
        mdot = mass_flux(tiny_comp, u + tiny_comp.grid_velocity, 1.0)
        div = edge_divergence(tiny_comp, mdot)
        nbg = tiny_comp.meshes[0].n_nodes
        interior = np.setdiff1d(
            np.arange(nbg), tiny_comp.meshes[0].all_boundary_nodes()
        )
        interior = interior[
            tiny_comp.statuses[interior] == NodeStatus.FIELD
        ]
        scale = np.abs(mdot).max()
        assert np.abs(div[interior]).max() < 1e-9 * scale

    def test_green_gauss_gradient_of_linear_field(self, tiny_comp):
        # Check on background interior (regular metric region).
        f = 2.0 * tiny_comp.coords[:, 0] - 0.5 * tiny_comp.coords[:, 1]
        g = green_gauss_gradient(tiny_comp, f)
        nbg = tiny_comp.meshes[0].n_nodes
        interior = np.setdiff1d(
            np.arange(nbg), tiny_comp.meshes[0].all_boundary_nodes()
        )
        assert np.allclose(g[interior, 0], 2.0, atol=0.25)
        assert np.allclose(g[interior, 1], -0.5, atol=0.25)

    def test_upwind_coefficients_row_signs(self):
        mdot = np.array([2.0, -3.0])
        c = upwind_advection_coefficients(mdot)
        # Positive flux: row a diagonal positive, row b pulls from a.
        assert c[0].tolist() == [2.0, 0.0, -2.0, 0.0]
        assert c[1].tolist() == [0.0, -3.0, 0.0, 3.0]

    def test_rhie_chow_no_correction_for_consistent_pressure(self, tiny_comp):
        u = np.tile([3.0, 0.0, 0.0], (tiny_comp.n, 1))
        p_lin = 5.0 + 2.0 * tiny_comp.coords[:, 0]
        m0 = mass_flux(tiny_comp, u, 1.0)
        m1 = mass_flux(tiny_comp, u, 1.0, pressure=p_lin, tau=0.1)
        # A linear pressure field is exactly represented: the dissipation
        # term vanishes on edges whose endpoint gradients are exact
        # (background interior edges).
        nbg = tiny_comp.meshes[0].n_nodes
        bnd = np.zeros(tiny_comp.n, dtype=bool)
        bnd[tiny_comp.meshes[0].all_boundary_nodes()] = True
        bnd[nbg:] = True
        e_int = ~(bnd[tiny_comp.edges[:, 0]] | bnd[tiny_comp.edges[:, 1]])
        scale = np.abs(m0).max()
        assert np.abs((m1 - m0)[e_int]).max() < 1e-8 * scale


class TestFreestreamPreservation:
    """Uniform inflow through an empty tunnel must stay uniform."""

    def test_velocity_stays_uniform(self, tunnel_sim):
        # Limited by the linear-solver tolerances, not the discretization.
        sim, _rep = tunnel_sim
        u_inf = np.asarray(sim.config.inflow_velocity)
        err = np.abs(sim.velocity - u_inf).max()
        assert err < 1e-4 * np.linalg.norm(u_inf)

    def test_pressure_stays_flat(self, tunnel_sim):
        sim, _rep = tunnel_sim
        rho_u2 = sim.config.density * 64.0
        assert np.abs(sim.pressure_field).max() < 1e-3 * rho_u2

    def test_divergence_negligible(self, tunnel_sim):
        _sim, rep = tunnel_sim
        assert rep.divergence_norms[-1] < 1e-6

    def test_fast_solves_on_trivial_flow(self, tunnel_sim):
        _sim, rep = tunnel_sim
        assert rep.mean_iterations("momentum") <= 2.0


class TestTurbineSimulation:
    def test_runs_and_converges(self, tiny_sim):
        _sim, rep = tiny_sim
        assert rep.n_steps == 2
        for eq, its in rep.solve_iterations.items():
            assert len(its) > 0
            assert all(i >= 0 for i in its)

    def test_momentum_sgs2_under_ten_iterations(self, tiny_sim):
        """Paper: SGS2 -> 'less than five preconditioned GMRES iterations'
        for momentum; allow slack for the cold-start transient."""
        _sim, rep = tiny_sim
        assert rep.mean_iterations("momentum") < 10.0

    def test_pressure_needs_amg_scale_iterations(self, tiny_sim):
        _sim, rep = tiny_sim
        assert rep.mean_iterations("pressure") > rep.mean_iterations(
            "momentum"
        )

    def test_fields_finite(self, tiny_sim):
        sim, _rep = tiny_sim
        assert np.all(np.isfinite(sim.velocity))
        assert np.all(np.isfinite(sim.pressure_field))
        assert np.all(np.isfinite(sim.scalar_field))

    def test_mass_conservation_improves(self, tiny_sim):
        _sim, rep = tiny_sim
        assert rep.divergence_norms[-1] < 1e-3

    def test_rotor_disturbs_near_body_flow(self, tiny_sim):
        """The spinning rotor must leave a signature on the near-body flow
        (the background wake itself needs the hole-cutting coupling of the
        larger workloads, exercised by the benchmarks)."""
        sim, _rep = tiny_sim
        comp = sim.comp
        nbg = comp.meshes[0].n_nodes
        near = sim.velocity[nbg:]
        dev = np.linalg.norm(near - [8.0, 0.0, 0.0], axis=1)
        assert dev.max() > 1.0
        # ... and stays bounded (no projection blow-up on the O-grids).
        assert np.linalg.norm(sim.velocity, axis=1).max() < 500.0

    def test_phase_snapshots_per_step(self, tiny_sim):
        _sim, rep = tiny_sim
        assert len(rep.step_snapshots) == rep.n_steps
        deltas = rep.step_deltas()
        # Every equation phase shows up with positive work each step.
        for eq in ("momentum", "pressure", "scalar"):
            for suffix in PHASES:
                ph = f"{eq}/{suffix}"
                assert ph in deltas[0], ph
                assert deltas[1][ph].flops >= 0

    def test_pressure_solve_dominates_flops(self, tiny_sim):
        """Paper Figs. 6-7: pressure-Poisson dominates the NLI cost."""
        _sim, rep = tiny_sim
        last = rep.step_snapshots[-1]
        p = sum(
            agg.flops
            for ph, agg in last.items()
            if ph.startswith("pressure/")
        )
        s = sum(
            agg.flops
            for ph, agg in last.items()
            if ph.startswith("scalar/")
        )
        assert p > s

    def test_wall_times_recorded(self, tiny_sim):
        _sim, rep = tiny_sim
        assert rep.wall_times
        assert any(k.endswith("/solve") for k in rep.wall_times)

    def test_peak_alloc_positive(self, tiny_sim):
        _sim, rep = tiny_sim
        assert rep.peak_alloc_bytes > 0


class TestConfig:
    def test_validation(self):
        cfg = SimulationConfig(partition_method="bogus")
        with pytest.raises(ValueError):
            cfg.validate()
        cfg = SimulationConfig(assembly_variant="bogus")
        with pytest.raises(ValueError):
            cfg.validate()
        cfg = SimulationConfig(nranks=0)
        with pytest.raises(ValueError):
            cfg.validate()

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            NaluWindSimulation("no_such_mesh")


@pytest.mark.slow
class TestLowResStability:
    """The blade-resolved low-res workload must stay bounded: the
    under-relaxed Picard loop tames the u <-> p feedback on the
    high-aspect-ratio, non-orthogonal O-grids (gain ~4 per iteration
    without damping)."""

    def test_two_way_coupled_run_stays_bounded(self):
        cfg = SimulationConfig(nranks=4)
        sim = NaluWindSimulation("turbine_low", cfg)
        peaks = []
        for _ in range(3):
            sim.step()
            peaks.append(float(np.linalg.norm(sim.velocity, axis=1).max()))
        # Bounded by a small multiple of the rotor tip speed and not
        # growing across steps.
        assert peaks[-1] < 2000.0
        assert peaks[-1] <= peaks[0] * 1.5
        assert sim.divergence_norms[-1] < 1e-5
        assert np.all(np.isfinite(sim.pressure_field))
