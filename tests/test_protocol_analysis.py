"""Path-sensitive protocol rules: CFG construction and RL007-RL009.

Each rule gets known-bad fixtures and clean twins, mirroring the
RL001-RL006 matrix in test_analysis.py but over *paths*: the bad
shapes here are all legal syntax that only goes wrong on one control
flow route (an early return, an exception edge, a rank-divergent
branch, a hidden in-loop reduction).  The bug-corpus class at the
bottom reintroduces the three historical PR 8 bugs verbatim and pins
the exact rule, file, and line each must fire on.
"""

import ast
import textwrap

from repro.analysis.cfg import (
    ENTRY,
    EXIT,
    RAISE_EXIT,
    build_cfg,
    calls_in_order,
)
from repro.analysis.interproc import ProjectIndex
from repro.analysis.protocol import (
    analyze_protocol_paths,
    analyze_protocol_source,
    analyze_protocol_sources,
)

PATH = "src/repro/comm/fixture.py"


def _cfg(src):
    tree = ast.parse(textwrap.dedent(src))
    func = next(
        n for n in tree.body if isinstance(n, ast.FunctionDef)
    )
    return build_cfg(func)


def _rules(report):
    return [f.rule for f in report.findings]


def _analyze(src, path=PATH):
    return analyze_protocol_source(textwrap.dedent(src), path)


class TestCFG:
    def test_linear_flow_reaches_exit_only(self):
        cfg = _cfg(
            """
            def f():
                a = 1
                b = a + 1
                return b
            """
        )
        seen = cfg.reachable([ENTRY])
        assert EXIT in seen
        # Outside a try, statements are assumed non-throwing.
        assert RAISE_EXIT not in seen

    def test_raise_reaches_raise_exit_not_exit(self):
        cfg = _cfg(
            """
            def f():
                raise ValueError("boom")
            """
        )
        seen = cfg.reachable([ENTRY])
        assert RAISE_EXIT in seen
        assert EXIT not in seen

    def test_if_arms_recorded(self):
        cfg = _cfg(
            """
            def f(x):
                if x:
                    a = 1
                b = 2
            """
        )
        assert len(cfg.if_arms) == 1
        if_idx, true_entries = cfg.if_arms[0]
        assert isinstance(cfg.nodes[if_idx].stmt, ast.If)
        assert [cfg.nodes[i].lineno for i in true_entries] == [4]
        # The false continuation is the remaining successor: `b = 2`.
        false = [
            s for s in cfg.successors(if_idx) if s not in true_entries
        ]
        assert {cfg.nodes[s].lineno for s in false} == {5}

    def test_try_body_exception_edge_routes_through_finally(self):
        cfg = _cfg(
            """
            def f():
                try:
                    work()
                finally:
                    cleanup()
                return 1
            """
        )
        seen = cfg.reachable([ENTRY])
        assert EXIT in seen and RAISE_EXIT in seen
        # The finally body is inlined once per route (normal + unwind),
        # so the cleanup statement appears as more than one node.
        copies = [n for n in cfg.nodes if n.lineno == 6]
        assert len(copies) >= 2
        # Every path into RAISE_EXIT comes from a finally copy.
        preds = [
            n for n in cfg.nodes if RAISE_EXIT in n.succs
        ]
        assert preds and all(n.lineno == 6 for n in preds)

    def test_loop_back_edge(self):
        cfg = _cfg(
            """
            def f(xs):
                for x in xs:
                    use(x)
            """
        )
        head = next(
            n.idx for n in cfg.nodes if isinstance(n.stmt, ast.For)
        )
        body = next(n for n in cfg.nodes if n.lineno == 4)
        assert head in body.succs

    def test_calls_in_order_is_post_order(self):
        call = ast.parse("finish(begin())").body[0].value
        names = [c.func.id for c in calls_in_order([call])]
        assert names == ["begin", "finish"]


class TestHaloTypestate:
    def test_early_return_leaks_begin(self):
        rep = _analyze(
            """
            def solve(world, pat, owned, flag):
                h = exchange_halo_begin(world, pat, owned)
                if flag:
                    return None
                return exchange_halo_finish(world, h)
            """
        )
        assert _rules(rep) == ["RL007"]
        f = rep.findings[0]
        assert f.line == 3 and "a return" in f.message

    def test_raise_path_leaks_begin(self):
        rep = _analyze(
            """
            def solve(world, pat, owned, flag):
                h = exchange_halo_begin(world, pat, owned)
                if flag:
                    raise RuntimeError("abort")
                return exchange_halo_finish(world, h)
            """
        )
        assert _rules(rep) == ["RL007"]
        assert "an exception" in rep.findings[0].message

    def test_double_begin_same_name(self):
        rep = _analyze(
            """
            def solve(world, pat, owned):
                h = exchange_halo_begin(world, pat, owned)
                h = exchange_halo_begin(world, pat, owned)
                return exchange_halo_finish(world, h)
            """
        )
        assert _rules(rep) == ["RL007"]
        assert "still unfinished" in rep.findings[0].message

    def test_rebind_of_live_handle(self):
        rep = _analyze(
            """
            def solve(world, pat, owned):
                h = exchange_halo_begin(world, pat, owned)
                try:
                    interior()
                finally:
                    h = None
                return exchange_halo_finish(world, h)
            """
        )
        assert _rules(rep) == ["RL007"]
        assert "rebound" in rep.findings[0].message

    def test_begin_in_loop_without_finish(self):
        rep = _analyze(
            """
            def solve(world, pat, owned, xs):
                for x in xs:
                    h = exchange_halo_begin(world, pat, owned)
                return None
            """
        )
        assert rep.findings and set(_rules(rep)) == {"RL007"}

    def test_straight_line_pair_is_quiet(self):
        rep = _analyze(
            """
            def solve(world, pat, owned):
                h = exchange_halo_begin(world, pat, owned)
                interior_compute()
                return exchange_halo_finish(world, h)
            """
        )
        assert not rep.findings

    def test_try_finally_idiom_is_quiet(self):
        # The sanctioned overlap shape: finish in a finally covers the
        # exception edge out of the interior compute.
        rep = _analyze(
            """
            def solve(world, pat, owned):
                h = exchange_halo_begin(world, pat, owned)
                try:
                    interior_compute()
                finally:
                    exchange_halo_finish(world, h)
                return None
            """
        )
        assert not rep.findings

    def test_returned_handle_transfers_ownership(self):
        rep = _analyze(
            """
            def begin_round(world, pat, owned):
                h = exchange_halo_begin(world, pat, owned)
                return h
            """
        )
        assert not rep.findings

    def test_one_liner_finish_of_begin_is_quiet(self):
        rep = _analyze(
            """
            def solve(world, pat, owned):
                return exchange_halo_finish(
                    world, exchange_halo_begin(world, pat, owned)
                )
            """
        )
        assert not rep.findings

    def test_handle_passed_to_helper_escapes(self):
        rep = _analyze(
            """
            def solve(world, pat, owned):
                h = exchange_halo_begin(world, pat, owned)
                drain(world, h)
                return None
            """
        )
        assert not rep.findings

    def test_handle_stored_on_self_escapes(self):
        rep = _analyze(
            """
            class Round:
                def start(self, world, pat, owned):
                    self.h = exchange_halo_begin(world, pat, owned)
            """
        )
        assert not rep.findings

    def test_pragma_suppresses_at_the_begin_line(self):
        rep = _analyze(
            """
            def solve(world, pat, owned, flag):
                h = exchange_halo_begin(world, pat, owned)  # repro: allow(RL007)
                if flag:
                    return None
                return exchange_halo_finish(world, h)
            """
        )
        assert not rep.findings
        assert [f.rule for f in rep.suppressed] == ["RL007"]


class TestDurableWriteProtocol:
    def test_replace_without_fsync_fires(self):
        rep = _analyze(
            """
            import os

            def save(path, blob):
                tmp = path + ".tmp"
                with open(tmp, "wb") as fh:
                    fh.write(blob)
                os.replace(tmp, path)
            """
        )
        assert _rules(rep) == ["RL007"]
        f = rep.findings[0]
        assert f.line == 8 and "fsync" in f.message

    def test_write_fsync_replace_is_quiet(self):
        rep = _analyze(
            """
            import os

            def save(path, blob):
                tmp = path + ".tmp"
                with open(tmp, "wb") as fh:
                    fh.write(blob)
                    os.fsync(fh.fileno())
                os.replace(tmp, path)
            """
        )
        assert not rep.findings

    def test_written_never_replaced_on_normal_return_fires(self):
        rep = _analyze(
            """
            import os

            def save(path, blob, commit):
                tmp = path + ".tmp"
                with open(tmp, "wb") as fh:
                    fh.write(blob)
                    os.fsync(fh.fileno())
                if commit:
                    os.replace(tmp, path)
            """
        )
        assert _rules(rep) == ["RL007"]
        assert "neither os.replace'd nor cleaned" in rep.findings[0].message

    def test_finally_unlink_cleanup_idiom_is_quiet(self):
        # The shipped _write_atomic shape: exception exits are exempt and
        # the exists-guarded unlink clears the temp on failure.
        rep = _analyze(
            """
            import os

            def save(path, blob):
                tmp = path + ".tmp"
                try:
                    with open(tmp, "wb") as fh:
                        fh.write(blob)
                        os.fsync(fh.fileno())
                    os.replace(tmp, path)
                finally:
                    if os.path.exists(tmp):
                        os.unlink(tmp)
            """
        )
        assert not rep.findings

    def test_functions_without_replace_are_not_checked(self):
        rep = _analyze(
            """
            def log_line(path, msg):
                with open(path, "a") as fh:
                    fh.write(msg)
            """
        )
        assert not rep.findings


class TestPhaseBalance:
    def test_early_return_skips_pop(self):
        rep = _analyze(
            """
            def tally(world, flag):
                world._phase_stack.append("assembly")
                if flag:
                    return None
                world._phase_stack.pop()
                return None
            """
        )
        assert _rules(rep) == ["RL007"]
        f = rep.findings[0]
        assert f.line == 3 and "not popped" in f.message

    def test_balanced_push_pop_is_quiet(self):
        rep = _analyze(
            """
            def tally(world):
                world._phase_stack.append("assembly")
                work()
                world._phase_stack.pop()
            """
        )
        assert not rep.findings

    def test_pop_phase_helper_balances(self):
        rep = _analyze(
            """
            def tally(world):
                world._phase_stack.append("assembly")
                _pop_phase(world)
            """
        )
        assert not rep.findings


class TestCollectiveConsistency:
    def test_collective_under_rank_guard_fires(self):
        rep = _analyze(
            """
            def step(world, x):
                if world.rank == 0:
                    world.allreduce(x)
            """
        )
        assert _rules(rep) == ["RL008"]
        f = rep.findings[0]
        assert f.line == 4 and "allreduce" in f.message

    def test_symmetric_arms_are_exempt(self):
        rep = _analyze(
            """
            def step(world, x, is_root):
                if is_root:
                    world.allreduce(x)
                else:
                    world.allreduce(x)
            """
        )
        assert not rep.findings

    def test_mismatched_arm_sequences_fire(self):
        rep = _analyze(
            """
            def step(world, x, is_root):
                if is_root:
                    world.allreduce(x)
                    world.barrier()
                else:
                    world.allreduce(x)
            """
        )
        assert rep.findings and set(_rules(rep)) == {"RL008"}
        assert any("barrier" in f.message for f in rep.findings)

    def test_collective_after_rank_gated_early_return_fires(self):
        rep = _analyze(
            """
            def step(world, x, my_rank):
                if my_rank != 0:
                    return None
                world.allreduce(x)
            """
        )
        assert _rules(rep) == ["RL008"]

    def test_non_rank_branch_is_quiet(self):
        rep = _analyze(
            """
            def step(world, x, flag):
                if flag:
                    world.allreduce(x)
            """
        )
        assert not rep.findings

    def test_interprocedural_collective_through_helper(self):
        rep = _analyze(
            """
            def reduce_all(world, x):
                return world.allreduce(x)

            def step(world, x):
                if world.rank == 0:
                    reduce_all(world, x)
            """
        )
        assert _rules(rep) == ["RL008"]
        assert "call to reduce_all" in rep.findings[0].message

    def test_loop_back_edge_does_not_mask_divergence(self):
        # Without blocking the branch node, the `continue` arm would
        # "reach" the collective via head -> if -> body on the next
        # lexical iteration and the divergence would vanish.
        rep = _analyze(
            """
            def step(world, xs):
                for x in xs:
                    if world.rank == 0:
                        continue
                    world.allreduce(x)
            """
        )
        assert _rules(rep) == ["RL008"]


class TestReductionContracts:
    def test_correct_contract_is_quiet(self):
        rep = _analyze(
            """
            @reduction_contract(setup=1, per_iteration=2)
            def cg(world, b):
                r0 = norm(b)
                for _ in range(10):
                    a = dot(b, b)
                    z = fused_dots(b, b)
            """
        )
        assert not rep.findings

    def test_hidden_per_iteration_reduction_fires(self):
        rep = _analyze(
            """
            @reduction_contract(setup=1, per_iteration=1)
            def cg(world, b):
                r0 = norm(b)
                for _ in range(10):
                    a = dot(b, b)
                    z = norm(b)
            """
        )
        assert _rules(rep) == ["RL009"]
        msg = rep.findings[0].message
        assert "per_iteration=1" in msg and "2 reduction site(s)" in msg

    def test_undeclared_per_restart_count_fires(self):
        rep = _analyze(
            """
            @reduction_contract(setup=1, per_iteration=1)
            def gmres(world, b):
                r0 = norm(b)
                while True:
                    z = norm(b)
                    for _ in range(5):
                        a = dot(b, b)
            """
        )
        assert _rules(rep) == ["RL009"]
        assert "no per_restart" in rep.findings[0].message

    def test_unaccounted_resolved_helper_fires(self):
        rep = _analyze(
            """
            def orthogonalize(V, w):
                return dot(V, w)

            @reduction_contract(setup=0, per_iteration=0)
            def arnoldi(V, w):
                for _ in range(3):
                    orthogonalize(V, w)
            """
        )
        assert _rules(rep) == ["RL009"]
        assert "assume=" in rep.findings[0].message

    def test_assume_prices_the_helper(self):
        rep = _analyze(
            """
            def orthogonalize(V, w):
                return dot(V, w)

            @reduction_contract(
                setup=0, per_iteration=3, assume={"orthogonalize": 3}
            )
            def arnoldi(V, w):
                for _ in range(3):
                    orthogonalize(V, w)
            """
        )
        assert not rep.findings

    def test_undecorated_functions_are_not_checked(self):
        rep = _analyze(
            """
            def free_kernel(b):
                for _ in range(10):
                    a = dot(b, b)
            """
        )
        assert not rep.findings


class TestInterproceduralIndex:
    def test_shipped_call_graph_facts(self):
        index = ProjectIndex.from_paths(["src/repro"])
        # The one-reduce orthogonalizer really does reach a reduction...
        assert index.reaches_reduction(
            "repro.krylov.gram_schmidt:orthogonalize"
        )
        # ...and the split halo exchange is point-to-point, collective-free.
        assert not index.reaches_collective(
            "repro.comm.exchange:exchange_halo"
        )


class TestBugCorpus:
    """The PR 8 regression corpus: each historical bug, reintroduced
    verbatim in fixture form, must be caught at its exact site."""

    def test_all_three_historical_bugs_are_caught(self):
        hidden_reduction = (
            "src/repro/krylov/cg_bug.py",
            textwrap.dedent(
                """
                @reduction_contract(setup=2, per_iteration=2)
                def solve(self, b):
                    rho = norm(b)
                    gamma = fused_dots(b, b)
                    for _ in range(50):
                        pap = dot(b, b)
                        rz = fused_dots(b, b)
                        extra = norm(b)
                """
            ),
        )
        leaked_begin = (
            "src/repro/comm/overlap_bug.py",
            textwrap.dedent(
                """
                def matvec_overlap(world, pat, owned, skip):
                    h = exchange_halo_begin(world, pat, owned)
                    if skip:
                        return None
                    return exchange_halo_finish(world, h)
                """
            ),
        )
        rank_gated_collective = (
            "src/repro/amg/coarse_bug.py",
            textwrap.dedent(
                """
                def coarse_solve(world, x):
                    if world.rank == 0:
                        world.allreduce(x)
                """
            ),
        )
        rep = analyze_protocol_sources(
            [hidden_reduction, leaked_begin, rank_gated_collective]
        )
        got = {f.rule: (f.path, f.line) for f in rep.findings}
        assert len(rep.findings) == 3
        assert got["RL009"] == ("src/repro/krylov/cg_bug.py", 3)
        assert got["RL007"] == ("src/repro/comm/overlap_bug.py", 3)
        assert got["RL008"] == ("src/repro/amg/coarse_bug.py", 4)


class TestShippedTree:
    def test_shipped_tree_is_protocol_clean(self):
        rep = analyze_protocol_paths(["src/repro"])
        assert not rep.findings, [
            (f.path, f.line, f.message) for f in rep.findings
        ]
