"""Tests for the resilience subsystem: guards, recovery, fault injection."""

import json

import numpy as np
import pytest

from repro.core.config import SimulationConfig
from repro.core.simulation import NaluWindSimulation
from repro.krylov.api import KrylovResult
from repro.linalg import ParVector
from repro.comm import SimWorld
from repro.resilience import (
    FaultInjector,
    FaultSpec,
    RecoveryPolicy,
    SolverFailure,
    iterate_is_finite,
    operands_are_finite,
    summarize_events,
    validate_fields,
    validate_iterate,
)


def result_with(data, residual=1e-8, converged=True):
    w = SimWorld(1)
    x = ParVector(w, np.array([0, len(data)]), np.asarray(data, dtype=float))
    return KrylovResult(
        x=x,
        iterations=3,
        residual_norm=residual,
        converged=converged,
        residual_history=[1.0, 0.1],
        method="gmres",
    )


class TestGuards:
    def test_finite_iterate_passes(self):
        validate_iterate(result_with([1.0, 2.0]), equation="momentum")

    def test_nan_iterate_raises_with_context(self):
        res = result_with([1.0, np.nan], residual=np.nan)
        with pytest.raises(SolverFailure) as ei:
            validate_iterate(res, equation="pressure", phase="pressure/solve")
        f = ei.value
        assert f.kind == "nonfinite_iterate"
        assert f.equation == "pressure"
        assert f.phase == "pressure/solve"
        assert f.iterations == 3
        assert f.residual_history == [1.0, 0.1]
        d = f.to_dict()
        assert d["equation"] == "pressure"
        assert d["kind"] == "nonfinite_iterate"

    def test_inf_residual_detected(self):
        assert not iterate_is_finite(result_with([1.0], residual=np.inf))

    def test_validate_fields_names_offender(self):
        with pytest.raises(SolverFailure) as ei:
            validate_fields(
                {"velocity": np.ones(3), "pressure": np.array([1.0, np.inf])}
            )
        assert ei.value.equation == "pressure"
        assert ei.value.kind == "nonfinite_fields"

    def test_operands_are_finite(self):
        from scipy import sparse
        from repro.linalg import ParCSRMatrix

        w = SimWorld(1)
        A = ParCSRMatrix(
            w, sparse.eye(3, format="csr"), np.array([0, 3])
        )
        b = ParVector(w, np.array([0, 3]), np.ones(3))
        assert operands_are_finite(A, b)
        b.data[1] = np.nan
        assert not operands_are_finite(A, b)


class TestPolicyAndSpecs:
    def test_policy_defaults_valid(self):
        RecoveryPolicy().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ladder": ("warp_core_eject",)},
            {"retry_scale": 0.5},
            {"dt_backoff": 0.0},
            {"dt_backoff": 1.5},
            {"max_step_retries": -1},
        ],
    )
    def test_policy_rejects_bad_settings(self, kwargs):
        with pytest.raises(ValueError):
            RecoveryPolicy(**kwargs).validate()

    def test_fault_spec_validation(self):
        FaultSpec(kind="exchange_nan").validate()
        with pytest.raises(ValueError):
            FaultSpec(kind="gamma_ray").validate()
        with pytest.raises(ValueError):
            FaultSpec(kind="matrix_corrupt", mode="wiggle").validate()
        with pytest.raises(ValueError):
            FaultSpec(kind="solver_stall", at=-1).validate()

    def test_config_validates_recovery_and_faults(self):
        cfg = SimulationConfig(recovery=RecoveryPolicy(dt_backoff=2.0))
        with pytest.raises(ValueError):
            cfg.validate()
        cfg = SimulationConfig(faults=(FaultSpec(kind="nope"),))
        with pytest.raises(ValueError):
            cfg.validate()

    def test_summarize_events(self):
        assert summarize_events([]) == {}
        events = [
            {"event": "solver_failure", "equation": "momentum"},
            {"event": "recovery", "action": "rebuild_precond",
             "success": False},
            {"event": "recovery", "action": "rollback_restep",
             "success": True},
        ]
        s = summarize_events(events)
        assert s["failures"] == 1
        assert s["recoveries"] == {"rollback_restep": 1}
        assert len(s["events"]) == 3


class TestFaultInjector:
    def test_opportunity_counting(self):
        inj = FaultInjector((FaultSpec(kind="solver_stall", at=2),))
        assert not inj.on_solve("momentum")
        assert not inj.on_solve("momentum")
        assert inj.on_solve("momentum")
        assert inj.exhausted()
        # One-shot: never fires again.
        assert not inj.on_solve("momentum")

    def test_equation_filter(self):
        inj = FaultInjector(
            (FaultSpec(kind="solver_stall", at=0, equation="pressure"),)
        )
        assert not inj.on_solve("momentum")
        assert inj.on_solve("pressure")

    def test_exchange_corruption_replaces_copy(self):
        inj = FaultInjector((FaultSpec(kind="exchange_nan", at=0),), seed=4)
        original = np.ones(5)
        recv = [[original], []]
        inj.on_alltoallv(recv, phase="x")
        # The sender-side buffer is untouched; the delivered copy is not.
        assert np.all(np.isfinite(original))
        assert not np.all(np.isfinite(recv[0][0]))
        assert inj.fired[0]["kind"] == "exchange_nan"

    def test_exchange_corruption_tuple_payload(self):
        inj = FaultInjector((FaultSpec(kind="exchange_nan", at=0),), seed=4)
        idx = np.arange(3)
        vals = np.ones(3)
        recv = [[(idx, idx, vals)]]
        inj.on_alltoallv(recv)
        i2, j2, v2 = recv[0][0]
        assert i2 is idx and j2 is idx
        assert np.all(np.isfinite(vals))
        assert not np.all(np.isfinite(v2))

    def test_deterministic_under_seed(self):
        def corrupt():
            inj = FaultInjector(
                (FaultSpec(kind="exchange_nan", at=0, entries=2),), seed=11
            )
            recv = [[np.ones(8)], [np.ones(8)]]
            inj.on_alltoallv(recv)
            return [np.isnan(p).tolist() for row in recv for p in row]

        assert corrupt() == corrupt()


def fault_cfg(kind, at, equation=None, seed=7, **cfg_kw):
    return SimulationConfig(
        faults=(FaultSpec(kind=kind, at=at, equation=equation),),
        fault_seed=seed,
        **cfg_kw,
    )


class TestEndToEndRecovery:
    def test_nominal_run_has_empty_recovery(self):
        sim = NaluWindSimulation("turbine_tiny")
        rep = sim.run(2)
        assert rep.recovery == {}
        assert rep.telemetry.resilience == {}
        assert sim.world.metrics.counter_total("resilience.failures") == 0
        assert sim.world.metrics.counter_total("resilience.recoveries") == 0

    @pytest.mark.parametrize(
        "kind,at,equation,expect_action",
        [
            ("exchange_nan", 40, None, "rollback_restep"),
            ("matrix_corrupt", 3, "pressure", "rollback_restep"),
            ("solver_stall", 5, "momentum", "rebuild_precond"),
        ],
    )
    def test_fault_recovers_with_finite_fields(
        self, kind, at, equation, expect_action
    ):
        sim = NaluWindSimulation("turbine_tiny", fault_cfg(kind, at, equation))
        rep = sim.run(2)
        assert sim.world.fault_injector.exhausted()
        assert rep.n_steps == 2
        assert np.all(np.isfinite(sim.velocity))
        assert np.all(np.isfinite(sim.pressure_field))
        assert np.all(np.isfinite(sim.scalar_field))
        assert rep.recovery["failures"] >= 1
        assert rep.recovery["recoveries"].get(expect_action, 0) >= 1
        # Telemetry mirrors the report and the counters mirror the events.
        assert rep.telemetry.resilience["recoveries"] == rep.recovery[
            "recoveries"
        ]
        m = sim.world.metrics
        assert m.counter_total("resilience.failures") == rep.recovery[
            "failures"
        ]
        assert m.counter_total("resilience.recoveries") == sum(
            rep.recovery["recoveries"].values()
        )

    def test_recovery_disabled_raises_structured_failure(self):
        cfg = fault_cfg(
            "exchange_nan", 40, recovery=RecoveryPolicy(enabled=False)
        )
        sim = NaluWindSimulation("turbine_tiny", cfg)
        with pytest.raises(SolverFailure) as ei:
            sim.run(2)
        f = ei.value
        assert f.kind in ("nonfinite_iterate", "nonfinite_operands")
        assert f.equation
        assert f.phase.endswith("/solve")
        # The failure was still counted and published.
        assert sim.world.metrics.counter_total("resilience.failures") == 1
        assert any(
            e["event"] == "solver_failure" for e in sim.recovery_events
        )

    def test_guards_off_restores_legacy_silent_behavior(self):
        cfg = fault_cfg(
            "exchange_nan",
            40,
            recovery=RecoveryPolicy(
                enabled=False, guards=False, recover_non_convergence=False
            ),
        )
        sim = NaluWindSimulation("turbine_tiny", cfg)
        rep = sim.run(2)  # completes: nothing acts on the corruption
        assert rep.recovery == {}
        assert sim.world.metrics.counter_total("resilience.failures") == 0
        # The poisoned solve is silently recorded as non-converged and
        # the simulation marches on — exactly the legacy failure mode
        # the guards exist to catch.
        records = [r for eq in sim.systems for r in eq.solve_records]
        assert any(
            not r.converged or not np.isfinite(r.residual_norm)
            for r in records
        )

    def test_rollback_budget_exhaustion_surfaces_failure(self):
        cfg = fault_cfg(
            "exchange_nan",
            40,
            recovery=RecoveryPolicy(max_step_retries=0),
        )
        sim = NaluWindSimulation("turbine_tiny", cfg)
        with pytest.raises(SolverFailure):
            sim.run(2)

    def test_rollback_backs_off_dt_and_restores_it(self):
        cfg = fault_cfg("exchange_nan", 40)
        sim = NaluWindSimulation("turbine_tiny", cfg)
        dt0 = cfg.dt
        rep = sim.run(2)
        assert cfg.dt == dt0
        rollbacks = [
            e
            for e in rep.recovery["events"]
            if e.get("action") == "rollback_restep"
        ]
        assert len(rollbacks) == 1
        assert f"{dt0:.4g} -> {dt0 * 0.5:.4g}" in rollbacks[0]["detail"]

    def test_deterministic_under_fixed_seed(self):
        def one_run():
            sim = NaluWindSimulation(
                "turbine_tiny", fault_cfg("exchange_nan", 40)
            )
            rep = sim.run(2)
            return (
                json.dumps(rep.recovery, sort_keys=True),
                sim.world.fault_injector.fired,
                sim.velocity.copy(),
                sim.pressure_field.copy(),
            )

        r1, f1, v1, p1 = one_run()
        r2, f2, v2, p2 = one_run()
        assert r1 == r2
        assert f1 == f2
        assert np.array_equal(v1, v2)
        assert np.array_equal(p1, p2)

    def test_ladder_subset_expand_krylov(self):
        cfg = fault_cfg(
            "solver_stall",
            5,
            equation="momentum",
            recovery=RecoveryPolicy(ladder=("expand_krylov",)),
        )
        sim = NaluWindSimulation("turbine_tiny", cfg)
        rep = sim.run(2)
        assert rep.recovery["recoveries"] == {"expand_krylov": 1}

    def test_hub_events_carry_recovery_fields(self):
        sim = NaluWindSimulation(
            "turbine_tiny", fault_cfg("solver_stall", 5, equation="momentum")
        )
        seen = []
        sim.world.hub.subscribe("recovery", lambda **kw: seen.append(kw))
        sim.run(2)
        assert seen
        ev = seen[0]
        assert ev["equation"] == "momentum"
        assert ev["kind"] == "non_convergence"
        assert ev["action"] == "rebuild_precond"
        assert ev["attempt"] == 1
        assert ev["success"] is True


class TestCacheInvalidation:
    def test_reset_solver_caches_clears_and_repopulates(self):
        sim = NaluWindSimulation("turbine_tiny")
        sim.run(1)
        m = sim.momentum
        assert m._plan is not None and m._plan.matrix_ready
        assert m._precond is not None
        m.reset_solver_caches()
        assert m._plan is None
        assert m._precond is None
        assert m._solves_since_setup == 0
        sim.run(1)
        assert m._plan is not None and m._plan.matrix_ready
        assert m._precond is not None

    def test_recovery_rebuild_invalidates_assembly_plan(self):
        """The forced rebuild drops the assembly plan: the next momentum
        assemble re-captures it (one extra plan rebuild vs nominal)."""
        nominal = NaluWindSimulation("turbine_tiny")
        nominal.run(2)
        n_rebuilds = nominal.world.metrics.counter(
            "assembly.plan_rebuilds", equation="momentum"
        ).value

        sim = NaluWindSimulation(
            "turbine_tiny", fault_cfg("solver_stall", 5, equation="momentum")
        )
        rep = sim.run(2)
        assert rep.recovery["recoveries"] == {"rebuild_precond": 1}
        rebuilds = sim.world.metrics.counter(
            "assembly.plan_rebuilds", equation="momentum"
        ).value
        assert rebuilds == n_rebuilds + 1

    def test_recovery_rebuild_rebuilds_pressure_amg(self):
        """A stalled pressure solve forces a fresh AMG hierarchy build."""
        nominal = NaluWindSimulation("turbine_tiny")
        nominal.run(2)
        n_setups = len(nominal.amg_setups)

        sim = NaluWindSimulation(
            "turbine_tiny", fault_cfg("solver_stall", 2, equation="pressure")
        )
        rep = sim.run(2)
        assert rep.recovery["recoveries"] == {"rebuild_precond": 1}
        assert len(sim.amg_setups) == n_setups + 1
