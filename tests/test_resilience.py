"""Tests for the resilience subsystem: guards, recovery, fault injection."""

import json

import numpy as np
import pytest

from repro.core.config import SimulationConfig
from repro.core.simulation import NaluWindSimulation
from repro.krylov.api import KrylovResult
from repro.linalg import ParVector
from repro.comm import (
    CommCorruptionError,
    CommDeadlockError,
    CommError,
    CommRetriesExhaustedError,
    MessageEnvelope,
    SimWorld,
)
from repro.resilience import (
    CheckpointWriteError,
    FaultInjector,
    FaultSpec,
    RECOVERY_ACTIONS,
    RecoveryPolicy,
    SolverFailure,
    classify_failure,
    iterate_is_finite,
    operands_are_finite,
    summarize_events,
    validate_fields,
    validate_iterate,
)


def result_with(data, residual=1e-8, converged=True):
    w = SimWorld(1)
    x = ParVector(w, np.array([0, len(data)]), np.asarray(data, dtype=float))
    return KrylovResult(
        x=x,
        iterations=3,
        residual_norm=residual,
        converged=converged,
        residual_history=[1.0, 0.1],
        method="gmres",
    )


class TestGuards:
    def test_finite_iterate_passes(self):
        validate_iterate(result_with([1.0, 2.0]), equation="momentum")

    def test_nan_iterate_raises_with_context(self):
        res = result_with([1.0, np.nan], residual=np.nan)
        with pytest.raises(SolverFailure) as ei:
            validate_iterate(res, equation="pressure", phase="pressure/solve")
        f = ei.value
        assert f.kind == "nonfinite_iterate"
        assert f.equation == "pressure"
        assert f.phase == "pressure/solve"
        assert f.iterations == 3
        assert f.residual_history == [1.0, 0.1]
        d = f.to_dict()
        assert d["equation"] == "pressure"
        assert d["kind"] == "nonfinite_iterate"

    def test_inf_residual_detected(self):
        assert not iterate_is_finite(result_with([1.0], residual=np.inf))

    def test_validate_fields_names_offender(self):
        with pytest.raises(SolverFailure) as ei:
            validate_fields(
                {"velocity": np.ones(3), "pressure": np.array([1.0, np.inf])}
            )
        assert ei.value.equation == "pressure"
        assert ei.value.kind == "nonfinite_fields"

    def test_operands_are_finite(self):
        from scipy import sparse
        from repro.linalg import ParCSRMatrix

        w = SimWorld(1)
        A = ParCSRMatrix(
            w, sparse.eye(3, format="csr"), np.array([0, 3])
        )
        b = ParVector(w, np.array([0, 3]), np.ones(3))
        assert operands_are_finite(A, b)
        b.data[1] = np.nan
        assert not operands_are_finite(A, b)


class TestPolicyAndSpecs:
    def test_policy_defaults_valid(self):
        RecoveryPolicy().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ladder": ("warp_core_eject",)},
            {"retry_scale": 0.5},
            {"dt_backoff": 0.0},
            {"dt_backoff": 1.5},
            {"max_step_retries": -1},
        ],
    )
    def test_policy_rejects_bad_settings(self, kwargs):
        with pytest.raises(ValueError):
            RecoveryPolicy(**kwargs).validate()

    def test_fault_spec_validation(self):
        FaultSpec(kind="exchange_nan").validate()
        with pytest.raises(ValueError):
            FaultSpec(kind="gamma_ray").validate()
        with pytest.raises(ValueError):
            FaultSpec(kind="matrix_corrupt", mode="wiggle").validate()
        with pytest.raises(ValueError):
            FaultSpec(kind="solver_stall", at=-1).validate()

    def test_worker_fault_spec_validation(self):
        FaultSpec(kind="worker_crash", point="ckpt", job="abc").validate()
        FaultSpec(kind="worker_hang", point="run").validate()
        with pytest.raises(ValueError):
            # `point` is meaningful only for process-level kinds.
            FaultSpec(kind="solver_stall", point="run").validate()
        with pytest.raises(ValueError):
            FaultSpec(kind="worker_crash", point="nowhere").validate()

    def test_worker_fault_spec_round_trip(self):
        spec = FaultSpec(
            kind="worker_hang", at=1, point="store", job="deadbeef"
        )
        again = FaultSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.point == "store" and again.job == "deadbeef"

    def test_config_validates_recovery_and_faults(self):
        cfg = SimulationConfig(recovery=RecoveryPolicy(dt_backoff=2.0))
        with pytest.raises(ValueError):
            cfg.validate()
        cfg = SimulationConfig(faults=(FaultSpec(kind="nope"),))
        with pytest.raises(ValueError):
            cfg.validate()

    def test_summarize_events(self):
        assert summarize_events([]) == {}
        events = [
            {"event": "solver_failure", "equation": "momentum"},
            {"event": "recovery", "action": "rebuild_precond",
             "success": False},
            {"event": "recovery", "action": "rollback_restep",
             "success": True},
        ]
        s = summarize_events(events)
        assert s["failures"] == 1
        assert s["recoveries"] == {"rollback_restep": 1}
        assert len(s["events"]) == 3


class TestFaultInjector:
    def test_opportunity_counting(self):
        inj = FaultInjector((FaultSpec(kind="solver_stall", at=2),))
        assert not inj.on_solve("momentum")
        assert not inj.on_solve("momentum")
        assert inj.on_solve("momentum")
        assert inj.exhausted()
        # One-shot: never fires again.
        assert not inj.on_solve("momentum")

    def test_equation_filter(self):
        inj = FaultInjector(
            (FaultSpec(kind="solver_stall", at=0, equation="pressure"),)
        )
        assert not inj.on_solve("momentum")
        assert inj.on_solve("pressure")

    def test_exchange_corruption_replaces_copy(self):
        inj = FaultInjector((FaultSpec(kind="exchange_nan", at=0),), seed=4)
        original = np.ones(5)
        recv = [[original], []]
        inj.on_alltoallv(recv, phase="x")
        # The sender-side buffer is untouched; the delivered copy is not.
        assert np.all(np.isfinite(original))
        assert not np.all(np.isfinite(recv[0][0]))
        assert inj.fired[0]["kind"] == "exchange_nan"

    def test_exchange_corruption_tuple_payload(self):
        inj = FaultInjector((FaultSpec(kind="exchange_nan", at=0),), seed=4)
        idx = np.arange(3)
        vals = np.ones(3)
        recv = [[(idx, idx, vals)]]
        inj.on_alltoallv(recv)
        i2, j2, v2 = recv[0][0]
        assert i2 is idx and j2 is idx
        assert np.all(np.isfinite(vals))
        assert not np.all(np.isfinite(v2))

    def test_on_worker_keys_on_job_and_attempt(self):
        # Matching is (job-id prefix, attempt index) — never a global
        # opportunity counter — so chaos schedules replay identically
        # under any worker count or completion interleaving.
        inj = FaultInjector(
            (FaultSpec(kind="worker_crash", at=1, point="run", job="aaa"),)
        )
        assert inj.on_worker("bbb12345", 1) is None  # wrong job
        assert inj.on_worker("aaa12345", 0) is None  # wrong attempt
        spec = inj.on_worker("aaa12345", 1)
        assert spec is not None and spec.kind == "worker_crash"
        assert inj.on_worker("aaa12345", 1) is None  # one-shot
        assert inj.fired[0]["point"] == "run"
        assert inj.exhausted()

    def test_on_worker_empty_job_matches_any(self):
        inj = FaultInjector((FaultSpec(kind="worker_hang", at=0),))
        assert inj.on_worker("anything", 0) is not None

    def test_on_io_job_filter_scopes_the_window(self):
        # A two-entry window filtered to one job's path fails exactly
        # that job's I/O twice and never counts other paths as
        # opportunities.
        inj = FaultInjector(
            (FaultSpec(kind="io_fail", at=0, entries=2, job="aaa"),)
        )
        assert not inj.on_io("store_put", "/store/bbb.json")
        assert inj.on_io("store_put", "/store/aaa.json")
        assert not inj.on_io("store_put", "/store/bbb.json")
        assert inj.on_io("store_put", "/store/aaa.json")
        assert not inj.on_io("store_put", "/store/aaa.json")
        assert inj.exhausted()

    def test_deterministic_under_seed(self):
        def corrupt():
            inj = FaultInjector(
                (FaultSpec(kind="exchange_nan", at=0, entries=2),), seed=11
            )
            recv = [[np.ones(8)], [np.ones(8)]]
            inj.on_alltoallv(recv)
            return [np.isnan(p).tolist() for row in recv for p in row]

        assert corrupt() == corrupt()


def fault_cfg(kind, at, equation=None, seed=7, **cfg_kw):
    return SimulationConfig(
        faults=(FaultSpec(kind=kind, at=at, equation=equation),),
        fault_seed=seed,
        **cfg_kw,
    )


class TestEndToEndRecovery:
    def test_nominal_run_has_empty_recovery(self):
        sim = NaluWindSimulation("turbine_tiny")
        rep = sim.run(2)
        assert rep.recovery == {}
        assert rep.telemetry.resilience == {}
        assert sim.world.metrics.counter_total("resilience.failures") == 0
        assert sim.world.metrics.counter_total("resilience.recoveries") == 0

    @pytest.mark.parametrize(
        "kind,at,equation,expect_action",
        [
            ("exchange_nan", 40, None, "rollback_restep"),
            ("matrix_corrupt", 3, "pressure", "rollback_restep"),
            ("solver_stall", 5, "momentum", "rebuild_precond"),
        ],
    )
    def test_fault_recovers_with_finite_fields(
        self, kind, at, equation, expect_action
    ):
        sim = NaluWindSimulation("turbine_tiny", fault_cfg(kind, at, equation))
        rep = sim.run(2)
        assert sim.world.fault_injector.exhausted()
        assert rep.n_steps == 2
        assert np.all(np.isfinite(sim.velocity))
        assert np.all(np.isfinite(sim.pressure_field))
        assert np.all(np.isfinite(sim.scalar_field))
        assert rep.recovery["failures"] >= 1
        assert rep.recovery["recoveries"].get(expect_action, 0) >= 1
        # Telemetry mirrors the report and the counters mirror the events.
        assert rep.telemetry.resilience["recoveries"] == rep.recovery[
            "recoveries"
        ]
        m = sim.world.metrics
        assert m.counter_total("resilience.failures") == rep.recovery[
            "failures"
        ]
        assert m.counter_total("resilience.recoveries") == sum(
            rep.recovery["recoveries"].values()
        )

    def test_recovery_disabled_raises_structured_failure(self):
        cfg = fault_cfg(
            "exchange_nan", 40, recovery=RecoveryPolicy(enabled=False)
        )
        sim = NaluWindSimulation("turbine_tiny", cfg)
        with pytest.raises(SolverFailure) as ei:
            sim.run(2)
        f = ei.value
        assert f.kind in ("nonfinite_iterate", "nonfinite_operands")
        assert f.equation
        assert f.phase.endswith("/solve")
        # The failure was still counted and published.
        assert sim.world.metrics.counter_total("resilience.failures") == 1
        assert any(
            e["event"] == "solver_failure" for e in sim.recovery_events
        )

    def test_guards_off_restores_legacy_silent_behavior(self):
        cfg = fault_cfg(
            "exchange_nan",
            40,
            recovery=RecoveryPolicy(
                enabled=False, guards=False, recover_non_convergence=False
            ),
        )
        sim = NaluWindSimulation("turbine_tiny", cfg)
        rep = sim.run(2)  # completes: nothing acts on the corruption
        assert rep.recovery == {}
        assert sim.world.metrics.counter_total("resilience.failures") == 0
        # The poisoned solve is silently recorded as non-converged and
        # the simulation marches on — exactly the legacy failure mode
        # the guards exist to catch.
        records = [r for eq in sim.systems for r in eq.solve_records]
        assert any(
            not r.converged or not np.isfinite(r.residual_norm)
            for r in records
        )

    def test_rollback_budget_exhaustion_surfaces_failure(self):
        cfg = fault_cfg(
            "exchange_nan",
            40,
            recovery=RecoveryPolicy(max_step_retries=0),
        )
        sim = NaluWindSimulation("turbine_tiny", cfg)
        with pytest.raises(SolverFailure):
            sim.run(2)

    def test_rollback_backs_off_dt_and_restores_it(self):
        cfg = fault_cfg("exchange_nan", 40)
        sim = NaluWindSimulation("turbine_tiny", cfg)
        dt0 = cfg.dt
        rep = sim.run(2)
        assert cfg.dt == dt0
        rollbacks = [
            e
            for e in rep.recovery["events"]
            if e.get("action") == "rollback_restep"
        ]
        assert len(rollbacks) == 1
        assert f"{dt0:.4g} -> {dt0 * 0.5:.4g}" in rollbacks[0]["detail"]

    def test_deterministic_under_fixed_seed(self):
        def one_run():
            sim = NaluWindSimulation(
                "turbine_tiny", fault_cfg("exchange_nan", 40)
            )
            rep = sim.run(2)
            return (
                json.dumps(rep.recovery, sort_keys=True),
                sim.world.fault_injector.fired,
                sim.velocity.copy(),
                sim.pressure_field.copy(),
            )

        r1, f1, v1, p1 = one_run()
        r2, f2, v2, p2 = one_run()
        assert r1 == r2
        assert f1 == f2
        assert np.array_equal(v1, v2)
        assert np.array_equal(p1, p2)

    def test_ladder_subset_expand_krylov(self):
        cfg = fault_cfg(
            "solver_stall",
            5,
            equation="momentum",
            recovery=RecoveryPolicy(ladder=("expand_krylov",)),
        )
        sim = NaluWindSimulation("turbine_tiny", cfg)
        rep = sim.run(2)
        assert rep.recovery["recoveries"] == {"expand_krylov": 1}

    def test_hub_events_carry_recovery_fields(self):
        sim = NaluWindSimulation(
            "turbine_tiny", fault_cfg("solver_stall", 5, equation="momentum")
        )
        seen = []
        sim.world.hub.subscribe("recovery", lambda **kw: seen.append(kw))
        sim.run(2)
        assert seen
        ev = seen[0]
        assert ev["equation"] == "momentum"
        assert ev["kind"] == "non_convergence"
        assert ev["action"] == "rebuild_precond"
        assert ev["attempt"] == 1
        assert ev["success"] is True


class TestCacheInvalidation:
    def test_reset_solver_caches_clears_and_repopulates(self):
        sim = NaluWindSimulation("turbine_tiny")
        sim.run(1)
        m = sim.momentum
        assert m._plan is not None and m._plan.matrix_ready
        assert m._precond is not None
        m.reset_solver_caches()
        assert m._plan is None
        assert m._precond is None
        assert m._solves_since_setup == 0
        sim.run(1)
        assert m._plan is not None and m._plan.matrix_ready
        assert m._precond is not None

    def test_recovery_rebuild_invalidates_assembly_plan(self):
        """The forced rebuild drops the assembly plan: the next momentum
        assemble re-captures it (one extra plan rebuild vs nominal)."""
        nominal = NaluWindSimulation("turbine_tiny")
        nominal.run(2)
        n_rebuilds = nominal.world.metrics.counter(
            "assembly.plan_rebuilds", equation="momentum"
        ).value

        sim = NaluWindSimulation(
            "turbine_tiny", fault_cfg("solver_stall", 5, equation="momentum")
        )
        rep = sim.run(2)
        assert rep.recovery["recoveries"] == {"rebuild_precond": 1}
        rebuilds = sim.world.metrics.counter(
            "assembly.plan_rebuilds", equation="momentum"
        ).value
        assert rebuilds == n_rebuilds + 1

    def test_recovery_rebuild_rebuilds_pressure_amg(self):
        """A stalled pressure solve forces a fresh AMG hierarchy build."""
        nominal = NaluWindSimulation("turbine_tiny")
        nominal.run(2)
        n_setups = len(nominal.amg_setups)

        sim = NaluWindSimulation(
            "turbine_tiny", fault_cfg("solver_stall", 2, equation="pressure")
        )
        rep = sim.run(2)
        assert rep.recovery["recoveries"] == {"rebuild_precond": 1}
        assert len(sim.amg_setups) == n_setups + 1


class TestFailureClassification:
    @pytest.mark.parametrize(
        "exc,expected",
        [
            (CommDeadlockError("x"), "comm_deadlock"),
            (CommCorruptionError("x"), "comm_corrupt"),
            (CommRetriesExhaustedError("x"), "comm_retries_exhausted"),
            (CommError("x"), "comm_retries_exhausted"),
            (OSError("disk on fire"), "io_error"),
            (RuntimeError("anything else"), "non_convergence"),
        ],
    )
    def test_exception_mapping(self, exc, expected):
        assert classify_failure(exc) == expected

    def test_solver_failure_keeps_its_kind(self):
        f = SolverFailure("x", equation="pressure", kind="nonfinite_iterate")
        assert classify_failure(f) == "nonfinite_iterate"


class TestInjectorState:
    def post_envelope(self, inj, seq=0):
        env = MessageEnvelope(
            seq=seq, src=0, dst=1, phase="p", payload=np.ones(4)
        )
        return inj.on_post(env)

    def test_io_fail_window(self):
        inj = FaultInjector((FaultSpec("io_fail", at=1, entries=2),))
        assert not inj.on_io("write")  # opportunity 0: before the window
        assert inj.on_io("write")  # 1
        assert inj.on_io("write")  # 2: window end, spec fires out
        assert inj.exhausted()
        assert not inj.on_io("write")
        assert [f["opportunity"] for f in inj.fired] == [1, 2]

    def test_state_dict_roundtrip_resumes_schedule(self):
        specs = (
            FaultSpec("message_drop", at=2),
            FaultSpec("io_fail", at=1, entries=2),
        )
        inj = FaultInjector(specs, seed=3)
        self.post_envelope(inj)  # drop opportunity 0
        inj.on_io("write")  # io opportunity 0
        inj.on_io("write")  # io opportunity 1: fires
        snapshot = inj.state_dict()
        assert json.dumps(snapshot)  # JSON-ready for the checkpoint header

        resumed = FaultInjector(specs, seed=999)  # seed replaced by state
        resumed.load_state(snapshot)
        assert resumed.fired == inj.fired
        # The restored schedule continues exactly where it left off: drop
        # has seen 1 of its 3 opportunities, io fires once more.
        assert resumed.on_io("write")
        assert self.post_envelope(resumed, seq=1) != []  # opportunity 1
        assert self.post_envelope(resumed, seq=2) == []  # opportunity 2 fires
        assert resumed.exhausted()

    def test_load_state_rejects_spec_mismatch(self):
        inj = FaultInjector((FaultSpec("message_drop"),))
        other = FaultInjector(
            (FaultSpec("message_drop"), FaultSpec("io_fail"))
        )
        with pytest.raises(ValueError):
            other.load_state(inj.state_dict())

    def test_policy_validates_new_knobs(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(comm_max_retries=-1).validate()
        with pytest.raises(ValueError):
            RecoveryPolicy(max_checkpoint_restores=-1).validate()
        assert "checkpoint_restore" in RECOVERY_ACTIONS


class TestTransportFaultMatrix:
    """End-to-end matrix: every p2p/I-O fault kind x recovery outcome."""

    @pytest.fixture(scope="class")
    def nominal(self):
        sim = NaluWindSimulation("turbine_tiny")
        sim.run(2)
        return sim

    @pytest.mark.parametrize(
        "kind,at,counter",
        [
            ("message_drop", 3, "comm.drops_detected"),
            ("message_corrupt", 5, "comm.corrupt_detected"),
            ("message_duplicate", 2, "comm.duplicates_discarded"),
        ],
    )
    def test_transport_fault_is_transparent(self, nominal, kind, at, counter):
        """Within the retry budget, transport faults never reach the
        solver: the run finishes bit-identical to the nominal one."""
        sim = NaluWindSimulation("turbine_tiny", fault_cfg(kind, at))
        rep = sim.run(2)
        assert sim.world.fault_injector.exhausted()
        assert rep.recovery == {}
        assert sim.world.metrics.counter_total(counter) == 1
        expected_retries = 0 if kind == "message_duplicate" else 1
        assert (
            sim.world.metrics.counter_total("comm.retries")
            == expected_retries
        )
        for name in ("velocity", "pressure_field", "scalar_field"):
            assert (
                getattr(sim, name).tobytes()
                == getattr(nominal, name).tobytes()
            ), name

    @pytest.mark.parametrize("kind", ["message_drop", "message_corrupt"])
    def test_exhausted_retries_recover_via_ladder(self, kind):
        """With a zero retry budget a single transport fault escalates:
        the solve aborts, in-flight channels are purged, and the ladder's
        first rung re-drives the exchange successfully."""
        cfg = fault_cfg(
            kind, 3, recovery=RecoveryPolicy(comm_max_retries=0)
        )
        sim = NaluWindSimulation("turbine_tiny", cfg)
        rep = sim.run(2)
        assert rep.recovery["failures"] == 1
        assert rep.recovery["recoveries"] == {"rebuild_precond": 1}
        assert {e.get("kind") for e in rep.recovery["events"]} == {
            "comm_retries_exhausted"
        }
        assert sim.world.metrics.counter_total("comm.purged") >= 1
        assert np.all(np.isfinite(sim.velocity))

    def test_exhausted_retries_disabled_recovery_raises(self):
        cfg = fault_cfg(
            "message_drop",
            3,
            recovery=RecoveryPolicy(comm_max_retries=0, enabled=False),
        )
        sim = NaluWindSimulation("turbine_tiny", cfg)
        with pytest.raises(SolverFailure) as ei:
            sim.run(2)
        f = ei.value
        assert f.kind == "comm_retries_exhausted"
        assert f.equation
        assert f.phase.endswith("/solve")

    def test_io_fault_window_is_retried(self, tmp_path):
        cfg = fault_cfg(
            "io_fail",
            0,
            checkpoint_every=1,
            checkpoint_dir=str(tmp_path),
        )
        cfg.faults = (FaultSpec("io_fail", at=0, entries=2),)
        sim = NaluWindSimulation("turbine_tiny", cfg)
        rep = sim.run(2)
        m = sim.world.metrics
        assert m.counter_total("resilience.checkpoint.writes") == 2
        assert m.counter_total("resilience.checkpoint.write_retries") == 2
        assert rep.recovery["checkpoint"]["write_retries"] == 2

    def test_io_window_wider_than_budget_fails_run(self, tmp_path):
        cfg = SimulationConfig(
            faults=(FaultSpec("io_fail", at=0, entries=10),),
            fault_seed=7,
            checkpoint_every=1,
            checkpoint_dir=str(tmp_path),
        )
        sim = NaluWindSimulation("turbine_tiny", cfg)
        with pytest.raises(CheckpointWriteError):
            sim.run(1)
        assert (
            sim.world.metrics.counter_total(
                "resilience.checkpoint.write_failures"
            )
            == 1
        )

    def test_checkpoint_restore_rung(self, tmp_path):
        """A failure that exhausts the in-memory rollback budget rewinds
        to the newest durable checkpoint and completes the run."""
        cfg = fault_cfg(
            "exchange_nan",
            40,
            recovery=RecoveryPolicy(max_step_retries=0),
            checkpoint_every=1,
            checkpoint_dir=str(tmp_path),
        )
        sim = NaluWindSimulation("turbine_tiny", cfg)
        rep = sim.run(2)
        assert sim.step_index == 2
        assert rep.recovery["recoveries"] == {"checkpoint_restore": 1}
        assert rep.recovery["checkpoint"]["restores"] == 1
        restore = next(
            e
            for e in rep.recovery["events"]
            if e.get("action") == "checkpoint_restore"
        )
        assert restore["success"] is True
        assert "step 1 -> 1" in restore["detail"]
        assert np.all(np.isfinite(sim.velocity))

    def test_checkpoint_restore_budget_bounds_restores(self, tmp_path):
        """With the restore budget already spent, the failure surfaces."""
        cfg = fault_cfg(
            "exchange_nan",
            40,
            recovery=RecoveryPolicy(
                max_step_retries=0, max_checkpoint_restores=0
            ),
            checkpoint_every=1,
            checkpoint_dir=str(tmp_path),
        )
        sim = NaluWindSimulation("turbine_tiny", cfg)
        with pytest.raises(SolverFailure):
            sim.run(2)
        assert (
            sim.world.metrics.counter_total(
                "resilience.checkpoint.restores"
            )
            == 0
        )
