"""Tour of the three-stage linear-system assembly pipeline (paper §3).

Walks a real momentum system through the pipeline the paper builds:

1. Stage 1 — graph computation (exact sparsity, owned/shared split);
2. Stage 2 — data-parallel local assembly (atomics, or the deterministic
   and compensated variants of §3.2);
3. Stage 3 — hypre global assembly via the six IJ API calls wrapping
   Algorithms 1 and 2, in all three variants the paper discusses.

Run:  python examples/assembly_pipeline_tour.py
"""

import numpy as np

from repro import NaluWindSimulation, SimulationConfig
from repro.assembly import (
    HypreIJMatrix,
    HypreIJVector,
    assemble_global_matrix,
    assemble_global_vector,
)
from repro.comm import SimWorld
from repro.harness import format_table
from repro.perf import CostModel, SUMMIT_GPU


def main() -> None:
    cfg = SimulationConfig(nranks=6)
    sim = NaluWindSimulation("turbine_tiny", cfg)
    sim.step()  # one step so the fields/graphs are realistic
    comp = sim.comp
    num = comp.numbering
    graph = sim.momentum.graph

    print("Stage 1 (graph): per-rank owned/shared COO patterns")
    rows = []
    for r in range(cfg.nranks):
        oi, _ = graph.owned_pattern(r)
        si, _ = graph.shared_pattern(r)
        rows.append([r, oi.size, si.size, graph.nnz_recv(r)])
    print(
        format_table(
            "Sparsity pattern", ["rank", "owned nnz", "send nnz", "nnz_recv"],
            rows,
        )
    )

    local = sim.momentum.assembler.finalize()
    print("\nStage 3 (Algorithms 1-2), three variants:")
    rows = []
    for variant in ("optimized", "sparse_add", "general"):
        w = SimWorld(cfg.nranks)
        with w.phase_scope("asm"):
            am = assemble_global_matrix(w, num, local, variant=variant)
            rhs = assemble_global_vector(w, num, local, variant=variant)
        cm = CostModel(SUMMIT_GPU)
        t = cm.phase_time(w, "asm").total
        rows.append(
            [
                variant,
                am.matrix.nnz,
                f"{sum(am.offd_nnz) / am.matrix.nnz:.3f}",
                f"{t * 1e6:.1f}",
                f"{w.ops.peak_alloc() / 1e6:.3f}",
            ]
        )
    print(
        format_table(
            "Global assembly",
            ["variant", "global nnz", "offd frac", "model time [us]",
             "peak staging [MB]"],
            rows,
        )
    )

    # The IJ interface: the same six API calls the paper lists.
    w = SimWorld(cfg.nranks)
    ij = HypreIJMatrix(w, num)
    ijv = HypreIJVector(w, num)
    for r in range(cfg.nranks):
        own = local.own_matrix[r]
        ij.set_values2(r, own.i, own.j, own.a)
        snd = local.send_matrix[r]
        if snd.nnz:
            ij.add_to_values2(r, snd.i, snd.j, snd.a)
        orhs = local.own_rhs[r]
        ijv.set_values2(r, orhs.i, orhs.r)
        srhs = local.send_rhs[r]
        if srhs.n:
            ijv.add_to_values2(r, srhs.i, srhs.r)
    am = ij.assemble()
    rhs = ijv.assemble()
    ref = assemble_global_matrix(SimWorld(cfg.nranks), num, local)
    err = abs(am.matrix.A - ref.matrix.A).max()
    print(f"\nIJ-interface assembly matches pipeline output: max |diff| = {err:.2e}")


if __name__ == "__main__":
    main()
