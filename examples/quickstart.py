"""Quickstart: simulate a (tiny) blade-resolved wind turbine.

Builds the smallest overset turbine system, runs two time steps of the
full pipeline — rotor motion, overset reassembly, graph computation, local
and global assembly (paper Algorithms 1-2), GMRES+SGS2 momentum solves,
GMRES+BoomerAMG pressure solves — and prices the recorded work on the
Summit GPU machine model.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import NaluWindSimulation, SimulationConfig
from repro.harness import nli_step_times
from repro.perf import EAGLE_GPU, SUMMIT_GPU


def main() -> None:
    config = SimulationConfig(nranks=6)
    sim = NaluWindSimulation("turbine_tiny", config)
    print(f"workload: {sim.workload_name}, {sim.comp.n} mesh nodes, "
          f"{config.nranks} simulated ranks")
    print(f"component meshes: {[m.name for m in sim.comp.meshes]}")

    report = sim.run(2)

    print("\nlinear-solver iterations per solve:")
    for eq, iters in report.solve_iterations.items():
        print(f"  {eq:10s} {iters}  (mean {np.mean(iters):.1f})")
    print(f"\nmass-conservation residual per step: "
          f"{['%.2e' % d for d in report.divergence_norms]}")
    print(f"rotor-tip flow speed: "
          f"{np.linalg.norm(sim.velocity, axis=1).max():.1f} m/s")

    for machine in (SUMMIT_GPU, EAGLE_GPU):
        times = nli_step_times(report, machine, work_scale=1.0)
        print(f"simulated NLI time/step on {machine.name}: "
              f"{times.mean() * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
