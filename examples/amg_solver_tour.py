"""Tour of the linear-solver stack on a blade-resolved pressure system.

Walks through the paper's §4 machinery on a real ill-conditioned matrix:
assemble the pressure-Poisson operator of the scaled turbine, build
BoomerAMG hierarchies with different interpolation operators and
coarsening, and solve with one-reduce GMRES, comparing against the
two-stage Gauss-Seidel-only preconditioner.

Run:  python examples/amg_solver_tour.py
"""

import numpy as np

from repro import NaluWindSimulation, SimulationConfig
from repro.amg import AMGHierarchy, AMGOptions, AMGPreconditioner
from repro.comm import SimWorld
from repro.core.operators import boundary_mass_flux, mass_flux
from repro.harness import format_table
from repro.krylov import GMRES
from repro.linalg import ParCSRMatrix
from repro.smoothers import make_smoother


def build_pressure_matrix():
    """One time step of turbine_tiny, then re-assemble its pressure system."""
    cfg = SimulationConfig(nranks=6)
    sim = NaluWindSimulation("turbine_tiny", cfg)
    sim.step()
    comp = sim.comp
    mdot = mass_flux(comp, sim.velocity, cfg.density)
    bflux = boundary_mass_flux(comp, sim.velocity, cfg.density)
    A, rhs = sim.pressure.assemble(
        mdot=mdot,
        pressure_correction_bc=np.zeros(comp.n),
        boundary_flux=bflux,
    )
    return A, rhs


def main() -> None:
    A, rhs = build_pressure_matrix()
    print(f"pressure system: n={A.shape[0]}, nnz={A.nnz}, "
          f"offd fraction={A.offd_fraction():.2f}")

    rows = []
    for interp in ("direct", "bamg_direct", "mm_ext", "mm_ext_i"):
        w = SimWorld(6)
        M = ParCSRMatrix(w, A.A, A.row_offsets)
        b = M.new_vector(rhs.data.copy())
        h = AMGHierarchy(M, AMGOptions(interp=interp, agg_levels=2))
        res = GMRES(
            M, preconditioner=AMGPreconditioner(h), tol=1e-8, max_iters=300
        ).solve(b)
        rows.append(
            [
                f"AMG({interp})",
                h.num_levels,
                f"{h.operator_complexity():.2f}",
                res.iterations,
                str(res.converged),
            ]
        )

    # Two-stage Gauss-Seidel alone (no multigrid): the contrast that
    # motivates AMG for the pressure system (paper §1).
    w = SimWorld(6)
    M = ParCSRMatrix(w, A.A, A.row_offsets)
    b = M.new_vector(rhs.data.copy())
    res = GMRES(
        M, preconditioner=make_smoother("sgs2", M), tol=1e-8, max_iters=300
    ).solve(b)
    rows.append(["SGS2 only", "-", "-", res.iterations, str(res.converged)])

    print()
    print(
        format_table(
            "GMRES(one-reduce) on the blade-resolved pressure system",
            ["preconditioner", "levels", "op cx", "iterations", "converged"],
            rows,
            note="Poorly conditioned pressure systems 'can only be solved "
            "efficiently with sophisticated algorithms such as AMG' "
            "(paper, Introduction).",
        )
    )


if __name__ == "__main__":
    main()
