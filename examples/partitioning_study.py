"""Domain-decomposition study: RCB versus the multilevel partitioner.

Reproduces the analysis behind the paper's Figs. 4-5: RCB on an overset
turbine system produces geometrically sliced, disconnected rank territories
with poor matrix-nonzero balance, while ParMETIS-style graph partitioning
(with row-nnz vertex weights) balances the solver load and keeps
subdomains connected.

Run:  python examples/partitioning_study.py [nranks]
"""

import sys

import numpy as np
from scipy import sparse

from repro.comm import SimWorld
from repro.core import CompositeMesh
from repro.harness import format_table
from repro.mesh import make_turbine_low
from repro.overset.assembler import NodeStatus
from repro.partition import (
    balance_stats,
    components_per_rank,
    edge_cut,
    multilevel_partition,
)
from repro.partition.rcb import rcb_element_node_partition


def pressure_pattern_matrix(comp: CompositeMesh) -> sparse.csr_matrix:
    """Sparsity-pattern proxy of the pressure matrix (1s where nnz)."""
    g = comp.node_graph()
    free = comp.statuses == NodeStatus.FIELD
    # Constraint rows (fringe/holes/Dirichlet) are identity rows.
    rows = []
    cols = []
    coo = g.tocoo()
    keep = free[coo.row]
    rows.append(coo.row[keep])
    cols.append(coo.col[keep])
    diag = np.arange(comp.n)
    rows.append(diag)
    cols.append(diag)
    r = np.concatenate(rows)
    c = np.concatenate(cols)
    return sparse.csr_matrix(
        (np.ones(r.size), (r, c)), shape=(comp.n, comp.n)
    )


def main() -> None:
    nranks = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    system = make_turbine_low()
    comp = CompositeMesh(SimWorld(nranks), system)
    A = pressure_pattern_matrix(comp)
    g = comp.node_graph()

    cells, centroids = comp.all_cells()
    parts_rcb = rcb_element_node_partition(centroids, cells, comp.n, nranks)
    vwgt = np.diff(A.indptr).astype(float)
    parts_ml = multilevel_partition(g, nranks, vertex_weights=vwgt)

    rows = []
    for label, parts in (("RCB", parts_rcb), ("multilevel", parts_ml)):
        bs = balance_stats(A, parts)
        comps = components_per_rank(g, parts)
        rows.append(
            [
                label,
                f"{bs.median:.0f}",
                f"{bs.minimum:.0f}",
                f"{bs.maximum:.0f}",
                f"{bs.spread:.0f}",
                edge_cut(g, parts),
                int(comps.max()),
                f"{(comps > 1).sum()}/{nranks}",
            ]
        )
    print(
        format_table(
            f"Pressure-matrix nnz balance, {nranks} ranks "
            f"({comp.n} DoFs)  [paper Figs. 4-5]",
            [
                "method",
                "median nnz",
                "min",
                "max",
                "spread",
                "edge cut",
                "max comps/rank",
                "sliver ranks",
            ],
            rows,
            note="'comps/rank' counts connected components of a rank's "
            "territory; >1 is the paper's Fig. 4 sliver pathology.",
        )
    )


if __name__ == "__main__":
    main()
