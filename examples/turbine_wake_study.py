"""Turbine wake study on the scaled low-resolution single-turbine mesh.

Reproduces the workflow behind the paper's Fig. 2 flow field: the NREL
5-MW rotor (scaled) in 8 m/s uniform inflow, blade-resolved overset meshes,
rotor rotation, and the full solver stack.  Reports the axial-velocity
deficit behind the rotor, per-equation solver statistics, and the
pressure-Poisson phase breakdown priced on the Summit GPU model.

Run:  python examples/turbine_wake_study.py [n_steps]
"""

import sys

import numpy as np

from repro import NaluWindSimulation, SimulationConfig
from repro.harness import equation_breakdown, format_table
from repro.mesh import ROTOR_RADIUS
from repro.overset.assembler import NodeStatus
from repro.perf import SUMMIT_GPU


def wake_profile(sim: NaluWindSimulation, x_plane: float) -> tuple[float, int]:
    """Mean axial velocity on background field nodes near a wake plane."""
    comp = sim.comp
    nbg = comp.meshes[0].n_nodes
    x = comp.coords[:nbg]
    sel = (
        (np.abs(x[:, 0] - x_plane) < 0.4 * ROTOR_RADIUS)
        & (np.hypot(x[:, 1], x[:, 2]) < ROTOR_RADIUS)
        & (comp.statuses[:nbg] == NodeStatus.FIELD)
    )
    if not np.any(sel):
        return float("nan"), 0
    return float(sim.velocity[:nbg][sel, 0].mean()), int(sel.sum())


def main() -> None:
    n_steps = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    config = SimulationConfig(nranks=8)
    sim = NaluWindSimulation("turbine_low", config)
    print(f"{sim.comp.n} nodes over {len(sim.comp.meshes)} meshes; "
          f"holes={sim.comp.hole_nodes().size}, "
          f"fringe={sim.comp.fringe_nodes().size}")
    report = sim.run(n_steps)

    rows = []
    for xf in (1.0, 2.0, 4.0):
        u, count = wake_profile(sim, xf * ROTOR_RADIUS)
        deficit = (8.0 - u) / 8.0 if np.isfinite(u) else float("nan")
        rows.append([f"{xf:.0f} R", count, f"{u:.3f}", f"{100 * deficit:.2f}%"])
    print()
    print(
        format_table(
            f"Axial wake profile after {n_steps} steps (cold start)",
            ["plane", "samples", "mean u [m/s]", "deficit"],
            rows,
        )
    )

    print()
    rows = [
        [eq, f"{report.mean_iterations(eq):.1f}", len(its)]
        for eq, its in report.solve_iterations.items()
    ]
    print(
        format_table(
            "Linear solves", ["equation", "mean iters", "solves"], rows
        )
    )

    bd = equation_breakdown(report, SUMMIT_GPU, "pressure")
    print()
    print(
        format_table(
            "Pressure-Poisson phase breakdown (Summit-GPU model, paper scale)",
            ["phase", "seconds/step"],
            [[k, f"{v:.3f}"] for k, v in bd.items()],
        )
    )


if __name__ == "__main__":
    main()
