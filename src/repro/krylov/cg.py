"""Preconditioned conjugate gradients.

The pressure-Poisson operator is symmetric positive (semi-)definite, so CG
is the classical alternative to GMRES for it (Nalu-Wind historically ran
hypre's PCG on the continuity system before the one-reduce GMRES work).
Provided for completeness and for the solver-comparison ablations; each
iteration costs two reductions against one for the one-reduce GMRES:
``p.Ap`` and a batched allreduce of 2 scalars carrying ``r.z`` and the
``‖r‖²`` convergence check together (they are available at the same
point of the iteration, so fusing them is free — paying a third
reduction for the norm alone would be a hidden synchronization).
"""

from __future__ import annotations

import numpy as np

from repro.krylov.api import KrylovResult, Preconditioner, reduction_contract
from repro.linalg.parcsr import ParCSRMatrix
from repro.linalg.parvector import ParVector, fused_dots


class CG:
    """Preconditioned conjugate gradients for SPD operators.

    Args:
        A: SPD operator.
        preconditioner: SPD preconditioner action (None = identity).
        tol: relative residual tolerance.
        max_iters: iteration cap.
        record_history: keep per-iteration relative residual norms in
            ``KrylovResult.residual_history`` (off leaves it empty).
        overlap: run the SpMV halo exchanges split (``matvec(overlap=
            True)``): the diag block is applied while boundary data is
            in flight.  Bitwise-identical results, shorter halo waits.
    """

    def __init__(
        self,
        A: ParCSRMatrix,
        preconditioner: Preconditioner | None = None,
        tol: float = 1e-6,
        max_iters: int = 500,
        record_history: bool = True,
        overlap: bool = False,
    ) -> None:
        self.A = A
        self.M = preconditioner
        self.tol = tol
        self.max_iters = max_iters
        self.record_history = record_history
        self.overlap = overlap

    def _precond(self, r: ParVector) -> ParVector:
        return r.copy() if self.M is None else self.M.apply(r)

    # Fused-dot CG: initial ``b.norm`` + first fused (r·z, r·r) at setup,
    # then one ``p·Ap`` and one fused (r·z, r·r) per iteration — the
    # dynamic pin in tests/test_comm_avoiding.py is 2 + 2·iterations.
    @reduction_contract(setup=2, per_iteration=2)
    def solve(self, b: ParVector, x0: ParVector | None = None) -> KrylovResult:
        """Solve ``A x = b``."""
        A = self.A
        x = b.like(np.zeros(b.n)) if x0 is None else x0.copy()
        bnorm = b.norm()
        if bnorm == 0.0:
            return KrylovResult(
                x=b.like(np.zeros(b.n)),
                iterations=0,
                residual_norm=0.0,
                converged=True,
                residual_history=[0.0] if self.record_history else [],
                method="cg",
            )
        target = self.tol * bnorm

        r = A.residual(b, x)
        z = self._precond(r)
        p = z.copy()
        rz, rr = fused_dots(r.world, [(r, z), (r, r)])
        rnorm = float(np.sqrt(max(rr, 0.0)))
        history = [rnorm / bnorm] if self.record_history else []
        it = 0
        while rnorm > target and it < self.max_iters:
            Ap = A.matvec(p, overlap=self.overlap)
            pAp = p.dot(Ap)
            if not np.isfinite(pAp) or pAp <= 0.0:
                # Lost positive definiteness (semi-definite mode) or a
                # poisoned operand; NaN compares False against 0, so the
                # finiteness check must be explicit.
                break
            alpha = rz / pAp
            x.axpy(alpha, p)
            r.axpy(-alpha, Ap)
            z = self._precond(r)
            # One batched reduction for both the recurrence scalar and
            # the convergence check (2 scalars on the wire).
            rz_new, rr = fused_dots(r.world, [(r, z), (r, r)])
            beta = rz_new / rz
            p = z.copy().axpy(beta, p)
            rz = rz_new
            rnorm = float(np.sqrt(max(rr, 0.0)))
            if self.record_history:
                history.append(rnorm / bnorm)
            it += 1
        return KrylovResult(
            x=x,
            iterations=it,
            residual_norm=rnorm,
            converged=rnorm <= target,
            residual_history=history,
            method="cg",
        )
