"""Right-preconditioned GMRES with low-synchronization Gram-Schmidt.

The solver for both the momentum/scalar systems (SGS2-preconditioned) and
the pressure-Poisson system (AMG-preconditioned) in the paper.  Right
preconditioning keeps the true residual observable without extra solves,
and the Gram-Schmidt variant controls the reduction count per iteration
(:mod:`repro.krylov.gram_schmidt`).
"""

from __future__ import annotations

import numpy as np

from repro.krylov.api import KrylovResult, Preconditioner, reduction_contract
from repro.krylov.gram_schmidt import orthogonalize
from repro.linalg.parcsr import ParCSRMatrix
from repro.linalg.parvector import ParVector


class GMRES:
    """Restarted, right-preconditioned GMRES.

    Args:
        A: system operator.
        preconditioner: right preconditioner ``M^-1`` (None = identity).
        tol: relative residual tolerance ``||b - Ax|| <= tol * ||b||``.
        max_iters: total iteration cap.
        restart: Arnoldi basis size before restart.
        gs_variant: ``"mgs"``, ``"cgs2"`` or ``"one_reduce"``.
        record_history: keep per-iteration relative residual norms in
            ``KrylovResult.residual_history``.  Off leaves the history
            empty and skips the per-iteration appends (hot-path cost is
            then limited to the convergence test itself).
        overlap: run the SpMV halo exchanges split (``matvec(overlap=
            True)``): the diag block is applied while boundary data is
            in flight.  Bitwise-identical results, shorter halo waits.
    """

    def __init__(
        self,
        A: ParCSRMatrix,
        preconditioner: Preconditioner | None = None,
        tol: float = 1e-6,
        max_iters: int = 200,
        restart: int = 50,
        gs_variant: str = "one_reduce",
        record_history: bool = True,
        overlap: bool = False,
    ) -> None:
        self.A = A
        self.M = preconditioner
        self.tol = tol
        self.max_iters = max_iters
        self.restart = restart
        self.gs_variant = gs_variant
        self.record_history = record_history
        self.overlap = overlap

    def _precond(self, v: ParVector) -> ParVector:
        if self.M is None:
            return v.copy()
        return self.M.apply(v)

    # Restarted GMRES: ``b.norm`` at setup; per restart cycle the
    # entering and exiting residual norms; per inner (Arnoldi) iteration
    # one orthogonalize — whose own reduction count (j+1 / 3 / 1 by
    # variant) is gram_schmidt's contract, priced here at the one-reduce
    # budget the solver is configured for.
    @reduction_contract(
        setup=1, per_iteration=1, per_restart=2, assume={"orthogonalize": 1}
    )
    def solve(self, b: ParVector, x0: ParVector | None = None) -> KrylovResult:
        """Solve ``A x = b``.

        Returns:
            :class:`~repro.krylov.api.KrylovResult` with the solution and
            convergence record.
        """
        A = self.A
        world = A.world
        n = b.n
        x = b.like(np.zeros(n)) if x0 is None else x0.copy()

        bnorm = b.norm()
        if bnorm == 0.0:
            return KrylovResult(
                x=b.like(np.zeros(n)),
                iterations=0,
                residual_norm=0.0,
                converged=True,
                residual_history=[0.0] if self.record_history else [],
                method="gmres",
            )
        target = self.tol * bnorm

        history: list[float] = []
        total_iters = 0
        while True:
            r = A.residual(b, x, overlap=self.overlap)
            beta = r.norm()
            if self.record_history:
                history.append(beta / bnorm)
            # A non-finite residual cannot improve from here (every inner
            # product downstream is poisoned); return it for the guards
            # to classify instead of spinning NaN arithmetic to max_iters.
            if (
                beta <= target
                or total_iters >= self.max_iters
                or not np.isfinite(beta)
            ):
                return KrylovResult(
                    x=x,
                    iterations=total_iters,
                    residual_norm=beta,
                    converged=beta <= target,
                    residual_history=history,
                    method="gmres",
                )

            m = min(self.restart, self.max_iters - total_iters)
            # Krylov basis + preconditioned directions are device-resident
            # for the duration of the cycle: 2(m+1) vectors per rank (part
            # of the footprint behind the paper's device-memory cliffs at
            # few ranks).  Freed when the cycle's update completes.
            basis_per_rank = 2.0 * (m + 1) * 8.0 * n / world.size
            for rr in range(world.size):
                world.ops.record_alloc(rr, basis_per_rank)
            V = np.zeros((n, m + 1))
            Z: list[np.ndarray] = []
            H = np.zeros((m + 1, m))
            V[:, 0] = r.data / beta
            g = np.zeros(m + 1)
            g[0] = beta
            cs = np.zeros(m)
            sn = np.zeros(m)

            k = 0
            breakdown = False
            for j in range(m):
                z = self._precond(b.like(V[:, j].copy()))
                Z.append(z.data.copy())
                w = A.matvec(z, overlap=self.overlap)
                h, hj1 = orthogonalize(
                    world, V[:, : j + 1], w.data, self.gs_variant
                )
                H[: j + 1, j] = h
                H[j + 1, j] = hj1
                if hj1 > 1e-300:
                    V[:, j + 1] = w.data / hj1
                # Givens rotations on the new column.
                for i in range(j):
                    t = cs[i] * H[i, j] + sn[i] * H[i + 1, j]
                    H[i + 1, j] = -sn[i] * H[i, j] + cs[i] * H[i + 1, j]
                    H[i, j] = t
                denom = np.hypot(H[j, j], H[j + 1, j])
                if denom == 0.0 or not np.isfinite(denom):
                    # Givens breakdown: the rotated column is zero (or
                    # poisoned), so H[j, j] stays 0 and including column j
                    # would divide by zero in the back-substitution below.
                    # Discard the degenerate column (k = j, not j + 1) and
                    # leave the cycle.
                    k = j
                    breakdown = True
                    break
                cs[j] = H[j, j] / denom
                sn[j] = H[j + 1, j] / denom
                H[j, j] = denom
                H[j + 1, j] = 0.0
                g[j + 1] = -sn[j] * g[j]
                g[j] = cs[j] * g[j]
                total_iters += 1
                k = j + 1
                if self.record_history:
                    history.append(abs(g[j + 1]) / bnorm)
                if abs(g[j + 1]) <= target:
                    break
                if hj1 <= 1e-300:
                    break

            # Solve the small triangular system and update x.
            if k > 0:
                y = np.zeros(k)
                for i in range(k - 1, -1, -1):
                    y[i] = (g[i] - H[i, i + 1 : k] @ y[i + 1 : k]) / H[i, i]
                dx = np.zeros(n)
                for i in range(k):
                    dx += y[i] * Z[i]
                x.data += dx
                # Record the solution-update GEMV.
                per_rank = n / world.size
                for rr in range(world.size):
                    world.ops.record(
                        world.phase,
                        rr,
                        "gmres_update",
                        flops=2.0 * k * per_rank,
                        nbytes=8.0 * (k + 2) * per_rank,
                    )
            for rr in range(world.size):
                world.ops.record_alloc(rr, -basis_per_rank)
            # On breakdown the restarted cycle would rebuild the identical
            # degenerate Krylov space (the update above already used every
            # healthy column), so return the true residual instead of
            # looping forever.
            if breakdown or total_iters >= self.max_iters:
                r = A.residual(b, x)
                beta = r.norm()
                if self.record_history:
                    history.append(beta / bnorm)
                return KrylovResult(
                    x=x,
                    iterations=total_iters,
                    residual_norm=beta,
                    converged=beta <= target,
                    residual_history=history,
                    method="gmres",
                )
