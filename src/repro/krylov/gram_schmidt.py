"""Gram-Schmidt orthogonalization kernels with reduction accounting.

The Nalu-Wind time integrator "employs the one-reduce GMRES linear solver"
(paper §4.2, ref [39] Swirydowicz/Langou/Ananthan/Yang/Thomas): at scale,
the global ``MPI_Allreduce`` per dot product dominates the Arnoldi step, so
low-synchronization variants batch all inner products of an iteration into
one reduction.  Three kernels are provided:

* ``mgs`` — classical modified Gram-Schmidt: ``j + 1`` sequential
  reductions at Arnoldi step ``j`` (baseline);
* ``cgs2`` — reorthogonalized classical GS: 3 batched reductions;
* ``one_reduce`` — CGS2 with the normalization lagged and fused into the
  projection reduction: exactly 1 reduction per iteration.

Numerically ``cgs2`` and ``one_reduce`` produce the same Krylov basis up to
rounding (both are CGS2-class); they differ in the *communication schedule*,
which is what the recorder captures.
"""

from __future__ import annotations

import numpy as np

from repro.comm.simcomm import SimWorld

VARIANTS = ("mgs", "cgs2", "one_reduce")


def batched_dots(
    world: SimWorld, V: np.ndarray, w: np.ndarray, count_as: int = 1
) -> np.ndarray:
    """All inner products ``V[:, :k]^T w`` with ``count_as`` reductions.

    ``V`` holds basis vectors in columns.  The per-rank partial GEMV work is
    recorded, then a single (or ``count_as``) fused allreduce of the ``k``
    partials — the communication pattern the low-sync variants exist for.
    """
    k = V.shape[1]
    out = V.T @ w
    # Per-rank compute share: the simulator holds vectors globally; charge
    # each rank its row-block share of the multi-dot.
    n = w.size
    per_rank = n / world.size
    for r in range(world.size):
        world.ops.record(
            world.phase,
            r,
            "multidot",
            flops=2.0 * k * per_rank,
            nbytes=8.0 * (k + 1) * per_rank,
        )
    for _ in range(count_as):
        world.traffic.record_collective(
            "allreduce", world.size, 8 * k, world.phase
        )
    return out


def _record_axpy_block(world: SimWorld, n: int, k: int, kernel: str) -> None:
    per_rank = n / world.size
    for r in range(world.size):
        world.ops.record(
            world.phase,
            r,
            kernel,
            flops=2.0 * k * per_rank,
            nbytes=8.0 * (k + 2) * per_rank,
        )


def orthogonalize(
    world: SimWorld,
    V: np.ndarray,
    w: np.ndarray,
    variant: str = "one_reduce",
) -> tuple[np.ndarray, float]:
    """Orthogonalize ``w`` against the columns of ``V`` in place.

    Args:
        world: for reduction accounting.
        V: ``(n, j)`` orthonormal basis.
        w: vector to orthogonalize (modified in place).
        variant: one of :data:`VARIANTS`.

    Returns:
        ``(h, beta)``: projection coefficients ``(j,)`` and the norm of the
        orthogonalized vector.
    """
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; options {VARIANTS}")
    n, j = V.shape
    if j == 0:
        beta = float(np.linalg.norm(w))
        world.traffic.record_collective("allreduce", world.size, 8, world.phase)
        return np.zeros(0), beta

    if variant == "mgs":
        h = np.zeros(j)
        for i in range(j):
            hi = batched_dots(world, V[:, i : i + 1], w)[0]
            w -= hi * V[:, i]
            _record_axpy_block(world, n, 1, "mgs_axpy")
            h[i] = hi
        beta = float(np.linalg.norm(w))
        world.traffic.record_collective("allreduce", world.size, 8, world.phase)
        return h, beta

    if variant == "cgs2":
        h1 = batched_dots(world, V, w, count_as=1)
        w -= V @ h1
        _record_axpy_block(world, n, j, "cgs_update")
        h2 = batched_dots(world, V, w, count_as=1)
        w -= V @ h2
        _record_axpy_block(world, n, j, "cgs_update")
        beta = float(np.linalg.norm(w))
        world.traffic.record_collective("allreduce", world.size, 8, world.phase)
        return h1 + h2, beta
    # one_reduce: delayed reorthogonalization fuses the first projection,
    # the correction dots, and the norm estimate into a single reduction
    # per Arnoldi step (Swirydowicz et al. [39]).  The arithmetic below is
    # the same reorthogonalized CGS2 projection; exactly one reduction of
    # 2j+1 scalars is charged.
    h1 = batched_dots(world, V, w, count_as=0)
    w -= V @ h1
    _record_axpy_block(world, n, j, "cgs_update")
    # The correction GEMV and the fused norm partial are real kernel
    # work: record them exactly like ``batched_dots`` does, or their
    # flops/bytes silently vanish from the roofline and timeline while
    # the fused reduction below still charges their communication.
    h2 = batched_dots(world, V, w, count_as=0)
    nrm2 = float(w @ w)
    per_rank = n / world.size
    for r in range(world.size):
        world.ops.record(
            world.phase,
            r,
            "multidot",
            flops=2.0 * per_rank,
            nbytes=8.0 * 2 * per_rank,
        )
    world.traffic.record_collective(
        "allreduce", world.size, 8 * (2 * j + 1), world.phase
    )
    w -= V @ h2
    _record_axpy_block(world, n, j, "cgs_update")
    # Norm of the reorthogonalized vector via the Pythagorean update
    # (Swirydowicz et al.): ||w_new||^2 = ||w||^2 - ||h2||^2, guarded for
    # cancellation.
    est = nrm2 - float(h2 @ h2)
    if est <= 1e-10 * max(nrm2, 1e-300):
        beta = float(np.linalg.norm(w))
        world.traffic.record_collective("allreduce", world.size, 8, world.phase)
    else:
        beta = float(np.sqrt(est))
    return h1 + h2, beta
