"""Pipelined preconditioned conjugate gradients (Ghysels–Vanroose).

The communication-avoiding CG variant of Ghysels & Vanroose (*Hiding
global synchronization latency in the preconditioned Conjugate Gradient
algorithm*, Parallel Computing 40, 2014), the pressure-Poisson analogue
of the one-reduce GMRES: where classical PCG pays two synchronizations
per iteration (``p.Ap``, then ``r.z`` + the norm check), the pipelined
recurrence rearranges the algorithm so **all three scalars of an
iteration — γ = (r, u), δ = (w, u), and ‖r‖² — travel in a single
batched allreduce**, and that one reduction is posted *before* the
iteration's preconditioner application and SpMV, so on a real machine
it hides behind them (MPI_Iallreduce; the simulator charges the fused
collective once per iteration).

Per-iteration recurrence (u = M⁻¹r, w = Au maintained alongside r):

.. code-block:: text

    γ_i = (r_i, u_i);  δ_i = (w_i, u_i);  ‖r_i‖²      [one allreduce]
    m_i = M⁻¹ w_i;  n_i = A m_i                        [overlaps it]
    β_i = γ_i / γ_{i-1}              (0 at i = 0)
    α_i = γ_i / (δ_i - β_i γ_i / α_{i-1})   (γ_0/δ_0 at i = 0)
    z ← n + β z;  q ← m + β q;  s ← w + β s;  p ← u + β p
    x ← x + α p;  r ← r - α s;  u ← u - α q;  w ← w - α z

The residual used for convergence is the recurrence residual (its norm
rides the fused reduction); like all pipelined methods it can drift
from the true residual in late iterations, which is why the contract is
"converges to the same tolerance as CG", not bitwise iterate equality.
"""

from __future__ import annotations

import numpy as np

from repro.krylov.api import KrylovResult, Preconditioner, reduction_contract
from repro.linalg.parcsr import ParCSRMatrix
from repro.linalg.parvector import ParVector, fused_dots


class PipelinedCG:
    """Ghysels–Vanroose pipelined PCG: one allreduce per iteration.

    Args:
        A: SPD operator.
        preconditioner: SPD preconditioner action (None = identity).
        tol: relative residual tolerance.
        max_iters: iteration cap.
        record_history: keep per-iteration relative residual norms.
        overlap: run the SpMV halo exchanges split
            (``matvec(overlap=True)``) so interior compute also hides
            the point-to-point waits — the full communication-avoiding
            configuration.
    """

    def __init__(
        self,
        A: ParCSRMatrix,
        preconditioner: Preconditioner | None = None,
        tol: float = 1e-6,
        max_iters: int = 500,
        record_history: bool = True,
        overlap: bool = False,
    ) -> None:
        self.A = A
        self.M = preconditioner
        self.tol = tol
        self.max_iters = max_iters
        self.record_history = record_history
        self.overlap = overlap

    def _precond(self, r: ParVector) -> ParVector:
        return r.copy() if self.M is None else self.M.apply(r)

    # One fused reduction per iteration is the whole point of the
    # pipelined variant: ``b.norm`` at setup, a single fused
    # (r·z, w·z, r·r) per loop pass — dynamically 2 + iterations because
    # the loop body runs iterations + 1 times.
    @reduction_contract(setup=1, per_iteration=1)
    def solve(self, b: ParVector, x0: ParVector | None = None) -> KrylovResult:
        """Solve ``A x = b``."""
        A = self.A
        world = b.world
        x = b.like(np.zeros(b.n)) if x0 is None else x0.copy()
        bnorm = b.norm()
        if bnorm == 0.0:
            return KrylovResult(
                x=b.like(np.zeros(b.n)),
                iterations=0,
                residual_norm=0.0,
                converged=True,
                residual_history=[0.0] if self.record_history else [],
                method="pipelined_cg",
            )
        target = self.tol * bnorm

        r = A.residual(b, x, overlap=self.overlap)
        u = self._precond(r)
        w = A.matvec(u, overlap=self.overlap)
        z = q = s = p = None
        gamma_old = alpha_old = 0.0
        rnorm = float("inf")
        history: list[float] = []
        it = 0
        while it < self.max_iters:
            # The single synchronization of the iteration: γ, δ, and the
            # convergence norm fused into one 3-scalar allreduce, posted
            # here and (on the modeled machine) hidden behind the
            # preconditioner + SpMV below.
            gamma, delta, rr = fused_dots(world, [(r, u), (w, u), (r, r)])
            rnorm = float(np.sqrt(max(rr, 0.0)))
            if self.record_history:
                history.append(rnorm / bnorm)
            if not np.isfinite(rnorm) or rnorm <= target:
                break
            # Overlapped leg: m = M⁻¹w and n = Am proceed while the
            # reduction is in flight.
            m = self._precond(w)
            n = A.matvec(m, overlap=self.overlap)
            if it == 0:
                beta = 0.0
                denom = delta
            else:
                beta = gamma / gamma_old
                denom = delta - beta * gamma / alpha_old
            if not np.isfinite(denom) or denom <= 0.0:
                # Lost positive definiteness or a poisoned operand —
                # same guard as classical CG's p.Ap check (for SPD A and
                # M the denominator equals p.Ap in exact arithmetic).
                break
            alpha = gamma / denom
            if z is None:
                z, q, s, p = n, m, w.copy(), u.copy()
            else:
                z = n.axpy(beta, z)
                q = m.axpy(beta, q)
                s = w.copy().axpy(beta, s)
                p = u.copy().axpy(beta, p)
            x.axpy(alpha, p)
            r.axpy(-alpha, s)
            u.axpy(-alpha, q)
            w.axpy(-alpha, z)
            gamma_old, alpha_old = gamma, alpha
            it += 1
        return KrylovResult(
            x=x,
            iterations=it,
            residual_norm=rnorm,
            converged=bool(np.isfinite(rnorm) and rnorm <= target),
            residual_history=history,
            method="pipelined_cg",
        )
