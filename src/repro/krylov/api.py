"""Unified Krylov-solver API: result type, protocols, factory.

The solver-facing API redesign: every Krylov method returns the same
:class:`KrylovResult`, satisfies the :class:`KrylovSolver` protocol, and is
constructed through :func:`make_krylov_solver` from a
:class:`~repro.core.config.SolverConfig`-like object (duck-typed, so the
linear-algebra layer stays independent of the config layer).  Equation
systems dispatch on ``cfg.method`` instead of hardwiring GMRES, which is
how Nalu-Wind switches the continuity solve between hypre's PCG and the
one-reduce GMRES.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.linalg.parcsr import ParCSRMatrix
from repro.linalg.parvector import ParVector

#: Supported ``cfg.method`` values.
KRYLOV_METHODS = ("gmres", "cg", "pipelined_cg")


def reduction_contract(
    *,
    setup: int,
    per_iteration: int,
    per_restart: int | None = None,
    assume: dict[str, int] | None = None,
):
    """Declare a kernel's distributed-reduction budget per region.

    The comm-avoiding literature treats the allreduce count per Krylov
    iteration as the algorithm's *contract* — it is what Fig. 8/9-style
    scaling regimes are computed from, and PR 8's hidden third CG
    reduction showed the implementation can silently drift from it.
    This decorator pins the contract on the source:

    * ``setup`` — fused reductions outside any loop (initial norms,
      first-step dot products);
    * ``per_iteration`` — reductions in the innermost iteration loop;
    * ``per_restart`` — for nested-loop methods (restarted GMRES),
      reductions at the intermediate loop level; ``None`` declares
      there are none;
    * ``assume`` — prices for helper calls whose reductions are their
      own contract (e.g. ``{"orthogonalize": 1}`` under the one-reduce
      orthogonalizer).

    The declaration is verified two ways: statically by the RL009 rule
    in :mod:`repro.analysis.protocol` (counts reachable reduction call
    sites per loop region against the declared numbers) and dynamically
    by the collective-count pins in ``tests/test_comm_avoiding.py``.
    The function is returned unwrapped — the contract is metadata on
    ``__reduction_contract__``, never a runtime cost.
    """

    def attach(fn):
        fn.__reduction_contract__ = {
            "setup": setup,
            "per_iteration": per_iteration,
            "per_restart": per_restart,
            "assume": dict(assume or {}),
        }
        return fn

    return attach


@runtime_checkable
class Preconditioner(Protocol):
    """Anything with an ``apply(r) -> z`` action."""

    def apply(self, r: ParVector) -> ParVector: ...


@dataclass
class KrylovResult:
    """Outcome of one Krylov solve (any method).

    ``method`` names the algorithm that produced the result ("gmres",
    "cg", "pipelined_cg"); the remaining fields are method-independent.
    """

    x: ParVector
    iterations: int
    residual_norm: float
    converged: bool
    residual_history: list[float] = field(default_factory=list)
    method: str = ""


@runtime_checkable
class KrylovSolver(Protocol):
    """The uniform solver surface the factory guarantees."""

    def solve(
        self, b: ParVector, x0: ParVector | None = None
    ) -> KrylovResult: ...


def make_krylov_solver(
    A: ParCSRMatrix,
    precond: Preconditioner | None = None,
    cfg: object | None = None,
) -> KrylovSolver:
    """Build the configured Krylov solver for ``A``.

    Args:
        A: system operator.
        precond: preconditioner action (None = identity).
        cfg: any object carrying solver settings — typically a
            :class:`~repro.core.config.SolverConfig`.  Recognized
            attributes (all optional): ``method`` ("gmres" | "cg" |
            "pipelined_cg"), ``tol``, ``max_iters``, ``overlap``
            (split halo exchange in solver SpMVs), ``restart``,
            ``gs_variant``, ``record_history``.  Missing attributes
            fall back to the method's defaults.

    Returns:
        A :class:`KrylovSolver` whose ``solve`` returns
        :class:`KrylovResult`.
    """
    method = getattr(cfg, "method", "gmres")
    tol = getattr(cfg, "tol", 1e-6)
    max_iters = getattr(cfg, "max_iters", 200)
    record_history = getattr(cfg, "record_history", True)
    overlap = getattr(cfg, "overlap", False)
    if method == "gmres":
        from repro.krylov.gmres import GMRES

        return GMRES(
            A,
            preconditioner=precond,
            tol=tol,
            max_iters=max_iters,
            restart=getattr(cfg, "restart", 50),
            gs_variant=getattr(cfg, "gs_variant", "one_reduce"),
            record_history=record_history,
            overlap=overlap,
        )
    if method == "cg":
        from repro.krylov.cg import CG

        return CG(
            A,
            preconditioner=precond,
            tol=tol,
            max_iters=max_iters,
            record_history=record_history,
            overlap=overlap,
        )
    if method == "pipelined_cg":
        from repro.krylov.pipelined_cg import PipelinedCG

        return PipelinedCG(
            A,
            preconditioner=precond,
            tol=tol,
            max_iters=max_iters,
            record_history=record_history,
            overlap=overlap,
        )
    raise ValueError(
        f"unknown Krylov method {method!r}; options {list(KRYLOV_METHODS)}"
    )
