"""Krylov solvers: right-preconditioned GMRES, CG, low-sync Gram-Schmidt.

The unified entry point is :func:`make_krylov_solver`; every solver
returns a :class:`KrylovResult`.  ``GMRESResult``/``CGResult`` remain as
deprecated aliases of :class:`KrylovResult`.
"""

import warnings

from repro.krylov.api import (
    KRYLOV_METHODS,
    KrylovResult,
    KrylovSolver,
    Preconditioner,
    make_krylov_solver,
)
from repro.krylov.cg import CG
from repro.krylov.gmres import GMRES
from repro.krylov.gram_schmidt import VARIANTS as GS_VARIANTS
from repro.krylov.gram_schmidt import batched_dots, orthogonalize

__all__ = [
    "CG",
    "CGResult",
    "GMRES",
    "GMRESResult",
    "GS_VARIANTS",
    "KRYLOV_METHODS",
    "KrylovResult",
    "KrylovSolver",
    "Preconditioner",
    "batched_dots",
    "make_krylov_solver",
    "orthogonalize",
]

_DEPRECATED_RESULTS = {"GMRESResult", "CGResult"}


def __getattr__(name: str):
    if name in _DEPRECATED_RESULTS:
        warnings.warn(
            f"{name} is deprecated; use repro.krylov.KrylovResult",
            DeprecationWarning,
            stacklevel=2,
        )
        return KrylovResult
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
