"""Krylov solvers: right-preconditioned GMRES, CG, pipelined CG,
low-sync Gram-Schmidt.

The unified entry point is :func:`make_krylov_solver`; every solver
returns a :class:`KrylovResult`.  (The PR 2-era ``GMRESResult`` /
``CGResult`` aliases have been removed.)
"""

from repro.krylov.api import (
    KRYLOV_METHODS,
    KrylovResult,
    KrylovSolver,
    Preconditioner,
    make_krylov_solver,
)
from repro.krylov.cg import CG
from repro.krylov.gmres import GMRES
from repro.krylov.gram_schmidt import VARIANTS as GS_VARIANTS
from repro.krylov.gram_schmidt import batched_dots, orthogonalize
from repro.krylov.pipelined_cg import PipelinedCG

__all__ = [
    "CG",
    "GMRES",
    "GS_VARIANTS",
    "KRYLOV_METHODS",
    "KrylovResult",
    "KrylovSolver",
    "PipelinedCG",
    "Preconditioner",
    "batched_dots",
    "make_krylov_solver",
    "orthogonalize",
]
