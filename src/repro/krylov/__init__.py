"""Krylov solvers: right-preconditioned GMRES, low-sync Gram-Schmidt."""

from repro.krylov.cg import CG, CGResult
from repro.krylov.gmres import GMRES, GMRESResult, Preconditioner
from repro.krylov.gram_schmidt import VARIANTS as GS_VARIANTS
from repro.krylov.gram_schmidt import batched_dots, orthogonalize

__all__ = [
    "CG",
    "CGResult",
    "GMRES",
    "GMRESResult",
    "GS_VARIANTS",
    "Preconditioner",
    "batched_dots",
    "orthogonalize",
]
