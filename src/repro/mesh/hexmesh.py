"""Unstructured hex mesh with edge-based finite-volume metrics.

Nalu-Wind's low-Mach discretization used for wind-turbine runs is the
edge-based scheme: control volumes are nodal duals, and fluxes live on the
element edges, giving the ~7-9 nonzeros per matrix row the paper reports
("we have on average eight entries per row", §5.3).  :class:`HexMesh` stores
exactly what that scheme needs:

* node coordinates and dual volumes,
* element connectivity (for visualization/donor search),
* edges with their dual-face area, length, and unit direction,
* named boundary node sets.

Metrics are computed from the generating block mapping (tangent vectors via
central differences), so body-fitted stretched blade meshes get the true
anisotropic coefficients that make the pressure-Poisson systems as badly
conditioned as the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.mesh.topology import (
    BlockTopology,
    boundary_node_sets,
    build_block_topology,
)


def _tangents(X: np.ndarray, axis: int, periodic: bool) -> np.ndarray:
    """dX/dindex along a lattice axis (central, one-sided at open ends)."""
    if periodic:
        return (np.roll(X, -1, axis=axis) - np.roll(X, 1, axis=axis)) / 2.0
    return np.gradient(X, axis=axis)


@dataclass
class MeshStats:
    """Quality/size summary used for the Table 1 reproduction."""

    n_nodes: int
    n_cells: int
    n_edges: int
    max_aspect_ratio: float
    volume_ratio: float

    def as_row(self) -> dict:
        """Row dict for report tables."""
        return {
            "nodes": self.n_nodes,
            "cells": self.n_cells,
            "edges": self.n_edges,
            "max_AR": round(self.max_aspect_ratio, 1),
            "vol_ratio": f"{self.volume_ratio:.1e}",
        }


class HexMesh:
    """One component mesh (background block or body-fitted blade block)."""

    def __init__(
        self,
        name: str,
        coords: np.ndarray,
        topology: BlockTopology,
        boundaries: dict[str, np.ndarray],
    ) -> None:
        self.name = name
        self.coords = np.ascontiguousarray(coords, dtype=np.float64)
        self.topology = topology
        self.cells = topology.cells
        self.edges = topology.edges
        self.edge_axis = topology.edge_axis
        self.boundaries = boundaries
        self.n_nodes = self.coords.shape[0]
        self._graph: sparse.csr_matrix | None = None
        self.edge_area = np.zeros(self.edges.shape[0])
        self.edge_length = np.zeros(self.edges.shape[0])
        self.edge_dir = np.zeros((self.edges.shape[0], 3))
        self.node_volume = np.zeros(self.n_nodes)
        self.update_metrics()

    # -- construction --------------------------------------------------------

    @classmethod
    def from_block(
        cls,
        name: str,
        X: np.ndarray,
        periodic: tuple[bool, bool, bool] = (False, False, False),
    ) -> "HexMesh":
        """Build from a structured coordinate lattice ``X[nx, ny, nz, 3]``."""
        if X.ndim != 4 or X.shape[3] != 3:
            raise ValueError(f"expected (nx, ny, nz, 3) lattice, got {X.shape}")
        shape = X.shape[:3]
        topo = build_block_topology(shape, periodic)
        bnds = boundary_node_sets(shape, periodic)
        return cls(name, X.reshape(-1, 3), topo, bnds)

    # -- metrics ------------------------------------------------------------

    def update_metrics(self) -> None:
        """(Re)compute edge areas/lengths/directions and dual volumes.

        Called at construction and after mesh motion.  For rigid motion the
        scalar metrics are invariant; only directions change, but a full
        recompute keeps the code path identical to general motion.
        """
        shape = self.topology.shape
        periodic = self.topology.periodic
        X = self.coords.reshape(*shape, 3)

        t = [_tangents(X, a, periodic[a]) for a in range(3)]

        # Dual volumes: |det(t0, t1, t2)| per node, halved at each open
        # boundary the node sits on (the dual cell only extends inward).
        T = np.stack(t, axis=-1)  # (nx, ny, nz, 3, 3)
        vol = np.abs(np.linalg.det(T))
        for axis in range(3):
            if periodic[axis]:
                continue
            sl_lo = [slice(None)] * 3
            sl_hi = [slice(None)] * 3
            sl_lo[axis] = 0
            sl_hi[axis] = shape[axis] - 1
            vol[tuple(sl_lo)] *= 0.5
            vol[tuple(sl_hi)] *= 0.5
        self.node_volume = vol.reshape(-1)

        # Per-axis boundary halving factors: a dual face only extends half
        # a spacing inward from an open boundary (the same convention the
        # volumes use), so edge areas shrink at *transverse* open sides and
        # match the boundary-face closure exactly at rims.
        factors = []
        for axis in range(3):
            f = np.ones(shape[axis])
            if not periodic[axis]:
                f[0] = 0.5
                f[-1] = 0.5
            sl = [None, None, None]
            sl[axis] = slice(None)
            factors.append(f[tuple(sl)])

        # Edge metrics per logical axis: area of the transverse dual face at
        # the edge midpoint = |t_b x t_c| averaged over the two endpoints.
        areas = []
        lengths = []
        dirs = []
        for axis in range(3):
            b, c = [a for a in range(3) if a != axis]
            cross = np.cross(t[b], t[c])
            cross_mag = (
                np.linalg.norm(cross, axis=-1) * factors[b] * factors[c]
            )
            if periodic[axis]:
                e_vec = (np.roll(X, -1, axis=axis) - X).reshape(-1, 3)
                a_mid = (
                    (cross_mag + np.roll(cross_mag, -1, axis=axis)) / 2.0
                ).reshape(-1)
            else:
                sl = [slice(None)] * 3
                sl[axis] = slice(0, shape[axis] - 1)
                slp = [slice(None)] * 3
                slp[axis] = slice(1, shape[axis])
                e_vec = (X[tuple(slp)] - X[tuple(sl)]).reshape(-1, 3)
                a_mid = (
                    (cross_mag[tuple(sl)] + cross_mag[tuple(slp)]) / 2.0
                ).reshape(-1)
            e_len = np.linalg.norm(e_vec, axis=1)
            if np.any(e_len <= 0):
                raise ValueError(f"mesh {self.name}: degenerate edge found")
            areas.append(a_mid)
            lengths.append(e_len)
            dirs.append(e_vec / e_len[:, None])
        self.edge_area = np.concatenate(areas)
        self.edge_length = np.concatenate(lengths)
        self.edge_dir = np.concatenate(dirs, axis=0)

    # -- derived structure ----------------------------------------------------

    def node_graph(self) -> sparse.csr_matrix:
        """Symmetric node adjacency (pattern of the edge-based operator)."""
        if self._graph is None:
            e = self.edges
            ones = np.ones(e.shape[0])
            g = sparse.coo_matrix(
                (
                    np.concatenate([ones, ones]),
                    (
                        np.concatenate([e[:, 0], e[:, 1]]),
                        np.concatenate([e[:, 1], e[:, 0]]),
                    ),
                ),
                shape=(self.n_nodes, self.n_nodes),
            )
            self._graph = g.tocsr()
        return self._graph

    def boundary_nodes(self, *names: str) -> np.ndarray:
        """Union of the named boundary node sets (sorted unique)."""
        missing = [n for n in names if n not in self.boundaries]
        if missing:
            raise KeyError(
                f"mesh {self.name}: no boundary {missing}; "
                f"have {sorted(self.boundaries)}"
            )
        if not names:
            return np.array([], dtype=np.int64)
        return np.unique(np.concatenate([self.boundaries[n] for n in names]))

    def all_boundary_nodes(self) -> np.ndarray:
        """All nodes on any open boundary side."""
        return self.boundary_nodes(*self.boundaries.keys())

    def stats(self) -> MeshStats:
        """Size and quality summary (Table 1 analogue)."""
        # Aspect ratio per node: max/min incident edge length.
        n = self.n_nodes
        e = self.edges
        big = np.full(n, -np.inf)
        small = np.full(n, np.inf)
        for col in (0, 1):
            np.maximum.at(big, e[:, col], self.edge_length)
            np.minimum.at(small, e[:, col], self.edge_length)
        ar = big / small
        vol = self.node_volume
        return MeshStats(
            n_nodes=self.n_nodes,
            n_cells=self.cells.shape[0],
            n_edges=self.edges.shape[0],
            max_aspect_ratio=float(np.max(ar)),
            volume_ratio=float(np.max(vol) / np.min(vol)),
        )

    def boundary_face_vectors(
        self, axis: int, hi: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        """Outward dual-face area vectors on one open block side.

        The edge-based scheme closes each interior dual surface with element
        edges, but dual cells on open boundaries also have a boundary face;
        inflow/outflow mass and momentum fluxes live there.

        Args:
            axis: logical block axis (0/1/2) of the side.
            hi: False for the low side, True for the high side.

        Returns:
            ``(node_ids, vectors)``: boundary node ids and their outward
            area vectors (halved at rims shared with other open sides, the
            same convention as the dual volumes).
        """
        shape = self.topology.shape
        periodic = self.topology.periodic
        if periodic[axis]:
            raise ValueError(f"axis {axis} is periodic: no boundary side")
        X = self.coords.reshape(*shape, 3)
        t = [_tangents(X, a, periodic[a]) for a in range(3)]
        b, c = [a for a in range(3) if a != axis]
        cross = np.cross(t[b], t[c])
        sl = [slice(None)] * 3
        sl[axis] = shape[axis] - 1 if hi else 0
        face = cross[tuple(sl)]
        t_axis = t[axis][tuple(sl)]
        # Orient outward: along -t_axis on the low side, +t_axis on high.
        sign = np.sign(np.einsum("...d,...d->...", face, t_axis))
        sign = np.where(sign == 0, 1.0, sign)
        if not hi:
            sign = -sign
        face = face * sign[..., None]
        # Halve at rims shared with other open boundaries.
        for a_t in (b, c):
            if periodic[a_t]:
                continue
            pos = a_t if a_t < axis else a_t - 1
            rim_lo = [slice(None)] * 2
            rim_hi = [slice(None)] * 2
            rim_lo[pos] = 0
            rim_hi[pos] = shape[a_t] - 1
            face[tuple(rim_lo)] *= 0.5
            face[tuple(rim_hi)] *= 0.5
        from repro.mesh.topology import node_ids

        ids = node_ids(shape)[tuple(sl)].ravel()
        return ids, face.reshape(-1, 3)

    def cell_centroids(self) -> np.ndarray:
        """Mean of each cell's corner coordinates."""
        return self.coords[self.cells].mean(axis=1)

    def bounding_box(self) -> tuple[np.ndarray, np.ndarray]:
        """Axis-aligned ``(lo, hi)`` corners."""
        return self.coords.min(axis=0), self.coords.max(axis=0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HexMesh({self.name!r}, nodes={self.n_nodes}, "
            f"cells={self.cells.shape[0]}, edges={self.edges.shape[0]})"
        )
