"""Legacy-VTK export of meshes and nodal fields.

Writes ASCII legacy ``.vtk`` unstructured-grid files (hexahedral cells) so
the overset meshes and computed flow fields (velocity, pressure, Q-criterion
— the paper's Fig. 2 ingredients) can be inspected in ParaView/VisIt.  No
third-party dependencies; plain text output.
"""

from __future__ import annotations

import os

import numpy as np

from repro.mesh.hexmesh import HexMesh

#: VTK cell type id for linear hexahedra.
VTK_HEXAHEDRON = 12


def _write_points(fh, coords: np.ndarray) -> None:
    fh.write(f"POINTS {coords.shape[0]} double\n")
    np.savetxt(fh, coords, fmt="%.10g")


def _write_cells(fh, cells: np.ndarray) -> None:
    n = cells.shape[0]
    fh.write(f"CELLS {n} {n * 9}\n")
    table = np.column_stack([np.full(n, 8, dtype=np.int64), cells])
    np.savetxt(fh, table, fmt="%d")
    fh.write(f"CELL_TYPES {n}\n")
    np.savetxt(fh, np.full(n, VTK_HEXAHEDRON, dtype=np.int64), fmt="%d")


def _write_fields(fh, n_points: int, fields: dict[str, np.ndarray]) -> None:
    if not fields:
        return
    fh.write(f"POINT_DATA {n_points}\n")
    for name, data in fields.items():
        data = np.asarray(data, dtype=np.float64)
        if data.ndim == 1:
            if data.shape != (n_points,):
                raise ValueError(f"field {name!r}: wrong length")
            fh.write(f"SCALARS {name} double 1\nLOOKUP_TABLE default\n")
            np.savetxt(fh, data, fmt="%.10g")
        elif data.ndim == 2 and data.shape == (n_points, 3):
            fh.write(f"VECTORS {name} double\n")
            np.savetxt(fh, data, fmt="%.10g")
        else:
            raise ValueError(
                f"field {name!r}: expected ({n_points},) or "
                f"({n_points}, 3), got {data.shape}"
            )


def write_vtk(
    path: str,
    coords: np.ndarray,
    cells: np.ndarray,
    fields: dict[str, np.ndarray] | None = None,
    title: str = "repro",
) -> str:
    """Write one unstructured hex grid with nodal fields.

    Args:
        path: output file (``.vtk`` appended if missing).
        coords: ``(n, 3)`` node coordinates.
        cells: ``(c, 8)`` hex connectivity.
        fields: nodal scalar ``(n,)`` / vector ``(n, 3)`` arrays by name.

    Returns:
        The written path.
    """
    if not path.endswith(".vtk"):
        path = path + ".vtk"
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w") as fh:
        fh.write("# vtk DataFile Version 3.0\n")
        fh.write(f"{title}\n")
        fh.write("ASCII\nDATASET UNSTRUCTURED_GRID\n")
        _write_points(fh, np.asarray(coords, dtype=np.float64))
        _write_cells(fh, np.asarray(cells, dtype=np.int64))
        _write_fields(fh, coords.shape[0], fields or {})
    return path


def write_mesh_vtk(
    path: str, mesh: HexMesh, fields: dict[str, np.ndarray] | None = None
) -> str:
    """Write one component mesh (with optional nodal fields)."""
    return write_vtk(path, mesh.coords, mesh.cells, fields, title=mesh.name)


def write_composite_vtk(
    prefix: str,
    comp,
    fields: dict[str, np.ndarray] | None = None,
) -> list[str]:
    """Write every component mesh of a composite, slicing composite fields.

    Args:
        prefix: output prefix; files are ``<prefix>_<meshname>.vtk``.
        comp: a :class:`~repro.core.composite.CompositeMesh`.
        fields: composite-length nodal fields (sliced per mesh), plus the
            overset status is always included.

    Returns:
        The written paths.
    """
    fields = dict(fields or {})
    fields.setdefault("overset_status", comp.statuses.astype(np.float64))
    paths = []
    off = comp.mesh_offsets
    for k, mesh in enumerate(comp.meshes):
        sliced = {
            name: np.asarray(data)[off[k] : off[k + 1]]
            for name, data in fields.items()
        }
        paths.append(
            write_mesh_vtk(f"{prefix}_{mesh.name}", mesh, sliced)
        )
    return paths
