"""Rigid mesh motion (rotor rotation).

The paper's blade meshes move with the turbine through rotor rotation (§2);
overset connectivity is recomputed as they move.  Blades here are rigid
(paper §5: "the model described in [5], but with rigid blades"), so motion
is a rigid rotation about the rotor axis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.hexmesh import HexMesh


def rotation_matrix(axis: np.ndarray, angle: float) -> np.ndarray:
    """Rodrigues rotation matrix about a (non-zero) axis."""
    axis = np.asarray(axis, dtype=np.float64)
    n = np.linalg.norm(axis)
    if n == 0:
        raise ValueError("rotation axis must be non-zero")
    k = axis / n
    K = np.array(
        [
            [0.0, -k[2], k[1]],
            [k[2], 0.0, -k[0]],
            [-k[1], k[0], 0.0],
        ]
    )
    return np.eye(3) + np.sin(angle) * K + (1.0 - np.cos(angle)) * (K @ K)


@dataclass
class RigidRotation:
    """Constant-rate rigid rotation of a mesh about a fixed axis.

    Attributes:
        axis: rotation axis direction.
        center: point on the axis.
        omega: angular rate [rad/s].
    """

    axis: tuple[float, float, float]
    center: tuple[float, float, float]
    omega: float
    angle: float = 0.0

    def rotate_by(self, mesh: HexMesh, dtheta: float) -> None:
        """Rotate ``mesh`` in place by ``dtheta`` radians."""
        R = rotation_matrix(np.asarray(self.axis), dtheta)
        c = np.asarray(self.center)
        mesh.coords[:] = (mesh.coords - c) @ R.T + c
        self.angle += dtheta
        mesh.update_metrics()

    def apply(self, mesh: HexMesh, dt: float) -> None:
        """Advance ``mesh`` by ``omega * dt`` radians."""
        self.rotate_by(mesh, self.omega * dt)

    def grid_velocity(self, coords: np.ndarray) -> np.ndarray:
        """Instantaneous grid velocity ``omega x r`` at the given points."""
        k = np.asarray(self.axis, dtype=np.float64)
        k = k / np.linalg.norm(k)
        r = coords - np.asarray(self.center)
        return self.omega * np.cross(np.broadcast_to(k, r.shape), r)
