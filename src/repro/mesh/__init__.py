"""Unstructured-mesh substrate (STK analogue) and turbine mesh generators."""

from repro.mesh.fields import FieldManager
from repro.mesh.generators import (
    BladeSpec,
    geometric_stretching,
    graded_axis,
    make_background_mesh,
    make_blade_mesh,
)
from repro.mesh.hexmesh import HexMesh, MeshStats
from repro.mesh.motion import RigidRotation, rotation_matrix
from repro.mesh.topology import (
    BlockTopology,
    build_block_topology,
    node_adjacency,
)
from repro.mesh.turbine import (
    PAPER_TABLE1,
    ROTOR_RADIUS,
    TurbineMeshSystem,
    WORKLOADS,
    list_workloads,
    make_background_only,
    make_turbine_dual,
    make_turbine_low,
    make_turbine_tiny,
    make_turbine_refined,
    make_workload,
    register_workload,
)

__all__ = [
    "BladeSpec",
    "BlockTopology",
    "FieldManager",
    "HexMesh",
    "MeshStats",
    "PAPER_TABLE1",
    "ROTOR_RADIUS",
    "RigidRotation",
    "TurbineMeshSystem",
    "WORKLOADS",
    "build_block_topology",
    "geometric_stretching",
    "graded_axis",
    "list_workloads",
    "make_background_mesh",
    "make_blade_mesh",
    "make_background_only",
    "make_turbine_dual",
    "make_turbine_low",
    "make_turbine_refined",
    "make_turbine_tiny",
    "make_workload",
    "node_adjacency",
    "register_workload",
    "rotation_matrix",
]
