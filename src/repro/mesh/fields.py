"""Nodal field storage (the STK field-manager analogue).

Fields are plain NumPy arrays keyed by name per mesh; vector fields have a
trailing component dimension.  Nalu-Wind keeps two time states for the BDF
time integrator; :class:`FieldManager` mirrors that with explicit
``shift_time_states``.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.hexmesh import HexMesh


class FieldManager:
    """Named nodal fields on one mesh, with optional old-time copies."""

    def __init__(self, mesh: HexMesh) -> None:
        self.mesh = mesh
        self._fields: dict[str, np.ndarray] = {}
        self._old: dict[str, np.ndarray] = {}

    def register(
        self, name: str, ncomp: int = 1, value: float = 0.0, time_states: int = 1
    ) -> np.ndarray:
        """Create (or return existing) field with ``ncomp`` components.

        Args:
            name: field name.
            ncomp: 1 for scalars (stored 1-D), >1 for vectors.
            value: initial fill value.
            time_states: 2 keeps an old-time copy updated by
                :meth:`shift_time_states`.

        Returns:
            The current-time array.
        """
        if name in self._fields:
            return self._fields[name]
        shape = (self.mesh.n_nodes,) if ncomp == 1 else (self.mesh.n_nodes, ncomp)
        arr = np.full(shape, value, dtype=np.float64)
        self._fields[name] = arr
        if time_states > 1:
            self._old[name] = arr.copy()
        return arr

    def get(self, name: str) -> np.ndarray:
        """Current-time array of a registered field."""
        try:
            return self._fields[name]
        except KeyError:
            raise KeyError(
                f"field {name!r} not registered on mesh {self.mesh.name!r}; "
                f"have {sorted(self._fields)}"
            ) from None

    def old(self, name: str) -> np.ndarray:
        """Old-time array of a field registered with ``time_states=2``."""
        try:
            return self._old[name]
        except KeyError:
            raise KeyError(
                f"field {name!r} has no old-time state on mesh "
                f"{self.mesh.name!r}"
            ) from None

    def has(self, name: str) -> bool:
        """Whether a field is registered."""
        return name in self._fields

    def names(self) -> list[str]:
        """Registered field names."""
        return sorted(self._fields)

    def shift_time_states(self) -> None:
        """Copy current into old for every two-state field (end of step)."""
        for name, old in self._old.items():
            old[...] = self._fields[name]

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copies of every field array, keyed for checkpointing.

        Current-time arrays are keyed by name, old-time arrays by
        ``name/old``; values are copies so the snapshot is immune to
        further stepping.
        """
        out = {name: arr.copy() for name, arr in self._fields.items()}
        out.update(
            {f"{name}/old": arr.copy() for name, arr in self._old.items()}
        )
        return out

    def load_state(self, state: dict[str, np.ndarray]) -> None:
        """Restore registered fields from a :meth:`state_dict` snapshot.

        Writes in place (``[...]``) so aliases handed out by
        :meth:`register`/:meth:`get` observe the restored values; a
        snapshot entry for an unregistered field is an error — restart
        must not invent state registration never created.
        """
        for key, arr in state.items():
            name, _, slot = key.partition("/")
            target = self._old if slot == "old" else self._fields
            if name not in target:
                raise KeyError(
                    f"checkpoint field {key!r} is not registered on mesh "
                    f"{self.mesh.name!r}"
                )
            target[name][...] = arr

    def nbytes(self) -> int:
        """Total bytes of field storage (device-memory accounting)."""
        return sum(a.nbytes for a in self._fields.values()) + sum(
            a.nbytes for a in self._old.values()
        )
