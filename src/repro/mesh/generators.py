"""Mesh generators: background wake blocks and body-fitted blade blocks.

These reproduce (at reduced scale) the two mesh roles of the paper's overset
setup (§2, Fig. 1): a wake-capturing background block with grading toward
the turbine, and body-fitted near-blade meshes with geometric boundary-layer
stretching.  The blade mesh is an O-type grid around an elongated, twisted,
tapered blade-like surface; the first-cell height is small relative to the
chord, producing the high-aspect-ratio cells and "vastly different" cell
sizes that make the pressure-Poisson systems ill conditioned (paper §1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.hexmesh import HexMesh


def graded_axis(lo: float, hi: float, n: int, cluster: float = 0.0, center: float = 0.5) -> np.ndarray:
    """1-D coordinate array with optional tanh clustering.

    Args:
        lo: first coordinate.
        hi: last coordinate.
        n: number of nodes.
        cluster: 0 gives a uniform axis; larger values concentrate nodes
            near the relative position ``center``.
        center: relative position in [0, 1] the clustering targets.

    Returns:
        Monotone array of ``n`` coordinates spanning ``[lo, hi]``.
    """
    s = np.linspace(0.0, 1.0, n)
    if cluster > 0:
        # Cubic stretching: phi'(t) = 1 + 3*cluster*t^2 is smallest at the
        # cluster center, so node spacing is finest there and grows toward
        # the far boundaries.
        t = s - center
        phi = t * (1.0 + cluster * t * t)
        p0 = (0.0 - center) * (1.0 + cluster * center * center)
        p1 = (1.0 - center) * (1.0 + cluster * (1.0 - center) ** 2)
        s = (phi - p0) / (p1 - p0)
    return lo + (hi - lo) * s


def geometric_stretching(n: int, first_frac: float) -> np.ndarray:
    """Normalized wall-normal distribution with geometric growth.

    Args:
        n: number of nodes (first at 0, last at 1).
        first_frac: first spacing as a fraction of the total extent; small
            values give boundary-layer stretching (high aspect ratio).

    Returns:
        Increasing array ``r`` with ``r[0] = 0``, ``r[-1] = 1`` and
        ``r[1] - r[0] ~= first_frac``.
    """
    if n < 2:
        raise ValueError("need at least 2 wall-normal nodes")
    m = n - 1
    if first_frac * m >= 1.0:
        return np.linspace(0.0, 1.0, n)
    # Solve first_frac * (g^m - 1) / (g - 1) = 1 for growth ratio g.
    g = (1.0 / first_frac) ** (1.0 / (m - 1)) if m > 1 else 1.0
    for _ in range(60):
        f = first_frac * (g**m - 1.0) / (g - 1.0) - 1.0
        df = first_frac * (
            (m * g ** (m - 1)) * (g - 1.0) - (g**m - 1.0)
        ) / (g - 1.0) ** 2
        step = f / df
        g -= step
        if abs(step) < 1e-14:
            break
    k = np.arange(n)
    r = first_frac * (g**k - 1.0) / (g - 1.0)
    r[-1] = 1.0
    return r


def make_background_mesh(
    name: str,
    extent: tuple[tuple[float, float], tuple[float, float], tuple[float, float]],
    shape: tuple[int, int, int],
    cluster_center: tuple[float, float, float] | None = None,
    cluster: float = 2.0,
) -> HexMesh:
    """Wake-capturing background block, optionally graded toward a point.

    Args:
        name: mesh name.
        extent: per-direction ``(lo, hi)`` physical bounds.
        shape: nodes per direction.
        cluster_center: physical point toward which grading concentrates
            nodes (the turbine location); ``None`` gives a uniform block.
        cluster: tanh clustering strength.

    Returns:
        The background :class:`HexMesh` (inflow at ``xlo``, outflow ``xhi``).
    """
    axes = []
    for a in range(3):
        lo, hi = extent[a]
        if cluster_center is None:
            axes.append(graded_axis(lo, hi, shape[a]))
        else:
            rel = (cluster_center[a] - lo) / (hi - lo)
            axes.append(graded_axis(lo, hi, shape[a], cluster=cluster, center=rel))
    X = np.stack(np.meshgrid(*axes, indexing="ij"), axis=-1)
    return HexMesh.from_block(name, X)


@dataclass(frozen=True)
class BladeSpec:
    """Geometric parameters of a body-fitted blade mesh.

    The blade is an idealized tapered, twisted wing: elliptical sections of
    chord ``chord(s)`` and thickness ratio ``thickness``, spanning
    ``span`` along +z from ``root_center``, with linear twist.
    """

    span: float = 60.0
    root_chord: float = 4.0
    tip_chord: float = 1.5
    thickness: float = 0.2
    twist_root_deg: float = 20.0
    twist_tip_deg: float = 2.0
    outer_radius: float = 8.0
    first_cell_frac: float = 2e-3
    n_around: int = 36
    n_radial: int = 16
    n_span: int = 20


def make_blade_mesh(
    name: str,
    spec: BladeSpec,
    root_center: tuple[float, float, float] = (0.0, 0.0, 0.0),
) -> HexMesh:
    """Body-fitted O-grid around an idealized blade.

    The grid is periodic in the wrap-around direction and geometrically
    stretched away from the surface; with the default
    ``first_cell_frac=2e-3`` the near-wall cells have aspect ratios of
    O(10^2-10^3), reproducing the conditioning pathology of blade-resolved
    meshes.

    Returns:
        :class:`HexMesh` with boundaries ``ylo``/``yhi`` relabeled to
        ``wall`` (blade surface) and ``outer`` (overset fringe donor side),
        and span ends ``zlo`` -> ``root``, ``zhi`` -> ``tip``.
    """
    u = np.linspace(0.0, 2.0 * np.pi, spec.n_around, endpoint=False)
    r = geometric_stretching(spec.n_radial, spec.first_cell_frac)
    s = np.linspace(0.0, 1.0, spec.n_span)

    U, R, S = np.meshgrid(u, r, s, indexing="ij")
    chord = spec.root_chord + (spec.tip_chord - spec.root_chord) * S
    twist = np.deg2rad(
        spec.twist_root_deg + (spec.twist_tip_deg - spec.twist_root_deg) * S
    )
    a = chord / 2.0
    b = chord * spec.thickness / 2.0

    # Blade-surface section (ellipse rotated by local twist).
    xs = a * np.cos(U)
    ys = b * np.sin(U)
    surf_x = xs * np.cos(twist) - ys * np.sin(twist)
    surf_y = xs * np.sin(twist) + ys * np.cos(twist)

    # Outer O-boundary: circle of outer_radius.
    out_x = spec.outer_radius * np.cos(U)
    out_y = spec.outer_radius * np.sin(U)

    X = np.empty(U.shape + (3,))
    X[..., 0] = root_center[0] + surf_x + R * (out_x - surf_x)
    X[..., 1] = root_center[1] + surf_y + R * (out_y - surf_y)
    X[..., 2] = root_center[2] + S * spec.span

    mesh = HexMesh.from_block(name, X, periodic=(True, False, False))
    # Radial direction is logical axis 1: ylo is the wall, yhi the outer rim.
    mesh.boundaries["wall"] = mesh.boundaries.pop("ylo")
    mesh.boundaries["outer"] = mesh.boundaries.pop("yhi")
    mesh.boundaries["root"] = mesh.boundaries.pop("zlo")
    mesh.boundaries["tip"] = mesh.boundaries.pop("zhi")
    return mesh
