"""Structured-block topology generation, stored unstructured.

Nalu-Wind's meshes are unstructured hex meshes; the blade-resolved meshes of
the paper are body-fitted curvilinear blocks around the blades overset onto
background blocks (paper §2, Fig. 1).  We generate each component mesh from a
logically structured block (optionally periodic in any direction, for O-type
blade grids) and immediately flatten to unstructured arrays — the rest of
the library never sees the structure, exactly as Nalu-Wind's STK layer never
does.

All generation is vectorized index arithmetic; no per-node Python loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BlockTopology:
    """Topology of one structured block flattened to unstructured arrays.

    Attributes:
        shape: nodes per direction ``(nx, ny, nz)``.
        periodic: per-direction periodic wrap flags.
        cells: ``(n_cells, 8)`` hex connectivity in standard corner order.
        edges: ``(n_edges, 2)`` unique node pairs along element edges.
        edge_axis: ``(n_edges,)`` logical axis (0/1/2) of each edge.
    """

    shape: tuple[int, int, int]
    periodic: tuple[bool, bool, bool]
    cells: np.ndarray
    edges: np.ndarray
    edge_axis: np.ndarray

    @property
    def n_nodes(self) -> int:
        """Total node count of the block."""
        nx, ny, nz = self.shape
        return nx * ny * nz


def node_ids(shape: tuple[int, int, int]) -> np.ndarray:
    """Node-id lattice: ``ids[i, j, k]`` is the flat node index."""
    nx, ny, nz = shape
    return np.arange(nx * ny * nz, dtype=np.int64).reshape(nx, ny, nz)


def build_block_topology(
    shape: tuple[int, int, int],
    periodic: tuple[bool, bool, bool] = (False, False, False),
) -> BlockTopology:
    """Build cells and unique edges of a (possibly periodic) block.

    Args:
        shape: nodes per direction; periodic directions wrap, so a periodic
            direction with ``n`` nodes has ``n`` cells across it, a
            non-periodic one ``n - 1``.
        periodic: wrap flags per direction.

    Returns:
        The flattened topology.
    """
    nx, ny, nz = shape
    if min(shape) < 2:
        raise ValueError(f"block needs >= 2 nodes per direction, got {shape}")
    ids = node_ids(shape)

    def shifted(axis: int) -> np.ndarray:
        """Node-id lattice shifted +1 along ``axis`` (wrapping if periodic)."""
        return np.roll(ids, -1, axis=axis)

    # Cells: corner (i,j,k) spans to (i+1,j+1,k+1) with optional wrap.
    ncell = [n if periodic[a] else n - 1 for a, n in enumerate(shape)]
    ci = np.arange(ncell[0])
    cj = np.arange(ncell[1])
    ck = np.arange(ncell[2])
    I, J, K = np.meshgrid(ci, cj, ck, indexing="ij")
    Ip = (I + 1) % nx
    Jp = (J + 1) % ny
    Kp = (K + 1) % nz

    def nid(a, b, c):
        """Flat node ids of lattice coordinates."""
        return ids[a, b, c].ravel()

    # Standard hex8 ordering: bottom face CCW, then top face CCW.
    cells = np.stack(
        [
            nid(I, J, K),
            nid(Ip, J, K),
            nid(Ip, Jp, K),
            nid(I, Jp, K),
            nid(I, J, Kp),
            nid(Ip, J, Kp),
            nid(Ip, Jp, Kp),
            nid(I, Jp, Kp),
        ],
        axis=1,
    ).astype(np.int64)

    # Edges: one per node with a +axis neighbor.
    edge_list = []
    axis_list = []
    for axis in range(3):
        nbr = shifted(axis)
        if periodic[axis]:
            a = ids.ravel()
            b = nbr.ravel()
        else:
            sl = [slice(None)] * 3
            sl[axis] = slice(0, shape[axis] - 1)
            a = ids[tuple(sl)].ravel()
            b = nbr[tuple(sl)].ravel()
        edge_list.append(np.stack([a, b], axis=1))
        axis_list.append(np.full(a.size, axis, dtype=np.int8))
    edges = np.concatenate(edge_list, axis=0)
    edge_axis = np.concatenate(axis_list)
    return BlockTopology(
        shape=shape,
        periodic=periodic,
        cells=cells,
        edges=edges,
        edge_axis=edge_axis,
    )


def boundary_node_sets(
    shape: tuple[int, int, int],
    periodic: tuple[bool, bool, bool],
) -> dict[str, np.ndarray]:
    """Boundary node ids per block side.

    Side names: ``xlo/xhi/ylo/yhi/zlo/zhi``; periodic directions contribute
    no sides.  Nodes on edges/corners appear in every touching side.
    """
    ids = node_ids(shape)
    out: dict[str, np.ndarray] = {}
    names = [("xlo", "xhi"), ("ylo", "yhi"), ("zlo", "zhi")]
    for axis in range(3):
        if periodic[axis]:
            continue
        lo, hi = names[axis]
        sl_lo = [slice(None)] * 3
        sl_hi = [slice(None)] * 3
        sl_lo[axis] = 0
        sl_hi[axis] = shape[axis] - 1
        out[lo] = ids[tuple(sl_lo)].ravel().copy()
        out[hi] = ids[tuple(sl_hi)].ravel().copy()
    return out


def node_adjacency(
    n_nodes: int, edges: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Symmetric node-to-node adjacency in CSR form.

    Returns:
        ``(indptr, indices)`` of the undirected graph induced by ``edges``.
    """
    both = np.concatenate([edges, edges[:, ::-1]], axis=0)
    order = np.lexsort((both[:, 1], both[:, 0]))
    both = both[order]
    counts = np.bincount(both[:, 0], minlength=n_nodes)
    indptr = np.zeros(n_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, both[:, 1].copy()
