"""Scaled NREL 5-MW turbine mesh systems (Table 1 analogues).

The paper's three workloads (Table 1) are a 23.0M-node single-turbine mesh,
a 44.2M-node dual-turbine mesh, and a 634.5M-node refined single-turbine
mesh (3x the low resolution in each direction: 634.5/23.0 = 27.6 ~= 3.02^3).
We reproduce the same family at ~1/1000 scale with the same construction
rules: per turbine, three body-fitted blade meshes (120 degrees apart, as in
Fig. 1) overset onto a graded background block; the refined case multiplies
every direction count by the refinement factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.mesh.generators import BladeSpec, make_background_mesh, make_blade_mesh
from repro.mesh.hexmesh import HexMesh
from repro.mesh.motion import RigidRotation

#: Rotor radius of the notional turbine (NREL 5-MW: 126 m rotor -> 63 m).
ROTOR_RADIUS = 63.0


@dataclass
class TurbineMeshSystem:
    """An overset system of component meshes for one simulation.

    Attributes:
        name: workload name (``turbine_low`` etc.).
        background: the wake-capturing background mesh.
        blades: body-fitted blade meshes (3 per turbine).
        rotations: per-blade rigid rotations (rotor motion).
    """

    name: str
    background: HexMesh
    blades: list[HexMesh]
    rotations: list[RigidRotation]

    @property
    def meshes(self) -> list[HexMesh]:
        """All component meshes, background first."""
        return [self.background, *self.blades]

    @property
    def total_nodes(self) -> int:
        """Total mesh nodes over all components (Table 1 'Mesh Nodes')."""
        return sum(m.n_nodes for m in self.meshes)

    def advance_rotor(self, dt: float) -> None:
        """Rotate every blade mesh by its rotation rate over ``dt``."""
        for mesh, rot in zip(self.blades, self.rotations):
            rot.apply(mesh, dt)


def _blade_spec(refine: int) -> BladeSpec:
    return BladeSpec(
        span=0.85 * ROTOR_RADIUS,
        n_around=26 * refine,
        n_radial=10 * refine,
        n_span=15 * refine,
        first_cell_frac=2e-3 / refine,
        outer_radius=36.0,
    )


def _make_turbine_blades(
    name_prefix: str,
    hub: tuple[float, float, float],
    refine: int,
) -> tuple[list[HexMesh], list[RigidRotation]]:
    """Three blades at 120-degree phase, rotating about +x through the hub."""
    spec = _blade_spec(refine)
    blades: list[HexMesh] = []
    rotations: list[RigidRotation] = []
    # Rotor spins about the inflow (x) axis at a notional 12.1 rpm (NREL
    # 5-MW rated rotor speed).
    omega = 12.1 * 2.0 * np.pi / 60.0
    for k in range(3):
        blade = make_blade_mesh(
            f"{name_prefix}_blade{k}",
            spec,
            root_center=(hub[0], hub[1], hub[2] + 0.05 * ROTOR_RADIUS),
        )
        rot = RigidRotation(axis=(1.0, 0.0, 0.0), center=hub, omega=omega)
        # Phase the blade to its azimuthal slot.
        rot.rotate_by(blade, np.deg2rad(120.0 * k))
        blades.append(blade)
        rotations.append(rot)
    return blades, rotations


def _make_background(
    name: str,
    hubs: list[tuple[float, float, float]],
    shape: tuple[int, int, int],
) -> HexMesh:
    """Background block sized to contain all rotors plus inflow/wake room."""
    R = ROTOR_RADIUS
    xs = [h[0] for h in hubs]
    extent = (
        (min(xs) - 3.0 * R, max(xs) + 8.0 * R),
        (-3.0 * R, 3.0 * R),
        (-3.0 * R, 3.0 * R),
    )
    center = hubs[0] if len(hubs) == 1 else tuple(np.mean(hubs, axis=0))
    return make_background_mesh(
        name, extent, shape, cluster_center=center, cluster=14.0
    )


#: Name -> builder registry populated by :func:`register_workload`.
#: (``WORKLOADS`` below aliases it for existing callers.)
_WORKLOAD_REGISTRY: dict[str, Callable[..., TurbineMeshSystem]] = {}


def register_workload(
    name: str, description: str = ""
) -> Callable[[Callable[..., TurbineMeshSystem]], Callable[..., TurbineMeshSystem]]:
    """Register a workload builder under ``name``.

    Every CLI subcommand that takes ``--workload`` validates against this
    registry, and ``--list`` prints it.  Builders must return a
    :class:`TurbineMeshSystem`; the description defaults to the first
    line of the builder's docstring.

    Raises:
        ValueError: on a duplicate name.
    """

    def decorate(
        builder: Callable[..., TurbineMeshSystem]
    ) -> Callable[..., TurbineMeshSystem]:
        if name in _WORKLOAD_REGISTRY:
            raise ValueError(f"workload {name!r} is already registered")
        doc_line = (builder.__doc__ or "").strip().splitlines()
        builder.workload_name = name
        builder.workload_description = description or (
            doc_line[0] if doc_line else ""
        )
        _WORKLOAD_REGISTRY[name] = builder
        return builder

    return decorate


def list_workloads() -> list[tuple[str, str]]:
    """Sorted ``(name, description)`` rows of every registered workload."""
    return [
        (name, getattr(builder, "workload_description", ""))
        for name, builder in sorted(_WORKLOAD_REGISTRY.items())
    ]


@register_workload("turbine_low")
def make_turbine_low(refine: int = 1) -> TurbineMeshSystem:
    """Scaled low-resolution single-turbine system (paper: 23,022,027 nodes).

    Args:
        refine: per-direction refinement multiplier; ``refine=3`` yields the
            scaled analogue of the paper's refined mesh (Table 1, column 3).
    """
    hub = (0.0, 0.0, 0.0)
    blades, rotations = _make_turbine_blades("t0", hub, refine)
    bg = _make_background(
        "background", [hub], (28 * refine, 20 * refine, 20 * refine)
    )
    name = "turbine_low" if refine == 1 else f"turbine_refined_x{refine}"
    return TurbineMeshSystem(
        name=name, background=bg, blades=blades, rotations=rotations
    )


@register_workload("turbine_refined")
def make_turbine_refined(refine: int = 3) -> TurbineMeshSystem:
    """Scaled refined single-turbine system (paper: 634,469,604 nodes).

    The paper's refined mesh is ~3x the low-resolution mesh in each
    direction; ``refine`` keeps that knob adjustable so benches can trade
    fidelity for runtime.
    """
    sys_ = make_turbine_low(refine=refine)
    sys_.name = "turbine_refined"
    return sys_


@register_workload("turbine_tiny")
def make_turbine_tiny() -> TurbineMeshSystem:
    """A minimal single-turbine system for tests and the quickstart.

    Same construction rules as :func:`make_turbine_low` at roughly 1/8 the
    node count, so full simulation steps run in seconds.
    """
    hub = (0.0, 0.0, 0.0)
    spec = BladeSpec(
        span=0.85 * ROTOR_RADIUS,
        n_around=14,
        n_radial=6,
        n_span=8,
        first_cell_frac=4e-3,
        outer_radius=36.0,
    )
    omega = 12.1 * 2.0 * np.pi / 60.0
    blades: list[HexMesh] = []
    rotations: list[RigidRotation] = []
    for k in range(3):
        blade = make_blade_mesh(
            f"t0_blade{k}",
            spec,
            root_center=(hub[0], hub[1], hub[2] + 0.05 * ROTOR_RADIUS),
        )
        rot = RigidRotation(axis=(1.0, 0.0, 0.0), center=hub, omega=omega)
        rot.rotate_by(blade, np.deg2rad(120.0 * k))
        blades.append(blade)
        rotations.append(rot)
    bg = _make_background("background", [hub], (16, 12, 12))
    return TurbineMeshSystem(
        name="turbine_tiny", background=bg, blades=blades, rotations=rotations
    )


@register_workload("background_only")
def make_background_only() -> TurbineMeshSystem:
    """A background-only 'empty tunnel' system (no blades).

    Uniform inflow through it is an exact steady solution of the
    discretization, which makes it the free-stream-preservation check.
    """
    bg = _make_background("background", [(0.0, 0.0, 0.0)], (14, 10, 10))
    return TurbineMeshSystem(
        name="background_only", background=bg, blades=[], rotations=[]
    )


@register_workload("turbine_dual")
def make_turbine_dual() -> TurbineMeshSystem:
    """Scaled dual-turbine system (paper: 44,233,109 nodes).

    Two turbines in sequence along the inflow direction, sharing one
    elongated background block, as in the paper's two-turbine case.
    """
    R = ROTOR_RADIUS
    hubs = [(0.0, 0.0, 0.0), (7.0 * R, 0.0, 0.0)]
    blades0, rot0 = _make_turbine_blades("t0", hubs[0], refine=1)
    blades1, rot1 = _make_turbine_blades("t1", hubs[1], refine=1)
    bg = _make_background("background", hubs, (44, 22, 22))
    return TurbineMeshSystem(
        name="turbine_dual",
        background=bg,
        blades=blades0 + blades1,
        rotations=rot0 + rot1,
    )


#: Back-compat alias of the registry (same mutable mapping).
WORKLOADS = _WORKLOAD_REGISTRY

#: Paper mesh-node counts for Table 1 side-by-side reporting.
PAPER_TABLE1 = {
    "turbine_low": 23_022_027,
    "turbine_dual": 44_233_109,
    "turbine_refined": 634_469_604,
}


def make_workload(name: str, **kwargs) -> TurbineMeshSystem:
    """Build one of the named Table 1 workloads."""
    try:
        builder = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(WORKLOADS)}"
        ) from None
    return builder(**kwargs)
