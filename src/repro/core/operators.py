"""Edge-based finite-volume operators.

The discrete operators of Nalu-Wind's edge-based low-Mach scheme on the
composite mesh: two-point-flux diffusion coefficients, first-order-upwind
advection coefficients from ALE mass fluxes, Green-Gauss node gradients,
and the edge divergence used by the pressure projection.  Everything is a
vectorized sweep over the active edge list.
"""

from __future__ import annotations

import numpy as np

from repro.core.composite import CompositeMesh


def edge_average(comp: CompositeMesh, field: np.ndarray) -> np.ndarray:
    """Arithmetic edge average of a nodal field (scalar or vector)."""
    a, b = comp.edges[:, 0], comp.edges[:, 1]
    return 0.5 * (field[a] + field[b])


def diffusion_coefficients(
    comp: CompositeMesh, diffusivity: np.ndarray | float
) -> np.ndarray:
    """Two-point-flux diffusion coefficient per edge: ``k_e A_e / d_e``.

    High-aspect-ratio blade cells make these coefficients wildly
    anisotropic, which is exactly what degrades the pressure-Poisson
    conditioning the paper's AMG setup has to cope with.
    """
    if np.isscalar(diffusivity):
        k_e = float(diffusivity)
    else:
        k_e = edge_average(comp, np.asarray(diffusivity))
    return k_e * comp.edge_area / comp.edge_length


def mass_flux(
    comp: CompositeMesh,
    velocity: np.ndarray,
    density: float,
    pressure: np.ndarray | None = None,
    tau: float | np.ndarray = 0.0,
) -> np.ndarray:
    """ALE mass flux per edge, with optional Rhie-Chow dissipation.

    ``mdot_e = rho (u_e - u_grid,e) . S_e`` with
    ``S_e = A_e n_e``; the Rhie-Chow term subtracts
    ``tau_e * A_e/d_e * (p_b - p_a - grad(p)_e . d_e)`` to suppress
    pressure-velocity decoupling on the collocated layout.  ``tau`` is the
    projection timescale (scalar, or per edge): the SIMPLE-consistent
    choice is ``rho * V / a_p`` averaged to the edge, which shrinks in the
    advection-dominated near-wall cells and keeps the correction bounded
    on high-aspect-ratio blade meshes.
    """
    rel = velocity - comp.grid_velocity
    u_e = edge_average(comp, rel)
    S = comp.edge_area[:, None] * comp.edge_dir
    mdot = density * np.einsum("ed,ed->e", u_e, S)
    if pressure is not None and np.any(np.asarray(tau) > 0.0):
        a, b = comp.edges[:, 0], comp.edges[:, 1]
        gp = least_squares_gradient(comp, pressure)
        gp_e = 0.5 * (gp[a] + gp[b])
        d_vec = comp.edge_dir * comp.edge_length[:, None]
        correction = (pressure[b] - pressure[a]) - np.einsum(
            "ed,ed->e", gp_e, d_vec
        )
        mdot -= tau * (comp.edge_area / comp.edge_length) * correction
    return mdot


def upwind_advection_coefficients(mdot: np.ndarray) -> np.ndarray:
    """First-order upwind advection 2x2 blocks per edge.

    Returns:
        ``(E, 4)`` contributions in the ``[(a,a), (a,b), (b,a), (b,b)]``
        layout: row ``a`` receives the outflux Jacobian, row ``b`` its
        negative.
    """
    pos = np.maximum(mdot, 0.0)
    neg = np.minimum(mdot, 0.0)
    return np.stack([pos, neg, -pos, -neg], axis=1)


def diffusion_pairs(g_e: np.ndarray) -> np.ndarray:
    """Symmetric diffusion 2x2 blocks per edge (graph-Laplacian stencil)."""
    return np.stack([g_e, -g_e, -g_e, g_e], axis=1)


def edge_divergence(comp: CompositeMesh, edge_flux: np.ndarray) -> np.ndarray:
    """Nodal divergence of an edge flux: ``div_a = sum_e +-flux_e``.

    Flux is positive from edge endpoint ``a`` toward ``b``.
    """
    out = np.zeros(comp.n)
    a, b = comp.edges[:, 0], comp.edges[:, 1]
    np.add.at(out, a, edge_flux)
    np.add.at(out, b, -edge_flux)
    return out


def green_gauss_gradient(comp: CompositeMesh, field: np.ndarray) -> np.ndarray:
    """Green-Gauss nodal gradient from edge-midpoint values."""
    a, b = comp.edges[:, 0], comp.edges[:, 1]
    fbar = 0.5 * (field[a] + field[b])
    S = comp.edge_area[:, None] * comp.edge_dir
    flux = fbar[:, None] * S
    out = np.zeros((comp.n, 3))
    np.add.at(out, a, flux)
    np.add.at(out, b, -flux)
    return out / comp.node_volume[:, None]


def boundary_mass_flux(
    comp: CompositeMesh, velocity: np.ndarray, density: float
) -> np.ndarray:
    """Outward boundary mass flux per node (zero off the boundary).

    ``bflux_a = rho (u_a - u_grid,a) . A_out,a`` over the background's open
    sides; near-body walls are no-slip relative to the grid (zero flux) and
    near-body rims are overset constraint rows, so only the background's
    faces carry flux.
    """
    out = np.zeros(comp.n)
    ids = comp.boundary_face_nodes
    rel = velocity[ids] - comp.grid_velocity[ids]
    flux = density * np.einsum("nd,nd->n", rel, comp.boundary_face_vectors)
    # Rim/corner nodes appear on several sides: accumulate their faces.
    np.add.at(out, ids, flux)
    return out


def least_squares_gradient(
    comp: CompositeMesh, field: np.ndarray
) -> np.ndarray:
    """Weighted least-squares nodal gradient from edge differences.

    Solves, per node, ``min sum_e w_e (grad . d_e - (f_b - f_a))^2`` with
    ``w_e = 1/|d_e|^2``.  Exact for linear fields on arbitrary meshes —
    unlike Green-Gauss, it does not overshoot on the skewed, stretched
    near-wall cells of the blade O-grids, which is what keeps the
    projection's velocity correction stable there.
    """
    a, b = comp.edges[:, 0], comp.edges[:, 1]
    d = comp.coords[b] - comp.coords[a]
    w = 1.0 / np.einsum("ed,ed->e", d, d)
    df = field[b] - field[a]
    # Per-edge outer products; both endpoints accumulate identical terms.
    M_e = w[:, None, None] * d[:, :, None] * d[:, None, :]
    r_e = (w * df)[:, None] * d
    M = np.zeros((comp.n, 3, 3))
    r = np.zeros((comp.n, 3))
    np.add.at(M, a, M_e)
    np.add.at(M, b, M_e)
    np.add.at(r, a, r_e)
    np.add.at(r, b, r_e)
    # Regularize isolated/degenerate nodes (e.g. hole nodes with no edges).
    degenerate = np.abs(np.linalg.det(M)) < 1e-300
    M[degenerate] = np.eye(3)
    r[degenerate] = 0.0
    return np.linalg.solve(M, r[:, :, None])[..., 0]


def divergence_of_velocity(
    comp: CompositeMesh, velocity: np.ndarray, density: float
) -> np.ndarray:
    """Nodal mass imbalance ``div(rho u)`` including boundary faces."""
    mdot = mass_flux(comp, velocity, density)
    return edge_divergence(comp, mdot) + boundary_mass_flux(
        comp, velocity, density
    )
