"""Equation systems: the per-equation graph -> assemble -> solve pipeline.

Each governing equation (momentum, pressure-Poisson, scalar transport) owns
the full pipeline of the paper:

* Stage 1 graph computation when connectivity changes (``<eq>/graph``),
* Stage 2 local assembly every Picard iteration (``<eq>/local_assembly``),
* Stage 3 global assembly, Algorithms 1-2 (``<eq>/global_assembly``),
* preconditioner setup (``<eq>/precond_setup``),
* GMRES solve (``<eq>/solve``).

The phase labels match the paper's per-equation breakdown bars (Figs. 6-7):
graph+physics (purple), local assembly (green), global assembly (red),
preconditioner setup (blue), solve (orange).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.amg.cycle import AMGCycleOptions, AMGPreconditioner
from repro.amg.hierarchy import AMGHierarchy
from repro.assembly.global_assembly import (
    assemble_global_matrix,
    assemble_global_vector,
)
from repro.assembly.graph import EquationGraph, GraphSpec
from repro.assembly.local import LocalAssembler
from repro.assembly.plan import AssemblyPlan
from repro.comm.errors import CommError
from repro.core.composite import CompositeMesh
from repro.core.config import SimulationConfig
from repro.core.timers import PhaseTimers
from repro.krylov import KrylovResult, make_krylov_solver
from repro.linalg.parcsr import ParCSRMatrix
from repro.linalg.parvector import ParVector
from repro.overset.assembler import NodeStatus
from repro.resilience.guards import (
    SolverFailure,
    classify_failure,
    iterate_is_finite,
    operands_are_finite,
)
from repro.resilience.policy import RecoveryEvent, RecoveryPolicy

#: Phase suffixes, in the paper's breakdown order.
PHASES = (
    "graph",
    "local_assembly",
    "global_assembly",
    "precond_setup",
    "solve",
)


@dataclass
class SolveRecord:
    """Iteration/convergence record of one linear solve.

    ``residual_history`` holds per-iteration relative residual norms when
    the equation's :class:`~repro.core.config.SolverConfig` has
    ``record_history`` on (the default); empty otherwise.
    """

    iterations: int
    residual_norm: float
    converged: bool
    residual_history: list[float] = field(default_factory=list)


class EquationSystem:
    """Base pipeline; subclasses provide physics and preconditioning."""

    name = "equation"

    def __init__(
        self,
        comp: CompositeMesh,
        config: SimulationConfig,
        timers: PhaseTimers,
    ) -> None:
        self.comp = comp
        self.config = config
        self.timers = timers
        self.world = comp.world
        self.graph: EquationGraph | None = None
        self.assembler: LocalAssembler | None = None
        self.solve_records: list[SolveRecord] = []
        self._solves_since_setup = 0
        # Pipeline state, initialized eagerly (lazy getattr/hasattr checks
        # survive attribute typos silently).
        self._matrix: ParCSRMatrix | None = None
        self._precond = None
        self._plan: AssemblyPlan | None = None

    # -- constraint sets (application ids), subclass-specific -------------------

    def dirichlet_rows(self) -> np.ndarray:
        """Rows with strong boundary conditions (subclass hook)."""
        return np.zeros(0, dtype=np.int64)

    def constraint_rows(self) -> np.ndarray:
        """All constraint rows: Dirichlet + overset fringe + holes."""
        return np.unique(
            np.concatenate(
                [
                    self.dirichlet_rows(),
                    self.comp.fringe_nodes(),
                    self.comp.hole_nodes(),
                ]
            )
        )

    # -- pipeline ------------------------------------------------------------------

    def phase(self, suffix: str) -> str:
        """Full phase label for this equation."""
        return f"{self.name}/{suffix}"

    def update_graph(self) -> None:
        """Stage 1 (run when mesh motion changes connectivity)."""
        if self.assembler is not None:
            self.assembler.release()
        with self.timers.measure(self.phase("graph")):
            with self.world.phase_scope(self.phase("graph")):
                spec = GraphSpec(
                    n=self.comp.n,
                    edges=self.comp.edges,
                    constraint_rows=self.constraint_rows(),
                )
                self.graph = EquationGraph(
                    self.world, self.comp.numbering, spec
                )
                self.assembler = LocalAssembler(
                    self.world, self.graph, mode=self.config.assembly_mode
                )
        self._solves_since_setup = 0  # pattern changed: rebuild precond

    def _to_new(self, vals_app: np.ndarray) -> np.ndarray:
        """Reorder a per-application-id array to new (rank-block) ids."""
        return vals_app[self.comp.numbering.new_to_old]

    def _active_plan(self) -> AssemblyPlan | None:
        """The assembly plan for the current graph (reuse enabled only).

        A plan is keyed to one :class:`EquationGraph` revision; mesh
        motion rebuilds the graph, bumps the revision, and the stale plan
        is replaced by a fresh (uncaptured) one here.
        """
        if not self.config.reuse_assembly_plan or self.graph is None:
            return None
        plan = self._plan
        if plan is None or plan.graph_revision != self.graph.revision:
            # Cross-job sharing: a campaign-attached PlanCache may hold a
            # fully-captured plan for this exact pattern (equal
            # fingerprint) from an earlier job of the sweep; adopting it
            # skips the cold capture entirely.
            cache = self.world.plan_cache
            adopted = (
                cache.adopt(
                    self.world,
                    self.graph,
                    self.comp.numbering,
                    self.config.assembly_variant,
                    self.name,
                )
                if cache is not None
                else None
            )
            if adopted is not None:
                plan = adopted
            else:
                plan = AssemblyPlan(
                    self.comp.numbering,
                    variant=self.config.assembly_variant,
                    graph=self.graph,
                    name=self.name,
                )
                if cache is not None:
                    cache.offer(
                        self.graph,
                        self.comp.numbering,
                        self.config.assembly_variant,
                        self.name,
                        plan,
                    )
            self._plan = plan
        return plan

    def assemble(self, **kwargs) -> tuple[ParCSRMatrix, ParVector]:
        """Stages 2 + 3: fill values and run the global assembly."""
        if self.graph is None:
            self.update_graph()
        asmblr = self.assembler
        with self.timers.measure(self.phase("local_assembly")):
            with self.world.phase_scope(self.phase("local_assembly")):
                asmblr.reset()
                self.fill(asmblr, **kwargs)
                local = asmblr.finalize()
        plan = self._active_plan()
        fast = plan is not None and plan.matrix_ready
        # Last iteration's operator is replaced: return its storage first.
        # The fast path updates the cached operator in place, so nothing
        # is released there.
        if not fast and self._matrix is not None:
            self._matrix.release()
        with self.timers.measure(self.phase("global_assembly")):
            with self.world.phase_scope(self.phase("global_assembly")):
                am = assemble_global_matrix(
                    self.world,
                    self.comp.numbering,
                    local,
                    variant=self.config.assembly_variant,
                    name=self.name,
                    plan=plan,
                )
                rhs = assemble_global_vector(
                    self.world,
                    self.comp.numbering,
                    local,
                    variant=self.config.assembly_variant,
                    plan=plan,
                )
        self._matrix = am.matrix
        injector = self.world.fault_injector
        if injector is not None:
            injector.on_matrix(
                am.matrix, self.name, phase=self.phase("global_assembly")
            )
        return am.matrix, rhs

    def fill(self, asmblr: LocalAssembler, **kwargs) -> None:
        """Physics fill (subclass hook): add edge/node/constraint values."""
        raise NotImplementedError

    def make_preconditioner(self, A: ParCSRMatrix):
        """Subclass hook: build the preconditioner for a fresh matrix."""
        raise NotImplementedError

    def refresh_preconditioner(self, A: ParCSRMatrix) -> bool:
        """Subclass hook: numeric-only refresh of a stale preconditioner.

        Called on solves that would otherwise reuse the previous
        preconditioner unchanged (``precond_rebuild_every > 1``).  Return
        True when a cheap refresh was performed; False (the default)
        falls back to plain reuse.
        """
        return False

    def solver_config(self):
        """Subclass hook: which SolverConfig applies."""
        raise NotImplementedError

    def reset_solver_caches(self) -> None:
        """Drop every cached setup product (plan, preconditioner, AMG).

        Recovery hook: the next :meth:`assemble` re-captures the assembly
        plan from scratch (cold path, fresh operator storage) and the
        next :meth:`solve` rebuilds the preconditioner — nothing derived
        from a possibly-corrupted operator survives.
        """
        if self.world.plan_cache is not None:
            self.world.plan_cache.invalidate(self._plan)
        self._plan = None
        self._precond = None
        self._solves_since_setup = 0

    def solve(
        self, A: ParCSRMatrix, b: ParVector, x0: ParVector | None = None
    ) -> KrylovResult:
        """Preconditioner setup + Krylov solve, with phase attribution.

        With guards on (``config.recovery.guards``), a NaN/Inf iterate —
        and, when ``config.recovery`` is enabled, a non-converged solve —
        triggers the recovery escalation ladder instead of being recorded
        silently; an exhausted ladder raises
        :class:`~repro.resilience.guards.SolverFailure` for the
        simulation-level rollback to handle.
        """
        cfg = self.solver_config()
        policy = self.config.recovery
        # Corrupted operands are caught before preconditioner setup: a
        # hierarchy built from a NaN operator is garbage (and noisy), and
        # no solver-level retry can help — only the simulation-level
        # rollback re-assembles the operands.
        if policy.guards and not operands_are_finite(A, b):
            failure = SolverFailure(
                f"{self.name} operands are non-finite before solve",
                equation=self.name,
                kind="nonfinite_operands",
                phase=self.phase("solve"),
            )
            self.world.metrics.counter(
                "resilience.failures",
                equation=self.name,
                kind="nonfinite_operands",
            ).inc()
            self.world.hub.emit(
                "solver_failure",
                equation=self.name,
                kind="nonfinite_operands",
                failure=failure,
            )
            raise failure
        rebuild = (
            self._solves_since_setup % self.config.precond_rebuild_every == 0
        )
        # Transport failures (dropped/corrupt halo messages that exhausted
        # the comm retry budget) escalate into the same ladder as solver
        # failures: the retry rungs re-drive the exchanges, and one-shot
        # injected faults will not re-fire.
        try:
            with self.timers.measure(self.phase("precond_setup")):
                with self.world.phase_scope(self.phase("precond_setup")):
                    if rebuild or self._precond is None:
                        self._precond = self.make_preconditioner(A)
                    else:
                        self.refresh_preconditioner(A)
            self._solves_since_setup += 1
            result = self._run_krylov(A, b, x0, cfg)
            kind = self._classify_failure(result, policy)
        except CommError as exc:
            kind = classify_failure(exc)
            # The aborted exchange left its round's remaining messages in
            # flight; purge them so recovery retries reach clean channels.
            self.world.purge_pending(reason=kind)
            result = self._aborted_result(b, cfg, str(exc))
        if kind is not None:
            result = self._recover(A, b, x0, cfg, result, kind, policy)
        record = SolveRecord(
            iterations=result.iterations,
            residual_norm=result.residual_norm,
            converged=result.converged,
            residual_history=list(result.residual_history),
        )
        self.solve_records.append(record)
        # Publish convergence telemetry: per-equation counters feed the
        # NLI statistics (Figs. 3/8/9), the histogram the iteration
        # distributions, and the hub lets tests/benchmarks observe solves
        # without monkey-patching.
        metrics = self.world.metrics
        metrics.counter("solve.count", equation=self.name).inc()
        metrics.counter("solve.iterations", equation=self.name).inc(
            result.iterations
        )
        metrics.histogram("solve.iterations", equation=self.name).observe(
            result.iterations
        )
        self.world.hub.emit(
            "solve", equation=self.name, record=record, result=result
        )
        if self.world.profiler is not None:
            self.world.profiler.on_marker(
                "solve",
                equation=self.name,
                iterations=result.iterations,
                converged=bool(result.converged),
            )
        return result

    # -- failure handling -------------------------------------------------------

    def _aborted_result(self, b: ParVector, cfg, detail: str) -> KrylovResult:
        """Placeholder result for a solve aborted before producing one.

        Used when a transport error interrupts preconditioner setup or
        the Krylov iteration itself; carries a zero iterate and an
        infinite residual so every health check downstream reads it as
        failed.
        """
        return KrylovResult(
            x=b.like(),
            iterations=0,
            residual_norm=float("inf"),
            converged=False,
            residual_history=[],
            method=f"{cfg.method} (aborted: {detail})",
        )

    def _run_krylov(
        self, A: ParCSRMatrix, b: ParVector, x0: ParVector | None, cfg
    ) -> KrylovResult:
        """One Krylov attempt under solve-phase attribution."""
        with self.timers.measure(self.phase("solve")):
            with self.world.phase_scope(self.phase("solve")):
                solver = make_krylov_solver(A, self._precond, cfg)
                result = solver.solve(b, x0=x0)
        injector = self.world.fault_injector
        if injector is not None and injector.on_solve(
            self.name, phase=self.phase("solve")
        ):
            result = replace(result, converged=False)
        return result

    def _classify_failure(
        self, result: KrylovResult, policy: RecoveryPolicy
    ) -> str | None:
        """Failure kind of a solve result, or None when it is healthy."""
        if policy.guards and not iterate_is_finite(result):
            return "nonfinite_iterate"
        if (
            policy.enabled
            and policy.recover_non_convergence
            and not result.converged
        ):
            return "non_convergence"
        return None

    def _failure(
        self,
        result: KrylovResult,
        kind: str,
        attempts: tuple[str, ...] = (),
    ) -> SolverFailure:
        """Structured failure carrying the solve's diagnostic context."""
        return SolverFailure(
            f"{self.name} solve failed ({kind}): residual "
            f"{result.residual_norm:.3e} after {result.iterations} "
            f"iterations"
            + (f"; tried {list(attempts)}" if attempts else ""),
            equation=self.name,
            kind=kind,
            phase=self.phase("solve"),
            residual_norm=result.residual_norm,
            iterations=result.iterations,
            residual_history=list(result.residual_history),
            attempts=attempts,
        )

    def _recover(
        self,
        A: ParCSRMatrix,
        b: ParVector,
        x0: ParVector | None,
        cfg,
        result: KrylovResult,
        kind: str,
        policy: RecoveryPolicy,
    ) -> KrylovResult:
        """Run the solver-level escalation ladder for a failed solve.

        Returns the first healthy retry result; raises
        :class:`SolverFailure` when recovery is disabled, the operands
        themselves are corrupted (retries cannot help — only the
        simulation-level rollback re-assembles them), or the ladder is
        exhausted.
        """
        metrics = self.world.metrics
        metrics.counter(
            "resilience.failures", equation=self.name, kind=kind
        ).inc()
        failure = self._failure(result, kind)
        self.world.hub.emit(
            "solver_failure",
            equation=self.name,
            kind=kind,
            failure=failure,
        )
        if not policy.enabled:
            raise failure
        if not operands_are_finite(A, b):
            raise self._failure(result, "nonfinite_operands")
        attempts: list[str] = []
        with self.timers.measure(self.phase("recovery")):
            with self.world.phase_scope(self.phase("recovery")):
                for attempt, action in enumerate(policy.ladder, start=1):
                    attempts.append(action)
                    detail = ""
                    candidate: KrylovResult | None = None
                    try:
                        candidate = self._attempt_recovery(
                            action, A, b, x0, cfg, policy
                        )
                        ok = iterate_is_finite(candidate) and (
                            candidate.converged
                            or not policy.recover_non_convergence
                        )
                        if not ok:
                            detail = (
                                f"residual {candidate.residual_norm:.3e}, "
                                f"converged={candidate.converged}"
                            )
                    except Exception as exc:  # noqa: BLE001 - recorded, escalated
                        ok = False
                        detail = f"{type(exc).__name__}: {exc}"
                    event = RecoveryEvent(
                        equation=self.name,
                        kind=kind,
                        action=action,
                        attempt=attempt,
                        success=ok,
                        detail=detail,
                    )
                    self.world.hub.emit("recovery", **event.to_dict())
                    if ok:
                        metrics.counter(
                            "resilience.recoveries",
                            action=action,
                            equation=self.name,
                        ).inc()
                        return candidate
        raise self._failure(result, kind, attempts=tuple(attempts))

    def _attempt_recovery(
        self,
        action: str,
        A: ParCSRMatrix,
        b: ParVector,
        x0: ParVector | None,
        cfg,
        policy: RecoveryPolicy,
    ) -> KrylovResult:
        """One ladder rung: adjust state/config, retry the solve."""
        if action == "rebuild_precond":
            self.reset_solver_caches()
            with self.timers.measure(self.phase("precond_setup")):
                with self.world.phase_scope(self.phase("precond_setup")):
                    self._precond = self.make_preconditioner(A)
            self._solves_since_setup = 1
            return self._run_krylov(A, b, x0, cfg)
        if action == "expand_krylov":
            boosted = replace(
                cfg,
                restart=max(1, int(cfg.restart * policy.retry_scale)),
                max_iters=max(1, int(cfg.max_iters * policy.retry_scale)),
            )
            return self._run_krylov(A, b, x0, boosted)
        if action == "fallback_method":
            # Both CG flavors fall back to GMRES (the robust general
            # method); GMRES falls back to classical CG.
            alternate = "cg" if cfg.method == "gmres" else "gmres"
            return self._run_krylov(A, b, x0, replace(cfg, method=alternate))
        raise ValueError(f"unknown recovery action {action!r}")

    # -- helpers shared by the physics subclasses -----------------------------------

    def constraint_values_to_rhs(
        self, asmblr: LocalAssembler, values_app: np.ndarray
    ) -> None:
        """Identity constraint rows: diag 1 handled via add_diag by caller;
        here the RHS takes the prescribed value (new numbering)."""
        rows_app = self.constraint_rows()
        rows_new = self.comp.numbering.old_to_new[rows_app]
        asmblr.set_constraint_rhs(rows_new, values_app[rows_app])

    def unit_constraint_diag(self) -> np.ndarray:
        """Diagonal contribution: 1 on constraint rows, 0 elsewhere (new)."""
        d = np.zeros(self.comp.n)
        d[self.constraint_rows()] = 1.0
        return self._to_new(d)
