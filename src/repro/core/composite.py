"""Composite view over an overset mesh system.

Nalu-Wind keeps all of its component meshes in one STK bulk-data instance
and assembles a single linear system per equation over all of them; the
overset receptors appear as constraint rows.  :class:`CompositeMesh` builds
that view: global DoF numbering over all component meshes, concatenated
geometry/metric arrays, overset statuses, donor sets in global ids, the
active edge list (hole-incident edges dropped), and the domain
decomposition + rank-block renumbering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.comm.simcomm import SimWorld
from repro.mesh.turbine import TurbineMeshSystem
from repro.overset.assembler import (
    DonorSet,
    NodeStatus,
    OversetAssembler,
    OversetConnectivity,
)
from repro.partition.multilevel import multilevel_partition
from repro.partition.rcb import rcb_element_node_partition, rcb_partition
from repro.partition.renumber import RankNumbering, build_numbering


@dataclass
class GlobalDonorSet:
    """A donor set expressed in composite (global application) ids."""

    receptors: np.ndarray
    donors: np.ndarray
    weights: np.ndarray

    def interpolate(self, field: np.ndarray) -> np.ndarray:
        """Evaluate a composite field at the receptors."""
        vals = field[self.donors]
        if vals.ndim == 3:
            return np.einsum("mi,mic->mc", self.weights, vals)
        return np.einsum("mi,mi->m", self.weights, vals)


class CompositeMesh:
    """All component meshes of a turbine system as one DoF space."""

    def __init__(
        self,
        world: SimWorld,
        system: TurbineMeshSystem,
        partition_method: str = "parmetis",
    ) -> None:
        self.world = world
        self.system = system
        self.partition_method = partition_method
        self.meshes = system.meshes
        self.mesh_offsets = np.zeros(len(self.meshes) + 1, dtype=np.int64)
        np.cumsum(
            [m.n_nodes for m in self.meshes], out=self.mesh_offsets[1:]
        )
        self.n = int(self.mesh_offsets[-1])
        self._assembler = OversetAssembler(self.meshes)
        self.update_connectivity()
        self._partition()

    # -- overset connectivity (recomputed after mesh motion) -------------------

    def update_connectivity(self) -> None:
        """(Re)build overset connectivity and refresh geometry arrays."""
        self.connectivity: OversetConnectivity = self._assembler.assemble()
        off = self.mesh_offsets
        self.statuses = np.concatenate(
            [st for st in self.connectivity.statuses]
        )
        self.donor_sets = [
            GlobalDonorSet(
                receptors=ds.receptors + off[ds.receptor_mesh],
                donors=ds.donors + off[ds.donor_mesh],
                weights=ds.weights,
            )
            for ds in self.connectivity.donor_sets
        ]
        self.coords = np.concatenate([m.coords for m in self.meshes])
        self.node_volume = np.concatenate(
            [m.node_volume for m in self.meshes]
        )
        edges = []
        areas = []
        lengths = []
        dirs = []
        for k, m in enumerate(self.meshes):
            edges.append(m.edges + off[k])
            areas.append(m.edge_area)
            lengths.append(m.edge_length)
            dirs.append(m.edge_dir)
        all_edges = np.concatenate(edges)
        all_areas = np.concatenate(areas)
        all_lengths = np.concatenate(lengths)
        all_dirs = np.concatenate(dirs, axis=0)
        # Drop hole-incident edges: holes are frozen identity rows and, by
        # the assembler's invariant, never border an active FIELD stencil.
        hole = self.statuses == NodeStatus.HOLE
        keep = ~(hole[all_edges[:, 0]] | hole[all_edges[:, 1]])
        self.edges = all_edges[keep]
        self.edge_area = all_areas[keep]
        self.edge_length = all_lengths[keep]
        self.edge_dir = all_dirs[keep]
        self.n_edges = self.edges.shape[0]

        # Background boundary faces: the open dual faces through which
        # inflow/outflow mass and momentum enter or leave the domain (the
        # edge-based operators only close interior dual surfaces).
        sides = {"xlo": (0, False), "xhi": (0, True), "ylo": (1, False),
                 "yhi": (1, True), "zlo": (2, False), "zhi": (2, True)}
        bnodes = []
        bvecs = []
        bg = self.meshes[0]
        for _name, (axis, hi) in sides.items():
            ids, vecs = bg.boundary_face_vectors(axis, hi)
            bnodes.append(ids)  # background offset is 0
            bvecs.append(vecs)
        self.boundary_face_nodes = np.concatenate(bnodes)
        self.boundary_face_vectors = np.concatenate(bvecs, axis=0)

        # Grid velocity (ALE flux): rotating blade meshes move.
        self.grid_velocity = np.zeros((self.n, 3))
        for k, m in enumerate(self.meshes[1:], start=1):
            rot = self.system.rotations[k - 1]
            self.grid_velocity[off[k] : off[k + 1]] = rot.grid_velocity(
                m.coords
            )

    # -- decomposition ----------------------------------------------------------

    def node_graph(self) -> sparse.csr_matrix:
        """Composite node adjacency over active edges."""
        e = self.edges
        ones = np.ones(e.shape[0])
        g = sparse.coo_matrix(
            (
                np.concatenate([ones, ones]),
                (
                    np.concatenate([e[:, 0], e[:, 1]]),
                    np.concatenate([e[:, 1], e[:, 0]]),
                ),
            ),
            shape=(self.n, self.n),
        )
        return g.tocsr()

    def all_cells(self) -> tuple[np.ndarray, np.ndarray]:
        """Concatenated element connectivity (composite ids) + centroids."""
        cells = np.concatenate(
            [
                m.cells + self.mesh_offsets[k]
                for k, m in enumerate(self.meshes)
            ]
        )
        centroids = self.coords[cells].mean(axis=1)
        return cells, centroids

    def _partition(self) -> None:
        nranks = self.world.size
        if self.partition_method == "rcb":
            # Element-based RCB with lowest-rank node ownership — the
            # paper's original workflow, with its sliver/imbalance
            # pathology on overset systems (Figs. 4-5).
            cells, centroids = self.all_cells()
            parts = rcb_element_node_partition(
                centroids, cells, self.n, nranks
            )
        else:
            # ParMETIS-style: partition the matrix graph with row-nnz
            # vertex weights so nonzeros balance (Fig. 5).
            g = self.node_graph()
            vwgt = np.asarray(
                (g != 0).sum(axis=1)
            ).ravel().astype(np.float64) + 1.0
            parts = multilevel_partition(g, nranks, vertex_weights=vwgt)
        self.parts = parts
        self.numbering: RankNumbering = build_numbering(parts, nranks)

    # -- boundary sets in composite ids -------------------------------------------

    def boundary(self, mesh_index: int, name: str) -> np.ndarray:
        """Composite ids of one mesh's named boundary."""
        return (
            self.meshes[mesh_index].boundaries[name]
            + self.mesh_offsets[mesh_index]
        )

    def background_boundary(self, name: str) -> np.ndarray:
        """Composite ids of a background-side boundary set."""
        return self.boundary(0, name)

    def fringe_nodes(self) -> np.ndarray:
        """Composite ids of all overset receptor rows."""
        return np.flatnonzero(self.statuses == NodeStatus.FRINGE)

    def hole_nodes(self) -> np.ndarray:
        """Composite ids of all deactivated rows."""
        return np.flatnonzero(self.statuses == NodeStatus.HOLE)

    def wall_nodes(self) -> np.ndarray:
        """Composite ids of all near-body wall (no-slip) nodes."""
        out = []
        for k, m in enumerate(self.meshes):
            if "wall" in m.boundaries:
                out.append(m.boundaries["wall"] + self.mesh_offsets[k])
        return (
            np.unique(np.concatenate(out))
            if out
            else np.zeros(0, dtype=np.int64)
        )
