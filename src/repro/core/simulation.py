"""The Nalu-Wind-style simulation driver.

Each time step (paper §5): rotate the rotor, refresh overset connectivity
and the equation graphs, then run ``picard_iterations`` nonlinear
iterations, each of which assembles and solves the momentum system (three
components on one shared operator, GMRES + SGS2), the pressure-Poisson
projection (GMRES + BoomerAMG), applies the velocity/flux correction, and
advances the turbulence-like scalar (GMRES + SGS2).  A cumulative
phase-aggregate snapshot is taken after every step so the harness can
price per-step NLI times — mean and standard deviation over the steps —
on any machine model, exactly the statistic Figs. 3/8/9/11 plot.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.comm.simcomm import SimWorld
from repro.core.composite import CompositeMesh
from repro.core.config import SimulationConfig
from repro.core.equation_system import PHASES
from repro.core.operators import (
    boundary_mass_flux,
    least_squares_gradient,
    mass_flux,
)
from repro.core.physics import (
    MomentumSystem,
    PressurePoissonSystem,
    ScalarTransportSystem,
)
from repro.core.timers import PhaseTimers
from repro.assembly.global_assembly import assemble_global_vector
from repro.mesh.turbine import TurbineMeshSystem, make_workload
from repro.obs.telemetry import (
    AMGSetupStats,
    RunTelemetry,
    collect_run_telemetry,
)
from repro.obs.profile import RunProfile, collect_run_profile
from repro.obs.timeline import TimelineProfiler
from repro.obs.tracer import Tracer
from repro.overset.assembler import NodeStatus
from repro.perf.cost import CostModel, PhaseAggregate, collect_phase_aggregates
from repro.perf.machines import get_machine
from repro.perf.roofline import roofline_join
from repro.resilience.checkpoint import (
    CheckpointError,
    CheckpointManager,
)
from repro.resilience.guards import SolverFailure, validate_fields
from repro.resilience.injection import FaultInjector
from repro.resilience.policy import RecoveryEvent, summarize_events


@dataclass
class SimulationReport:
    """Everything the benchmark harness needs from one run."""

    config: SimulationConfig
    workload: str
    total_nodes: int
    n_steps: int
    step_snapshots: list[dict[str, PhaseAggregate]]
    solve_iterations: dict[str, list[int]]
    peak_alloc_bytes: float
    wall_times: dict[str, float]
    divergence_norms: list[float] = field(default_factory=list)
    #: Recovery summary (``{}`` for a clean run; otherwise failures /
    #: recoveries-by-action counts and the raw event list — see
    #: :func:`repro.resilience.policy.summarize_events`).
    recovery: dict[str, Any] = field(default_factory=dict)
    #: Full machine-readable telemetry (attached by ``run()``).
    telemetry: RunTelemetry | None = None
    #: Per-rank profile document (attached by ``run()`` when
    #: ``config.profile`` is on; None otherwise).
    profile: RunProfile | None = None

    def step_deltas(self) -> list[dict[str, PhaseAggregate]]:
        """Per-step phase aggregates (differences of the cumulatives)."""
        out = []
        prev: dict[str, PhaseAggregate] = {}
        for snap in self.step_snapshots:
            delta = {}
            for ph, agg in snap.items():
                delta[ph] = agg.minus(prev.get(ph, PhaseAggregate()))
            out.append(delta)
            prev = snap
        return out

    def mean_iterations(self, system: str) -> float:
        """Mean linear iterations per solve of one equation system."""
        its = self.solve_iterations.get(system, [])
        return float(np.mean(its)) if its else 0.0


class NaluWindSimulation:
    """Incompressible-flow solve over an overset turbine mesh system."""

    def __init__(
        self,
        workload: str | TurbineMeshSystem,
        config: SimulationConfig | None = None,
    ) -> None:
        self.config = config or SimulationConfig()
        self.config.validate()
        if isinstance(workload, str):
            self.workload_name = workload
            self.system = make_workload(workload)
        else:
            self.workload_name = workload.name
            self.system = workload
        self.world = SimWorld(self.config.nranks, seed=self.config.world_seed)
        # Per-rank timeline profiling: the profiler must attach before
        # CompositeMesh construction so partitioning/graph phases land on
        # the simulated rank clocks too.
        if self.config.profile:
            machine = get_machine(self.config.profile_machine)
            self.world.profiler = TimelineProfiler(
                self.config.nranks,
                pricer=CostModel(machine),
                ops=self.world.ops,
            )
        # One tracer backs the phase timers, so flat per-phase totals and
        # the nested span timeline come from the same measurements.
        self.tracer = (
            Tracer(clock=self.config.clock)
            if self.config.clock is not None
            else Tracer()
        )
        self.timers = PhaseTimers(tracer=self.tracer)
        # AMG setup stats arrive through the world's observer hub (the
        # hierarchy is built deep inside the pressure preconditioner).
        self.amg_setups: list[AMGSetupStats] = []
        self.world.hub.subscribe(
            "amg_setup",
            lambda stats, **_kw: self.amg_setups.append(stats),
        )
        # Resilience: scheduled faults corrupt exchanges/operators/solves
        # deterministically; failure and recovery events are aggregated
        # here for the report's recovery summary.
        if self.config.faults:
            self.world.fault_injector = FaultInjector(
                self.config.faults, seed=self.config.fault_seed
            )
        self.world.comm_max_retries = self.config.recovery.comm_max_retries
        self.recovery_events: list[dict[str, Any]] = []
        self.world.hub.subscribe("solver_failure", self._on_solver_failure)
        self.world.hub.subscribe("recovery", self._on_recovery)
        self.comp = CompositeMesh(
            self.world, self.system, self.config.partition_method
        )
        self.momentum = MomentumSystem(self.comp, self.config, self.timers)
        self.pressure = PressurePoissonSystem(
            self.comp, self.config, self.timers
        )
        self.scalar = ScalarTransportSystem(self.comp, self.config, self.timers)
        self.systems = (self.momentum, self.pressure, self.scalar)
        self.initialize_fields()
        self.step_snapshots: list[dict[str, PhaseAggregate]] = []
        self.divergence_norms: list[float] = []
        # Durable checkpoint/restart (docs/checkpoint_restart.md).
        self.step_index = 0
        self._resume_total = False
        self._checkpoint_restores = 0
        self._ckpt_manager: CheckpointManager | None = None
        # Solve-iteration history restored from a cold checkpoint: the
        # report prepends it so a resumed run's solve_iterations equal
        # the uninterrupted run's (canonical campaign results stay
        # bitwise-identical across crash/resume boundaries).
        self._restored_solve_iterations: dict[str, list[int]] = {}
        if self.config.restart_from:
            self._load_restart(self.config.restart_from)
            # The first run() after a cold restart interprets n_steps as
            # the *total* step count from t=0, so the restart-vs-
            # uninterrupted comparison uses identical call shapes.
            self._resume_total = True

    # -- state -------------------------------------------------------------------

    def initialize_fields(self) -> None:
        """Cold start: uniform inflow everywhere (paper §5)."""
        n = self.comp.n
        cfg = self.config
        self.velocity = np.tile(np.asarray(cfg.inflow_velocity), (n, 1))
        self.velocity_old = self.velocity.copy()
        self.pressure_field = np.zeros(n)
        self.pressure_correction = np.zeros(n)
        self.scalar_field = np.full(n, ScalarTransportSystem.inflow_value)
        self.scalar_old = self.scalar_field.copy()
        # Register nodal-field memory with the allocator model.
        per_rank = 9.0 * 8.0 * n / self.world.size
        for r in range(self.world.size):
            self.world.ops.record_alloc(r, per_rank)

    def _new_to_app(self, data_new: np.ndarray) -> np.ndarray:
        """Reorder a solved (rank-block) vector back to application order."""
        return data_new[self.comp.numbering.old_to_new]

    # -- resilience --------------------------------------------------------------

    def _on_solver_failure(self, failure: Any = None, **kw: Any) -> None:
        """Hub observer: fold a solver_failure event into the run record."""
        entry: dict[str, Any] = {"event": "solver_failure"}
        if failure is not None:
            entry.update(failure.to_dict())
        else:
            entry.update(kw)
        self.recovery_events.append(entry)

    def _on_recovery(self, **kw: Any) -> None:
        """Hub observer: fold a recovery event into the run record."""
        entry: dict[str, Any] = {"event": "recovery"}
        entry.update(kw)
        self.recovery_events.append(entry)

    def _checkpoint_fields(self) -> dict[str, np.ndarray]:
        """Copy the full field state for a possible rollback."""
        state = {
            "velocity": self.velocity.copy(),
            "velocity_old": self.velocity_old.copy(),
            "pressure_field": self.pressure_field.copy(),
            "pressure_correction": self.pressure_correction.copy(),
            "scalar_field": self.scalar_field.copy(),
            "scalar_old": self.scalar_old.copy(),
        }
        if hasattr(self, "mdot"):
            state["mdot"] = self.mdot.copy()
        return state

    def _restore_fields(self, checkpoint: dict[str, np.ndarray]) -> None:
        """Restore field state from a checkpoint (copies, reusable)."""
        for name, arr in checkpoint.items():
            setattr(self, name, arr.copy())

    def _rollback(self, checkpoint: dict[str, np.ndarray],
                  failure: SolverFailure, attempt: int) -> None:
        """Undo a failed step: rewind motion, restore fields, back off dt.

        The failed step's rotor advance is reversed (``advance_rotor`` with
        negative dt), every solver cache derived from the corrupted state
        is dropped, and the timestep is scaled by ``dt_backoff`` for the
        re-step; connectivity and graphs are rebuilt by the re-run of
        :meth:`_step_body` itself.
        """
        cfg = self.config
        policy = cfg.recovery
        self.system.advance_rotor(-cfg.dt)
        self._restore_fields(checkpoint)
        for eq in self.systems:
            eq.reset_solver_caches()
        new_dt = cfg.dt * policy.dt_backoff
        detail = f"dt {cfg.dt:.4g} -> {new_dt:.4g}"
        cfg.dt = new_dt
        self.world.metrics.counter(
            "resilience.recoveries",
            action="rollback_restep",
            equation=failure.equation,
        ).inc()
        event = RecoveryEvent(
            equation=failure.equation,
            kind=failure.kind,
            action="rollback_restep",
            attempt=attempt,
            success=True,
            detail=detail,
        )
        self.world.hub.emit("recovery", **event.to_dict())

    def _guard_fields(self) -> None:
        """NaN/Inf check of the solution fields at end of step."""
        if not self.config.recovery.guards:
            return
        try:
            validate_fields(
                {
                    "velocity": self.velocity,
                    "pressure": self.pressure_field,
                    "scalar": self.scalar_field,
                },
                phase="step",
            )
        except SolverFailure as failure:
            self.world.metrics.counter(
                "resilience.failures",
                equation=failure.equation,
                kind=failure.kind,
            ).inc()
            self.world.hub.emit(
                "solver_failure",
                equation=failure.equation,
                kind=failure.kind,
                failure=failure,
            )
            raise

    def _recovery_summary(self) -> dict[str, Any]:
        """Fold the run's failure/recovery events into a report summary.

        When durable checkpointing was active, a ``checkpoint`` section
        (writes/restores/retry counts) rides along; a nominal run without
        checkpoints keeps the legacy empty-dict shape.
        """
        summary = summarize_events(self.recovery_events)
        m = self.world.metrics
        writes = m.counter_total("resilience.checkpoint.writes")
        restores = m.counter_total("resilience.checkpoint.restores")
        if writes or restores:
            summary = dict(summary)
            summary["checkpoint"] = {
                "writes": int(writes),
                "restores": int(restores),
                "write_retries": int(
                    m.counter_total("resilience.checkpoint.write_retries")
                ),
                "corrupt_detected": int(
                    m.counter_total("resilience.checkpoint.corrupt_detected")
                ),
            }
        return summary

    # -- durable checkpoint/restart ----------------------------------------------

    def _checkpoint_manager(self) -> CheckpointManager:
        """The retention-ring manager over ``config.checkpoint_dir``."""
        if self._ckpt_manager is None:
            self._ckpt_manager = CheckpointManager(
                self.config.checkpoint_dir,
                keep=self.config.checkpoint_keep,
                injector=self.world.fault_injector,
                metrics=self.world.metrics,
            )
        return self._ckpt_manager

    def _capture_durable_state(
        self,
    ) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
        """Full restart state: fields, mesh motion, RNG, telemetry.

        Everything needed for a bitwise-exact resume is captured; derived
        state (overset connectivity, equation graphs, preconditioners) is
        deliberately *not* — the next step recomputes it deterministically
        from the restored inputs, exactly as the uninterrupted run would.
        Timing/traffic aggregates are environment, not simulation state,
        and restart from zero.
        """
        cfg = self.config
        arrays = self._checkpoint_fields()
        for i, mesh in enumerate(self.system.blades):
            arrays[f"blade{i}/coords"] = mesh.coords.copy()
        injector = self.world.fault_injector
        meta: dict[str, Any] = {
            "workload": self.workload_name,
            "nranks": cfg.nranks,
            "step_index": self.step_index,
            "dt": cfg.dt,
            "rotor_angles": [float(r.angle) for r in self.system.rotations],
            "divergence_norms": [float(v) for v in self.divergence_norms],
            "rng_state": self.world.rng.bit_generator.state,
            "injector": injector.state_dict() if injector else None,
            "metrics": self.world.metrics.state_dict(),
            # Cumulative per-equation iteration history (restored prefix
            # + this process's records): a cold restore preloads it so
            # the resumed run reports the same solve_iterations as the
            # uninterrupted one.
            "solve_iterations": {
                eq.name: self._restored_solve_iterations.get(eq.name, [])
                + [r.iterations for r in eq.solve_records]
                for eq in self.systems
            },
        }
        return arrays, meta

    def _restore_durable_state(
        self,
        arrays: dict[str, np.ndarray],
        meta: dict[str, Any],
        *,
        cold: bool,
    ) -> None:
        """Apply a checkpoint to this simulation.

        ``cold=True`` (process restart) additionally restores the RNG
        streams, fault-injector schedule, and telemetry counters, making
        the resumed run indistinguishable from the uninterrupted one.
        ``cold=False`` (in-run recovery restore) rewinds only the physics
        and motion state: the environment — counters, fired faults, RNG
        consumption — does not rewind with it, which is also what keeps a
        deterministic injected fault from replaying forever.
        """
        cfg = self.config
        if meta["workload"] != self.workload_name:
            raise CheckpointError(
                f"checkpoint is for workload {meta['workload']!r}, "
                f"this simulation runs {self.workload_name!r}"
            )
        if int(meta["nranks"]) != cfg.nranks:
            raise CheckpointError(
                f"checkpoint was taken with nranks={meta['nranks']}, "
                f"this simulation has nranks={cfg.nranks}"
            )
        self._restore_fields(
            {k: v for k, v in arrays.items() if "/" not in k}
        )
        # Blade meshes restore to their exact checkpointed coordinates
        # (not a re-rotation: an accumulated single rotation is not
        # bitwise-identical to the step-by-step product of rotations).
        for i, (mesh, rot) in enumerate(
            zip(self.system.blades, self.system.rotations)
        ):
            mesh.coords[:] = arrays[f"blade{i}/coords"]
            rot.angle = float(meta["rotor_angles"][i])
            mesh.update_metrics()
        self.comp.update_connectivity()
        for eq in self.systems:
            eq.reset_solver_caches()
        self.step_index = int(meta["step_index"])
        cfg.dt = float(meta["dt"])
        if cold:
            self.divergence_norms = [
                float(v) for v in meta["divergence_norms"]
            ]
            self.world.rng.bit_generator.state = meta["rng_state"]
            if self.world.fault_injector is not None and meta.get("injector"):
                self.world.fault_injector.load_state(meta["injector"])
            self.world.metrics.load_state(meta["metrics"])
            self._restored_solve_iterations = {
                name: [int(i) for i in its]
                for name, its in (meta.get("solve_iterations") or {}).items()
            }

    def write_checkpoint(self) -> str:
        """Durably checkpoint the current state; returns the file path."""
        mgr = self._checkpoint_manager()
        with self.tracer.span("checkpoint", step=self.step_index):
            # Count the write *before* capturing telemetry state: the
            # restored counter then equals the uninterrupted run's value
            # at the same step (counter parity is part of the bitwise-
            # resume guarantee).
            self.world.metrics.counter("resilience.checkpoint.writes").inc()
            arrays, meta = self._capture_durable_state()
            path = mgr.save(self.step_index, arrays, meta)
        self.world.hub.emit("checkpoint", step=self.step_index, path=path)
        return path

    def _load_restart(self, source: str) -> None:
        """Cold-start restore from a checkpoint file or directory."""
        with self.tracer.span("restart", source=source):
            if os.path.isdir(source):
                mgr = CheckpointManager(
                    source,
                    keep=self.config.checkpoint_keep,
                    injector=self.world.fault_injector,
                    metrics=self.world.metrics,
                )
                arrays, meta, path = mgr.load_latest_good()
            else:
                arrays, meta = self._checkpoint_manager().load(source)
                path = source
            self._restore_durable_state(arrays, meta, cold=True)
        # After load_state replaced the registry: this increment is new
        # activity of the restarted process, not checkpointed state.
        self.world.metrics.counter(
            "resilience.checkpoint.restores", source="cold"
        ).inc()
        self.world.hub.emit(
            "restart", step=self.step_index, path=path, source="cold"
        )

    def _try_checkpoint_restore(self, failure: SolverFailure) -> bool:
        """Last recovery rung: restore the newest good durable checkpoint.

        Runs when a failure has already exhausted the solver ladder and
        the in-memory rollback budget.  Bounded by
        ``recovery.max_checkpoint_restores`` per run; returns False when
        disabled, exhausted, or no loadable checkpoint exists (the
        failure then surfaces to the caller).
        """
        policy = self.config.recovery
        if not (policy.enabled and policy.rollback):
            return False
        if self._checkpoint_restores >= policy.max_checkpoint_restores:
            return False
        if not self.config.checkpoint_every:
            return False
        try:
            arrays, meta, path = self._checkpoint_manager().load_latest_good()
        except CheckpointError:
            return False
        self._checkpoint_restores += 1
        rewound_from = self.step_index
        self._restore_durable_state(arrays, meta, cold=False)
        self.world.metrics.counter(
            "resilience.checkpoint.restores", source="recovery"
        ).inc()
        event = RecoveryEvent(
            equation=failure.equation,
            kind=failure.kind,
            action="checkpoint_restore",
            attempt=self._checkpoint_restores,
            success=True,
            detail=(
                f"step {rewound_from} -> {self.step_index} "
                f"({os.path.basename(path)})"
            ),
        )
        self.world.hub.emit("recovery", **event.to_dict())
        self.world.hub.emit(
            "restart", step=self.step_index, path=path, source="recovery"
        )
        return True

    def effective_viscosity(self) -> np.ndarray:
        """Molecular + turbulence-scalar eddy viscosity."""
        cfg = self.config
        return cfg.viscosity + cfg.density * np.maximum(
            self.scalar_field, 0.0
        )

    # -- nonlinear iteration ---------------------------------------------------------

    def picard_iteration(self) -> None:
        cfg = self.config
        comp = self.comp

        # Momentum: one operator, three RHS/solves.  The projection
        # timescale tau = rho V / a_p (SIMPLE-consistent) is evaluated from
        # the same advection/diffusion state the operator is built from.
        mu_eff = self.effective_viscosity()
        bflux = boundary_mass_flux(comp, self.velocity, cfg.density)
        mdot_plain = mass_flux(comp, self.velocity, cfg.density)
        tau_node = self.momentum.projection_tau(mdot_plain, mu_eff, bflux)
        a, b = comp.edges[:, 0], comp.edges[:, 1]
        tau_edge = 0.5 * (tau_node[a] + tau_node[b])
        mdot = mass_flux(
            comp,
            self.velocity,
            cfg.density,
            pressure=self.pressure_field if cfg.rhie_chow else None,
            tau=tau_edge if cfg.rhie_chow else 0.0,
        )
        A_m, rhs_u = self.momentum.assemble(
            mdot=mdot,
            mu_eff=mu_eff,
            component=0,
            velocity=self.velocity,
            velocity_old=self.velocity_old,
            pressure=self.pressure_field,
            boundary_flux=bflux,
        )
        u_star = self.velocity.copy()
        res = self.momentum.solve(A_m, rhs_u)
        u_star[:, 0] = self._new_to_app(res.x.data)
        for c in (1, 2):
            rhs_c = self._momentum_rhs_only(c)
            res = self.momentum.solve(A_m, rhs_c)
            u_star[:, c] = self._new_to_app(res.x.data)
        # SIMPLE-style velocity under-relaxation on free rows: damps the
        # nonlinear u <-> p Picard loop at large advective CFL.
        alpha_u = cfg.velocity_relax
        if alpha_u < 1.0:
            free_m = np.ones(comp.n, dtype=bool)
            free_m[self.momentum.constraint_rows()] = False
            u_star[free_m] = (
                alpha_u * u_star[free_m]
                + (1.0 - alpha_u) * self.velocity[free_m]
            )

        # Pressure projection.
        mdot_star = mass_flux(
            comp,
            u_star,
            cfg.density,
            pressure=self.pressure_field if cfg.rhie_chow else None,
            tau=tau_edge if cfg.rhie_chow else 0.0,
        )
        # Overset constraint for the correction: enforce continuity of the
        # *total* pressure across mesh boundaries, p_rec + p'_rec =
        # interp(p_donor); as the Picard iteration converges the receptor
        # corrections go to zero together with the field mismatch.
        pc_bc = np.zeros(comp.n)
        for ds in comp.donor_sets:
            pc_bc[ds.receptors] = (
                ds.interpolate(self.pressure_field)
                - self.pressure_field[ds.receptors]
            )
        bflux_star = boundary_mass_flux(comp, u_star, cfg.density)
        A_p, rhs_p = self.pressure.assemble(
            mdot=mdot_star,
            pressure_correction_bc=pc_bc,
            boundary_flux=bflux_star,
            tau_edge=tau_edge,
        )
        res_p = self.pressure.solve(A_p, rhs_p)
        p_prime = self._new_to_app(res_p.x.data)
        self.pressure_correction = p_prime
        # Under-relaxed pressure accumulation; the velocity/flux correction
        # below still uses the full p' so the corrected mass flux satisfies
        # the discrete continuity this projection just solved.
        self.pressure_field = (
            self.pressure_field + cfg.pressure_relax * p_prime
        )

        # Velocity / flux correction on free momentum rows, scaled by the
        # same tau the projection operator used.
        grad_p = least_squares_gradient(comp, p_prime)
        free = np.ones(comp.n, dtype=bool)
        free[self.momentum.constraint_rows()] = False
        self.velocity = u_star.copy()
        self.velocity[free] -= (
            (tau_node[free] / cfg.density)[:, None] * grad_p[free]
        )

        # Corrected mass flux drives the scalar advection.
        g_e = self.pressure.laplace_coefficients(tau_edge)
        self.mdot = mdot_star - g_e * (p_prime[b] - p_prime[a])

        # Scalar transport.
        A_s, rhs_s = self.scalar.assemble(
            mdot=self.mdot,
            scalar=self.scalar_field,
            scalar_old=self.scalar_old,
            boundary_flux=boundary_mass_flux(
                comp, self.velocity, cfg.density
            ),
        )
        res_s = self.scalar.solve(A_s, rhs_s)
        self.scalar_field = self._new_to_app(res_s.x.data)

    def _momentum_rhs_only(self, component: int):
        """Reassemble only the momentum RHS for another component."""
        m = self.momentum
        with self.timers.measure(m.phase("local_assembly")):
            with self.world.phase_scope(m.phase("local_assembly")):
                m.assembler.reset_rhs()
                m.fill_rhs(
                    m.assembler,
                    component,
                    self.velocity,
                    self.velocity_old,
                    self.pressure_field,
                )
                local = m.assembler.finalize()
        with self.timers.measure(m.phase("global_assembly")):
            with self.world.phase_scope(m.phase("global_assembly")):
                rhs = assemble_global_vector(
                    self.world,
                    self.comp.numbering,
                    local,
                    variant=self.config.assembly_variant,
                    plan=m._active_plan(),
                )
        return rhs

    # -- time stepping ----------------------------------------------------------------

    def step(self) -> None:
        """One time step: motion, connectivity, graphs, Picard loop.

        With rollback enabled, a :class:`SolverFailure` that escapes the
        solver-level recovery ladder rolls the step back (rewind motion,
        restore checkpointed fields, drop solver caches) and re-steps
        with ``dt * dt_backoff``, up to ``max_step_retries`` times; the
        backed-off dt applies to the retried step only.  An exhausted
        retry budget re-raises the failure.
        """
        policy = self.config.recovery
        checkpoint = None
        if policy.enabled and policy.rollback:
            checkpoint = self._checkpoint_fields()
        dt0 = self.config.dt
        retries = 0
        try:
            while True:
                try:
                    with self.tracer.span(
                        "step", index=len(self.step_snapshots)
                    ):
                        self._step_body()
                    break
                except SolverFailure as failure:
                    if (
                        checkpoint is None
                        or retries >= policy.max_step_retries
                    ):
                        raise
                    retries += 1
                    self._rollback(checkpoint, failure, retries)
        finally:
            self.config.dt = dt0
        self.step_index += 1
        self.step_snapshots.append(collect_phase_aggregates(self.world))
        # Progress heartbeat for external supervisors (campaign workers
        # beat their job lease on it; see docs/campaign.md).
        self.world.hub.emit("step_complete", step=self.step_index)

    def _step_body(self) -> None:
        cfg = self.config
        if self.world.profiler is not None:
            self.world.profiler.on_marker("step", index=self.step_index)
        with self.timers.measure("motion"):
            with self.world.phase_scope("motion"):
                self.system.advance_rotor(cfg.dt)
                self.comp.update_connectivity()
        for eq in self.systems:
            eq.update_graph()
        for k in range(cfg.picard_iterations):
            if self.world.profiler is not None:
                self.world.profiler.on_marker("picard", index=k)
            with self.tracer.span("picard", index=k):
                self.picard_iteration()
        self._guard_fields()
        # Mass-conservation diagnostic on free pressure rows (interior
        # edge fluxes plus open boundary faces).
        div = np.zeros(self.comp.n)
        a, b = self.comp.edges[:, 0], self.comp.edges[:, 1]
        np.add.at(div, a, self.mdot)
        np.add.at(div, b, -self.mdot)
        div += boundary_mass_flux(
            self.comp, self.velocity, self.config.density
        )
        free = np.ones(self.comp.n, dtype=bool)
        free[self.pressure.constraint_rows()] = False
        self.divergence_norms.append(
            float(np.linalg.norm(div[free]))
            / max(float(np.linalg.norm(self.mdot)), 1e-300)
        )
        self.velocity_old = self.velocity.copy()
        self.scalar_old = self.scalar_field.copy()

    def run(self, n_steps: int) -> SimulationReport:
        """Advance ``n_steps`` and return the run report.

        With ``config.checkpoint_every > 0`` a durable checkpoint is
        written after every Nth completed step, and a
        :class:`SolverFailure` that exhausts the in-memory rollback
        budget is retried once more from the newest good checkpoint
        (bounded by ``recovery.max_checkpoint_restores``).

        On the first ``run()`` after a cold restart (``restart_from``),
        ``n_steps`` is the *total* step count from t=0 — the run advances
        only the remaining steps, so restarted and uninterrupted runs are
        invoked identically.  Subsequent calls advance ``n_steps`` more,
        as always.
        """
        cfg = self.config
        if self._resume_total:
            self._resume_total = False
            advance = max(0, int(n_steps) - self.step_index)
        else:
            advance = int(n_steps)
        target = self.step_index + advance
        while self.step_index < target:
            try:
                self.step()
            except SolverFailure as failure:
                if not self._try_checkpoint_restore(failure):
                    raise
                continue
            if (
                cfg.checkpoint_every
                and self.step_index % cfg.checkpoint_every == 0
            ):
                self.write_checkpoint()
        report = SimulationReport(
            config=self.config,
            workload=self.workload_name,
            total_nodes=self.comp.n,
            n_steps=advance,
            step_snapshots=list(self.step_snapshots),
            solve_iterations={
                eq.name: self._restored_solve_iterations.get(eq.name, [])
                + [r.iterations for r in eq.solve_records]
                for eq in self.systems
            },
            peak_alloc_bytes=self.world.ops.peak_alloc(),
            wall_times=self.timers.snapshot(),
            divergence_norms=list(self.divergence_norms),
            recovery=self._recovery_summary(),
        )
        # Profile before telemetry: publish_metrics runs here, so the
        # telemetry metrics snapshot carries the profile.* gauges.
        if self.world.profiler is not None:
            report.profile = self._collect_profile()
        report.telemetry = collect_run_telemetry(self, report)
        return report

    def _collect_profile(self) -> RunProfile:
        """Finalize the timeline, join the roofline, publish gauges."""
        prof = self.world.profiler
        prof.finalize()
        join = roofline_join(self.world.ops, prof, prof.pricer)
        profile = collect_run_profile(self, roofline=join)
        profile.publish_metrics(self.world.metrics)
        self.world.hub.emit("profile", profile=profile)
        return profile
