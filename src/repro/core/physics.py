"""The governing-equation systems: momentum, pressure-Poisson, scalar.

The CFD model of the paper (§1): "mass-continuity, Poisson-type equation
for pressure and Helmholtz-type equations for transport of momentum and
other scalars (e.g., those for turbulence models)", advanced by a Picard
iteration.  Momentum and the turbulence scalar are solved with GMRES and
the SGS2 two-stage Gauss-Seidel preconditioner; pressure-Poisson with
GMRES preconditioned by a BoomerAMG V-cycle (§4.2).
"""

from __future__ import annotations

import numpy as np

from repro.amg.cycle import AMGPreconditioner
from repro.amg.hierarchy import AMGHierarchy
from repro.assembly.global_assembly import assemble_global_vector
from repro.assembly.local import LocalAssembler
from repro.core.equation_system import EquationSystem
from repro.core.operators import (
    diffusion_coefficients,
    diffusion_pairs,
    edge_average,
    mass_flux,
    upwind_advection_coefficients,
)
from repro.linalg.parcsr import ParCSRMatrix
from repro.linalg.parvector import ParVector
from repro.smoothers.factory import make_smoother


class MomentumSystem(EquationSystem):
    """Helmholtz-type momentum transport, solved component-wise.

    The advection-diffusion operator is assembled once per Picard
    iteration; the three velocity components share it and only re-assemble
    their RHS (Algorithm 2 runs per component).
    """

    name = "momentum"

    def dirichlet_rows(self) -> np.ndarray:
        comp = self.comp
        sides = [
            comp.background_boundary(s)
            for s in ("xlo", "ylo", "yhi", "zlo", "zhi")
        ]
        return np.unique(np.concatenate(sides + [comp.wall_nodes()]))

    def solver_config(self):
        return self.config.momentum_solver

    def make_preconditioner(self, A: ParCSRMatrix):
        return make_smoother(
            "sgs2",
            A,
            inner_sweeps=self.config.sgs_inner,
            outer_sweeps=self.config.sgs_outer,
        )

    def row_diagonal(
        self,
        mdot: np.ndarray,
        mu_eff: np.ndarray,
        boundary_flux: np.ndarray,
    ) -> np.ndarray:
        """Unconstrained momentum diagonal ``a_p`` per node.

        The SIMPLE-consistent projection scales with ``rho V / a_p``;
        computing ``a_p`` from the physics (rather than the assembled
        matrix) keeps it defined on constraint rows too.
        """
        comp = self.comp
        cfg = self.config
        g_e = diffusion_coefficients(comp, mu_eff)
        diag = cfg.density * comp.node_volume / cfg.dt
        a, b = comp.edges[:, 0], comp.edges[:, 1]
        np.add.at(diag, a, np.maximum(mdot, 0.0) + g_e)
        np.add.at(diag, b, np.maximum(-mdot, 0.0) + g_e)
        diag += np.maximum(boundary_flux, 0.0)
        return diag

    def projection_tau(
        self,
        mdot: np.ndarray,
        mu_eff: np.ndarray,
        boundary_flux: np.ndarray,
    ) -> np.ndarray:
        """Per-node projection timescale ``tau = rho V / a_p`` [s].

        Bounded above by ``dt`` (the time term is part of ``a_p``), and
        much smaller in advection/diffusion-dominated near-wall cells —
        which is what keeps the pressure correction stable on the
        high-aspect-ratio blade meshes.
        """
        a_p = self.row_diagonal(mdot, mu_eff, boundary_flux)
        return self.config.density * self.comp.node_volume / a_p

    def boundary_velocity(self, velocity: np.ndarray) -> np.ndarray:
        """Velocity field with every constraint row set to its value."""
        comp = self.comp
        cfg = self.config
        out = velocity.copy()
        far = [
            comp.background_boundary(s)
            for s in ("xlo", "ylo", "yhi", "zlo", "zhi")
        ]
        far_rows = np.unique(np.concatenate(far))
        out[far_rows] = np.asarray(cfg.inflow_velocity)
        wall = comp.wall_nodes()
        out[wall] = comp.grid_velocity[wall]
        for ds in comp.donor_sets:
            out[ds.receptors] = ds.interpolate(velocity)
        # Holes keep their frozen current value.
        return out

    def fill(
        self,
        asmblr: LocalAssembler,
        mdot: np.ndarray,
        mu_eff: np.ndarray,
        component: int,
        velocity: np.ndarray,
        velocity_old: np.ndarray,
        pressure: np.ndarray,
        boundary_flux: np.ndarray,
    ) -> None:
        comp = self.comp
        cfg = self.config
        g_e = diffusion_coefficients(comp, mu_eff)
        vals4 = upwind_advection_coefficients(mdot) + diffusion_pairs(g_e)
        asmblr.add_edge_matrix(vals4)

        tmass = cfg.density * comp.node_volume / cfg.dt
        diag_app = tmass.copy()
        # First-order outflow: advective outflux through open boundary
        # faces (only the outflow plane has free momentum rows).
        diag_app += np.maximum(boundary_flux, 0.0)
        diag_app[self.constraint_rows()] = 1.0
        asmblr.add_diag(self._to_new(diag_app))

        # RHS: BDF1 time term + pressure gradient (edge-computed so that
        # off-rank rows exercise Algorithm 2).
        self.fill_rhs(
            asmblr, component, velocity, velocity_old, pressure
        )

    def fill_rhs(
        self,
        asmblr: LocalAssembler,
        component: int,
        velocity: np.ndarray,
        velocity_old: np.ndarray,
        pressure: np.ndarray,
    ) -> None:
        """RHS only (shared matrix across the three components)."""
        comp = self.comp
        cfg = self.config
        tmass = cfg.density * comp.node_volume / cfg.dt
        node_rhs = tmass * velocity_old[:, component]
        # Pressure force through open boundary faces (closes the edge-based
        # surface integral of p at free boundary rows).
        ids = comp.boundary_face_nodes
        bforce = np.zeros(comp.n)
        np.add.at(
            bforce,
            ids,
            -pressure[ids] * comp.boundary_face_vectors[:, component],
        )
        node_rhs = node_rhs + bforce
        asmblr.add_node_rhs(self._to_new(node_rhs))

        pbar = edge_average(comp, pressure)
        S_c = comp.edge_area * comp.edge_dir[:, component]
        flux = pbar * S_c
        asmblr.add_edge_rhs(np.stack([-flux, flux], axis=1))

        bc = self.boundary_velocity(velocity)[:, component]
        self.constraint_values_to_rhs(asmblr, bc)


class PressurePoissonSystem(EquationSystem):
    """The continuity projection: ``-div(dt grad p') = -div(mdot*)``.

    The matrix inherits the mesh's pathological anisotropy through the
    ``A_e / d_e`` coefficients; AMG preconditioning is what makes it
    solvable (§1: "poorly conditioned linear systems ... can only be
    solved efficiently with sophisticated algorithms such as AMG").
    """

    name = "pressure"

    def dirichlet_rows(self) -> np.ndarray:
        # Reference pressure at the outflow plane keeps the Poisson system
        # nonsingular; all other boundaries are natural (Neumann).
        return self.comp.background_boundary("xhi")

    def solver_config(self):
        return self.config.pressure_solver

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._hierarchy: AMGHierarchy | None = None

    def make_preconditioner(self, A: ParCSRMatrix):
        if self._hierarchy is not None:
            self._hierarchy.release()
        h = AMGHierarchy(A, self.config.amg)
        self._hierarchy = h  # kept for complexity diagnostics
        return AMGPreconditioner(h)

    def refresh_preconditioner(self, A: ParCSRMatrix) -> bool:
        """Numeric-only Galerkin refresh on the frozen hierarchy.

        Runs between full rebuilds (``precond_rebuild_every > 1``) when
        the fine operator kept its sparsity pattern; falls back to plain
        stale reuse otherwise.
        """
        h = self._hierarchy
        if not self.config.amg_refresh or h is None:
            return False
        lvl0 = h.levels[0].A
        if A.shape != lvl0.shape or A.nnz != lvl0.nnz:
            return False  # pattern changed: next rebuild handles it
        h.refresh(A)
        return True

    def laplace_coefficients(
        self, tau_edge: np.ndarray | float | None = None
    ) -> np.ndarray:
        """Projection coefficients ``tau_e * A_e / d_e`` per edge.

        ``tau_edge`` defaults to ``dt`` (plain projection); the simulation
        passes the SIMPLE-consistent ``rho V / a_p`` edge average.
        """
        comp = self.comp
        tau = self.config.dt if tau_edge is None else tau_edge
        return tau * comp.edge_area / comp.edge_length

    def fill(
        self,
        asmblr: LocalAssembler,
        mdot: np.ndarray,
        pressure_correction_bc: np.ndarray,
        boundary_flux: np.ndarray | None = None,
        tau_edge: np.ndarray | float | None = None,
    ) -> None:
        comp = self.comp
        g_e = self.laplace_coefficients(tau_edge)
        asmblr.add_edge_matrix(diffusion_pairs(g_e))
        asmblr.add_diag(self.unit_constraint_diag())
        # RHS = -div(mdot*): edge e adds -mdot to its a-row, +mdot to b;
        # boundary faces contribute their outward mass flux directly.
        asmblr.add_edge_rhs(np.stack([-mdot, mdot], axis=1))
        if boundary_flux is not None:
            asmblr.add_node_rhs(self._to_new(-boundary_flux))
        self.constraint_values_to_rhs(asmblr, pressure_correction_bc)


class ScalarTransportSystem(EquationSystem):
    """Turbulence-model-like scalar transport (advection-diffusion)."""

    name = "scalar"

    inflow_value = 1.0e-2
    wall_value = 0.0

    def dirichlet_rows(self) -> np.ndarray:
        comp = self.comp
        sides = [
            comp.background_boundary(s)
            for s in ("xlo", "ylo", "yhi", "zlo", "zhi")
        ]
        return np.unique(np.concatenate(sides + [comp.wall_nodes()]))

    def solver_config(self):
        return self.config.scalar_solver

    def make_preconditioner(self, A: ParCSRMatrix):
        return make_smoother(
            "sgs2",
            A,
            inner_sweeps=self.config.sgs_inner,
            outer_sweeps=self.config.sgs_outer,
        )

    def boundary_scalar(self, scalar: np.ndarray) -> np.ndarray:
        """Scalar field with constraint rows set to their values."""
        comp = self.comp
        out = scalar.copy()
        far = [
            comp.background_boundary(s)
            for s in ("xlo", "ylo", "yhi", "zlo", "zhi")
        ]
        out[np.unique(np.concatenate(far))] = self.inflow_value
        out[comp.wall_nodes()] = self.wall_value
        for ds in comp.donor_sets:
            out[ds.receptors] = ds.interpolate(scalar)
        return out

    def fill(
        self,
        asmblr: LocalAssembler,
        mdot: np.ndarray,
        scalar: np.ndarray,
        scalar_old: np.ndarray,
        production: np.ndarray | None = None,
        boundary_flux: np.ndarray | None = None,
    ) -> None:
        comp = self.comp
        cfg = self.config
        g_e = diffusion_coefficients(comp, cfg.scalar_diffusivity)
        vals4 = upwind_advection_coefficients(mdot) + diffusion_pairs(g_e)
        asmblr.add_edge_matrix(vals4)

        tmass = cfg.density * comp.node_volume / cfg.dt
        diag_app = tmass.copy()
        if boundary_flux is not None:
            diag_app += np.maximum(boundary_flux, 0.0)
        diag_app[self.constraint_rows()] = 1.0
        asmblr.add_diag(self._to_new(diag_app))

        node_rhs = tmass * scalar_old
        if production is not None:
            node_rhs = node_rhs + comp.node_volume * production
        asmblr.add_node_rhs(self._to_new(node_rhs))
        self.constraint_values_to_rhs(asmblr, self.boundary_scalar(scalar))
