"""Simulation configuration.

One dataclass gathers every knob the benchmark harness sweeps: physics
parameters, solver settings, the paper's optimization toggles (assembly
variant, inner GS sweeps, partitioner), and run control.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.amg.hierarchy import AMGOptions
from repro.resilience.injection import FaultSpec
from repro.resilience.policy import RecoveryPolicy
from repro.serialize import (
    as_bool,
    as_float,
    as_float_triple,
    as_int,
    as_str,
    nested,
    nested_list,
    stable_digest,
    strict_kwargs,
)


@dataclass
class SolverConfig:
    """Linear-solver settings for one equation system."""

    # Krylov method: "gmres" | "cg" | "pipelined_cg" (dispatched through
    # repro.krylov.make_krylov_solver).
    method: str = "gmres"
    tol: float = 1e-5
    max_iters: int = 200
    restart: int = 60
    gs_variant: str = "one_reduce"
    # Keep per-iteration residual norms in the solve records / telemetry
    # (convergence traces); off skips the per-iteration bookkeeping.
    record_history: bool = True
    # Split halo exchange in solver SpMVs (matvec(overlap=True)): each
    # rank applies its diag block while boundary data is in flight.
    # Bitwise-identical solutions; only the communication schedule (and
    # the priced halo wait) changes.
    overlap: bool = False

    def to_dict(self) -> dict:
        """JSON-shaped dict of the solver settings (round-trip form)."""
        return {
            "method": self.method,
            "tol": self.tol,
            "max_iters": self.max_iters,
            "restart": self.restart,
            "gs_variant": self.gs_variant,
            "record_history": self.record_history,
            "overlap": self.overlap,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SolverConfig":
        """Strictly-validated inverse of :meth:`to_dict`."""
        return cls(
            **strict_kwargs(
                "SolverConfig",
                data,
                {
                    "method": as_str,
                    "tol": as_float,
                    "max_iters": as_int,
                    "restart": as_int,
                    "gs_variant": as_str,
                    "record_history": as_bool,
                    "overlap": as_bool,
                },
            )
        )

    def stable_hash(self) -> str:
        """Canonical content digest of the solver settings."""
        return stable_digest(self.to_dict())


@dataclass
class SimulationConfig:
    """Full configuration of a Nalu-Wind-style simulation run.

    Attributes mirror the paper's setup (§5): 4 Picard iterations per time
    step, uniform 8 m/s inflow, rigid blades, GMRES+SGS2 for momentum and
    scalars, GMRES+BoomerAMG for pressure.
    """

    # Physics.
    density: float = 1.2
    viscosity: float = 1.8e-5
    inflow_velocity: tuple[float, float, float] = (8.0, 0.0, 0.0)
    dt: float = 0.05
    picard_iterations: int = 4
    rhie_chow: bool = True
    # Picard under-relaxation (SIMPLE-style): needed when the near-wall
    # advective CFL is large, where the nonlinear u <-> p fixed point can
    # diverge without damping.  The flux correction always uses the full
    # p' so continuity is unaffected.
    velocity_relax: float = 0.7
    pressure_relax: float = 0.5
    scalar_diffusivity: float = 1e-3

    # Decomposition.
    nranks: int = 4
    partition_method: str = "parmetis"  # or "rcb"
    # Seed for the simulated world's RNG (campaign JobSpec.seed lands
    # here); distinct seeds give statistically independent replicas of
    # the same workload.
    world_seed: int = 0

    # Assembly (paper §3): "optimized" | "sparse_add" | "general".
    assembly_variant: str = "optimized"
    # Local-assembly accumulation (paper §3.2):
    # "atomic" | "deterministic" | "compensated".
    assembly_mode: str = "atomic"
    # Pattern-frozen global assembly: while the equation graph is
    # unchanged, replay the cached AssemblyPlan (value-only exchange +
    # segmented sums into the existing ParCSR storage) instead of
    # re-running sort/reduce/split.  Bitwise-identical operators; mesh
    # motion (graph rebuild) invalidates the plan automatically.
    reuse_assembly_plan: bool = True

    # Solvers.
    momentum_solver: SolverConfig = field(default_factory=SolverConfig)
    scalar_solver: SolverConfig = field(default_factory=SolverConfig)
    pressure_solver: SolverConfig = field(
        default_factory=lambda: SolverConfig(tol=1e-6, max_iters=300)
    )
    # Momentum/scalar SGS2 preconditioner (paper: 2 outer, 2 inner).
    sgs_outer: int = 2
    sgs_inner: int = 2
    # Pressure AMG.
    amg: AMGOptions = field(default_factory=lambda: AMGOptions())
    # Rebuild the pressure preconditioner every N solves (1 = always).
    precond_rebuild_every: int = 1
    # On solves that would otherwise reuse a stale hierarchy outright
    # (precond_rebuild_every > 1), run a numeric-only Galerkin refresh on
    # the frozen hierarchy structure instead (hypre's "reuse
    # interpolation" amortization).
    amg_refresh: bool = True

    # Resilience (docs/resilience.md): NaN/Inf guards + the recovery
    # escalation ladder for failed solves.
    recovery: RecoveryPolicy = field(default_factory=RecoveryPolicy)
    # Seeded deterministic fault injection (tests / chaos runs); empty
    # means a nominal run.
    faults: tuple[FaultSpec, ...] = ()
    fault_seed: int = 0

    # Durable checkpoint/restart (docs/checkpoint_restart.md).  A
    # checkpoint is written every N completed steps (0 disables);
    # restart_from names either a checkpoint file or a checkpoint
    # directory (the newest good ring entry is used).  Restored runs
    # reproduce the uninterrupted run bitwise.
    checkpoint_every: int = 0
    checkpoint_dir: str = "checkpoints"
    checkpoint_keep: int = 2
    restart_from: str = ""

    # Observability (docs/observability.md).  ``profile`` attaches a
    # per-rank TimelineProfiler to the world, pricing simulated rank
    # clocks on ``profile_machine``'s rates; the run report then carries
    # a ``repro.profile/1`` document.  ``clock`` overrides the Tracer's
    # wall-clock source (tests inject a deterministic fake clock so span
    # durations are assertable); None keeps ``time.perf_counter``.
    profile: bool = False
    profile_machine: str = "summit-gpu"
    clock: Callable[[], float] | None = None

    def validate(self) -> None:
        """Raise on inconsistent settings."""
        if self.partition_method not in ("parmetis", "rcb"):
            raise ValueError(
                f"unknown partition_method {self.partition_method!r}"
            )
        if self.assembly_variant not in ("optimized", "sparse_add", "general"):
            raise ValueError(
                f"unknown assembly_variant {self.assembly_variant!r}"
            )
        if self.assembly_mode not in ("atomic", "deterministic", "compensated"):
            raise ValueError(
                f"unknown assembly_mode {self.assembly_mode!r}"
            )
        for cfg_name in ("momentum_solver", "scalar_solver", "pressure_solver"):
            solver = getattr(self, cfg_name)
            if solver.method not in ("gmres", "cg", "pipelined_cg"):
                raise ValueError(
                    f"unknown {cfg_name}.method {solver.method!r}; "
                    "options ['gmres', 'cg', 'pipelined_cg']"
                )
            if not isinstance(solver.overlap, bool):
                raise ValueError(f"{cfg_name}.overlap must be a bool")
        if not isinstance(self.reuse_assembly_plan, bool):
            raise ValueError("reuse_assembly_plan must be a bool")
        if not isinstance(self.amg_refresh, bool):
            raise ValueError("amg_refresh must be a bool")
        if self.precond_rebuild_every < 1:
            raise ValueError("precond_rebuild_every must be >= 1")
        if self.picard_iterations < 1 or self.nranks < 1:
            raise ValueError("picard_iterations and nranks must be >= 1")
        if not (0.0 < self.velocity_relax <= 1.0):
            raise ValueError("velocity_relax must be in (0, 1]")
        if not (0.0 < self.pressure_relax <= 1.0):
            raise ValueError("pressure_relax must be in (0, 1]")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if self.checkpoint_keep < 1:
            raise ValueError("checkpoint_keep must be >= 1")
        if self.checkpoint_every and not self.checkpoint_dir:
            raise ValueError(
                "checkpoint_dir must be set when checkpoint_every > 0"
            )
        if not isinstance(self.profile, bool):
            raise ValueError("profile must be a bool")
        if self.profile and not self.profile_machine:
            raise ValueError(
                "profile_machine must be set when profile is on"
            )
        if self.clock is not None and not callable(self.clock):
            raise ValueError("clock must be callable (or None)")
        if self.world_seed < 0 or self.fault_seed < 0:
            raise ValueError("world_seed and fault_seed must be >= 0")
        self.recovery.validate()
        for spec in self.faults:
            spec.validate()

    #: ``stable_hash`` exclusions for the campaign job digest: durability
    #: knobs that change where/how often state is persisted but never the
    #: computed results, so they must not fragment the result cache.
    DURABILITY_KEYS = (
        "checkpoint_every",
        "checkpoint_dir",
        "checkpoint_keep",
        "restart_from",
    )

    def to_dict(self) -> dict:
        """JSON-shaped dict of the full configuration (round-trip form).

        ``clock`` is a runtime-only injection point (a callable) and has
        no serialized form; configs carrying one cannot be serialized.
        """
        if self.clock is not None:
            raise ValueError(
                "SimulationConfig.clock is runtime-only (a callable) and "
                "cannot be serialized; clear it before to_dict()"
            )
        return {
            "density": self.density,
            "viscosity": self.viscosity,
            "inflow_velocity": list(self.inflow_velocity),
            "dt": self.dt,
            "picard_iterations": self.picard_iterations,
            "rhie_chow": self.rhie_chow,
            "velocity_relax": self.velocity_relax,
            "pressure_relax": self.pressure_relax,
            "scalar_diffusivity": self.scalar_diffusivity,
            "nranks": self.nranks,
            "partition_method": self.partition_method,
            "world_seed": self.world_seed,
            "assembly_variant": self.assembly_variant,
            "assembly_mode": self.assembly_mode,
            "reuse_assembly_plan": self.reuse_assembly_plan,
            "momentum_solver": self.momentum_solver.to_dict(),
            "scalar_solver": self.scalar_solver.to_dict(),
            "pressure_solver": self.pressure_solver.to_dict(),
            "sgs_outer": self.sgs_outer,
            "sgs_inner": self.sgs_inner,
            "amg": self.amg.to_dict(),
            "precond_rebuild_every": self.precond_rebuild_every,
            "amg_refresh": self.amg_refresh,
            "recovery": self.recovery.to_dict(),
            "faults": [spec.to_dict() for spec in self.faults],
            "fault_seed": self.fault_seed,
            "checkpoint_every": self.checkpoint_every,
            "checkpoint_dir": self.checkpoint_dir,
            "checkpoint_keep": self.checkpoint_keep,
            "restart_from": self.restart_from,
            "profile": self.profile,
            "profile_machine": self.profile_machine,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationConfig":
        """Strictly-validated inverse of :meth:`to_dict`.

        Unknown keys and type mismatches raise ``ValueError``; absent
        keys take the dataclass defaults.  The result is
        :meth:`validate`-d before being returned.
        """
        config = cls(
            **strict_kwargs(
                "SimulationConfig",
                data,
                {
                    "density": as_float,
                    "viscosity": as_float,
                    "inflow_velocity": as_float_triple,
                    "dt": as_float,
                    "picard_iterations": as_int,
                    "rhie_chow": as_bool,
                    "velocity_relax": as_float,
                    "pressure_relax": as_float,
                    "scalar_diffusivity": as_float,
                    "nranks": as_int,
                    "partition_method": as_str,
                    "world_seed": as_int,
                    "assembly_variant": as_str,
                    "assembly_mode": as_str,
                    "reuse_assembly_plan": as_bool,
                    "momentum_solver": nested(SolverConfig.from_dict),
                    "scalar_solver": nested(SolverConfig.from_dict),
                    "pressure_solver": nested(SolverConfig.from_dict),
                    "sgs_outer": as_int,
                    "sgs_inner": as_int,
                    "amg": nested(AMGOptions.from_dict),
                    "precond_rebuild_every": as_int,
                    "amg_refresh": as_bool,
                    "recovery": nested(RecoveryPolicy.from_dict),
                    "faults": nested_list(FaultSpec.from_dict),
                    "fault_seed": as_int,
                    "checkpoint_every": as_int,
                    "checkpoint_dir": as_str,
                    "checkpoint_keep": as_int,
                    "restart_from": as_str,
                    "profile": as_bool,
                    "profile_machine": as_str,
                },
            )
        )
        config.validate()
        return config

    def stable_hash(self, exclude: tuple[str, ...] = ()) -> str:
        """Canonical content digest of the configuration.

        Key-order independent (sorted-JSON SHA-256); any field change
        changes the digest.  ``exclude`` drops top-level keys before
        hashing — the campaign job digest passes
        :data:`DURABILITY_KEYS` so checkpoint placement never fragments
        the result cache.
        """
        doc = self.to_dict()
        for key in exclude:
            doc.pop(key, None)
        return stable_digest(doc)
