"""The paper's primary contribution: the exascale-prep CFD pipeline."""

from repro.core.composite import CompositeMesh, GlobalDonorSet
from repro.core.config import SimulationConfig, SolverConfig
from repro.core.equation_system import PHASES, EquationSystem, SolveRecord
from repro.core.physics import (
    MomentumSystem,
    PressurePoissonSystem,
    ScalarTransportSystem,
)
from repro.core.postprocess import (
    q_criterion,
    strain_rate_magnitude,
    velocity_gradient,
    vorticity,
    vorticity_magnitude,
    wake_deficit_profile,
)
from repro.core.simulation import NaluWindSimulation, SimulationReport
from repro.core.timers import PhaseTimers

__all__ = [
    "CompositeMesh",
    "EquationSystem",
    "GlobalDonorSet",
    "MomentumSystem",
    "NaluWindSimulation",
    "PHASES",
    "PhaseTimers",
    "PressurePoissonSystem",
    "ScalarTransportSystem",
    "SimulationConfig",
    "SimulationReport",
    "SolveRecord",
    "SolverConfig",
    "q_criterion",
    "strain_rate_magnitude",
    "velocity_gradient",
    "vorticity",
    "vorticity_magnitude",
    "wake_deficit_profile",
]
