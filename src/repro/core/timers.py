"""Hierarchical wall-clock phase timers.

The paper's log files output per-equation, per-phase times (graph+physics,
local assembly, global assembly, preconditioner setup, solve) that Figures
6-7 plot.  :class:`PhaseTimers` measures the host wall clock of the same
phases; the *simulated machine* times come from the cost model, and the two
are reported side by side by the harness.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from typing import Iterator


class PhaseTimers:
    """Accumulating named wall-clock timers."""

    def __init__(self) -> None:
        self._total: dict[str, float] = defaultdict(float)
        self._count: dict[str, int] = defaultdict(int)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Time the enclosed block under ``name``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self._total[name] += dt
            self._count[name] += 1

    def total(self, name: str) -> float:
        """Accumulated seconds for a phase."""
        return self._total.get(name, 0.0)

    def count(self, name: str) -> int:
        """Number of measured intervals for a phase."""
        return self._count.get(name, 0)

    def names(self) -> list[str]:
        """All phase names seen."""
        return sorted(self._total)

    def snapshot(self) -> dict[str, float]:
        """Copy of the accumulated totals."""
        return dict(self._total)
