"""Hierarchical wall-clock phase timers.

The paper's log files output per-equation, per-phase times (graph+physics,
local assembly, global assembly, preconditioner setup, solve) that Figures
6-7 plot.  :class:`PhaseTimers` measures the host wall clock of the same
phases; the *simulated machine* times come from the cost model, and the two
are reported side by side by the harness.

When constructed with a :class:`~repro.obs.tracer.Tracer`, every measured
block also opens a span, so the flat totals here and the nested timeline
the telemetry exporter renders are two views of one measurement.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from typing import Iterator

from repro.obs.tracer import Tracer


class PhaseTimers:
    """Accumulating named wall-clock timers.

    Args:
        tracer: optional span tracer backing the same measurements.
    """

    def __init__(self, tracer: Tracer | None = None) -> None:
        self._total: dict[str, float] = defaultdict(float)
        self._count: dict[str, int] = defaultdict(int)
        self.tracer = tracer

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Time the enclosed block under ``name``."""
        if self.tracer is not None:
            try:
                with self.tracer.span(name) as span:
                    yield
            finally:
                self._total[name] += span.duration
                self._count[name] += 1
            return
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self._total[name] += dt
            self._count[name] += 1

    def total(self, name: str) -> float:
        """Accumulated seconds for a phase."""
        return self._total.get(name, 0.0)

    def count(self, name: str) -> int:
        """Number of measured intervals for a phase."""
        return self._count.get(name, 0)

    def names(self) -> list[str]:
        """All phase names seen."""
        return sorted(self._total)

    def snapshot(self, counts: bool = False):
        """Copy of the accumulated state.

        Args:
            counts: when False (default), return ``{name: total_s}`` —
                the historical shape the harness prices.  When True,
                return ``{name: {"total_s": float, "count": int}}``.
        """
        if not counts:
            return dict(self._total)
        return {
            name: {"total_s": t, "count": self._count[name]}
            for name, t in self._total.items()
        }

    def merge(self, other: "PhaseTimers") -> "PhaseTimers":
        """Fold ``other``'s totals and counts into this timer set.

        Combines per-equation timers without manual dict surgery;
        returns ``self`` so merges chain.
        """
        for name, t in other._total.items():
            self._total[name] += t
            self._count[name] += other._count[name]
        return self
