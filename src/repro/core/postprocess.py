"""Flow-field postprocessing: vorticity, Q-criterion, wake diagnostics.

The paper's Fig. 2 shows "isosurfaces of Q-criterion colored by vorticity
magnitude and a plane with vorticity-magnitude isocontours" for the NREL
5-MW rotor.  These are the nodal diagnostics that produce that picture:
the velocity-gradient tensor from the least-squares gradient operator,
its antisymmetric part (vorticity), and

    Q = (||Omega||^2 - ||S||^2) / 2

whose positive regions mark rotation-dominated flow (the blade-tip
vortices of the wake).
"""

from __future__ import annotations

import numpy as np

from repro.core.composite import CompositeMesh
from repro.core.operators import least_squares_gradient


def velocity_gradient(
    comp: CompositeMesh, velocity: np.ndarray
) -> np.ndarray:
    """Nodal velocity-gradient tensor ``G[i, a, b] = d u_a / d x_b``."""
    if velocity.shape != (comp.n, 3):
        raise ValueError("velocity must be (n, 3)")
    G = np.empty((comp.n, 3, 3))
    for a in range(3):
        G[:, a, :] = least_squares_gradient(comp, velocity[:, a])
    return G


def vorticity(comp: CompositeMesh, velocity: np.ndarray) -> np.ndarray:
    """Nodal vorticity vector ``curl(u)``."""
    G = velocity_gradient(comp, velocity)
    w = np.empty((comp.n, 3))
    w[:, 0] = G[:, 2, 1] - G[:, 1, 2]
    w[:, 1] = G[:, 0, 2] - G[:, 2, 0]
    w[:, 2] = G[:, 1, 0] - G[:, 0, 1]
    return w


def vorticity_magnitude(comp: CompositeMesh, velocity: np.ndarray) -> np.ndarray:
    """``|curl(u)|`` per node (the coloring field of the paper's Fig. 2)."""
    return np.linalg.norm(vorticity(comp, velocity), axis=1)


def q_criterion(comp: CompositeMesh, velocity: np.ndarray) -> np.ndarray:
    """Q-criterion per node: ``(||Omega||^2 - ||S||^2) / 2``.

    Positive values identify vortex cores (rotation dominates strain) —
    the isosurface field of the paper's Fig. 2.
    """
    G = velocity_gradient(comp, velocity)
    S = 0.5 * (G + np.swapaxes(G, 1, 2))
    Om = 0.5 * (G - np.swapaxes(G, 1, 2))
    s2 = np.einsum("nab,nab->n", S, S)
    o2 = np.einsum("nab,nab->n", Om, Om)
    return 0.5 * (o2 - s2)


def strain_rate_magnitude(
    comp: CompositeMesh, velocity: np.ndarray
) -> np.ndarray:
    """``sqrt(2 S:S)`` per node (turbulence-production measure)."""
    G = velocity_gradient(comp, velocity)
    S = 0.5 * (G + np.swapaxes(G, 1, 2))
    return np.sqrt(2.0 * np.einsum("nab,nab->n", S, S))


def wake_deficit_profile(
    comp: CompositeMesh,
    velocity: np.ndarray,
    u_inf: float,
    x_planes: np.ndarray,
    radius: float,
    axis_point: np.ndarray | None = None,
    plane_half_width: float | None = None,
) -> np.ndarray:
    """Mean axial-velocity deficit ``(u_inf - <u_x>)/u_inf`` per wake plane.

    Samples background field nodes within ``radius`` of the rotor axis in
    slabs around each requested downstream plane.

    Returns:
        ``(len(x_planes),)`` deficits; NaN for planes with no samples.
    """
    from repro.overset.assembler import NodeStatus

    nbg = comp.meshes[0].n_nodes
    x = comp.coords[:nbg]
    c = np.zeros(3) if axis_point is None else np.asarray(axis_point)
    r = np.hypot(x[:, 1] - c[1], x[:, 2] - c[2])
    active = comp.statuses[:nbg] == NodeStatus.FIELD
    half = (
        0.25 * (x_planes.max() - x_planes.min() + 1.0)
        / max(len(x_planes), 1)
        if plane_half_width is None
        else plane_half_width
    )
    out = np.full(len(x_planes), np.nan)
    for k, xp in enumerate(np.asarray(x_planes)):
        sel = active & (r < radius) & (np.abs(x[:, 0] - xp) < half)
        if np.any(sel):
            out[k] = (u_inf - velocity[:nbg][sel, 0].mean()) / u_inf
    return out
