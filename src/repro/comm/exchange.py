"""Halo-exchange patterns for rank-block distributed vectors.

Global DoFs are distributed in contiguous rank blocks (hypre's 1-D block-row
layout, paper §3.3): rank ``r`` owns global indices
``[offsets[r], offsets[r+1])``.  A :class:`ExchangePattern` captures, once per
matrix, which owned entries each rank must ship to which neighbor so that
every rank can materialize the external ("ghost") vector entries its offd
block references.  This mirrors hypre's ``ParCSRCommPkg``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.comm.errors import (
    CommCorruptionError,
    CommDeadlockError,
    CommRetriesExhaustedError,
)
from repro.comm.simcomm import SimWorld


@dataclass
class RankExchange:
    """One rank's side of the halo exchange.

    Attributes:
        send_to: list of ``(dst_rank, local_indices)``; ``local_indices``
            index this rank's owned vector slice.
        recv_from: list of ``(src_rank, ext_positions)``; ``ext_positions``
            index this rank's external buffer (aligned with
            ``col_map_offd``).
        n_ext: size of the external buffer.
    """

    send_to: list[tuple[int, np.ndarray]] = field(default_factory=list)
    recv_from: list[tuple[int, np.ndarray]] = field(default_factory=list)
    n_ext: int = 0

    @property
    def n_neighbors_send(self) -> int:
        """Number of distinct destination ranks."""
        return len(self.send_to)

    @property
    def n_neighbors_recv(self) -> int:
        """Number of distinct source ranks."""
        return len(self.recv_from)


@dataclass
class ExchangePattern:
    """Halo-exchange pattern for all ranks of one distribution."""

    offsets: np.ndarray
    per_rank: list[RankExchange]

    @property
    def nranks(self) -> int:
        """Number of ranks in the distribution."""
        return len(self.per_rank)

    def total_messages(self) -> int:
        """Messages per exchange round (sum over ranks of send neighbors)."""
        return sum(rx.n_neighbors_send for rx in self.per_rank)

    def total_halo_entries(self) -> int:
        """Total external entries received per exchange round."""
        return sum(rx.n_ext for rx in self.per_rank)


def owner_of(global_ids: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Owning rank of each global index under a rank-block distribution."""
    gid = np.asarray(global_ids)
    return np.searchsorted(offsets, gid, side="right") - 1


def build_exchange_pattern(
    offsets: np.ndarray, ext_ids_per_rank: list[np.ndarray]
) -> ExchangePattern:
    """Build the halo pattern from each rank's sorted external column ids.

    Args:
        offsets: ``(nranks+1,)`` global row offsets of the block distribution.
        ext_ids_per_rank: per rank, the **sorted unique** global indices it
            needs but does not own (hypre's ``col_map_offd``).

    Returns:
        The full exchange pattern; building it is a symbolic/setup operation
        and records no traffic.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    nranks = len(offsets) - 1
    per_rank = [RankExchange() for _ in range(nranks)]

    for r, ext_ids in enumerate(ext_ids_per_rank):
        ext_ids = np.asarray(ext_ids, dtype=np.int64)
        per_rank[r].n_ext = int(ext_ids.size)
        if ext_ids.size == 0:
            continue
        if np.any(np.diff(ext_ids) <= 0):
            raise ValueError(f"rank {r}: ext ids must be sorted unique")
        owners = owner_of(ext_ids, offsets)
        if np.any(owners == r):
            raise ValueError(f"rank {r}: ext ids include owned indices")
        # Group positions by owner; ext_ids sorted => owners sorted.
        uniq_owners, starts = np.unique(owners, return_index=True)
        bounds = np.append(starts, ext_ids.size)
        for k, owner in enumerate(uniq_owners):
            positions = np.arange(bounds[k], bounds[k + 1], dtype=np.int64)
            needed_gids = ext_ids[positions]
            local_on_owner = needed_gids - offsets[owner]
            per_rank[r].recv_from.append((int(owner), positions))
            per_rank[int(owner)].send_to.append((r, local_on_owner))

    # Deterministic ordering of send lists by destination rank.
    for rx in per_rank:
        rx.send_to.sort(key=lambda t: t[0])
        rx.recv_from.sort(key=lambda t: t[0])
    return ExchangePattern(offsets=offsets, per_rank=per_rank)


def _halo_payload(
    pattern: ExchangePattern, owned: list[np.ndarray], src: int, dst: int
) -> np.ndarray:
    """The slice rank ``src`` ships to rank ``dst`` in one exchange round."""
    for d, local_idx in pattern.per_rank[src].send_to:
        if d == dst:
            return np.ascontiguousarray(owned[src][local_idx])
    raise ValueError(f"pattern has no send from rank {src} to rank {dst}")


@dataclass
class HaloHandle:
    """In-flight state of a split halo exchange.

    Returned by :func:`exchange_halo_begin` after every send is posted;
    the caller computes interior work against its own data, then drains
    the receives with :func:`exchange_halo_finish`.  Holds references to
    the (unmutated) owned slices so the retry protocol can re-post from
    the sender side.
    """

    pattern: ExchangePattern
    owned: list[np.ndarray]
    #: Overlap intent: counts ``comm.overlapped_*`` and prices the wait
    #: against send-post clocks instead of receive-arrival clocks.
    overlap: bool = False
    #: Per-rank profiler clocks at post time (None without a profiler
    #: or for a synchronous round).
    posted_at: list[float] | None = None
    finished: bool = False


def exchange_halo_begin(
    world: SimWorld,
    pattern: ExchangePattern,
    owned: list[np.ndarray],
    overlap: bool = False,
) -> HaloHandle:
    """Post every rank's halo sends and return without receiving.

    The nonblocking half of the exchange (``MPI_Isend`` analogue):
    after this call each rank may compute against its owned data —
    typically the ``diag``-block SpMV — while boundary data is in
    flight, then call :func:`exchange_halo_finish` to drain.

    With ``overlap=True`` the round is counted in the
    ``comm.overlapped_exchanges`` / ``comm.overlapped_messages`` /
    ``comm.overlapped_bytes`` counters and the profiler prices the
    finish-side wait against these *post-time* clocks, so interior
    compute genuinely shrinks the halo wait segments.
    """
    nranks = pattern.nranks
    if len(owned) != nranks:
        raise ValueError("need one owned slice per rank")
    # The RL007 runtime twin: a second begin on the same pattern before
    # its finish would double-post every send, and the stale first
    # round's messages would satisfy the second round's receives.
    if id(pattern) in world._halo_inflight:
        world.metrics.counter("comm.double_begin", phase=world.phase).inc()
        raise RuntimeError(
            "exchange_halo_begin called twice on the same pattern "
            "without an intervening exchange_halo_finish"
        )
    world._halo_inflight.add(id(pattern))
    # Post all sends, then receive: matches the MPI_Isend/Irecv structure.
    for src in range(nranks):
        for dst, local_idx in pattern.per_rank[src].send_to:
            world._post(src, dst, np.ascontiguousarray(owned[src][local_idx]))
    posted_at = None
    if overlap:
        msgs = pattern.total_messages()
        nbytes = 8.0 * sum(
            int(idx.size)
            for rx in pattern.per_rank
            for _dst, idx in rx.send_to
        )
        world.metrics.counter(
            "comm.overlapped_exchanges", phase=world.phase
        ).inc()
        world.metrics.counter(
            "comm.overlapped_messages", phase=world.phase
        ).inc(msgs)
        world.metrics.counter(
            "comm.overlapped_bytes", phase=world.phase
        ).inc(nbytes)
        if world.profiler is not None:
            posted_at = world.profiler.on_p2p_post()
    return HaloHandle(
        pattern=pattern, owned=owned, overlap=overlap, posted_at=posted_at
    )


def exchange_halo_finish(
    world: SimWorld, handle: HaloHandle
) -> list[np.ndarray]:
    """Drain a split halo exchange: the blocking ``MPI_Waitall`` half.

    Runs the same bounded retry protocol as the synchronous
    :func:`exchange_halo` (drop, corruption, and truncation all consume
    the retry budget), so a split exchange is bitwise- and
    failure-equivalent to a synchronous one.
    """
    if handle.finished:
        raise RuntimeError("halo handle already finished")
    handle.finished = True
    world._halo_inflight.discard(id(handle.pattern))
    pattern, owned = handle.pattern, handle.owned
    ext = [np.zeros(rx.n_ext, dtype=np.float64) for rx in pattern.per_rank]
    for dst in range(pattern.nranks):
        for src, positions in pattern.per_rank[dst].recv_from:
            ext[dst][positions] = _recv_with_retry(
                world, pattern, owned, src, dst, int(positions.size)
            )
    if world.profiler is not None:
        # Neighborhood sync: each rank's wait is bounded by its own
        # senders, not the global straggler.  The logical exchange is
        # priced once; fault-injected re-posts stay visible through the
        # comm.retries counters instead of re-pricing the timeline.
        out_msgs = [rx.n_neighbors_send for rx in pattern.per_rank]
        out_bytes = [
            8.0 * sum(int(idx.size) for _dst, idx in rx.send_to)
            for rx in pattern.per_rank
        ]
        in_msgs = [rx.n_neighbors_recv for rx in pattern.per_rank]
        in_bytes = [8.0 * rx.n_ext for rx in pattern.per_rank]
        senders = [[src for src, _pos in rx.recv_from] for rx in pattern.per_rank]
        world.profiler.on_p2p_round(
            "halo",
            out_msgs,
            out_bytes,
            in_msgs,
            in_bytes,
            senders,
            posted_at=handle.posted_at,
        )
    return ext


def exchange_halo(
    world: SimWorld,
    pattern: ExchangePattern,
    owned: list[np.ndarray],
) -> list[np.ndarray]:
    """Run one halo exchange: gather external entries for every rank.

    Messages travel through the mailbox transport
    (:meth:`SimWorld._post` / :meth:`SimWorld._take`), so they are
    sequence-numbered, checksummed, and exposed to injected
    ``message_drop``/``message_corrupt``/``message_duplicate`` faults.
    The receive side runs a bounded retry protocol: a message that never
    arrived (drop), arrived corrupt, or arrived with the wrong length
    (truncated) is re-requested from its owner up to
    ``world.comm_max_retries`` times (``comm.retries`` /
    ``comm.drops_detected`` counters track every re-request); when the
    budget is exhausted a
    :class:`~repro.comm.errors.CommRetriesExhaustedError` escalates to
    the solver-level recovery ladder.

    The synchronous round is exactly :func:`exchange_halo_begin`
    followed immediately by :func:`exchange_halo_finish`; passing
    ``overlap=True`` through :meth:`ParCSRMatrix.matvec
    <repro.linalg.parcsr.ParCSRMatrix.matvec>` puts interior compute
    between the two halves.

    Args:
        world: the simulated world (records traffic).
        pattern: pattern from :func:`build_exchange_pattern`.
        owned: per rank, its owned vector slice.

    Returns:
        Per rank, the external buffer aligned with its ``col_map_offd``.
    """
    return exchange_halo_finish(
        world, exchange_halo_begin(world, pattern, owned, overlap=False)
    )


def _recv_with_retry(
    world: SimWorld,
    pattern: ExchangePattern,
    owned: list[np.ndarray],
    src: int,
    dst: int,
    expected: int,
) -> np.ndarray:
    """Receive one halo message, re-requesting on drop/corruption.

    Each retry re-posts the message from the (uncorrupted) sender-side
    slice — the simulated analogue of an MPI-level NACK + resend — and
    every re-post is a fresh fault-injection opportunity, so consecutive
    scheduled drops can exhaust the budget deterministically in tests.

    A payload of the wrong length (truncation) is a corruption like any
    other: it consumes the retry budget here instead of escalating
    immediately past it.
    """
    max_retries = max(0, int(world.comm_max_retries))
    last_error = ""
    for attempt in range(1 + max_retries):
        if attempt > 0:
            world.metrics.counter("comm.retries", phase=world.phase).inc()
            world._post(src, dst, _halo_payload(pattern, owned, src, dst))
        try:
            payload = world._take(src, dst)
        except CommDeadlockError:
            # Nothing pending on this channel: the message was dropped
            # on the wire (a true deadlock would leave nothing to resend).
            world.metrics.counter(
                "comm.drops_detected", phase=world.phase
            ).inc()
            last_error = "dropped"
            continue
        except CommCorruptionError:
            # comm.corrupt_detected was already counted by _take.
            last_error = "corrupt"
            continue
        if np.shape(payload) != (expected,):
            # Wrong-length payload: the envelope checksum passed but the
            # content cannot be scattered — treat as corruption and
            # re-request within the same budget.
            world.metrics.counter(
                "comm.corrupt_detected", phase=world.phase
            ).inc()
            last_error = "truncated"
            continue
        return payload
    raise CommRetriesExhaustedError(
        f"halo message {src} -> {dst} failed after {1 + max_retries} "
        f"attempt(s) in phase {world.phase!r} (last error: {last_error})",
        phase=world.phase,
        src=src,
        dst=dst,
        attempts=1 + max_retries,
        last_error=last_error,
    )
