"""In-process SPMD rank simulator.

:class:`SimWorld` stands in for ``MPI_COMM_WORLD``: it fixes the number of
ranks, owns the :class:`~repro.comm.traffic.TrafficLog`, and provides
world-level exchange operations that the rest of the library uses in
rank-indexed ("list of per-rank arrays") style.  :class:`SimComm` is the
per-rank handle with MPI-like ``send``/``recv`` semantics backed by a
mailbox, used where the paper's algorithms are written in per-rank form
(e.g. Algorithm 1 step 2-3).

All exchanges move *real* data, so the numerics downstream (hybrid smoothers,
additive Schwarz, assembly) behave exactly as they would distributed; the log
only adds accounting on top.

Point-to-point messages travel in :class:`MessageEnvelope` wrappers that
carry a per-channel sequence number and a CRC32 payload checksum, so the
receiving side detects dropped, duplicated, and corrupted messages (the
fault classes :class:`~repro.resilience.injection.FaultInjector` injects
on the p2p path) instead of silently consuming them.
"""

from __future__ import annotations

import zlib
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.comm.errors import (
    CommCorruptionError,
    CommDeadlockError,
    MailboxLeakError,
)
from repro.comm.traffic import TrafficLog
from repro.obs.hooks import ObserverHub
from repro.obs.metrics import MetricsRegistry


def _nbytes(payload: Any) -> int:
    """Byte size of a message payload (ndarray, scalar, or tuple of them)."""
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (tuple, list)):
        return sum(_nbytes(p) for p in payload)
    if isinstance(payload, (int, np.integer)):
        return 8
    if isinstance(payload, (float, np.floating)):
        return 8
    return 8


def payload_checksum(payload: Any) -> int:
    """CRC32 checksum of a message payload.

    Covers ndarray contents (any dtype), scalars, and tuples/lists of
    them — the payload shapes the exchange paths actually post.  The
    checksum is over raw value bytes, so any single-bit corruption of a
    delivered array flips it.
    """
    crc = 0
    if isinstance(payload, np.ndarray):
        return zlib.crc32(np.ascontiguousarray(payload).tobytes())
    if isinstance(payload, (tuple, list)):
        for p in payload:
            crc = zlib.crc32(payload_checksum(p).to_bytes(4, "little"), crc)
        return crc
    return zlib.crc32(repr(payload).encode())


@dataclass
class MessageEnvelope:
    """One point-to-point message on the simulated wire.

    Attributes:
        seq: per-``(src, dst)`` channel sequence number (0-based,
            monotonically increasing per post).
        src: sending rank.
        dst: receiving rank.
        phase: phase label active at post time.
        payload: the message body.
        checksum: CRC32 of the payload at post time (see
            :func:`payload_checksum`).  Verified on receive; a mismatch
            means in-flight corruption.
    """

    seq: int
    src: int
    dst: int
    phase: str
    payload: Any
    checksum: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.checksum < 0:
            self.checksum = payload_checksum(self.payload)

    def verify(self) -> bool:
        """True when the payload still matches its post-time checksum."""
        return payload_checksum(self.payload) == self.checksum


class SimWorld:
    """A simulated world of ``size`` ranks sharing one traffic log."""

    def __init__(self, size: int, seed: int = 0) -> None:
        if size < 1:
            raise ValueError(f"world size must be >= 1, got {size}")
        self.size = int(size)
        self.traffic = TrafficLog()
        # Late import: perf.opcounts has no dependency on comm, so this
        # cannot cycle; attaching the recorder here gives every consumer a
        # single object (the world) to thread through.
        from repro.perf.opcounts import OpRecorder

        self.ops = OpRecorder()
        # Observability: one hub + one metrics registry per world, so every
        # layer holding the world (equation systems, AMG setup, exchanges)
        # publishes into a single telemetry stream.
        self.hub = ObserverHub()
        self.metrics = MetricsRegistry()
        # Resilience: optional seeded FaultInjector (see
        # repro.resilience.injection); when set, world-level exchanges give
        # it the chance to corrupt payloads deterministically.
        self.fault_injector: Any = None
        # Bounded-retry budget of the halo-exchange protocol
        # (re-deliveries per logical message after the first attempt);
        # configured from RecoveryPolicy.comm_max_retries by the
        # simulation driver.
        self.comm_max_retries = 2
        # Leak checking at barriers: a posted-but-unreceived message at a
        # synchronization point is a protocol bug (see assert_no_pending).
        self.leak_check = True
        # Optional per-rank timeline profiler (repro.obs.timeline); when
        # set, phase transitions and world-level sync points notify it so
        # it can advance simulated rank clocks and attribute comm waits.
        self.profiler: Any = None
        # Optional cross-job assembly-plan cache (repro.assembly.plan
        # .PlanCache); the campaign runner attaches one so sweep jobs with
        # identical mesh topology adopt each other's captured plans
        # instead of re-running the cold sort/reduce/split capture.
        self.plan_cache: Any = None
        self.rng = np.random.default_rng(seed)
        self._phase_stack: list[str] = ["default"]
        self._mailboxes: dict[tuple[int, int], deque[MessageEnvelope]] = {}
        self._next_seq: dict[tuple[int, int], int] = {}
        self._last_delivered: dict[tuple[int, int], int] = {}
        #: Patterns (by id) with a posted-but-unfinished split halo
        #: exchange — exchange_halo_begin's double-begin guard.
        self._halo_inflight: set[int] = set()

    # -- phase labeling ----------------------------------------------------

    @property
    def phase(self) -> str:
        """Currently active phase label."""
        return self._phase_stack[-1]

    @contextmanager
    def phase_scope(self, label: str) -> Iterator[None]:
        """Attribute all traffic inside the ``with`` block to ``label``.

        Pushes and pops are checked: exiting verifies the popped label is
        the one this scope pushed, so stack corruption (e.g. an observer
        mutating ``_phase_stack``) raises immediately instead of silently
        misattributing all subsequent traffic.
        """
        self._phase_stack.append(label)
        if self.profiler is not None:
            self.profiler.on_phase_begin(label)
        try:
            yield
        finally:
            self._pop_phase(label)

    def assert_phase_balanced(self) -> None:
        """Raise if any :meth:`phase_scope` is still open.

        The stack must be exactly ``["default"]`` between top-level
        operations; a leftover label means some scope leaked (traffic
        after this point would be misattributed to it).  Used by the
        kernel sanitizer (KS005) after replaying the assembly pipeline.
        """
        if self._phase_stack != ["default"]:
            raise RuntimeError(
                f"phase stack not balanced: {self._phase_stack!r} "
                "(expected ['default']); a phase_scope leaked"
            )

    def _pop_phase(self, label: str) -> None:
        """Pop one phase label, validating stack balance."""
        if len(self._phase_stack) <= 1:
            raise RuntimeError(
                f"phase stack underflow: cannot pop {label!r}; the base "
                "'default' phase is permanent — phase_scope exits are "
                "unbalanced"
            )
        popped = self._phase_stack.pop()
        if popped != label:
            raise RuntimeError(
                f"unbalanced phase stack: popped {popped!r} while closing "
                f"scope {label!r}; traffic since the mismatch is "
                "misattributed"
            )
        if self.profiler is not None:
            self.profiler.on_phase_end(popped)

    # -- rank handles ------------------------------------------------------

    def comm(self, rank: int) -> "SimComm":
        """Per-rank communicator handle."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range for world of {self.size}")
        return SimComm(self, rank)

    def comms(self) -> list["SimComm"]:
        """Handles for all ranks, index == rank."""
        return [SimComm(self, r) for r in range(self.size)]

    # -- mailbox primitives (used by SimComm) -------------------------------

    def _post(self, src: int, dst: int, payload: Any) -> None:
        """Post one point-to-point message from ``src`` to ``dst``.

        The payload travels in a sequence-numbered, checksummed
        :class:`MessageEnvelope`.  When a fault injector is installed it
        sees every envelope (:meth:`FaultInjector.on_post`) and may drop
        it, corrupt the payload in flight, or duplicate it; traffic and
        the per-message ``exchange`` hub event are recorded once per
        envelope that left the sender (a dropped message was still sent —
        it is lost on the wire, not at the source).
        """
        key = (src, dst)
        seq = self._next_seq.get(key, 0)
        self._next_seq[key] = seq + 1
        env = MessageEnvelope(
            seq=seq, src=src, dst=dst, phase=self.phase, payload=payload
        )
        envelopes: Sequence[MessageEnvelope] = (env,)
        if self.fault_injector is not None:
            envelopes = self.fault_injector.on_post(env)
        # Wire accounting: one record per transmission.  A drop still
        # transmits once (and vanishes); a duplicate transmits twice.
        n_wire = max(1, len(envelopes))
        nbytes = _nbytes(payload)
        for _ in range(n_wire):
            self.traffic.record_message(src, dst, nbytes, self.phase)
            self.hub.emit(
                "exchange",
                kind="p2p",
                src=src,
                dst=dst,
                nbytes=nbytes,
                phase=self.phase,
            )
        if envelopes:
            box = self._mailboxes.setdefault(key, deque())
            box.extend(envelopes)

    def _take(self, src: int, dst: int) -> Any:
        """Receive the oldest pending payload on channel ``(src, dst)``.

        Validates the envelope: duplicates (sequence number at or below
        the last delivered one) are discarded with a
        ``comm.duplicates_discarded`` count; a checksum mismatch raises
        :class:`~repro.comm.errors.CommCorruptionError`; an empty channel
        raises :class:`~repro.comm.errors.CommDeadlockError` carrying a
        snapshot of every pending mailbox.
        """
        key = (src, dst)
        box = self._mailboxes.get(key)
        last = self._last_delivered.get(key, -1)
        # Skip stale duplicates queued ahead of the next fresh message.
        while box and box[0].seq <= last:
            box.popleft()
            self.metrics.counter(
                "comm.duplicates_discarded", phase=self.phase
            ).inc()
        if not box:
            raise CommDeadlockError(
                f"recv from rank {src} on rank {dst}: no message posted "
                f"(simulated deadlock) in phase {self.phase!r}; "
                f"{self.pending_messages()} message(s) pending elsewhere",
                phase=self.phase,
                src=src,
                dst=dst,
                pending=self.pending_summary(),
            )
        env = box.popleft()
        if not env.verify():
            self.metrics.counter(
                "comm.corrupt_detected", phase=self.phase
            ).inc()
            raise CommCorruptionError(
                f"message {src} -> {dst} seq {env.seq} failed its payload "
                f"checksum (posted in phase {env.phase!r})",
                phase=self.phase,
                src=src,
                dst=dst,
                seq=env.seq,
                expected_checksum=env.checksum,
                actual_checksum=payload_checksum(env.payload),
            )
        self._last_delivered[key] = env.seq
        # Drop trailing duplicates of the message just delivered so they
        # cannot linger as mailbox leaks past the next barrier.
        while box and box[0].seq <= env.seq:
            box.popleft()
            self.metrics.counter(
                "comm.duplicates_discarded", phase=self.phase
            ).inc()
        return env.payload

    def pending_messages(self) -> int:
        """Number of posted-but-unreceived messages (should be 0 at sync points)."""
        return sum(len(b) for b in self._mailboxes.values())

    def pending_summary(self) -> list[dict[str, Any]]:
        """Snapshot of every non-empty mailbox.

        Returns one ``{"src", "dst", "phase", "count", "seqs"}`` entry
        per channel holding undelivered messages, where ``phase`` is the
        label the oldest pending message was posted under — exactly the
        context a leak report needs.
        """
        out: list[dict[str, Any]] = []
        for (src, dst), box in sorted(self._mailboxes.items()):
            if not box:
                continue
            out.append(
                {
                    "src": src,
                    "dst": dst,
                    "phase": box[0].phase,
                    "count": len(box),
                    "seqs": [env.seq for env in box],
                }
            )
        return out

    def purge_pending(self, reason: str = "") -> int:
        """Drop every in-flight message and reset channel sequence state.

        The escalation path calls this after a transport failure aborts
        an exchange mid-round: messages already posted for the aborted
        round would otherwise be mis-delivered to the next round (wrong
        shapes, stale sequence numbers) and poison every retry — the
        simulated analogue of tearing down and re-establishing
        communicators after an MPI fault.  Purged messages are counted
        under ``comm.purged`` (labeled with ``reason``).  Returns the
        number of messages dropped.
        """
        purged = self.pending_messages()
        if purged:
            self.metrics.counter(
                "comm.purged", phase=self.phase, reason=reason
            ).inc(purged)
        self._mailboxes.clear()
        self._next_seq.clear()
        self._last_delivered.clear()
        # The aborted round's begins died with their messages; a fresh
        # begin on the same pattern must not trip the double-begin guard.
        self._halo_inflight.clear()
        return purged

    def assert_no_pending(self, context: str = "") -> None:
        """Raise :class:`MailboxLeakError` when any message is pending.

        Called at barriers (when :attr:`leak_check` is on) and usable by
        tests at end-of-phase: an undelivered message at a
        synchronization point means an exchange protocol leaked a
        payload — on real MPI, a hang or a late-delivery bug.
        """
        pending = self.pending_summary()
        if not pending:
            return
        where = f" at {context}" if context else ""
        detail = "; ".join(
            f"{p['count']} from rank {p['src']} to rank {p['dst']} "
            f"(posted in phase {p['phase']!r})"
            for p in pending
        )
        raise MailboxLeakError(
            f"{self.pending_messages()} message(s) leaked{where}: {detail}",
            phase=self.phase,
            pending=pending,
        )

    # -- world-level exchanges ----------------------------------------------

    def alltoallv(self, send: Sequence[Sequence[Any]]) -> list[list[Any]]:
        """Personalized all-to-all.

        ``send[r][q]`` is the payload rank ``r`` sends to rank ``q`` (``None``
        to send nothing).  Returns ``recv`` with ``recv[q][i]`` the payloads
        received by rank ``q`` in sender-rank order.  Only non-``None``,
        non-empty payloads are transmitted and recorded; the diagonal
        ``src == dst`` payload is delivered locally without touching the
        traffic log — a rank keeping its own data is a memory copy, not a
        network message (``SimComm.send`` rejects self-sends for the same
        reason).

        Every transmitted payload emits a per-message ``exchange`` hub
        event (``kind="p2p"``) exactly like :meth:`_post` does, so
        hub-derived message counts agree with the :class:`TrafficLog`
        aggregates; one summary event (``kind="alltoallv"``) closes the
        exchange.
        """
        if len(send) != self.size:
            raise ValueError("alltoallv needs one send row per rank")
        recv: list[list[Any]] = [[] for _ in range(self.size)]
        for src in range(self.size):
            row = send[src]
            if len(row) != self.size:
                raise ValueError("alltoallv send rows must have world-size entries")
            for dst in range(self.size):
                payload = row[dst]
                if payload is None:
                    continue
                if isinstance(payload, np.ndarray) and payload.size == 0:
                    continue
                if dst != src:
                    nbytes = _nbytes(payload)
                    self.traffic.record_message(
                        src, dst, nbytes, self.phase
                    )
                    self.hub.emit(
                        "exchange",
                        kind="p2p",
                        src=src,
                        dst=dst,
                        nbytes=nbytes,
                        phase=self.phase,
                    )
                recv[dst].append(payload)
        if self.fault_injector is not None:
            self.fault_injector.on_alltoallv(recv, phase=self.phase)
        self.hub.emit("exchange", kind="alltoallv", phase=self.phase)
        if self.profiler is not None:
            out_msgs = [0] * self.size
            out_bytes = [0.0] * self.size
            in_msgs = [0] * self.size
            in_bytes = [0.0] * self.size
            for src in range(self.size):
                for dst in range(self.size):
                    payload = send[src][dst]
                    if payload is None or dst == src:
                        continue
                    if isinstance(payload, np.ndarray) and payload.size == 0:
                        continue
                    nbytes = _nbytes(payload)
                    out_msgs[src] += 1
                    out_bytes[src] += nbytes
                    in_msgs[dst] += 1
                    in_bytes[dst] += nbytes
            # Repartitioning all-to-alls are globally synchronizing
            # (senders_to=None): every rank waits for the straggler.
            self.profiler.on_p2p_round(
                "alltoallv", out_msgs, out_bytes, in_msgs, in_bytes, None
            )
        return recv

    def allreduce(
        self, values: Sequence[Any], op: Callable[[Sequence[Any]], Any] = sum
    ) -> Any:
        """All-reduce of one value per rank; every rank gets the same result."""
        if len(values) != self.size:
            raise ValueError("allreduce needs one value per rank")
        self.traffic.record_collective(
            "allreduce", self.size, _nbytes(values[0]), self.phase
        )
        self.hub.emit(
            "exchange",
            kind="allreduce",
            nbytes=_nbytes(values[0]),
            phase=self.phase,
        )
        if self.profiler is not None:
            self.profiler.on_collective("allreduce", _nbytes(values[0]))
        return op(values)

    def allgather(self, values: Sequence[Any]) -> list[Any]:
        """All-gather of one value per rank; returns the full list."""
        if len(values) != self.size:
            raise ValueError("allgather needs one value per rank")
        self.traffic.record_collective(
            "allgather", self.size, _nbytes(values[0]), self.phase
        )
        self.hub.emit(
            "exchange",
            kind="allgather",
            nbytes=_nbytes(values[0]),
            phase=self.phase,
        )
        if self.profiler is not None:
            self.profiler.on_collective("allgather", _nbytes(values[0]))
        return list(values)

    def barrier(self) -> None:
        """Synchronization point; records a zero-byte collective.

        With :attr:`leak_check` on (the default), also asserts that no
        posted message is still undelivered — every rank reaching a
        barrier with messages in flight is a protocol bug.
        """
        if self.leak_check:
            self.assert_no_pending(context="barrier")
        self.traffic.record_collective("barrier", self.size, 0, self.phase)
        self.hub.emit("exchange", kind="barrier", phase=self.phase)
        if self.profiler is not None:
            self.profiler.on_collective("barrier", 0.0)


class SimComm:
    """Per-rank communicator handle with MPI-like point-to-point calls."""

    def __init__(self, world: SimWorld, rank: int) -> None:
        self.world = world
        self.rank = int(rank)

    @property
    def size(self) -> int:
        """World size."""
        return self.world.size

    def send(self, dst: int, payload: Any) -> None:
        """Post ``payload`` to rank ``dst`` (non-blocking semantics)."""
        if dst == self.rank:
            raise ValueError("self-sends are not modeled; handle locally")
        self.world._post(self.rank, dst, payload)

    def recv(self, src: int) -> Any:
        """Receive the oldest pending payload from rank ``src``."""
        return self.world._take(src, self.rank)
