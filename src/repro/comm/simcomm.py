"""In-process SPMD rank simulator.

:class:`SimWorld` stands in for ``MPI_COMM_WORLD``: it fixes the number of
ranks, owns the :class:`~repro.comm.traffic.TrafficLog`, and provides
world-level exchange operations that the rest of the library uses in
rank-indexed ("list of per-rank arrays") style.  :class:`SimComm` is the
per-rank handle with MPI-like ``send``/``recv`` semantics backed by a
mailbox, used where the paper's algorithms are written in per-rank form
(e.g. Algorithm 1 step 2-3).

All exchanges move *real* data, so the numerics downstream (hybrid smoothers,
additive Schwarz, assembly) behave exactly as they would distributed; the log
only adds accounting on top.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.comm.traffic import TrafficLog
from repro.obs.hooks import ObserverHub
from repro.obs.metrics import MetricsRegistry


def _nbytes(payload: Any) -> int:
    """Byte size of a message payload (ndarray, scalar, or tuple of them)."""
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (tuple, list)):
        return sum(_nbytes(p) for p in payload)
    if isinstance(payload, (int, np.integer)):
        return 8
    if isinstance(payload, (float, np.floating)):
        return 8
    return 8


class SimWorld:
    """A simulated world of ``size`` ranks sharing one traffic log."""

    def __init__(self, size: int, seed: int = 0) -> None:
        if size < 1:
            raise ValueError(f"world size must be >= 1, got {size}")
        self.size = int(size)
        self.traffic = TrafficLog()
        # Late import: perf.opcounts has no dependency on comm, so this
        # cannot cycle; attaching the recorder here gives every consumer a
        # single object (the world) to thread through.
        from repro.perf.opcounts import OpRecorder

        self.ops = OpRecorder()
        # Observability: one hub + one metrics registry per world, so every
        # layer holding the world (equation systems, AMG setup, exchanges)
        # publishes into a single telemetry stream.
        self.hub = ObserverHub()
        self.metrics = MetricsRegistry()
        # Resilience: optional seeded FaultInjector (see
        # repro.resilience.injection); when set, world-level exchanges give
        # it the chance to corrupt payloads deterministically.
        self.fault_injector: Any = None
        self.rng = np.random.default_rng(seed)
        self._phase_stack: list[str] = ["default"]
        self._mailboxes: dict[tuple[int, int], deque[Any]] = {}

    # -- phase labeling ----------------------------------------------------

    @property
    def phase(self) -> str:
        """Currently active phase label."""
        return self._phase_stack[-1]

    @contextmanager
    def phase_scope(self, label: str) -> Iterator[None]:
        """Attribute all traffic inside the ``with`` block to ``label``.

        Pushes and pops are checked: exiting verifies the popped label is
        the one this scope pushed, so stack corruption (e.g. an observer
        mutating ``_phase_stack``) raises immediately instead of silently
        misattributing all subsequent traffic.
        """
        self._phase_stack.append(label)
        try:
            yield
        finally:
            self._pop_phase(label)

    def assert_phase_balanced(self) -> None:
        """Raise if any :meth:`phase_scope` is still open.

        The stack must be exactly ``["default"]`` between top-level
        operations; a leftover label means some scope leaked (traffic
        after this point would be misattributed to it).  Used by the
        kernel sanitizer (KS005) after replaying the assembly pipeline.
        """
        if self._phase_stack != ["default"]:
            raise RuntimeError(
                f"phase stack not balanced: {self._phase_stack!r} "
                "(expected ['default']); a phase_scope leaked"
            )

    def _pop_phase(self, label: str) -> None:
        """Pop one phase label, validating stack balance."""
        if len(self._phase_stack) <= 1:
            raise RuntimeError(
                f"phase stack underflow: cannot pop {label!r}; the base "
                "'default' phase is permanent — phase_scope exits are "
                "unbalanced"
            )
        popped = self._phase_stack.pop()
        if popped != label:
            raise RuntimeError(
                f"unbalanced phase stack: popped {popped!r} while closing "
                f"scope {label!r}; traffic since the mismatch is "
                "misattributed"
            )

    # -- rank handles ------------------------------------------------------

    def comm(self, rank: int) -> "SimComm":
        """Per-rank communicator handle."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range for world of {self.size}")
        return SimComm(self, rank)

    def comms(self) -> list["SimComm"]:
        """Handles for all ranks, index == rank."""
        return [SimComm(self, r) for r in range(self.size)]

    # -- mailbox primitives (used by SimComm) -------------------------------

    def _post(self, src: int, dst: int, payload: Any) -> None:
        nbytes = _nbytes(payload)
        self.traffic.record_message(src, dst, nbytes, self.phase)
        self.hub.emit(
            "exchange",
            kind="p2p",
            src=src,
            dst=dst,
            nbytes=nbytes,
            phase=self.phase,
        )
        self._mailboxes.setdefault((src, dst), deque()).append(payload)

    def _take(self, src: int, dst: int) -> Any:
        box = self._mailboxes.get((src, dst))
        if not box:
            raise RuntimeError(
                f"recv from rank {src} on rank {dst}: no message posted "
                "(simulated deadlock)"
            )
        return box.popleft()

    def pending_messages(self) -> int:
        """Number of posted-but-unreceived messages (should be 0 at sync points)."""
        return sum(len(b) for b in self._mailboxes.values())

    # -- world-level exchanges ----------------------------------------------

    def alltoallv(self, send: Sequence[Sequence[Any]]) -> list[list[Any]]:
        """Personalized all-to-all.

        ``send[r][q]`` is the payload rank ``r`` sends to rank ``q`` (``None``
        to send nothing).  Returns ``recv`` with ``recv[q][i]`` the payloads
        received by rank ``q`` in sender-rank order.  Only non-``None``,
        non-empty payloads are transmitted and recorded; the diagonal
        ``src == dst`` payload is delivered locally without touching the
        traffic log — a rank keeping its own data is a memory copy, not a
        network message (``SimComm.send`` rejects self-sends for the same
        reason).
        """
        if len(send) != self.size:
            raise ValueError("alltoallv needs one send row per rank")
        recv: list[list[Any]] = [[] for _ in range(self.size)]
        for src in range(self.size):
            row = send[src]
            if len(row) != self.size:
                raise ValueError("alltoallv send rows must have world-size entries")
            for dst in range(self.size):
                payload = row[dst]
                if payload is None:
                    continue
                if isinstance(payload, np.ndarray) and payload.size == 0:
                    continue
                if dst != src:
                    self.traffic.record_message(
                        src, dst, _nbytes(payload), self.phase
                    )
                recv[dst].append(payload)
        if self.fault_injector is not None:
            self.fault_injector.on_alltoallv(recv, phase=self.phase)
        self.hub.emit("exchange", kind="alltoallv", phase=self.phase)
        return recv

    def allreduce(
        self, values: Sequence[Any], op: Callable[[Sequence[Any]], Any] = sum
    ) -> Any:
        """All-reduce of one value per rank; every rank gets the same result."""
        if len(values) != self.size:
            raise ValueError("allreduce needs one value per rank")
        self.traffic.record_collective(
            "allreduce", self.size, _nbytes(values[0]), self.phase
        )
        self.hub.emit(
            "exchange",
            kind="allreduce",
            nbytes=_nbytes(values[0]),
            phase=self.phase,
        )
        return op(values)

    def allgather(self, values: Sequence[Any]) -> list[Any]:
        """All-gather of one value per rank; returns the full list."""
        if len(values) != self.size:
            raise ValueError("allgather needs one value per rank")
        self.traffic.record_collective(
            "allgather", self.size, _nbytes(values[0]), self.phase
        )
        self.hub.emit(
            "exchange",
            kind="allgather",
            nbytes=_nbytes(values[0]),
            phase=self.phase,
        )
        return list(values)

    def barrier(self) -> None:
        """Synchronization point; records a zero-byte collective."""
        self.traffic.record_collective("barrier", self.size, 0, self.phase)
        self.hub.emit("exchange", kind="barrier", phase=self.phase)


class SimComm:
    """Per-rank communicator handle with MPI-like point-to-point calls."""

    def __init__(self, world: SimWorld, rank: int) -> None:
        self.world = world
        self.rank = int(rank)

    @property
    def size(self) -> int:
        """World size."""
        return self.world.size

    def send(self, dst: int, payload: Any) -> None:
        """Post ``payload`` to rank ``dst`` (non-blocking semantics)."""
        if dst == self.rank:
            raise ValueError("self-sends are not modeled; handle locally")
        self.world._post(self.rank, dst, payload)

    def recv(self, src: int) -> Any:
        """Receive the oldest pending payload from rank ``src``."""
        return self.world._take(src, self.rank)
