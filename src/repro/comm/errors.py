"""Structured communication errors.

Every failure of the simulated transport layer is raised as a typed
exception carrying machine-readable context (phase label, endpoint
ranks, sequence numbers, a pending-mailbox snapshot) instead of a bare
``RuntimeError`` string: the recovery machinery routes on *what* failed,
and post-mortem reports can show where every undelivered message was
posted.

The hierarchy is intentionally flat — ``CommError`` is the catch-all the
solver layer traps to escalate into the recovery ladder
(:mod:`repro.resilience.policy`); the subclasses distinguish the three
transport outcomes (nothing arrived, garbage arrived, retries ran out)
plus the end-of-phase leak check.

All classes subclass ``RuntimeError`` so pre-existing callers that
trapped the old bare errors keep working.
"""

from __future__ import annotations

from typing import Any, Sequence


class CommError(RuntimeError):
    """Base class for transport failures of the simulated comm layer.

    Attributes:
        phase: phase label active when the failure was detected.
        src: sending rank (-1 when not applicable).
        dst: receiving rank (-1 when not applicable).
    """

    def __init__(
        self,
        message: str,
        *,
        phase: str = "",
        src: int = -1,
        dst: int = -1,
    ) -> None:
        super().__init__(message)
        self.phase = phase
        self.src = int(src)
        self.dst = int(dst)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation for reports and telemetry."""
        return {
            "message": str(self),
            "type": type(self).__name__,
            "phase": self.phase,
            "src": self.src,
            "dst": self.dst,
        }


class CommDeadlockError(CommError):
    """A ``recv`` found no pending message (simulated deadlock).

    Carries a snapshot of every pending mailbox at raise time, so the
    report shows which messages *were* in flight (and under which phase
    they were posted) when the missing one was expected.

    Attributes:
        pending: ``[{"src", "dst", "phase", "count"}, ...]`` snapshot of
            all non-empty mailboxes.
    """

    def __init__(
        self,
        message: str,
        *,
        phase: str = "",
        src: int = -1,
        dst: int = -1,
        pending: Sequence[dict[str, Any]] = (),
    ) -> None:
        super().__init__(message, phase=phase, src=src, dst=dst)
        self.pending = [dict(p) for p in pending]

    def to_dict(self) -> dict[str, Any]:
        d = super().to_dict()
        d["pending"] = [dict(p) for p in self.pending]
        return d


class CommCorruptionError(CommError):
    """A received payload failed its envelope checksum.

    Attributes:
        seq: sequence number of the corrupt envelope.
        expected_checksum: checksum stamped at post time.
        actual_checksum: checksum of the payload as delivered.
    """

    def __init__(
        self,
        message: str,
        *,
        phase: str = "",
        src: int = -1,
        dst: int = -1,
        seq: int = -1,
        expected_checksum: int = 0,
        actual_checksum: int = 0,
    ) -> None:
        super().__init__(message, phase=phase, src=src, dst=dst)
        self.seq = int(seq)
        self.expected_checksum = int(expected_checksum)
        self.actual_checksum = int(actual_checksum)

    def to_dict(self) -> dict[str, Any]:
        d = super().to_dict()
        d.update(
            seq=self.seq,
            expected_checksum=self.expected_checksum,
            actual_checksum=self.actual_checksum,
        )
        return d


class CommRetriesExhaustedError(CommError):
    """The bounded retry protocol gave up on one logical message.

    Attributes:
        attempts: delivery attempts made (including the first).
        last_error: classification of the final failed attempt
            (``"dropped"``, ``"corrupt"``, or ``"truncated"``).
    """

    def __init__(
        self,
        message: str,
        *,
        phase: str = "",
        src: int = -1,
        dst: int = -1,
        attempts: int = 0,
        last_error: str = "",
    ) -> None:
        super().__init__(message, phase=phase, src=src, dst=dst)
        self.attempts = int(attempts)
        self.last_error = last_error

    def to_dict(self) -> dict[str, Any]:
        d = super().to_dict()
        d.update(attempts=self.attempts, last_error=self.last_error)
        return d


class MailboxLeakError(CommError):
    """Messages were still pending at a synchronization point.

    Raised by :meth:`repro.comm.simcomm.SimWorld.assert_no_pending`:
    a posted-but-never-received message at a barrier means some exchange
    protocol lost track of a payload — on real MPI this is a hang or a
    late-delivery correctness bug.

    Attributes:
        pending: ``[{"src", "dst", "phase", "count"}, ...]`` one entry
            per leaked mailbox, with the phase the oldest leaked message
            was posted under.
    """

    def __init__(
        self,
        message: str,
        *,
        phase: str = "",
        pending: Sequence[dict[str, Any]] = (),
    ) -> None:
        super().__init__(message, phase=phase)
        self.pending = [dict(p) for p in pending]

    def to_dict(self) -> dict[str, Any]:
        d = super().to_dict()
        d["pending"] = [dict(p) for p in self.pending]
        return d
