"""Communication traffic accounting.

Every simulated point-to-point message and collective operation is recorded
here.  The performance model consumes the log to estimate communication time
on a modeled interconnect: per-message latency, per-byte bandwidth cost, and
``log2(P)``-depth collectives.

Records are tagged with a free-form *phase* label (e.g. ``"spmv"``,
``"global_assembly"``, ``"amg_setup"``) so per-phase breakdowns (paper
Figs. 6-7) can attribute communication to the right bar.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass(frozen=True)
class MessageRecord:
    """One point-to-point message.

    Attributes:
        src: sending rank.
        dst: receiving rank.
        nbytes: payload size in bytes.
        phase: phase label active when the message was sent.
    """

    src: int
    dst: int
    nbytes: int
    phase: str


@dataclass(frozen=True)
class CollectiveRecord:
    """One collective operation over the whole world.

    Attributes:
        kind: collective name (``"allreduce"``, ``"allgather"``, ...).
        world_size: number of participating ranks.
        nbytes: per-rank payload size in bytes.
        phase: phase label active when the collective ran.
    """

    kind: str
    world_size: int
    nbytes: int
    phase: str


class TrafficLog:
    """Accumulates communication records with cheap aggregate summaries.

    The full per-message list is retained (tests inspect it); aggregates are
    maintained incrementally so the cost model does not re-scan the log.
    """

    def __init__(self) -> None:
        self.messages: list[MessageRecord] = []
        self.collectives: list[CollectiveRecord] = []
        # Aggregates keyed by phase label.
        self._msg_count: dict[str, int] = defaultdict(int)
        self._msg_bytes: dict[str, int] = defaultdict(int)
        self._coll_count: dict[str, int] = defaultdict(int)
        self._coll_bytes: dict[str, int] = defaultdict(int)
        # Per (phase, rank) outgoing message count/bytes: the cost model's
        # critical path is the busiest rank in each exchange phase.
        self._rank_msg_count: dict[tuple[str, int], int] = defaultdict(int)
        self._rank_msg_bytes: dict[tuple[str, int], int] = defaultdict(int)

    def record_message(self, src: int, dst: int, nbytes: int, phase: str) -> None:
        """Record one point-to-point message."""
        self.messages.append(MessageRecord(src, dst, int(nbytes), phase))
        self._msg_count[phase] += 1
        self._msg_bytes[phase] += int(nbytes)
        self._rank_msg_count[(phase, src)] += 1
        self._rank_msg_bytes[(phase, src)] += int(nbytes)

    def record_messages(
        self, src: int, dst: int, count: int, nbytes: int, phase: str
    ) -> None:
        """Record ``count`` messages between one pair in bulk.

        Aggregates update exactly as ``count`` separate calls would; the
        detailed list receives a single summary record (high-volume setup
        phases would otherwise dominate the log's memory).
        """
        self.messages.append(MessageRecord(src, dst, int(nbytes), phase))
        self._msg_count[phase] += int(count)
        self._msg_bytes[phase] += int(nbytes)
        self._rank_msg_count[(phase, src)] += int(count)
        self._rank_msg_bytes[(phase, src)] += int(nbytes)

    def record_collective(
        self, kind: str, world_size: int, nbytes: int, phase: str
    ) -> None:
        """Record one collective operation."""
        self.collectives.append(
            CollectiveRecord(kind, int(world_size), int(nbytes), phase)
        )
        self._coll_count[phase] += 1
        self._coll_bytes[phase] += int(nbytes)

    # -- queries -----------------------------------------------------------

    def message_count(self, phase: str | None = None) -> int:
        """Total point-to-point messages, optionally restricted to a phase.

        Computed from the incremental aggregates, not ``len(messages)``:
        bulk :meth:`record_messages` appends a single summary record
        while counting ``count`` messages, so the detailed list
        undercounts by design.
        """
        if phase is None:
            return sum(self._msg_count.values())
        return self._msg_count.get(phase, 0)

    def message_bytes(self, phase: str | None = None) -> int:
        """Total point-to-point bytes, optionally restricted to a phase."""
        if phase is None:
            return sum(self._msg_bytes.values())
        return self._msg_bytes.get(phase, 0)

    def collective_count(self, phase: str | None = None) -> int:
        """Total collectives, optionally restricted to a phase."""
        if phase is None:
            return len(self.collectives)
        return self._coll_count.get(phase, 0)

    def collective_bytes(self, phase: str | None = None) -> int:
        """Total per-rank collective payload bytes for a phase (or all)."""
        if phase is None:
            return sum(self._coll_bytes.values())
        return self._coll_bytes.get(phase, 0)

    def max_rank_messages(self, phase: str) -> int:
        """Outgoing message count of the busiest rank in ``phase``."""
        counts = [
            v for (ph, _r), v in self._rank_msg_count.items() if ph == phase
        ]
        return max(counts, default=0)

    def max_rank_bytes(self, phase: str) -> int:
        """Outgoing bytes of the busiest rank in ``phase``."""
        counts = [
            v for (ph, _r), v in self._rank_msg_bytes.items() if ph == phase
        ]
        return max(counts, default=0)

    def phases(self) -> list[str]:
        """All phase labels seen so far, point-to-point or collective."""
        return sorted(set(self._msg_count) | set(self._coll_count))

    def rank_totals(self) -> dict[int, dict[str, int]]:
        """Outgoing message count/bytes per source rank over all phases."""
        out: dict[int, dict[str, int]] = {}
        for (_ph, r), c in self._rank_msg_count.items():
            out.setdefault(r, {"messages": 0, "bytes": 0})["messages"] += c
        for (_ph, r), b in self._rank_msg_bytes.items():
            out.setdefault(r, {"messages": 0, "bytes": 0})["bytes"] += b
        return out

    def publish_metrics(self, registry) -> None:
        """Publish per-phase aggregates into a MetricsRegistry.

        Pull-style: called at telemetry-collection time so the per-message
        hot path never touches the registry.  Gauges are overwritten, so
        repeated publication is idempotent on a cumulative log.
        """
        for ph in self.phases():
            registry.gauge("comm.messages", phase=ph).set(
                self._msg_count.get(ph, 0)
            )
            registry.gauge("comm.message_bytes", phase=ph).set(
                self._msg_bytes.get(ph, 0)
            )
            registry.gauge("comm.collectives", phase=ph).set(
                self._coll_count.get(ph, 0)
            )
        registry.gauge("comm.total_messages").set(
            sum(self._msg_count.values())
        )
        registry.gauge("comm.total_message_bytes").set(
            sum(self._msg_bytes.values())
        )
        registry.gauge("comm.total_collectives").set(len(self.collectives))

    def clear(self) -> None:
        """Drop all records and aggregates."""
        self.messages.clear()
        self.collectives.clear()
        self._msg_count.clear()
        self._msg_bytes.clear()
        self._coll_count.clear()
        self._coll_bytes.clear()
        self._rank_msg_count.clear()
        self._rank_msg_bytes.clear()
