"""Simulated distributed-memory communication substrate.

The paper runs Nalu-Wind/hypre over MPI on thousands of GPUs.  This package
provides an in-process SPMD rank simulator: every rank's data lives in
rank-indexed containers, exchanges move real NumPy arrays between them, and
every point-to-point message and collective is recorded in a
:class:`~repro.comm.traffic.TrafficLog` so the performance model
(:mod:`repro.perf`) can convert the observed communication structure into
simulated wall time on a modeled machine.

Point-to-point messages travel in checksummed, sequence-numbered
:class:`~repro.comm.simcomm.MessageEnvelope` wrappers; transport failures
raise the structured exceptions of :mod:`repro.comm.errors` so the
resilience layer (:mod:`repro.resilience`) can classify and recover them.
"""

from repro.comm.errors import (
    CommCorruptionError,
    CommDeadlockError,
    CommError,
    CommRetriesExhaustedError,
    MailboxLeakError,
)
from repro.comm.traffic import CollectiveRecord, MessageRecord, TrafficLog
from repro.comm.simcomm import (
    MessageEnvelope,
    SimComm,
    SimWorld,
    payload_checksum,
)
from repro.comm.exchange import (
    ExchangePattern,
    HaloHandle,
    build_exchange_pattern,
    exchange_halo,
    exchange_halo_begin,
    exchange_halo_finish,
)

__all__ = [
    "CollectiveRecord",
    "CommCorruptionError",
    "CommDeadlockError",
    "CommError",
    "CommRetriesExhaustedError",
    "ExchangePattern",
    "HaloHandle",
    "MailboxLeakError",
    "MessageEnvelope",
    "MessageRecord",
    "SimComm",
    "SimWorld",
    "TrafficLog",
    "build_exchange_pattern",
    "exchange_halo",
    "exchange_halo_begin",
    "exchange_halo_finish",
    "payload_checksum",
]
