"""Simulated distributed-memory communication substrate.

The paper runs Nalu-Wind/hypre over MPI on thousands of GPUs.  This package
provides an in-process SPMD rank simulator: every rank's data lives in
rank-indexed containers, exchanges move real NumPy arrays between them, and
every point-to-point message and collective is recorded in a
:class:`~repro.comm.traffic.TrafficLog` so the performance model
(:mod:`repro.perf`) can convert the observed communication structure into
simulated wall time on a modeled machine.
"""

from repro.comm.traffic import CollectiveRecord, MessageRecord, TrafficLog
from repro.comm.simcomm import SimComm, SimWorld
from repro.comm.exchange import ExchangePattern, build_exchange_pattern

__all__ = [
    "CollectiveRecord",
    "ExchangePattern",
    "MessageRecord",
    "SimComm",
    "SimWorld",
    "TrafficLog",
    "build_exchange_pattern",
]
