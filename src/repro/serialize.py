"""Strict config (de)serialization helpers and canonical hashing.

Every config dataclass (``SimulationConfig`` and the nested
``SolverConfig``/``AMGOptions``/``RecoveryPolicy``/``FaultSpec``) exposes
``to_dict()``/``from_dict()`` built on these helpers.  The contract is
deliberately strict — this dict is the campaign cache key, so silent
coercion or silently-dropped keys would alias distinct configurations:

* unknown keys raise ``ValueError`` (no typo ever falls back to a
  default);
* every value is type-checked with the exact JSON-compatible kind the
  field declares (``bool`` is *not* an ``int`` here);
* ``int`` is accepted where ``float`` is declared (JSON writers emit
  ``1`` for ``1.0``) and normalized to ``float``.

:func:`stable_digest` is the canonical content hash: sorted-key,
separator-free JSON, SHA-256.  Two dicts that differ only in key order
digest identically; any value change changes the digest.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable

Parser = Callable[[Any, str], Any]


def canonical_json(doc: Any) -> str:
    """Canonical JSON text: sorted keys, compact separators."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def stable_digest(doc: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``doc``."""
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()


def _type_error(path: str, expected: str, value: Any) -> ValueError:
    return ValueError(
        f"{path}: expected {expected}, got {type(value).__name__} "
        f"({value!r})"
    )


def as_bool(value: Any, path: str) -> bool:
    """A real bool (``0``/``1`` are rejected: they round-trip as ints)."""
    if not isinstance(value, bool):
        raise _type_error(path, "bool", value)
    return value


def as_int(value: Any, path: str) -> int:
    """An int; bool is explicitly rejected despite being an int subtype."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise _type_error(path, "int", value)
    return int(value)


def as_float(value: Any, path: str) -> float:
    """A float; ints are accepted (JSON writes ``1.0`` as ``1``)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _type_error(path, "float", value)
    return float(value)


def as_str(value: Any, path: str) -> str:
    if not isinstance(value, str):
        raise _type_error(path, "str", value)
    return value


def as_opt_str(value: Any, path: str) -> str | None:
    if value is None:
        return None
    return as_str(value, path)


def as_opt_float(value: Any, path: str) -> float | None:
    if value is None:
        return None
    return as_float(value, path)


def as_str_tuple(value: Any, path: str) -> tuple[str, ...]:
    if not isinstance(value, (list, tuple)):
        raise _type_error(path, "list of str", value)
    return tuple(as_str(v, f"{path}[{i}]") for i, v in enumerate(value))


def as_float_triple(value: Any, path: str) -> tuple[float, float, float]:
    if not isinstance(value, (list, tuple)) or len(value) != 3:
        raise _type_error(path, "list of 3 floats", value)
    x, y, z = (as_float(v, f"{path}[{i}]") for i, v in enumerate(value))
    return (x, y, z)


def nested(from_dict: Callable[[Any], Any]) -> Parser:
    """Parser for a nested config block handled by its own ``from_dict``."""

    def parse(value: Any, path: str) -> Any:
        if not isinstance(value, dict):
            raise _type_error(path, "mapping", value)
        return from_dict(value)

    return parse


def nested_list(from_dict: Callable[[Any], Any]) -> Parser:
    """Parser for a list of nested config blocks (e.g. fault specs)."""

    def parse(value: Any, path: str) -> tuple:
        if not isinstance(value, (list, tuple)):
            raise _type_error(path, "list of mappings", value)
        out = []
        for i, item in enumerate(value):
            if not isinstance(item, dict):
                raise _type_error(f"{path}[{i}]", "mapping", item)
            out.append(from_dict(item))
        return tuple(out)

    return parse


def strict_kwargs(
    cls_name: str, data: Any, parsers: dict[str, Parser]
) -> dict[str, Any]:
    """Parse ``data`` into constructor kwargs, strictly.

    Unknown keys raise (listing both the offenders and the accepted
    keys); each present key runs through its declared parser.  Absent
    keys are simply omitted so dataclass defaults apply.
    """
    if not isinstance(data, dict):
        raise _type_error(cls_name, "mapping", data)
    unknown = sorted(set(data) - set(parsers))
    if unknown:
        raise ValueError(
            f"{cls_name}: unknown config keys {unknown}; "
            f"accepted keys: {sorted(parsers)}"
        )
    return {
        key: parsers[key](value, f"{cls_name}.{key}")
        for key, value in data.items()
    }
