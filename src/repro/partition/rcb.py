"""Recursive coordinate bisection (RCB).

The paper's original workflow used RCB for domain decomposition and observed
"imbalanced and/or skewed subdomains ... small, disconnected red and light
blue slivers" (Fig. 4) leading to inefficient messaging, motivating the
switch to ParMETIS (§5.1).  RCB knows only point coordinates and weights: it
recursively splits the point cloud at the weighted median along the longest
extent, so on an overset turbine system — where blade-mesh point density is
orders of magnitude higher than the background's — it happily slices through
boundary layers and produces rank regions that are geometrically tiny,
disconnected across component meshes, and poorly balanced in matrix
nonzeros.
"""

from __future__ import annotations

import numpy as np


def _split_counts(k: int) -> tuple[int, int]:
    """Split k parts into two branches as evenly as possible."""
    left = (k + 1) // 2
    return left, k - left


def rcb_element_node_partition(
    cell_centroids: np.ndarray,
    cells: np.ndarray,
    n_nodes: int,
    nparts: int,
) -> np.ndarray:
    """Element-based RCB with STK-style node ownership.

    Nalu-Wind distributes *elements*; RCB balances element counts, and a
    node shared between ranks is owned by the lowest rank touching it (the
    STK convention).  On overset systems RCB's cuts slice through the dense
    near-body clouds, producing fragmented interfaces — and because every
    interface node migrates to the lower rank, the matrix-row (nnz) load
    skews far from balanced even though the element counts are exact.
    This is the mechanism behind the paper's Figs. 4-5 RCB pathology.

    Args:
        cell_centroids: ``(n_cells, d)`` element centroids (all meshes).
        cells: ``(n_cells, nodes_per_cell)`` element-to-node connectivity.
        n_nodes: total node count.
        nparts: rank count.

    Returns:
        ``(n_nodes,)`` owning rank per node.
    """
    cell_parts = rcb_partition(cell_centroids, nparts)
    owner = np.full(n_nodes, nparts, dtype=np.int64)
    ranks = np.repeat(cell_parts, cells.shape[1])
    np.minimum.at(owner, cells.reshape(-1), ranks)
    # Nodes touched by no cell (none in practice): give them to rank 0.
    owner[owner == nparts] = 0
    return owner


def rcb_partition(
    coords: np.ndarray,
    nparts: int,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Partition points into ``nparts`` by recursive coordinate bisection.

    Args:
        coords: ``(n, d)`` point coordinates.
        nparts: number of parts (any positive integer, not just powers of 2).
        weights: optional per-point weights; the cut balances total weight.

    Returns:
        ``(n,)`` part assignment in ``[0, nparts)``.
    """
    coords = np.asarray(coords, dtype=np.float64)
    n = coords.shape[0]
    if nparts < 1:
        raise ValueError("nparts must be positive")
    if weights is None:
        weights = np.ones(n)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (n,):
            raise ValueError("weights must be one per point")

    parts = np.zeros(n, dtype=np.int64)
    # Work queue of (point indices, first part id, part count).
    stack: list[tuple[np.ndarray, int, int]] = [
        (np.arange(n, dtype=np.int64), 0, nparts)
    ]
    while stack:
        idx, base, k = stack.pop()
        if k == 1 or idx.size == 0:
            parts[idx] = base
            continue
        kl, kr = _split_counts(k)
        pts = coords[idx]
        extent = pts.max(axis=0) - pts.min(axis=0)
        axis = int(np.argmax(extent))
        order = np.argsort(pts[:, axis], kind="stable")
        w = weights[idx][order]
        # Cut where cumulative weight reaches the left branch's share.
        target = w.sum() * (kl / k)
        csum = np.cumsum(w)
        cut = int(np.searchsorted(csum, target))
        cut = min(max(cut, 1), idx.size - 1)
        left = idx[order[:cut]]
        right = idx[order[cut:]]
        stack.append((left, base, kl))
        stack.append((right, base + kl, kr))
    return parts
