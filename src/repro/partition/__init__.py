"""Domain decomposition: RCB, multilevel (ParMETIS-like), metrics."""

from repro.partition.metrics import (
    BalanceStats,
    balance_stats,
    components_per_rank,
    edge_cut,
    nnz_per_rank,
)
from repro.partition.multilevel import (
    MultilevelOptions,
    heavy_edge_matching,
    multilevel_partition,
)
from repro.partition.rcb import rcb_partition
from repro.partition.renumber import RankNumbering, build_numbering

__all__ = [
    "BalanceStats",
    "MultilevelOptions",
    "RankNumbering",
    "balance_stats",
    "build_numbering",
    "components_per_rank",
    "edge_cut",
    "heavy_edge_matching",
    "multilevel_partition",
    "nnz_per_rank",
    "rcb_partition",
]
