"""Rank-block renumbering of global DoFs.

hypre distributes matrices in a 1-D block-row fashion (paper §3.3): rank r
owns one contiguous range of global row indices.  After a partitioner
assigns arbitrary rows to ranks, this module produces the permutation that
makes each rank's rows contiguous — the same relabeling Nalu-Wind performs
when it hands hypre its row ranges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RankNumbering:
    """Bijection between application ids and rank-block global ids.

    Attributes:
        parts: ``(n,)`` owning rank per application (old) id.
        old_to_new: permutation taking old ids to block-contiguous ids.
        new_to_old: inverse permutation.
        offsets: ``(nranks + 1,)`` global row offsets; rank r owns
            ``[offsets[r], offsets[r+1])`` in the new numbering.
    """

    parts: np.ndarray
    old_to_new: np.ndarray
    new_to_old: np.ndarray
    offsets: np.ndarray

    @property
    def nranks(self) -> int:
        """Number of ranks."""
        return len(self.offsets) - 1

    @property
    def n(self) -> int:
        """Total DoF count."""
        return self.parts.size

    def owned_old_ids(self, rank: int) -> np.ndarray:
        """Old (application) ids owned by ``rank``, in new-id order."""
        return self.new_to_old[self.offsets[rank] : self.offsets[rank + 1]]

    def owner_of_new(self, new_ids: np.ndarray) -> np.ndarray:
        """Owning rank of new-numbering global ids."""
        return (
            np.searchsorted(self.offsets, np.asarray(new_ids), side="right") - 1
        )


def build_numbering(parts: np.ndarray, nranks: int | None = None) -> RankNumbering:
    """Build the rank-block numbering for a part assignment.

    Args:
        parts: ``(n,)`` owning rank per DoF (old numbering).
        nranks: total rank count (default: ``parts.max() + 1``; pass
            explicitly if trailing ranks may own nothing).

    Returns:
        The numbering; stable within each rank (old order preserved).
    """
    parts = np.asarray(parts, dtype=np.int64)
    n = parts.size
    if nranks is None:
        nranks = int(parts.max()) + 1 if n else 1
    if n and (parts.min() < 0 or parts.max() >= nranks):
        raise ValueError("part ids out of range")
    order = np.argsort(parts, kind="stable")
    new_to_old = order
    old_to_new = np.empty(n, dtype=np.int64)
    old_to_new[order] = np.arange(n, dtype=np.int64)
    counts = np.bincount(parts, minlength=nranks)
    offsets = np.zeros(nranks + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return RankNumbering(
        parts=parts,
        old_to_new=old_to_new,
        new_to_old=new_to_old,
        offsets=offsets,
    )
