"""Multilevel k-way graph partitioner (the ParMETIS substitute).

The paper introduced ParMETIS-based mesh rebalancing to fix RCB's imbalance
(§5.1); we reproduce the property it relies on — nonzero-balanced, compact,
graph-aware parts — with the classic multilevel scheme ParMETIS itself uses:

1. **Coarsen** by heavy-edge matching until the graph is small,
2. **Initial partition** the coarsest graph by recursive spectral bisection
   (Fiedler vector, weighted-median split),
3. **Uncoarsen** and apply rounds of boundary Kernighan-Lin/FM-style
   refinement at every level.

Vertex weights (row nonzeros when partitioning a matrix graph) are balanced;
edge weights guide the matching and the cut.

Everything is vectorized: matching is done with rounds of mutual-heaviest-
neighbor proposals (a Luby-style symmetric-proposal scheme) instead of a
sequential greedy sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse


def heavy_edge_matching(
    A: sparse.csr_matrix, rng: np.random.Generator, max_rounds: int = 8
) -> np.ndarray:
    """Heavy-edge matching via Luby-style edge local maxima.

    Each round assigns every active edge a priority = (weight, random
    tie-break); an edge is matched when it is the top-priority active edge
    at *both* endpoints (a maximal-matching analogue of Luby's MIS, which is
    also how PMIS breaks ties — paper §4.1).  Rounds repeat on the still
    unmatched remainder, so the scheme is fully vectorized yet matches a
    large fraction of vertices.

    Returns:
        ``(n,)`` aggregate labels in ``[0, n_coarse)``; matched pairs share a
        label, unmatched vertices get their own.
    """
    n = A.shape[0]
    coo = sparse.triu(A, k=1).tocoo()
    ei, ej, ew = coo.row, coo.col, coo.data
    matched = np.zeros(n, dtype=bool)
    mate = np.arange(n, dtype=np.int64)
    if ei.size:
        wmax = float(ew.max())
        for _ in range(max_rounds):
            active = ~matched[ei] & ~matched[ej]
            if not np.any(active):
                break
            # Distinct priorities: heavy edges first, random tie-break.
            prio = np.full(ei.size, -np.inf)
            u = rng.random(int(active.sum()))
            prio[active] = ew[active] + (1e-6 * wmax) * u
            vmax = np.full(n, -np.inf)
            np.maximum.at(vmax, ei, prio)
            np.maximum.at(vmax, ej, prio)
            win = active & (prio >= vmax[ei]) & (prio >= vmax[ej])
            wi, wj = ei[win], ej[win]
            if wi.size == 0:
                break
            matched[wi] = True
            matched[wj] = True
            mate[wj] = wi
    # Compress to contiguous aggregate ids (representative = min of pair).
    rep = np.minimum(mate, np.arange(n))
    _, agg = np.unique(rep, return_inverse=True)
    return agg


def _coarsen(
    A: sparse.csr_matrix, vwgt: np.ndarray, agg: np.ndarray
) -> tuple[sparse.csr_matrix, np.ndarray]:
    """Build the coarse graph/weights induced by an aggregation."""
    nc = int(agg.max()) + 1
    n = A.shape[0]
    P = sparse.csr_matrix(
        (np.ones(n), (np.arange(n), agg)), shape=(n, nc)
    )
    Ac = (P.T @ A @ P).tocsr()
    Ac.setdiag(0.0)
    Ac.eliminate_zeros()
    vc = np.zeros(nc)
    np.add.at(vc, agg, vwgt)
    return Ac, vc


def _fiedler_bisect(
    A: sparse.csr_matrix, vwgt: np.ndarray, ratio: float
) -> np.ndarray:
    """Bisect a small graph with the Fiedler vector at the weighted median.

    Args:
        A: symmetric weighted adjacency (small; densified internally).
        vwgt: vertex weights to balance.
        ratio: weight fraction assigned to side 0.

    Returns:
        boolean array, True for side 1.
    """
    n = A.shape[0]
    if n <= 2:
        return np.arange(n) >= max(1, round(n * ratio))
    D = np.asarray(A.sum(axis=1)).ravel()
    L = np.diag(D) - A.toarray()
    # Second-smallest eigenvector of the Laplacian.
    vals, vecs = np.linalg.eigh(L)
    fiedler = vecs[:, 1]
    order = np.argsort(fiedler, kind="stable")
    csum = np.cumsum(vwgt[order])
    target = vwgt.sum() * ratio
    cut = int(np.searchsorted(csum, target))
    cut = min(max(cut, 1), n - 1)
    side1 = np.zeros(n, dtype=bool)
    side1[order[cut:]] = True
    return side1


def _initial_partition(
    A: sparse.csr_matrix, vwgt: np.ndarray, nparts: int
) -> np.ndarray:
    """Recursive spectral bisection of the coarsest graph."""
    n = A.shape[0]
    parts = np.zeros(n, dtype=np.int64)
    stack = [(np.arange(n, dtype=np.int64), 0, nparts)]
    while stack:
        idx, base, k = stack.pop()
        if k == 1 or idx.size <= 1:
            parts[idx] = base
            continue
        kl = (k + 1) // 2
        kr = k - kl
        sub = A[idx][:, idx].tocsr()
        side1 = _fiedler_bisect(sub, vwgt[idx], kl / k)
        stack.append((idx[~side1], base, kl))
        stack.append((idx[side1], base + kl, kr))
    return parts


def _refine(
    A: sparse.csr_matrix,
    vwgt: np.ndarray,
    parts: np.ndarray,
    nparts: int,
    passes: int = 6,
    tol: float = 0.05,
) -> np.ndarray:
    """Boundary FM-style refinement: greedy gain moves under balance."""
    parts = parts.copy()
    n = A.shape[0]
    total = vwgt.sum()
    target = total / nparts
    cap = target * (1.0 + tol)
    part_w = np.zeros(nparts)
    np.add.at(part_w, parts, vwgt)

    for _ in range(passes):
        # Boundary vertices: endpoints of cut edges.
        coo = A.tocoo()
        cut_mask = parts[coo.row] != parts[coo.col]
        if not np.any(cut_mask):
            break
        bnd = np.unique(
            np.concatenate([coo.row[cut_mask], coo.col[cut_mask]])
        )
        # Connectivity of boundary vertices to each part.
        onehot = sparse.csr_matrix(
            (np.ones(n), (np.arange(n), parts)), shape=(n, nparts)
        )
        conn = np.asarray((A[bnd] @ onehot).todense())  # (nb, nparts)
        own = parts[bnd]
        internal = conn[np.arange(bnd.size), own]
        conn[np.arange(bnd.size), own] = -np.inf
        best_part = np.argmax(conn, axis=1)
        best_ext = conn[np.arange(bnd.size), best_part]
        gain = best_ext - internal
        movable = gain > 0
        if not np.any(movable):
            break
        # Order by descending gain; apply sequentially against live part
        # weights (cheap: boundary sets are small).
        cand = np.flatnonzero(movable)
        cand = cand[np.argsort(-gain[cand], kind="stable")]
        moved = 0
        for c in cand:
            v = bnd[c]
            p, q = parts[v], best_part[c]
            if p == q:
                continue
            if part_w[q] + vwgt[v] > cap:
                continue
            if part_w[p] - vwgt[v] < 0.25 * target:
                continue
            parts[v] = q
            part_w[p] -= vwgt[v]
            part_w[q] += vwgt[v]
            moved += 1
        if moved == 0:
            break
    return parts


def _rebalance(
    A: sparse.csr_matrix,
    vwgt: np.ndarray,
    parts: np.ndarray,
    nparts: int,
    tol: float,
    max_passes: int = 12,
) -> np.ndarray:
    """Hard balance pass: drain overloaded parts through their boundaries.

    The gain-driven refinement only moves vertices with positive cut gain;
    when parts are small that can leave weight imbalance behind.  This pass
    moves boundary vertices out of over-capacity parts into their least
    loaded neighboring part (accepting cut degradation) until every part
    fits under ``(1 + tol) * target``.
    """
    parts = parts.copy()
    n = A.shape[0]
    total = vwgt.sum()
    target = total / nparts
    cap = target * (1.0 + tol)
    part_w = np.zeros(nparts)
    np.add.at(part_w, parts, vwgt)
    indptr, indices = A.indptr, A.indices
    for _ in range(max_passes):
        over = np.flatnonzero(part_w > cap)
        if over.size == 0:
            break
        moved = 0
        for p in over:
            members = np.flatnonzero(parts == p)
            # Boundary members with their candidate destination parts.
            # Move light vertices first.  The stable kind makes the
            # rebalance order (and hence the final parts array) invariant
            # under ties — quicksort here made the partition depend on
            # introsort pivot choices for equal-weight vertices.
            order = np.argsort(vwgt[members], kind="stable")
            for v in members[order]:
                if part_w[p] <= cap:
                    break
                nbr_parts = parts[indices[indptr[v] : indptr[v + 1]]]
                nbr_parts = np.unique(nbr_parts[nbr_parts != p])
                if nbr_parts.size == 0:
                    continue
                q = nbr_parts[np.argmin(part_w[nbr_parts])]
                if part_w[q] + vwgt[v] > cap:
                    continue
                parts[v] = q
                part_w[p] -= vwgt[v]
                part_w[q] += vwgt[v]
                moved += 1
        if moved == 0:
            break
    return parts


@dataclass
class MultilevelOptions:
    """Tuning knobs for :func:`multilevel_partition`."""

    coarsest_size: int = 384
    max_levels: int = 20
    refine_passes: int = 6
    balance_tol: float = 0.05
    seed: int = 0


def multilevel_partition(
    adjacency: sparse.spmatrix,
    nparts: int,
    vertex_weights: np.ndarray | None = None,
    options: MultilevelOptions | None = None,
) -> np.ndarray:
    """Partition a graph into ``nparts`` with the multilevel scheme.

    Args:
        adjacency: symmetric adjacency (weights used as edge weights;
            diagonal ignored).
        nparts: number of parts.
        vertex_weights: per-vertex weights to balance (default 1).
        options: tuning knobs.

    Returns:
        ``(n,)`` part assignment in ``[0, nparts)``.
    """
    opt = options or MultilevelOptions()
    A = sparse.csr_matrix(adjacency, copy=True).astype(np.float64)
    A.setdiag(0.0)
    A.eliminate_zeros()
    n = A.shape[0]
    if nparts < 1:
        raise ValueError("nparts must be positive")
    if nparts == 1:
        return np.zeros(n, dtype=np.int64)
    vwgt = (
        np.ones(n)
        if vertex_weights is None
        else np.asarray(vertex_weights, dtype=np.float64)
    )
    if vwgt.shape != (n,):
        raise ValueError("vertex_weights must be one per vertex")
    rng = np.random.default_rng(opt.seed)

    # Coarsening phase.
    graphs = [A]
    weights = [vwgt]
    aggs: list[np.ndarray] = []
    target = max(opt.coarsest_size, 24 * nparts)
    while graphs[-1].shape[0] > target and len(graphs) < opt.max_levels:
        agg = heavy_edge_matching(graphs[-1], rng)
        nc = int(agg.max()) + 1
        if nc >= graphs[-1].shape[0] * 0.95:
            break  # matching stalled (e.g. star graphs)
        Ac, vc = _coarsen(graphs[-1], weights[-1], agg)
        graphs.append(Ac)
        weights.append(vc)
        aggs.append(agg)

    # Initial partition on the coarsest level.
    parts = _initial_partition(graphs[-1], weights[-1], nparts)
    parts = _refine(
        graphs[-1], weights[-1], parts, nparts, opt.refine_passes, opt.balance_tol
    )

    # Uncoarsening with refinement at every level.
    for level in range(len(aggs) - 1, -1, -1):
        parts = parts[aggs[level]]
        parts = _refine(
            graphs[level],
            weights[level],
            parts,
            nparts,
            opt.refine_passes,
            opt.balance_tol,
        )
    # Enforce the balance constraint on the finest level.
    parts = _rebalance(A, vwgt, parts, nparts, opt.balance_tol)
    return parts
