"""Partition-quality metrics: the paper's nnz-per-rank balance plots.

Figures 5 and 10 of the paper measure decomposition quality as the median
number of matrix nonzeros per GPU (MPI rank) with error bars at the
min/max.  These helpers compute exactly those statistics from a matrix and
a part assignment, plus the edge cut and subdomain-connectivity diagnostics
behind the paper's Fig. 4 "sliver" observation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.sparse.csgraph import connected_components


@dataclass
class BalanceStats:
    """nnz-per-rank balance summary (one point of Fig. 5 / Fig. 10)."""

    nparts: int
    median: float
    minimum: float
    maximum: float
    stdev: float

    @property
    def spread(self) -> float:
        """max - min, the paper's error-bar height."""
        return self.maximum - self.minimum

    @property
    def imbalance(self) -> float:
        """max / mean, the classical load-imbalance factor."""
        mean = (self.median if self.median > 0 else 1.0)
        return self.maximum / mean


def nnz_per_rank(matrix: sparse.spmatrix, parts: np.ndarray) -> np.ndarray:
    """Nonzeros in each rank's owned rows.

    Args:
        matrix: assembled global matrix.
        parts: ``(n,)`` owning rank per row.

    Returns:
        ``(nparts,)`` nonzero counts.
    """
    A = matrix.tocsr()
    row_nnz = np.diff(A.indptr)
    nparts = int(parts.max()) + 1
    out = np.zeros(nparts, dtype=np.int64)
    np.add.at(out, parts, row_nnz)
    return out


def balance_stats(matrix: sparse.spmatrix, parts: np.ndarray) -> BalanceStats:
    """Median/min/max/stdev of nnz per rank (paper Figs. 5, 10)."""
    counts = nnz_per_rank(matrix, parts)
    return BalanceStats(
        nparts=counts.size,
        median=float(np.median(counts)),
        minimum=float(counts.min()),
        maximum=float(counts.max()),
        stdev=float(counts.std()),
    )


def edge_cut(adjacency: sparse.spmatrix, parts: np.ndarray) -> int:
    """Number of graph edges crossing part boundaries."""
    coo = sparse.coo_matrix(adjacency)
    mask = (coo.row < coo.col) & (parts[coo.row] != parts[coo.col])
    return int(np.count_nonzero(mask))


def components_per_rank(
    adjacency: sparse.spmatrix, parts: np.ndarray
) -> np.ndarray:
    """Connected components of each rank's induced subgraph.

    RCB on overset turbine systems produces disconnected rank territories
    (the paper's Fig. 4 slivers); values > 1 here are that pathology.
    """
    A = sparse.csr_matrix(adjacency)
    nparts = int(parts.max()) + 1
    out = np.zeros(nparts, dtype=np.int64)
    for p in range(nparts):
        idx = np.flatnonzero(parts == p)
        if idx.size == 0:
            continue
        sub = A[idx][:, idx]
        ncomp, _ = connected_components(sub, directed=False)
        out[p] = ncomp
    return out
