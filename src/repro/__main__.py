"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` — run a simulation workload and report solver statistics (and
  optionally export VTK flow fields).
* ``trace`` — run a workload and emit the machine-readable
  :class:`~repro.obs.telemetry.RunTelemetry` JSON document (or the
  human-readable span-tree / flat views).
* ``profile`` — run a workload with the per-rank timeline profiler and
  emit the ``repro.profile/1`` JSON document, a Chrome trace-event file
  (loadable in Perfetto / ``chrome://tracing``), or a text summary.
* ``scaling`` — run a strong-scaling sweep and print the priced curves.
* ``partition`` — compare RCB and multilevel decompositions (Figs. 4-5).
* ``project`` — print the §6 exascale capability projection.
* ``analyze`` — repro-lint (RL001-RL006) + kernel sanitizer (KS001-KS005)
  over the source tree (see ``docs/static_analysis.md``).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_run(args: argparse.Namespace) -> int:
    from repro import NaluWindSimulation, SimulationConfig
    from repro.harness import nli_step_times
    from repro.perf import get_machine

    cfg = SimulationConfig(
        nranks=args.ranks,
        partition_method=args.partition,
        assembly_variant=args.assembly,
        checkpoint_every=args.checkpoint_every,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_keep=args.checkpoint_keep,
        restart_from=args.restart_from,
    )
    sim = NaluWindSimulation(args.workload, cfg)
    print(
        f"{args.workload}: {sim.comp.n} DoFs, {len(sim.comp.meshes)} meshes, "
        f"{args.ranks} ranks"
    )
    if args.restart_from:
        print(
            f"  restarted from {args.restart_from} at step {sim.step_index}"
        )
    report = sim.run(args.steps)
    for eq, its in report.solve_iterations.items():
        print(f"  {eq:10s} mean iters {np.mean(its):6.2f} over {len(its)} solves")
    print(f"  mass residual: {report.divergence_norms[-1]:.2e}")
    machine = get_machine(args.machine)
    times = nli_step_times(report, machine)
    print(
        f"  NLI time/step on {machine.name} (paper-scale): "
        f"{times.mean():.3f} +- {times.std():.3f} s"
    )
    if args.vtk:
        from repro.core.postprocess import q_criterion, vorticity_magnitude
        from repro.mesh.vtk_io import write_composite_vtk

        paths = write_composite_vtk(
            args.vtk,
            sim.comp,
            {
                "velocity": sim.velocity,
                "pressure": sim.pressure_field,
                "q_criterion": q_criterion(sim.comp, sim.velocity),
                "vorticity_mag": vorticity_magnitude(sim.comp, sim.velocity),
            },
        )
        print(f"  wrote {len(paths)} VTK files to {args.vtk}_*.vtk")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro import NaluWindSimulation, SimulationConfig
    from repro.obs import render_flat_report, render_span_tree
    from repro.obs.export import write_telemetry_json

    cfg = SimulationConfig(
        nranks=args.ranks,
        partition_method=args.partition,
        assembly_variant=args.assembly,
    )
    sim = NaluWindSimulation(args.workload, cfg)
    report = sim.run(args.steps)
    telemetry = report.telemetry
    if args.format == "json":
        text = telemetry.to_json()
    elif args.format == "tree":
        text = render_span_tree(telemetry, max_depth=args.max_depth)
    else:
        text = render_flat_report(telemetry)
    if args.output:
        if args.format == "json":
            write_telemetry_json(args.output, telemetry)
        else:
            with open(args.output, "w") as fh:
                fh.write(text + "\n")
        print(f"wrote {args.format} telemetry to {args.output}")
    else:
        print(text)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from repro import NaluWindSimulation, SimulationConfig
    from repro.obs import render_profile_summary, to_chrome_trace

    cfg = SimulationConfig(
        nranks=args.ranks,
        partition_method=args.partition,
        assembly_variant=args.assembly,
        profile=True,
        profile_machine=args.machine,
    )
    sim = NaluWindSimulation(args.workload, cfg)
    report = sim.run(args.steps)
    profile = report.profile
    if args.format == "json":
        text = profile.to_json()
    elif args.format == "chrome":
        text = json.dumps(
            to_chrome_trace(sim.world.profiler, workload=sim.workload_name),
            sort_keys=True,
        )
    else:
        text = render_profile_summary(profile)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.format} profile to {args.output}")
    else:
        print(text)
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.harness import nli_series, run_strong_scaling, series_table
    from repro.perf import get_machine

    ranks = [int(r) for r in args.ranks.split(",")]
    points = run_strong_scaling(args.workload, ranks, n_steps=args.steps)
    series = [
        nli_series(points, get_machine(name))
        for name in args.machines.split(",")
    ]
    print(series_table(f"strong scaling: {args.workload}", series))
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    sys.argv = ["partitioning_study", str(args.ranks)]
    import importlib.util
    import os

    # The study lives in examples/; run it in-process if present, else
    # use the library directly.
    from repro.comm import SimWorld
    from repro.core import CompositeMesh
    from repro.harness import format_table
    from repro.mesh import make_workload
    from repro.overset.assembler import NodeStatus
    from repro.partition import balance_stats, multilevel_partition
    from repro.partition.rcb import rcb_element_node_partition
    from scipy import sparse

    comp = CompositeMesh(SimWorld(1), make_workload(args.workload))
    g = comp.node_graph().tocoo()
    free = comp.statuses == NodeStatus.FIELD
    keep = free[g.row]
    rows_ = np.concatenate([g.row[keep], np.arange(comp.n)])
    cols_ = np.concatenate([g.col[keep], np.arange(comp.n)])
    A = sparse.csr_matrix(
        (np.ones(rows_.size), (rows_, cols_)), shape=(comp.n, comp.n)
    )
    cells, centroids = comp.all_cells()
    gg = comp.node_graph()
    vw = np.diff(A.indptr).astype(float)
    rows = []
    for label, parts in (
        (
            "RCB",
            rcb_element_node_partition(centroids, cells, comp.n, args.ranks),
        ),
        (
            "multilevel",
            multilevel_partition(gg, args.ranks, vertex_weights=vw),
        ),
    ):
        bs = balance_stats(A, parts)
        rows.append(
            [label, f"{bs.median:.0f}", f"{bs.minimum:.0f}",
             f"{bs.maximum:.0f}", f"{bs.spread:.0f}"]
        )
    print(
        format_table(
            f"nnz balance, {args.ranks} ranks, {args.workload}",
            ["method", "median", "min", "max", "spread"],
            rows,
        )
    )
    return 0


def _cmd_project(args: argparse.Namespace) -> int:
    from repro.harness import format_table, paper_projection

    rows = [
        [p.label, f"{p.gpus:,}", f"{p.peak_pflops:.0f}",
         f"{p.mesh_nodes / 1e9:.2f}B"]
        for p in paper_projection()
    ]
    print(
        format_table(
            "Exascale capability projection (paper §6)",
            ["operating point", "GPUs", "peak PF", "mesh nodes"],
            rows,
        )
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SC'21 exascale-prep CFD reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a simulation workload")
    p_run.add_argument("--workload", default="turbine_tiny")
    p_run.add_argument("--steps", type=int, default=2)
    p_run.add_argument("--ranks", type=int, default=6)
    p_run.add_argument("--machine", default="summit-gpu")
    p_run.add_argument(
        "--partition", default="parmetis", choices=["parmetis", "rcb"]
    )
    p_run.add_argument(
        "--assembly",
        default="optimized",
        choices=["optimized", "sparse_add", "general"],
    )
    p_run.add_argument("--vtk", default="", help="VTK output prefix")
    p_run.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="write a durable checkpoint every N steps (0 = off)",
    )
    p_run.add_argument(
        "--checkpoint-dir", default="checkpoints",
        help="checkpoint retention-ring directory",
    )
    p_run.add_argument(
        "--checkpoint-keep", type=int, default=2,
        help="checkpoints kept in the retention ring",
    )
    p_run.add_argument(
        "--restart-from", default="", metavar="PATH",
        help="resume from a checkpoint file or ring directory "
             "(--steps then counts from t=0)",
    )
    p_run.set_defaults(func=_cmd_run)

    p_tr = sub.add_parser(
        "trace", help="run a workload and emit run telemetry"
    )
    p_tr.add_argument("workload", nargs="?", default="turbine_tiny")
    p_tr.add_argument("--steps", type=int, default=1)
    p_tr.add_argument("--ranks", type=int, default=2)
    p_tr.add_argument(
        "--partition", default="parmetis", choices=["parmetis", "rcb"]
    )
    p_tr.add_argument(
        "--assembly",
        default="optimized",
        choices=["optimized", "sparse_add", "general"],
    )
    p_tr.add_argument(
        "--format", default="json", choices=["json", "tree", "flat"]
    )
    p_tr.add_argument(
        "--max-depth", type=int, default=-1,
        help="span-tree depth cap for --format tree (-1 = unlimited)",
    )
    p_tr.add_argument(
        "--output", "-o", default="",
        help="write to this path instead of stdout",
    )
    p_tr.set_defaults(func=_cmd_trace)

    p_pf = sub.add_parser(
        "profile",
        help="run a workload under the per-rank timeline profiler",
    )
    p_pf.add_argument("workload", nargs="?", default="turbine_tiny")
    p_pf.add_argument("--steps", type=int, default=1)
    p_pf.add_argument("--ranks", type=int, default=4)
    p_pf.add_argument(
        "--machine", default="summit-gpu",
        help="machine model pricing the simulated rank clocks",
    )
    p_pf.add_argument(
        "--partition", default="parmetis", choices=["parmetis", "rcb"]
    )
    p_pf.add_argument(
        "--assembly",
        default="optimized",
        choices=["optimized", "sparse_add", "general"],
    )
    p_pf.add_argument(
        "--format", default="json", choices=["json", "chrome", "summary"],
        help="repro.profile/1 JSON, Chrome trace events, or text summary",
    )
    p_pf.add_argument(
        "--output", "-o", default="",
        help="write to this path instead of stdout",
    )
    p_pf.set_defaults(func=_cmd_profile)

    p_sc = sub.add_parser("scaling", help="strong-scaling sweep")
    p_sc.add_argument("--workload", default="turbine_tiny")
    p_sc.add_argument("--ranks", default="3,6,12")
    p_sc.add_argument("--steps", type=int, default=2)
    p_sc.add_argument("--machines", default="summit-gpu,eagle-gpu")
    p_sc.set_defaults(func=_cmd_scaling)

    p_pt = sub.add_parser("partition", help="RCB vs multilevel balance")
    p_pt.add_argument("--workload", default="turbine_low")
    p_pt.add_argument("--ranks", type=int, default=12)
    p_pt.set_defaults(func=_cmd_partition)

    p_pj = sub.add_parser("project", help="exascale capability projection")
    p_pj.set_defaults(func=_cmd_project)

    from repro.analysis.cli import add_analyze_parser

    add_analyze_parser(sub)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
