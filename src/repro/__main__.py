"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` — run a simulation workload and report solver statistics (and
  optionally export VTK flow fields).
* ``trace`` — run a workload and emit the machine-readable
  :class:`~repro.obs.telemetry.RunTelemetry` JSON document (or the
  human-readable span-tree / flat views).
* ``profile`` — run a workload with the per-rank timeline profiler and
  emit the ``repro.profile/1`` JSON document, a Chrome trace-event file
  (loadable in Perfetto / ``chrome://tracing``), or a text summary.
* ``scaling`` — run a strong-scaling sweep and print the priced curves.
* ``partition`` — compare RCB and multilevel decompositions (Figs. 4-5).
* ``project`` — print the §6 exascale capability projection.
* ``campaign`` — run (or resume) a sweep of jobs through the campaign
  service: async queue, worker pool, content-addressed result cache,
  and (``--supervised``) job-level fault domains with retry/backoff,
  hang detection, and poison-job quarantine (see ``docs/campaign.md``).
* ``analyze`` — repro-lint (RL001-RL010) + kernel sanitizer (KS001-KS005)
  over the source tree (see ``docs/static_analysis.md``).

Conventions shared by every subcommand: ``-o/--output`` writes the
result to a file instead of stdout, ``--format`` picks the rendering
(``table`` for humans, ``json`` for machines, plus command-specific
formats), and ``--list`` on workload-taking commands prints the workload
registry.  Progress/status chatter goes to stderr so ``--format json``
output stays parseable.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

#: Exit-code contract, shown in ``--help``.
EXIT_CODES = """\
exit codes:
  0  success
  1  runtime failure (solver failure, failed campaign jobs, bad input file)
  2  usage error (unknown command, flag, or workload)
  3  campaign finished but quarantined poison jobs (supervised mode)
"""


class _ListWorkloadsAction(argparse.Action):
    """``--list``: print the workload registry table and exit 0."""

    def __init__(self, option_strings, dest, **kwargs):
        super().__init__(option_strings, dest, nargs=0, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        from repro.harness import format_table
        from repro.mesh import list_workloads

        print(
            format_table(
                "registered workloads",
                ["name", "description"],
                [[name, desc] for name, desc in list_workloads()],
            )
        )
        parser.exit(0)


def _add_list_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--list",
        action=_ListWorkloadsAction,
        help="print the registered workloads and exit",
    )


def _add_output_flags(
    parser: argparse.ArgumentParser,
    formats: list[str],
    default_format: str,
) -> None:
    """The shared ``-o/--output`` + ``--format`` conventions."""
    parser.add_argument(
        "--format",
        default=default_format,
        choices=formats,
        help=f"output rendering (default: {default_format})",
    )
    parser.add_argument(
        "--output",
        "-o",
        default="",
        help="write to this path instead of stdout",
    )


def _deliver(args: argparse.Namespace, text: str, what: str) -> None:
    """Honor ``-o/--output``: write to the file or print to stdout."""
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {what} to {args.output}", file=sys.stderr)
    else:
        print(text)


def _load_json(path: str, what: str) -> dict:
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise RuntimeError(f"unreadable {what} {path}: {exc}") from exc
    if not isinstance(doc, dict):
        raise RuntimeError(f"{what} {path} must be a JSON object")
    return doc


def _cmd_run(args: argparse.Namespace) -> int:
    from repro import NaluWindSimulation, SimulationConfig
    from repro.harness import nli_step_times
    from repro.perf import get_machine

    if args.config:
        cfg = SimulationConfig.from_dict(
            _load_json(args.config, "config file")
        )
    else:
        cfg = SimulationConfig()
        cfg.nranks = 6  # run's historical default rank count
    # Explicit CLI flags override the config file.
    for attr, value in (
        ("nranks", args.ranks),
        ("partition_method", args.partition),
        ("assembly_variant", args.assembly),
        ("checkpoint_every", args.checkpoint_every),
        ("checkpoint_dir", args.checkpoint_dir),
        ("checkpoint_keep", args.checkpoint_keep),
        ("restart_from", args.restart_from),
    ):
        if value is not None:
            setattr(cfg, attr, value)
    if args.pressure_method is not None:
        cfg.pressure_solver.method = args.pressure_method
    if args.overlap:
        # Communication-avoiding schedule for every solver SpMV.
        cfg.momentum_solver.overlap = True
        cfg.scalar_solver.overlap = True
        cfg.pressure_solver.overlap = True
    cfg.validate()
    sim = NaluWindSimulation(args.workload, cfg)
    if args.format == "table":
        print(
            f"{args.workload}: {sim.comp.n} DoFs, "
            f"{len(sim.comp.meshes)} meshes, {cfg.nranks} ranks"
        )
        if cfg.restart_from:
            print(
                f"  restarted from {cfg.restart_from} "
                f"at step {sim.step_index}"
            )
    report = sim.run(args.steps)
    machine = get_machine(args.machine)
    times = nli_step_times(report, machine)
    if args.format == "json":
        doc = {
            "format": "repro.run/1",
            "workload": args.workload,
            "total_nodes": report.total_nodes,
            "n_steps": report.n_steps,
            "config": cfg.to_dict(),
            "solve_iterations": report.solve_iterations,
            "divergence_norms": report.divergence_norms,
            "nli": {
                "machine": machine.name,
                "mean_s": float(times.mean()),
                "std_s": float(times.std()),
            },
        }
        _deliver(args, json.dumps(doc, indent=2, sort_keys=True), "run report")
    else:
        lines = []
        for eq, its in report.solve_iterations.items():
            lines.append(
                f"  {eq:10s} mean iters {np.mean(its):6.2f} "
                f"over {len(its)} solves"
            )
        lines.append(f"  mass residual: {report.divergence_norms[-1]:.2e}")
        lines.append(
            f"  NLI time/step on {machine.name} (paper-scale): "
            f"{times.mean():.3f} +- {times.std():.3f} s"
        )
        _deliver(args, "\n".join(lines), "run report")
    if args.vtk:
        from repro.core.postprocess import q_criterion, vorticity_magnitude
        from repro.mesh.vtk_io import write_composite_vtk

        paths = write_composite_vtk(
            args.vtk,
            sim.comp,
            {
                "velocity": sim.velocity,
                "pressure": sim.pressure_field,
                "q_criterion": q_criterion(sim.comp, sim.velocity),
                "vorticity_mag": vorticity_magnitude(sim.comp, sim.velocity),
            },
        )
        print(
            f"  wrote {len(paths)} VTK files to {args.vtk}_*.vtk",
            file=sys.stderr,
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro import NaluWindSimulation, SimulationConfig
    from repro.obs import render_flat_report, render_span_tree
    from repro.obs.export import write_telemetry_json

    cfg = SimulationConfig(
        nranks=args.ranks,
        partition_method=args.partition,
        assembly_variant=args.assembly,
    )
    sim = NaluWindSimulation(args.workload, cfg)
    report = sim.run(args.steps)
    telemetry = report.telemetry
    if args.format == "json":
        text = telemetry.to_json()
    elif args.format == "tree":
        text = render_span_tree(telemetry, max_depth=args.max_depth)
    else:
        text = render_flat_report(telemetry)
    if args.output and args.format == "json":
        write_telemetry_json(args.output, telemetry)
        print(f"wrote json telemetry to {args.output}", file=sys.stderr)
    else:
        _deliver(args, text, f"{args.format} telemetry")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro import NaluWindSimulation, SimulationConfig
    from repro.obs import render_profile_summary, to_chrome_trace

    cfg = SimulationConfig(
        nranks=args.ranks,
        partition_method=args.partition,
        assembly_variant=args.assembly,
        profile=True,
        profile_machine=args.machine,
    )
    sim = NaluWindSimulation(args.workload, cfg)
    report = sim.run(args.steps)
    profile = report.profile
    if args.format == "json":
        text = profile.to_json()
    elif args.format == "chrome":
        text = json.dumps(
            to_chrome_trace(sim.world.profiler, workload=sim.workload_name),
            sort_keys=True,
        )
    else:
        text = render_profile_summary(profile)
    _deliver(args, text, f"{args.format} profile")
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.harness import nli_series, run_strong_scaling, series_table
    from repro.perf import get_machine

    ranks = [int(r) for r in args.ranks.split(",")]
    points = run_strong_scaling(args.workload, ranks, n_steps=args.steps)
    series = [
        nli_series(points, get_machine(name))
        for name in args.machines.split(",")
    ]
    if args.format == "json":
        doc = {
            "format": "repro.scaling/1",
            "workload": args.workload,
            "steps": args.steps,
            "series": [
                {
                    "label": s.label,
                    "machine": s.machine.name,
                    "nodes": [float(n) for n in s.nodes],
                    "ranks": [int(r) for r in s.ranks],
                    "mean_s": [float(m) for m in s.mean],
                    "std_s": [float(v) for v in s.std],
                }
                for s in series
            ],
        }
        text = json.dumps(doc, indent=2, sort_keys=True)
    else:
        text = series_table(f"strong scaling: {args.workload}", series)
    _deliver(args, text, "scaling report")
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    from scipy import sparse

    from repro.comm import SimWorld
    from repro.core import CompositeMesh
    from repro.harness import format_table
    from repro.mesh import make_workload
    from repro.overset.assembler import NodeStatus
    from repro.partition import balance_stats, multilevel_partition
    from repro.partition.rcb import rcb_element_node_partition

    comp = CompositeMesh(SimWorld(1), make_workload(args.workload))
    g = comp.node_graph().tocoo()
    free = comp.statuses == NodeStatus.FIELD
    keep = free[g.row]
    rows_ = np.concatenate([g.row[keep], np.arange(comp.n)])
    cols_ = np.concatenate([g.col[keep], np.arange(comp.n)])
    A = sparse.csr_matrix(
        (np.ones(rows_.size), (rows_, cols_)), shape=(comp.n, comp.n)
    )
    cells, centroids = comp.all_cells()
    gg = comp.node_graph()
    vw = np.diff(A.indptr).astype(float)
    stats = []
    for label, parts in (
        (
            "RCB",
            rcb_element_node_partition(centroids, cells, comp.n, args.ranks),
        ),
        (
            "multilevel",
            multilevel_partition(gg, args.ranks, vertex_weights=vw),
        ),
    ):
        bs = balance_stats(A, parts)
        stats.append((label, bs))
    if args.format == "json":
        doc = {
            "format": "repro.partition/1",
            "workload": args.workload,
            "ranks": args.ranks,
            "methods": {
                label: {
                    "median": float(bs.median),
                    "min": float(bs.minimum),
                    "max": float(bs.maximum),
                    "spread": float(bs.spread),
                }
                for label, bs in stats
            },
        }
        text = json.dumps(doc, indent=2, sort_keys=True)
    else:
        text = format_table(
            f"nnz balance, {args.ranks} ranks, {args.workload}",
            ["method", "median", "min", "max", "spread"],
            [
                [label, f"{bs.median:.0f}", f"{bs.minimum:.0f}",
                 f"{bs.maximum:.0f}", f"{bs.spread:.0f}"]
                for label, bs in stats
            ],
        )
    _deliver(args, text, "partition report")
    return 0


def _cmd_project(args: argparse.Namespace) -> int:
    from repro.harness import format_table, paper_projection

    points = paper_projection()
    if args.format == "json":
        doc = {
            "format": "repro.projection/1",
            "points": [
                {
                    "label": p.label,
                    "gpus": p.gpus,
                    "peak_pflops": p.peak_pflops,
                    "mesh_nodes": p.mesh_nodes,
                }
                for p in points
            ],
        }
        text = json.dumps(doc, indent=2, sort_keys=True)
    else:
        text = format_table(
            "Exascale capability projection (paper §6)",
            ["operating point", "GPUs", "peak PF", "mesh nodes"],
            [
                [p.label, f"{p.gpus:,}", f"{p.peak_pflops:.0f}",
                 f"{p.mesh_nodes / 1e9:.2f}B"]
                for p in points
            ],
        )
    _deliver(args, text, "projection")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    import os

    from repro.campaign import (
        Campaign,
        CampaignSpec,
        SupervisorPolicy,
        merge_overrides,
    )
    from repro.harness import format_table
    from repro.obs.hooks import ObserverHub

    hub = ObserverHub()
    progress = {"total": 0, "finished": 0}

    def on_start(name: str = "", total: int = 0, workers: int = 0, **_kw):
        progress["total"] = total
        mode = "supervised" if _kw.get("supervised") else "pool"
        print(
            f"campaign {name}: {total} jobs, "
            f"{workers or 'in-process'} workers ({mode})",
            file=sys.stderr,
        )

    def on_job(job_id: str = "", status: str = "", **kw):
        if status in ("cached", "done", "failed", "quarantined"):
            progress["finished"] += 1
        line = (
            f"  [{progress['finished']}/{progress['total']}] "
            f"{job_id} {status}"
        )
        if kw.get("attempt"):
            line += f" (attempt {kw['attempt']})"
        if kw.get("taxonomy"):
            line += f" [{kw['taxonomy']}]"
        if kw.get("wall_s") is not None:
            line += f" ({kw['wall_s']:.2f}s)"
        if kw.get("error"):
            line += f": {kw['error']}"
        print(line, file=sys.stderr)

    hub.subscribe("campaign_start", on_start)
    hub.subscribe("campaign_job", on_job)

    policy = None
    if args.supervised:
        policy = SupervisorPolicy(
            max_attempts=args.max_attempts,
            job_timeout_s=args.job_timeout,
            heartbeat_timeout_s=args.heartbeat,
        )
        policy.validate()

    try:
        store_dir = args.store or None
        if os.path.isdir(args.spec):
            camp = Campaign.resume(
                args.spec,
                workers=args.workers,
                hub=hub,
                store_dir=store_dir,
                policy=policy,
            )
        else:
            spec = CampaignSpec.from_dict(
                _load_json(args.spec, "campaign spec")
            )
            if args.config:
                spec.base = merge_overrides(
                    spec.base, _load_json(args.config, "config file")
                )
            root = args.dir or os.path.join("campaigns", spec.name)
            camp = Campaign(
                spec,
                root,
                workers=args.workers,
                hub=hub,
                store_dir=store_dir,
                policy=policy,
            )
        summary = camp.run(max_jobs=args.max_jobs, dry_run=args.dry_run)
    except (RuntimeError, ValueError, OSError) as exc:
        print(f"campaign error: {exc}", file=sys.stderr)
        return 1

    if args.format == "json":
        text = json.dumps(summary, indent=2, sort_keys=True)
    elif summary.get("dry_run"):
        text = format_table(
            f"campaign plan: {summary['name']}",
            ["job", "workload", "steps", "seed", "status", "cached",
             "overrides"],
            [
                [r["job_id"], r["workload"], r["steps"], r["seed"],
                 r["status"], "yes" if r["cached"] else "no",
                 json.dumps(r["overrides"], sort_keys=True)]
                for r in summary["jobs"]
            ],
            note="dry run: nothing executed",
        )
    else:
        counts = summary["status_counts"]
        note = (
            f"done {counts['done']}/{summary['total_jobs']}, "
            f"failed {counts['failed']}, "
            f"cache hits {summary['cache_hits']}, "
            f"plan shared {summary['plan_shared']}"
        )
        if summary.get("supervised"):
            note += (
                f"; quarantined {counts.get('quarantined', 0)}, "
                f"retries {summary.get('retries', 0)}, "
                f"requeues {summary.get('requeues', 0)}"
            )
        text = format_table(
            f"campaign: {summary['name']}",
            ["job", "status", "attempts", "cached", "wall [s]", "result"],
            [
                [
                    digest[:12],
                    entry["status"],
                    entry.get("attempts", "-"),
                    "yes" if entry.get("cached") else "no",
                    (
                        f"{entry['wall_s']:.2f}"
                        if entry.get("wall_s") is not None
                        else "-"
                    ),
                    entry.get("result", entry.get("error", "-")),
                ]
                for digest, entry in summary["jobs"].items()
            ],
            note=note,
        )
    _deliver(args, text, "campaign summary")
    if summary.get("status_counts", {}).get("failed"):
        return 1
    if summary.get("status_counts", {}).get("quarantined"):
        # All non-poison jobs finished; quarantined entries carry their
        # failure context in the manifest.
        return 3
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SC'21 exascale-prep CFD reproduction",
        epilog=EXIT_CODES,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser(
        "run",
        help="run a simulation workload",
        epilog=EXIT_CODES,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p_run.add_argument("--workload", default="turbine_tiny")
    p_run.add_argument("--steps", type=int, default=2)
    p_run.add_argument(
        "--ranks", type=int, default=None,
        help="rank count (default 6, or the --config file's nranks)",
    )
    p_run.add_argument("--machine", default="summit-gpu")
    p_run.add_argument(
        "--partition", default=None, choices=["parmetis", "rcb"]
    )
    p_run.add_argument(
        "--assembly",
        default=None,
        choices=["optimized", "sparse_add", "general"],
    )
    p_run.add_argument(
        "--config", default="", metavar="FILE",
        help="load a SimulationConfig JSON document (explicit CLI flags "
             "still override it)",
    )
    p_run.add_argument("--vtk", default="", help="VTK output prefix")
    p_run.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="write a durable checkpoint every N steps (0 = off)",
    )
    p_run.add_argument(
        "--checkpoint-dir", default=None,
        help="checkpoint retention-ring directory",
    )
    p_run.add_argument(
        "--checkpoint-keep", type=int, default=None,
        help="checkpoints kept in the retention ring",
    )
    p_run.add_argument(
        "--restart-from", default=None, metavar="PATH",
        help="resume from a checkpoint file or ring directory "
             "(--steps then counts from t=0)",
    )
    p_run.add_argument(
        "--pressure-method", default=None,
        choices=["gmres", "cg", "pipelined_cg"],
        help="Krylov method for the pressure-Poisson solve "
             "(pipelined_cg = communication-avoiding, 1 allreduce/iter)",
    )
    p_run.add_argument(
        "--overlap", action="store_true", default=None,
        help="split solver SpMV halo exchanges: apply the diag block "
             "while boundary data is in flight (bitwise-identical "
             "results, shorter halo waits)",
    )
    _add_output_flags(p_run, ["table", "json"], "table")
    _add_list_flag(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_tr = sub.add_parser(
        "trace", help="run a workload and emit run telemetry"
    )
    p_tr.add_argument("workload", nargs="?", default="turbine_tiny")
    p_tr.add_argument("--steps", type=int, default=1)
    p_tr.add_argument("--ranks", type=int, default=2)
    p_tr.add_argument(
        "--partition", default="parmetis", choices=["parmetis", "rcb"]
    )
    p_tr.add_argument(
        "--assembly",
        default="optimized",
        choices=["optimized", "sparse_add", "general"],
    )
    p_tr.add_argument(
        "--format", default="json", choices=["json", "tree", "flat"]
    )
    p_tr.add_argument(
        "--max-depth", type=int, default=-1,
        help="span-tree depth cap for --format tree (-1 = unlimited)",
    )
    p_tr.add_argument(
        "--output", "-o", default="",
        help="write to this path instead of stdout",
    )
    _add_list_flag(p_tr)
    p_tr.set_defaults(func=_cmd_trace)

    p_pf = sub.add_parser(
        "profile",
        help="run a workload under the per-rank timeline profiler",
    )
    p_pf.add_argument("workload", nargs="?", default="turbine_tiny")
    p_pf.add_argument("--steps", type=int, default=1)
    p_pf.add_argument("--ranks", type=int, default=4)
    p_pf.add_argument(
        "--machine", default="summit-gpu",
        help="machine model pricing the simulated rank clocks",
    )
    p_pf.add_argument(
        "--partition", default="parmetis", choices=["parmetis", "rcb"]
    )
    p_pf.add_argument(
        "--assembly",
        default="optimized",
        choices=["optimized", "sparse_add", "general"],
    )
    p_pf.add_argument(
        "--format", default="json", choices=["json", "chrome", "summary"],
        help="repro.profile/1 JSON, Chrome trace events, or text summary",
    )
    p_pf.add_argument(
        "--output", "-o", default="",
        help="write to this path instead of stdout",
    )
    _add_list_flag(p_pf)
    p_pf.set_defaults(func=_cmd_profile)

    p_sc = sub.add_parser("scaling", help="strong-scaling sweep")
    p_sc.add_argument("--workload", default="turbine_tiny")
    p_sc.add_argument("--ranks", default="3,6,12")
    p_sc.add_argument("--steps", type=int, default=2)
    p_sc.add_argument("--machines", default="summit-gpu,eagle-gpu")
    _add_output_flags(p_sc, ["table", "json"], "table")
    _add_list_flag(p_sc)
    p_sc.set_defaults(func=_cmd_scaling)

    p_pt = sub.add_parser("partition", help="RCB vs multilevel balance")
    p_pt.add_argument("--workload", default="turbine_low")
    p_pt.add_argument("--ranks", type=int, default=12)
    _add_output_flags(p_pt, ["table", "json"], "table")
    _add_list_flag(p_pt)
    p_pt.set_defaults(func=_cmd_partition)

    p_pj = sub.add_parser("project", help="exascale capability projection")
    _add_output_flags(p_pj, ["table", "json"], "table")
    p_pj.set_defaults(func=_cmd_project)

    p_cp = sub.add_parser(
        "campaign",
        help="run or resume a job sweep through the campaign service",
        epilog=EXIT_CODES,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p_cp.add_argument(
        "spec",
        help="a repro.campaign.spec/1 JSON file, or an existing campaign "
             "directory to resume",
    )
    p_cp.add_argument(
        "--dir", "-d", default="",
        help="campaign directory (default: campaigns/<spec name>)",
    )
    p_cp.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="worker processes (0 = run jobs in-process, serially)",
    )
    p_cp.add_argument(
        "--max-jobs", type=int, default=None, metavar="N",
        help="execute at most N jobs this invocation (cache hits are "
             "free); the rest stay pending for a later resume",
    )
    p_cp.add_argument(
        "--dry-run", action="store_true",
        help="expand and print the job table without running anything",
    )
    p_cp.add_argument(
        "--store", default="", metavar="DIR",
        help="result-store directory (default: <campaign dir>/store); "
             "share one store across campaigns to reuse results",
    )
    p_cp.add_argument(
        "--config", default="", metavar="FILE",
        help="extra SimulationConfig overrides deep-merged over the "
             "spec's base",
    )
    p_cp.add_argument(
        "--supervised", action="store_true",
        help="run jobs in supervised fault domains: taxonomy-classified "
             "retry with backoff, lease/heartbeat hang detection, "
             "poison-job quarantine (exit code 3 when any job is "
             "quarantined); workers=0 behaves as one worker process",
    )
    p_cp.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="supervised: executions per job before quarantine "
             "(default 3; transient failures only — deterministic "
             "failures quarantine immediately)",
    )
    p_cp.add_argument(
        "--job-timeout", type=float, default=0.0, metavar="SEC",
        help="supervised: wall-clock budget per job attempt "
             "(0 = unlimited)",
    )
    p_cp.add_argument(
        "--heartbeat", type=float, default=0.0, metavar="SEC",
        help="supervised: kill an attempt whose per-step heartbeat has "
             "stalled this long (0 = disabled)",
    )
    _add_output_flags(p_cp, ["table", "json"], "table")
    _add_list_flag(p_cp)
    p_cp.set_defaults(func=_cmd_campaign)

    from repro.analysis.cli import add_analyze_parser

    add_analyze_parser(sub)

    args = parser.parse_args(argv)
    if hasattr(args, "workload"):
        from repro.mesh import WORKLOADS

        if args.workload not in WORKLOADS:
            parser.error(
                f"unknown workload {args.workload!r}; known: "
                f"{', '.join(sorted(WORKLOADS))} (see --list)"
            )
    try:
        return args.func(args)
    except (RuntimeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
