"""Overset grid assembly (TIOGA analogue): holes, fringes, donors."""

from repro.overset.assembler import (
    DonorSet,
    NodeStatus,
    OversetAssembler,
    OversetConnectivity,
)
from repro.overset.trilinear import (
    contains,
    invert_map,
    shape_functions,
    shape_gradients,
)

__all__ = [
    "DonorSet",
    "NodeStatus",
    "OversetAssembler",
    "OversetConnectivity",
    "contains",
    "invert_map",
    "shape_functions",
    "shape_gradients",
]
