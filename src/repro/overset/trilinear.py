"""Trilinear hex shape functions and inverse isoparametric mapping.

Overset donor interpolation (TIOGA's role, paper §2) evaluates receptor
values from the 8 nodes of the containing donor hex with trilinear weights.
Finding the weights requires inverting the isoparametric map
``x(xi) = sum_i N_i(xi) x_i`` for the reference coordinates ``xi`` of the
receptor point; we do that with a vectorized Newton iteration over all
receptor/candidate pairs at once.
"""

from __future__ import annotations

import numpy as np

# Reference-corner signs in the standard hex8 ordering used by
# repro.mesh.topology (bottom face CCW, then top face CCW).
_CORNERS = np.array(
    [
        [-1, -1, -1],
        [1, -1, -1],
        [1, 1, -1],
        [-1, 1, -1],
        [-1, -1, 1],
        [1, -1, 1],
        [1, 1, 1],
        [-1, 1, 1],
    ],
    dtype=np.float64,
)


def shape_functions(xi: np.ndarray) -> np.ndarray:
    """Trilinear shape functions.

    Args:
        xi: ``(m, 3)`` reference coordinates in ``[-1, 1]^3``.

    Returns:
        ``(m, 8)`` weights; rows sum to 1 for any ``xi``.
    """
    xi = np.atleast_2d(xi)
    terms = 1.0 + xi[:, None, :] * _CORNERS[None, :, :]
    return 0.125 * terms.prod(axis=2)


def shape_gradients(xi: np.ndarray) -> np.ndarray:
    """d N_i / d xi_d: ``(m, 8, 3)``."""
    xi = np.atleast_2d(xi)
    terms = 1.0 + xi[:, None, :] * _CORNERS[None, :, :]  # (m, 8, 3)
    grads = np.empty((xi.shape[0], 8, 3))
    for d in range(3):
        others = [a for a in range(3) if a != d]
        grads[:, :, d] = (
            0.125
            * _CORNERS[None, :, d]
            * terms[:, :, others[0]]
            * terms[:, :, others[1]]
        )
    return grads


def invert_map(
    corners: np.ndarray,
    points: np.ndarray,
    iters: int = 15,
    tol: float = 1e-24,
) -> tuple[np.ndarray, np.ndarray]:
    """Invert the trilinear map for a batch of (cell, point) pairs.

    Args:
        corners: ``(m, 8, 3)`` physical corner coordinates.
        points: ``(m, 3)`` target physical points.
        iters: Newton iterations.
        tol: squared-residual convergence threshold.

    Returns:
        ``(xi, converged)``: reference coordinates ``(m, 3)`` and a boolean
        convergence/containment-quality flag per pair (Newton residual
        small; containment is judged by the caller from ``xi``).
    """
    m = points.shape[0]
    xi = np.zeros((m, 3))
    if m == 0:
        return xi, np.zeros(0, dtype=bool)
    ok = np.zeros(m, dtype=bool)
    for _ in range(iters):
        N = shape_functions(xi)  # (m, 8)
        xcur = np.einsum("mi,mid->md", N, corners)
        res = points - xcur
        r2 = np.einsum("md,md->m", res, res)
        scale = np.einsum("mid,mid->m", corners, corners) / 8.0 + 1e-300
        ok = r2 <= tol * scale
        if np.all(ok):
            break
        G = shape_gradients(xi)  # (m, 8, 3)
        J = np.einsum("mid,mie->mde", G, corners)  # dx/dxi transposed blocks
        # Solve J^T dxi = res per pair (3x3 systems, batched).
        try:
            dxi = np.linalg.solve(np.swapaxes(J, 1, 2), res[:, :, None])[..., 0]
        except np.linalg.LinAlgError:
            # Singular cells: damp with pseudo-inverse.
            dxi = np.einsum(
                "mde,me->md", np.linalg.pinv(np.swapaxes(J, 1, 2)), res
            )
        xi = np.clip(xi + dxi, -2.0, 2.0)
    return xi, ok


def contains(xi: np.ndarray, tol: float = 1e-6) -> np.ndarray:
    """Whether reference coordinates fall inside the element."""
    return np.all(np.abs(xi) <= 1.0 + tol, axis=1)
