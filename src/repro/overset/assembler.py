"""Overset grid assembly (the TIOGA analogue).

The paper's computational model is "multiple independent meshes for
different flow regimes ... coupled through the overset method, for which
connectivity must be continually updated as the meshes move" (§2).  This
module performs the assembly steps for a background mesh plus body-fitted
near-body meshes:

1. **Hole cutting** — background nodes too close to a blade wall are
   deactivated (they sit inside the body-fitted region, or the body).
2. **Fringe classification** — background neighbors of holes become
   receptors from the blade meshes; blade ``outer``-boundary nodes become
   receptors from the background.
3. **Donor search** — per receptor, candidate donor cells from a kd-tree on
   donor cell centroids, trilinear containment via Newton inversion, with
   inverse-distance fallback for receptors that land between donor cells.

The result feeds the linear systems as constraint rows (paper §3.1:
"Boundary-condition nodes, including periodic, Dirichlet, and overset DoFs
are accounted for precisely"), and the global coupled system is solved with
the additive Schwarz outer iteration of [20].
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np
from scipy.spatial import cKDTree

from repro.mesh.hexmesh import HexMesh
from repro.overset.trilinear import contains, invert_map, shape_functions


class NodeStatus(IntEnum):
    """Overset status of a mesh node."""

    FIELD = 0
    FRINGE = 1
    HOLE = 2


@dataclass
class DonorSet:
    """Interpolation stencils for one receptor mesh from one donor mesh.

    Attributes:
        receptor_mesh: index of the mesh whose nodes receive data.
        donor_mesh: index of the mesh providing data.
        receptors: ``(m,)`` receptor node ids on the receptor mesh.
        donors: ``(m, 8)`` donor node ids on the donor mesh.
        weights: ``(m, 8)`` interpolation weights (rows sum to 1).
    """

    receptor_mesh: int
    donor_mesh: int
    receptors: np.ndarray
    donors: np.ndarray
    weights: np.ndarray

    def interpolate(self, donor_field: np.ndarray) -> np.ndarray:
        """Evaluate donor data at the receptors (scalar or vector field)."""
        vals = donor_field[self.donors]  # (m, 8[, ncomp])
        if vals.ndim == 3:
            return np.einsum("mi,mic->mc", self.weights, vals)
        return np.einsum("mi,mi->m", self.weights, vals)


@dataclass
class OversetConnectivity:
    """Full overset assembly result for one mesh system configuration."""

    statuses: list[np.ndarray]
    donor_sets: list[DonorSet]

    def fringe_nodes(self, mesh_index: int) -> np.ndarray:
        """Receptor node ids of one mesh."""
        return np.flatnonzero(self.statuses[mesh_index] == NodeStatus.FRINGE)

    def hole_nodes(self, mesh_index: int) -> np.ndarray:
        """Deactivated node ids of one mesh."""
        return np.flatnonzero(self.statuses[mesh_index] == NodeStatus.HOLE)

    def sets_for_receptor(self, mesh_index: int) -> list[DonorSet]:
        """Donor sets whose receptors live on the given mesh."""
        return [d for d in self.donor_sets if d.receptor_mesh == mesh_index]


class OversetAssembler:
    """Builds overset connectivity for background + near-body meshes."""

    def __init__(
        self,
        meshes: list[HexMesh],
        background_index: int = 0,
        hole_distance: float | None = None,
        candidate_k: int = 32,
        nearbody_fringe_sides: tuple[str, ...] = ("outer", "root", "tip"),
    ) -> None:
        """
        Args:
            meshes: all component meshes; one is the background.
            background_index: which mesh is the background block.
            hole_distance: background nodes closer than this to a near-body
                *wall* are cut; default = 60% of each blade's outer radius
                (estimated from its wall/outer geometry).
            candidate_k: donor-cell candidates per receptor in the search.
        """
        self.meshes = meshes
        self.background_index = background_index
        self.hole_distance = hole_distance
        self.candidate_k = candidate_k
        self.nearbody_fringe_sides = nearbody_fringe_sides

    # -- public API -------------------------------------------------------------

    def assemble(self) -> OversetConnectivity:
        """Run hole cutting, classification, donor search, orphan repair."""
        nb = self.background_index
        bg = self.meshes[nb]
        statuses = [
            np.full(m.n_nodes, NodeStatus.FIELD, dtype=np.int8)
            for m in self.meshes
        ]

        # Local background spacing (mean incident edge length per node):
        # hole cutting must leave the resulting fringe ring inside the
        # near-body hull or its receptors cannot find containing donors.
        spacing = np.zeros(bg.n_nodes)
        cnt = np.zeros(bg.n_nodes)
        for col in (0, 1):
            np.add.at(spacing, bg.edges[:, col], bg.edge_length)
            np.add.at(cnt, bg.edges[:, col], 1.0)
        spacing /= np.maximum(cnt, 1.0)

        # 1. Hole cutting on the background, donor-aware: a node is cut only
        # if it is close to a near-body wall AND it and all its graph
        # neighbors have containing donor cells in that near-body mesh (so
        # the fringe ring the cut creates can actually be interpolated —
        # this is what keeps blade-tip regions, where the O-grid ends, from
        # producing orphans).
        g = bg.node_graph()
        hole_mask = np.zeros(bg.n_nodes, dtype=bool)
        cand_mask = np.zeros(bg.n_nodes, dtype=bool)
        for k, mesh in enumerate(self.meshes):
            if k == nb:
                continue
            wall = mesh.boundaries.get("wall")
            if wall is None or wall.size == 0:
                continue
            hull = self._hull_thickness(mesh)
            tree = cKDTree(mesh.coords[wall])
            d, _ = tree.query(bg.coords, k=1)
            cut = (
                np.full(bg.n_nodes, float(self.hole_distance))
                if self.hole_distance is not None
                else np.maximum(hull - 1.2 * spacing, 0.35 * hull)
            )
            cand = d < cut
            if not np.any(cand):
                continue
            # Expand by one ring; require donor coverage for the whole
            # patch.  A patch node is "good" if a containing donor cell
            # exists, or if it sits so close to the wall that it must be
            # inside the body itself (a classical in-body hole).
            reach = (g @ cand.astype(np.float64)) > 0
            patch = np.flatnonzero(cand | reach)
            _ds, found = self._search_donors(nb, k, patch)
            good = np.zeros(bg.n_nodes, dtype=bool)
            good[patch[found]] = True
            inbody = np.zeros(bg.n_nodes, dtype=bool)
            inbody[patch[~found]] = d[patch[~found]] < 0.5 * np.atleast_1d(
                cut if np.ndim(cut) == 0 else cut[patch[~found]]
            )
            good |= inbody
            bad = np.zeros(bg.n_nodes, dtype=bool)
            bad[patch] = ~good[patch]
            has_bad_nbr = (g @ bad.astype(np.float64)) > 0
            hole_mask |= cand & good & ~has_bad_nbr
            cand_mask |= cand
        statuses[nb][hole_mask] = NodeStatus.HOLE

        # 2. Fringe on the background: field neighbors of holes.
        nbr_holes = g @ hole_mask.astype(np.float64)
        fringe_bg = (nbr_holes > 0) & ~hole_mask
        statuses[nb][fringe_bg] = NodeStatus.FRINGE

        # Fringe on each near-body mesh: every open side that hangs in the
        # background flow (the O-grid rim plus the span ends), except the
        # physical wall, which keeps its no-slip Dirichlet condition.
        for k, mesh in enumerate(self.meshes):
            if k == nb:
                continue
            sides = [
                mesh.boundaries[s]
                for s in self.nearbody_fringe_sides
                if s in mesh.boundaries
            ]
            if not sides:
                continue
            rim = np.unique(np.concatenate(sides))
            wall = mesh.boundaries.get("wall")
            if wall is not None and wall.size:
                rim = np.setdiff1d(rim, wall, assume_unique=False)
            statuses[k][rim] = NodeStatus.FRINGE

        # 3. Donor search with orphan repair: a background receptor whose
        # containment search fails is demoted to FIELD and its hole
        # neighbors are promoted to FRINGE (they sit closer to the wall,
        # hence deeper inside the donor hull).  Iterate until clean; the
        # invariant "every HOLE neighbor is HOLE or FRINGE" is maintained
        # so no active stencil ever touches a frozen hole value.
        banned = np.zeros(bg.n_nodes, dtype=bool)
        donor_sets: list[DonorSet] = []
        for _repair in range(6):
            donor_sets = []
            orphan_ids: list[np.ndarray] = []
            bg_fringe = np.flatnonzero(statuses[nb] == NodeStatus.FRINGE)
            if bg_fringe.size:
                assigned = self._nearest_mesh(bg.coords[bg_fringe], exclude=nb)
                for k in np.unique(assigned):
                    sel = bg_fringe[assigned == k]
                    ds, found = self._search_donors(nb, int(k), sel)
                    donor_sets.append(ds)
                    orphan_ids.append(sel[~found])
            orphans = (
                np.concatenate(orphan_ids)
                if orphan_ids
                else np.array([], dtype=np.int64)
            )
            if orphans.size == 0:
                break
            banned[orphans] = True
            statuses[nb][orphans] = NodeStatus.FIELD
            # Promote hole neighbors of demoted orphans to fringe.
            demoted = np.zeros(bg.n_nodes)
            demoted[orphans] = 1.0
            touched = (g @ demoted) > 0
            promote = touched & (statuses[nb] == NodeStatus.HOLE)
            statuses[nb][promote & ~banned] = NodeStatus.FRINGE
            statuses[nb][promote & banned] = NodeStatus.FIELD

        # Drop receptors that were demoted during repair from final sets.
        donor_sets = [
            self._filter_set(ds, statuses[ds.receptor_mesh])
            for ds in donor_sets
        ]
        donor_sets = [ds for ds in donor_sets if ds.receptors.size]

        # Near-body outer fringe receives from the background (the domain
        # hull always contains the near-body rims; orphans are not expected
        # but the IDW fallback keeps them well defined).
        for k, mesh in enumerate(self.meshes):
            if k == nb:
                continue
            recs = np.flatnonzero(statuses[k] == NodeStatus.FRINGE)
            if recs.size:
                ds, _found = self._search_donors(int(k), nb, recs)
                donor_sets.append(ds)
        return OversetConnectivity(statuses=statuses, donor_sets=donor_sets)

    def _nearest_mesh(self, pts: np.ndarray, exclude: int) -> np.ndarray:
        """Index of the nearest non-excluded mesh for each point."""
        assigned = np.full(pts.shape[0], -1, dtype=np.int64)
        best_d = np.full(pts.shape[0], np.inf)
        for k, mesh in enumerate(self.meshes):
            if k == exclude:
                continue
            tree = cKDTree(mesh.coords)
            d, _ = tree.query(pts, k=1)
            closer = d < best_d
            best_d[closer] = d[closer]
            assigned[closer] = k
        return assigned

    @staticmethod
    def _filter_set(ds: DonorSet, status: np.ndarray) -> DonorSet:
        """Restrict a donor set to receptors still marked FRINGE."""
        keep = status[ds.receptors] == NodeStatus.FRINGE
        return DonorSet(
            receptor_mesh=ds.receptor_mesh,
            donor_mesh=ds.donor_mesh,
            receptors=ds.receptors[keep],
            donors=ds.donors[keep],
            weights=ds.weights[keep],
        )

    # -- internals ----------------------------------------------------------------

    def _hull_thickness(self, mesh: HexMesh) -> float:
        """Median wall->outer separation (the O-grid shell thickness)."""
        wall = mesh.boundaries["wall"]
        outer = mesh.boundaries["outer"]
        tree = cKDTree(mesh.coords[outer])
        d, _ = tree.query(mesh.coords[wall], k=1)
        return float(np.median(d))

    def _search_donors(
        self, receptor_mesh: int, donor_mesh: int, receptors: np.ndarray
    ) -> tuple[DonorSet, np.ndarray]:
        """Donor cells + weights for a batch of receptor nodes.

        Returns:
            ``(donor_set, found)``: ``found`` flags receptors whose
            containing donor cell was located (the rest use the
            inverse-distance fallback and may be treated as orphans).
        """
        rmesh = self.meshes[receptor_mesh]
        dmesh = self.meshes[donor_mesh]
        pts = rmesh.coords[receptors]
        cells = dmesh.cells
        centroids = dmesh.coords[cells].mean(axis=1)
        k = min(self.candidate_k, cells.shape[0])
        tree = cKDTree(centroids)
        _, cand = tree.query(pts, k=k)
        cand = np.atleast_2d(cand.reshape(pts.shape[0], k))

        m = pts.shape[0]
        donors = np.empty((m, 8), dtype=np.int64)
        weights = np.zeros((m, 8))
        found = np.zeros(m, dtype=bool)
        for j in range(k):
            todo = np.flatnonzero(~found)
            if todo.size == 0:
                break
            cell_ids = cand[todo, j]
            corner_ids = cells[cell_ids]  # (t, 8)
            corners = dmesh.coords[corner_ids]
            xi, ok = invert_map(corners, pts[todo])
            inside = ok & contains(xi, tol=1e-6)
            hit = todo[inside]
            if hit.size:
                donors[hit] = corner_ids[inside]
                weights[hit] = shape_functions(xi[inside])
                found[hit] = True
        # Fallback: inverse-distance weights on the nearest candidate cell
        # (receptors slightly outside the donor hull, e.g. at domain rims).
        miss = np.flatnonzero(~found)
        if miss.size:
            cell_ids = cand[miss, 0]
            corner_ids = cells[cell_ids]
            corners = dmesh.coords[corner_ids]
            d = np.linalg.norm(corners - pts[miss][:, None, :], axis=2)
            w = 1.0 / np.maximum(d, 1e-30)
            w /= w.sum(axis=1, keepdims=True)
            donors[miss] = corner_ids
            weights[miss] = w
        ds = DonorSet(
            receptor_mesh=receptor_mesh,
            donor_mesh=donor_mesh,
            receptors=receptors,
            donors=donors,
            weights=weights,
        )
        return ds, found
