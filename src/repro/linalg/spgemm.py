"""Sparse matrix-matrix products with hash-SpGEMM cost accounting.

AMG setup is dominated by sparse M-M multiplications: the MM-ext family of
interpolation operators and the Galerkin triple products are all built from
them (paper §4.1).  The paper found cuSPARSE's SpGEMM inadequate and used
hypre's hash-based implementation; we execute the products with SciPy and
record the hash-SpGEMM cost model (one pass to count, one to fill; work
proportional to the number of scalar products).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.comm.simcomm import SimWorld


def spgemm_products(A: sparse.csr_matrix, B: sparse.csr_matrix) -> int:
    """Number of scalar multiply-adds a row-by-row SpGEMM performs."""
    b_row_nnz = np.diff(B.indptr)
    return int(b_row_nnz[A.indices].sum())


def record_spgemm(
    world: SimWorld,
    A: sparse.csr_matrix,
    B: sparse.csr_matrix,
    C: sparse.csr_matrix,
    row_offsets: np.ndarray,
    kernel: str = "spgemm",
) -> None:
    """Record per-rank hash-SpGEMM work for ``C = A @ B``.

    Work is attributed to the rank owning each row of ``A`` under
    ``row_offsets``; each rank performs symbolic + numeric passes over its
    rows' products and writes its slice of ``C``.
    """
    a_rows = A.shape[0]
    prod_per_row = np.zeros(a_rows)
    b_row_nnz = np.diff(B.indptr)
    # products in row i = sum of B-row sizes over A's columns in row i
    contrib = b_row_nnz[A.indices].astype(np.float64)
    row_idx = np.repeat(np.arange(a_rows), np.diff(A.indptr))
    # repro: allow(RL002) — host-side cost bookkeeping (integer-valued
    # per-row product counts), not a simulated device scatter.
    np.add.at(prod_per_row, row_idx, contrib)

    c_row_nnz = np.diff(C.indptr)
    phase = world.phase
    for r in range(world.size):
        lo, hi = row_offsets[r], row_offsets[r + 1]
        prods = float(prod_per_row[lo:hi].sum())
        out_nnz = float(c_row_nnz[lo:hi].sum())
        in_nnz = float(np.diff(A.indptr)[lo:hi].sum())
        world.ops.record(
            phase,
            r,
            kernel,
            flops=2.0 * prods,
            # symbolic + numeric passes: read A rows and the touched B rows,
            # hash-table traffic ~ products, write C rows.
            nbytes=2.0 * (12.0 * in_nnz + 16.0 * prods) + 12.0 * out_nnz,
            launches=2,
        )


def spgemm(
    world: SimWorld,
    A: sparse.csr_matrix,
    B: sparse.csr_matrix,
    row_offsets: np.ndarray,
    kernel: str = "spgemm",
) -> sparse.csr_matrix:
    """Compute and record ``C = A @ B`` (CSR in, CSR out)."""
    C = (A @ B).tocsr()
    C.sum_duplicates()
    record_spgemm(world, A, B, C, row_offsets, kernel)
    return C


def record_spgemm_numeric(
    world: SimWorld,
    A: sparse.csr_matrix,
    B: sparse.csr_matrix,
    C: sparse.csr_matrix,
    row_offsets: np.ndarray,
    kernel: str = "spgemm_numeric",
) -> None:
    """Record a *numeric-only* hash-SpGEMM pass for ``C = A @ B``.

    When the output sparsity of ``C`` is already known (a pattern-frozen
    Galerkin refresh), hash-SpGEMM skips the symbolic counting pass and
    runs a single numeric fill — half the passes, one launch.
    """
    a_rows = A.shape[0]
    prod_per_row = np.zeros(a_rows)
    b_row_nnz = np.diff(B.indptr)
    contrib = b_row_nnz[A.indices].astype(np.float64)
    row_idx = np.repeat(np.arange(a_rows), np.diff(A.indptr))
    # repro: allow(RL002) — host-side cost bookkeeping, as in record_spgemm.
    np.add.at(prod_per_row, row_idx, contrib)

    c_row_nnz = np.diff(C.indptr)
    phase = world.phase
    for r in range(world.size):
        lo, hi = row_offsets[r], row_offsets[r + 1]
        prods = float(prod_per_row[lo:hi].sum())
        out_nnz = float(c_row_nnz[lo:hi].sum())
        in_nnz = float(np.diff(A.indptr)[lo:hi].sum())
        world.ops.record(
            phase,
            r,
            kernel,
            flops=2.0 * prods,
            # single numeric pass: read A rows and touched B rows once,
            # hash traffic ~ products, write C values.
            nbytes=12.0 * in_nnz + 16.0 * prods + 12.0 * out_nnz,
            launches=1,
        )


def spgemm_numeric(
    world: SimWorld,
    A: sparse.csr_matrix,
    B: sparse.csr_matrix,
    row_offsets: np.ndarray,
    kernel: str = "spgemm_numeric",
) -> sparse.csr_matrix:
    """``C = A @ B`` costed as a numeric-only pass on a known pattern."""
    C = (A @ B).tocsr()
    C.sum_duplicates()
    C.sort_indices()
    record_spgemm_numeric(world, A, B, C, row_offsets, kernel)
    return C


def galerkin_refresh(
    world: SimWorld,
    R: sparse.csr_matrix,
    A: sparse.csr_matrix,
    P: sparse.csr_matrix,
    fine_offsets: np.ndarray,
    coarse_offsets: np.ndarray,
) -> sparse.csr_matrix:
    """Numeric-only Galerkin triple product on frozen R/A/P patterns.

    Same two-product structure as :func:`galerkin_product`, but each
    SpGEMM is costed as a single numeric fill because the output
    sparsities were cached by the original setup.
    """
    AP = spgemm_numeric(world, A, P, fine_offsets, kernel="rap_ap_numeric")
    return spgemm_numeric(
        world, R.tocsr(), AP, coarse_offsets, kernel="rap_rap_numeric"
    )


def galerkin_product(
    world: SimWorld,
    R: sparse.csr_matrix,
    A: sparse.csr_matrix,
    P: sparse.csr_matrix,
    fine_offsets: np.ndarray,
    coarse_offsets: np.ndarray,
) -> sparse.csr_matrix:
    """Galerkin triple product ``A_c = R A P`` with per-stage accounting.

    hypre performs the triple product as two SpGEMMs (``AP`` then ``R(AP)``);
    we do the same so the recorded setup cost has the right structure.
    """
    AP = spgemm(world, A, P, fine_offsets, kernel="rap_ap")
    # R's rows are coarse: attribute the second product to coarse owners.
    Ac = spgemm(world, R.tocsr(), AP, coarse_offsets, kernel="rap_rap")
    return Ac
