"""ParCSR distributed sparse matrices (the hypre layout).

hypre stores each rank's rows as two CSR blocks (paper §3.3, Algorithm 1's
final split): ``diag`` holds the columns the rank owns, ``offd`` holds
external columns compressed through ``col_map_offd`` (sorted unique global
ids).  SpMV then needs one halo exchange of exactly the external entries
("an efficient decomposition for performing SpMVs in parallel ... the
primary workhorse of Krylov and AMG algorithms").

The simulator keeps the global CSR alongside the per-rank blocks: numerics
use whichever view is convenient, while every distributed operation records
its kernel work per rank and its messages in the world's logs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.comm.exchange import (
    ExchangePattern,
    build_exchange_pattern,
    exchange_halo,
    exchange_halo_begin,
    exchange_halo_finish,
)
from repro.comm.simcomm import SimWorld
from repro.linalg.parvector import ParVector


@dataclass
class RankBlocks:
    """One rank's ParCSR storage."""

    diag: sparse.csr_matrix
    offd: sparse.csr_matrix
    col_map_offd: np.ndarray

    @property
    def nnz(self) -> int:
        """Stored nonzeros (diag + offd)."""
        return self.diag.nnz + self.offd.nnz


def spmv_bytes(nnz: int, nrows: int) -> float:
    """Traffic model of a CSR SpMV: values+indices+indptr+x gather+y write."""
    return 12.0 * nnz + 8.0 * nnz + 12.0 * nrows


class ParCSRMatrix:
    """A square (or rectangular) matrix in rank-block row distribution."""

    def __init__(
        self,
        world: SimWorld,
        A: sparse.spmatrix,
        row_offsets: np.ndarray,
        col_offsets: np.ndarray | None = None,
        name: str = "A",
    ) -> None:
        self.world = world
        self.name = name
        self.A = sparse.csr_matrix(A)
        # Canonical storage order (row-major, columns ascending): the
        # value-only update paths rely on it to align with row-sorted
        # unique COO values.  No-op when already sorted.
        self.A.sort_indices()
        self.row_offsets = np.asarray(row_offsets, dtype=np.int64)
        self.col_offsets = (
            self.row_offsets
            if col_offsets is None
            else np.asarray(col_offsets, dtype=np.int64)
        )
        if self.A.shape[0] != self.row_offsets[-1]:
            raise ValueError("row offsets do not cover the matrix rows")
        if self.A.shape[1] != self.col_offsets[-1]:
            raise ValueError("col offsets do not cover the matrix cols")
        self.blocks: list[RankBlocks] = []
        self._build_blocks()
        self.pattern: ExchangePattern = build_exchange_pattern(
            self.col_offsets, [b.col_map_offd for b in self.blocks]
        )
        self._record_storage()

    # -- setup ------------------------------------------------------------------

    def _build_blocks(self) -> None:
        """Split each rank's rows into diag/offd with col_map compression.

        The per-rank ``in_diag`` masks are kept (in CSR storage order) so
        value-only updates can re-scatter a rank's row values into the
        existing diag/offd storage without re-splitting.
        """
        self._diag_masks: list[np.ndarray] = []
        for r in range(self.world.size):
            rlo, rhi = self.row_offsets[r], self.row_offsets[r + 1]
            clo, chi = self.col_offsets[r], self.col_offsets[r + 1]
            rows = self.A[rlo:rhi].tocoo()
            in_diag = (rows.col >= clo) & (rows.col < chi)
            self._diag_masks.append(in_diag)
            diag = sparse.csr_matrix(
                (
                    rows.data[in_diag],
                    (rows.row[in_diag], rows.col[in_diag] - clo),
                ),
                shape=(rhi - rlo, chi - clo),
            )
            ext_cols = rows.col[~in_diag]
            col_map = np.unique(ext_cols)
            comp = np.searchsorted(col_map, ext_cols)
            offd = sparse.csr_matrix(
                (rows.data[~in_diag], (rows.row[~in_diag], comp)),
                shape=(rhi - rlo, col_map.size),
            )
            self.blocks.append(
                RankBlocks(diag=diag, offd=offd, col_map_offd=col_map)
            )

    def _record_storage(self) -> None:
        """Account device memory for the per-rank matrix storage."""
        self._storage_per_rank: list[float] = []
        self._released = False
        for r, b in enumerate(self.blocks):
            nrows = b.diag.shape[0]
            nbytes = 12.0 * b.nnz + 8.0 * nrows + 8.0 * b.col_map_offd.size
            self._storage_per_rank.append(nbytes)
            self.world.ops.record_alloc(r, nbytes)

    def release(self) -> None:
        """Return the matrix's device storage to the allocator model.

        Called when a replacement matrix is assembled (every Picard
        iteration) or a hierarchy is rebuilt; idempotent.
        """
        if self._released:
            return
        self._released = True
        for r, nbytes in enumerate(self._storage_per_rank):
            self.world.ops.record_alloc(r, -nbytes)

    def rebind_world(self, world: SimWorld) -> None:
        """Re-home the matrix on a different world (cross-job plan reuse).

        A campaign job adopting a prior job's captured
        :class:`~repro.assembly.plan.AssemblyPlan` inherits the plan's
        live operator; its storage is returned to the donor world's
        allocator model and re-recorded on the adopter's.  Numerics are
        untouched — subsequent value-only updates behave exactly as on
        the donor world.
        """
        if world is self.world:
            return
        self.release()
        self.world = world
        self._released = False
        for r, nbytes in enumerate(self._storage_per_rank):
            world.ops.record_alloc(r, nbytes)

    # -- value-only updates (pattern frozen) ---------------------------------------

    def update_rank_values(self, rank: int, values: np.ndarray) -> None:
        """Overwrite one rank's row values in place (pattern frozen).

        ``values`` must be the rank's unique row entries in row-major,
        column-ascending order — exactly the Algorithm-1 reduce output.
        The global CSR and the rank's diag/offd blocks are updated
        without touching indices, ``col_map_offd``, the exchange
        pattern, or the storage accounting.
        """
        s = self.A.indptr[self.row_offsets[rank]]
        e = self.A.indptr[self.row_offsets[rank + 1]]
        if values.size != e - s:
            raise ValueError(
                f"rank {rank} expects {e - s} values, got {values.size}"
            )
        self.A.data[s:e] = values
        mask = self._diag_masks[rank]
        b = self.blocks[rank]
        b.diag.data[:] = values[mask]
        if b.offd.nnz:
            b.offd.data[:] = values[~mask]

    def refresh_values(self, A_new: sparse.spmatrix) -> None:
        """Numeric refresh of the whole operator from an equal-pattern CSR.

        Used by :meth:`~repro.amg.hierarchy.AMGHierarchy.refresh` to push
        recomputed Galerkin values into an existing level operator
        without rebuilding blocks or communication structure.
        """
        A_new = sparse.csr_matrix(A_new)
        A_new.sort_indices()
        if A_new.shape != self.A.shape or A_new.nnz != self.A.nnz:
            raise ValueError(
                "refresh_values requires an identical sparsity pattern"
            )
        self.A.data[:] = A_new.data
        for r in range(self.world.size):
            s = self.A.indptr[self.row_offsets[r]]
            e = self.A.indptr[self.row_offsets[r + 1]]
            self.update_rank_values(r, self.A.data[s:e])

    # -- properties ----------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        """Global matrix shape."""
        return self.A.shape

    @property
    def nnz(self) -> int:
        """Global nonzero count."""
        return self.A.nnz

    def local_nnz(self, rank: int) -> int:
        """Nonzeros stored by one rank."""
        return self.blocks[rank].nnz

    def offd_fraction(self) -> float:
        """Fraction of entries in offd blocks (grows in the strong-scaling
        limit — the effect paper §5.3 discusses)."""
        offd = sum(b.offd.nnz for b in self.blocks)
        return offd / max(self.nnz, 1)

    # -- distributed kernels -----------------------------------------------------------

    def halo_exchange(self, x: ParVector) -> list[np.ndarray]:
        """Gather external vector entries for every rank (records traffic)."""
        return exchange_halo(self.world, self.pattern, x.locals())

    def matvec(
        self,
        x: ParVector,
        y: ParVector | None = None,
        overlap: bool = False,
    ) -> ParVector:
        """Distributed ``y = A @ x`` with per-rank roofline accounting.

        With ``overlap=True`` the halo exchange is split: sends are
        posted, each rank applies its ``diag`` block while boundary data
        is in flight, and ``offd`` contributions are added on arrival.
        The floating-point operations and their order are identical to
        the synchronous path (``yl = diag @ xl`` then ``yl += offd @
        ext``), so the result is **bitwise identical**; only the
        communication schedule — and therefore the priced halo wait —
        changes.
        """
        if x.n != self.shape[1]:
            raise ValueError("x size does not match matrix cols")
        out = (
            ParVector(self.world, self.row_offsets)
            if y is None
            else y
        )
        phase = self.world.phase
        if overlap:
            handle = exchange_halo_begin(
                self.world, self.pattern, x.locals(), overlap=True
            )
            # Interior SpMV against owned data while halos are in flight.
            for r, b in enumerate(self.blocks):
                out.local(r)[:] = b.diag @ x.local(r)
                self.world.ops.record(
                    phase,
                    r,
                    "spmv",
                    flops=2.0 * b.diag.nnz,
                    nbytes=spmv_bytes(b.diag.nnz, b.diag.shape[0]),
                    launches=1,
                )
            ext = exchange_halo_finish(self.world, handle)
            for r, b in enumerate(self.blocks):
                if b.offd.nnz:
                    out.local(r)[:] += b.offd @ ext[r]
                    # Priced so diag + offd legs sum exactly to the
                    # synchronous round's flops/bytes/launches.
                    self.world.ops.record(
                        phase,
                        r,
                        "spmv",
                        flops=2.0 * b.offd.nnz,
                        nbytes=spmv_bytes(b.nnz, b.diag.shape[0])
                        - spmv_bytes(b.diag.nnz, b.diag.shape[0]),
                        launches=1,
                    )
            return out
        ext = self.halo_exchange(x)
        for r, b in enumerate(self.blocks):
            xl = x.local(r)
            yl = b.diag @ xl
            if b.offd.nnz:
                yl += b.offd @ ext[r]
            out.local(r)[:] = yl
            self.world.ops.record(
                phase,
                r,
                "spmv",
                flops=2.0 * b.nnz,
                nbytes=spmv_bytes(b.nnz, b.diag.shape[0]),
                launches=2 if b.offd.nnz else 1,
            )
        return out

    def residual(
        self, b: ParVector, x: ParVector, overlap: bool = False
    ) -> ParVector:
        """``r = b - A x`` (one SpMV + one axpy-like update)."""
        r = self.matvec(x, overlap=overlap)
        r.data *= -1.0
        r.data += b.data
        r._record_local("axpby", 2.0, 3)
        return r

    # -- views used by smoothers ------------------------------------------------------

    def block_diagonal(self) -> sparse.csr_matrix:
        """Global matrix keeping only within-rank couplings.

        This is the operator a *hybrid* (process-local) relaxation actually
        applies (paper §4.2): each rank relaxes its diag block only.
        """
        coo = self.A.tocoo()
        ro = self.row_offsets
        rowner = np.searchsorted(ro, coo.row, side="right") - 1
        co = self.col_offsets
        cowner = np.searchsorted(co, coo.col, side="right") - 1
        keep = rowner == cowner
        return sparse.csr_matrix(
            (coo.data[keep], (coo.row[keep], coo.col[keep])), shape=self.A.shape
        )

    def diagonal(self) -> np.ndarray:
        """Global main diagonal."""
        return self.A.diagonal()

    def new_vector(self, data: np.ndarray | None = None) -> ParVector:
        """Vector on this matrix's row distribution."""
        return ParVector(self.world, self.row_offsets, data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ParCSRMatrix({self.name!r}, shape={self.shape}, nnz={self.nnz}, "
            f"ranks={self.world.size})"
        )
