"""Distributed vectors in hypre's 1-D block-row layout.

A :class:`ParVector` stores the global array once (the simulator runs all
ranks in-process) and exposes zero-copy per-rank slices.  Reductions (dot,
norm) are performed as per-rank partials plus a recorded ``MPI_Allreduce``
— exactly the operations whose count the one-reduce GMRES variant
(paper §4.2, ref [39]) is designed to minimize.
"""

from __future__ import annotations

import numpy as np

from repro.comm.simcomm import SimWorld


class ParVector:
    """A block-row distributed vector with instrumented reductions."""

    def __init__(
        self, world: SimWorld, offsets: np.ndarray, data: np.ndarray | None = None
    ) -> None:
        self.world = world
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.n = int(self.offsets[-1])
        if data is None:
            data = np.zeros(self.n)
        data = np.asarray(data, dtype=np.float64)
        if data.shape != (self.n,):
            raise ValueError(
                f"data shape {data.shape} does not match offsets ({self.n})"
            )
        self.data = data

    # -- construction helpers -------------------------------------------------

    def like(self, data: np.ndarray | None = None) -> "ParVector":
        """New vector on the same distribution."""
        return ParVector(self.world, self.offsets, data)

    def copy(self) -> "ParVector":
        """Deep copy."""
        return self.like(self.data.copy())

    # -- per-rank access --------------------------------------------------------

    def local(self, rank: int) -> np.ndarray:
        """Zero-copy view of rank's owned slice."""
        return self.data[self.offsets[rank] : self.offsets[rank + 1]]

    def locals(self) -> list[np.ndarray]:
        """Views for all ranks."""
        return [self.local(r) for r in range(self.world.size)]

    # -- instrumented BLAS-1 ------------------------------------------------------

    def _record_local(self, kernel: str, flops_per_entry: float, streams: int) -> None:
        ops = self.world.ops
        phase = self.world.phase
        sizes = np.diff(self.offsets)
        for r in range(self.world.size):
            ln = int(sizes[r])
            ops.record(
                phase,
                r,
                kernel,
                flops=flops_per_entry * ln,
                nbytes=8.0 * streams * ln,
            )

    def axpy(self, alpha: float, x: "ParVector") -> "ParVector":
        """``self += alpha * x`` in place (2 flops/entry, 3 streams)."""
        self.data += alpha * x.data
        self._record_local("axpy", 2.0, 3)
        return self

    def scale(self, alpha: float) -> "ParVector":
        """``self *= alpha`` in place."""
        self.data *= alpha
        self._record_local("scal", 1.0, 2)
        return self

    def dot(self, other: "ParVector") -> float:
        """Global dot product: per-rank partials + one allreduce."""
        partials = [
            float(np.dot(self.local(r), other.local(r)))
            for r in range(self.world.size)
        ]
        self._record_local("dot", 2.0, 2)
        return float(self.world.allreduce(partials, sum))

    def norm(self) -> float:
        """Global 2-norm (costs one reduction, like a dot)."""
        return float(np.sqrt(max(self.dot(self), 0.0)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParVector(n={self.n}, ranks={self.world.size})"


def fused_dots(
    world: SimWorld, pairs: list[tuple["ParVector", "ParVector"]]
) -> np.ndarray:
    """Several global dot products paid for with **one** allreduce.

    The communication-avoiding primitive: per-rank partials of every
    requested pair are stacked into one small vector and reduced in a
    single batched ``MPI_Allreduce`` of ``len(pairs)`` scalars, instead
    of one reduction per dot.  Each scalar is the same left-to-right
    sum of the same per-rank partials :meth:`ParVector.dot` computes,
    so the fused results are bitwise identical to the sequential ones.
    """
    if not pairs:
        return np.zeros(0)
    k = len(pairs)
    world_size = world.size
    partials = [
        np.array(
            [float(np.dot(a.local(r), b.local(r))) for a, b in pairs],
            dtype=np.float64,
        )
        for r in range(world_size)
    ]
    # Per-rank compute share: k simultaneous dots stream 2k vectors.
    first = pairs[0][0]
    sizes = np.diff(first.offsets)
    for r in range(world_size):
        ln = int(sizes[r])
        world.ops.record(
            world.phase,
            r,
            "multidot",
            flops=2.0 * k * ln,
            nbytes=8.0 * 2 * k * ln,
        )
    return np.asarray(world.allreduce(partials, sum), dtype=np.float64)
