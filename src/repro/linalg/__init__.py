"""Distributed sparse linear algebra (the hypre ParCSR analogue)."""

from repro.linalg.parcsr import ParCSRMatrix, RankBlocks, spmv_bytes
from repro.linalg.parvector import ParVector
from repro.linalg.spgemm import (
    galerkin_product,
    record_spgemm,
    spgemm,
    spgemm_products,
)

__all__ = [
    "ParCSRMatrix",
    "ParVector",
    "RankBlocks",
    "galerkin_product",
    "record_spgemm",
    "spgemm",
    "spgemm_products",
    "spmv_bytes",
]
