"""repro: reproduction of "Preparing an Incompressible-Flow Fluid Dynamics
Code for Exascale-Class Wind Energy Simulations" (SC '21).

Public entry points:

* :class:`repro.core.NaluWindSimulation` — the full CFD pipeline on the
  scaled turbine workloads.
* :mod:`repro.assembly` — the paper's three-stage linear-system assembly
  (Algorithms 1 and 2).
* :mod:`repro.amg` — BoomerAMG-style setup (PMIS, MM-ext, aggressive
  coarsening) and V-cycle.
* :mod:`repro.smoothers` — two-stage Gauss-Seidel / SGS2.
* :mod:`repro.perf` — the Summit/Eagle machine models and cost pricing.
* :mod:`repro.obs` — the unified telemetry layer (spans, metrics, run
  reports; ``python -m repro trace``).
* :mod:`repro.resilience` — solver-failure guards, recovery policies,
  and seeded fault injection (``docs/resilience.md``).
"""

from repro.core import NaluWindSimulation, SimulationConfig, SimulationReport
from repro.obs import MetricsRegistry, RunTelemetry, Tracer
from repro.resilience import FaultSpec, RecoveryPolicy, SolverFailure

__version__ = "1.0.0"

__all__ = [
    "FaultSpec",
    "MetricsRegistry",
    "NaluWindSimulation",
    "RecoveryPolicy",
    "RunTelemetry",
    "SimulationConfig",
    "SimulationReport",
    "SolverFailure",
    "Tracer",
    "__version__",
]
