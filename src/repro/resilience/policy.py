"""Recovery policy: the escalation ladder for failed solves.

Production exascale stacks treat solver failure as a recoverable event,
not a fatal one (PSCToolkit engineers its AMG-preconditioned Krylov
stack explicitly for algorithmic robustness at scale; ExaWind's wind-farm
runs cannot afford to discard hours of simulation over one bad solve).
The policy here escalates through progressively more expensive actions:

1. ``rebuild_precond`` — drop every cached setup product (assembly plan,
   preconditioner, AMG hierarchy) and rebuild from the current operator;
2. ``expand_krylov`` — retry with ``retry_scale``-times larger
   restart/iteration budgets;
3. ``fallback_method`` — switch to the alternate Krylov method through
   :func:`~repro.krylov.api.make_krylov_solver`;
4. ``rollback_restep`` (simulation level) — restore the in-memory
   field state, rewind the rotor, halve the timestep, and re-step;
5. ``checkpoint_restore`` (run level) — when even re-stepping fails,
   restore the newest good durable checkpoint from the retention ring
   and re-advance (see ``docs/checkpoint_restart.md``).

Each exhausted ladder raises a structured
:class:`~repro.resilience.guards.SolverFailure` for the next layer up;
exhausting the step retries surfaces it to the caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

#: Solver-level ladder actions, in default escalation order.
LADDER_ACTIONS = ("rebuild_precond", "expand_krylov", "fallback_method")

#: All recovery actions, including the simulation-level ones.
RECOVERY_ACTIONS = LADDER_ACTIONS + ("rollback_restep", "checkpoint_restore")


@dataclass
class RecoveryPolicy:
    """Configurable solver-failure handling (``SimulationConfig.recovery``).

    Attributes:
        enabled: master switch for the recovery escalation.  Off, guard
            failures raise :class:`~repro.resilience.guards.SolverFailure`
            immediately (no retries) and non-convergence keeps the legacy
            record-and-continue behavior.
        guards: NaN/Inf validation of iterates (``EquationSystem.solve``)
            and fields (``Simulation._step_body``).  Off restores the
            pre-resilience behavior entirely.
        recover_non_convergence: treat a converged=False solve as a
            failure and run the ladder (nominal workloads always
            converge, so this only fires on genuine trouble).
        ladder: solver-level escalation order (subset/permutation of
            :data:`LADDER_ACTIONS`).
        retry_scale: ``restart``/``max_iters`` multiplier of the
            ``expand_krylov`` attempt.
        rollback: allow checkpoint-rollback + timestep backoff at the
            simulation level once the solver-level ladder is exhausted.
        dt_backoff: timestep multiplier per rollback (0 < x < 1).
        max_step_retries: rollback re-steps allowed per time step before
            the failure is surfaced to the caller.
        comm_max_retries: re-deliveries the halo-exchange protocol
            attempts per logical message (after the first try) before a
            transport failure escalates into the ladder.
        max_checkpoint_restores: restores from the durable checkpoint
            ring allowed per run once in-memory rollback is exhausted
            (0 disables the final rung).
    """

    enabled: bool = True
    guards: bool = True
    recover_non_convergence: bool = True
    ladder: tuple[str, ...] = LADDER_ACTIONS
    retry_scale: float = 2.0
    rollback: bool = True
    dt_backoff: float = 0.5
    max_step_retries: int = 2
    comm_max_retries: int = 2
    max_checkpoint_restores: int = 1

    def validate(self) -> None:
        """Raise on inconsistent settings."""
        for action in self.ladder:
            if action not in LADDER_ACTIONS:
                raise ValueError(
                    f"unknown recovery ladder action {action!r}; "
                    f"options {list(LADDER_ACTIONS)}"
                )
        if not self.retry_scale >= 1.0:
            raise ValueError("retry_scale must be >= 1")
        if not (0.0 < self.dt_backoff < 1.0):
            raise ValueError("dt_backoff must be in (0, 1)")
        if self.max_step_retries < 0:
            raise ValueError("max_step_retries must be >= 0")
        if self.comm_max_retries < 0:
            raise ValueError("comm_max_retries must be >= 0")
        if self.max_checkpoint_restores < 0:
            raise ValueError("max_checkpoint_restores must be >= 0")

    def to_dict(self) -> dict:
        """JSON-shaped dict of the policy (strict round-trip form)."""
        return {
            "enabled": self.enabled,
            "guards": self.guards,
            "recover_non_convergence": self.recover_non_convergence,
            "ladder": list(self.ladder),
            "retry_scale": self.retry_scale,
            "rollback": self.rollback,
            "dt_backoff": self.dt_backoff,
            "max_step_retries": self.max_step_retries,
            "comm_max_retries": self.comm_max_retries,
            "max_checkpoint_restores": self.max_checkpoint_restores,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RecoveryPolicy":
        """Strictly-validated inverse of :meth:`to_dict`."""
        from repro.serialize import (
            as_bool,
            as_float,
            as_int,
            as_str_tuple,
            strict_kwargs,
        )

        policy = cls(
            **strict_kwargs(
                "RecoveryPolicy",
                data,
                {
                    "enabled": as_bool,
                    "guards": as_bool,
                    "recover_non_convergence": as_bool,
                    "ladder": as_str_tuple,
                    "retry_scale": as_float,
                    "rollback": as_bool,
                    "dt_backoff": as_float,
                    "max_step_retries": as_int,
                    "comm_max_retries": as_int,
                    "max_checkpoint_restores": as_int,
                },
            )
        )
        policy.validate()
        return policy


@dataclass
class RecoveryEvent:
    """One recovery attempt (solver ladder rung or rollback).

    Attributes:
        equation: equation whose solve failed ("fields" for field-guard
            failures).
        kind: failure kind that triggered the attempt.
        action: recovery action taken (:data:`RECOVERY_ACTIONS`).
        attempt: 1-based attempt index within the escalation.
        success: whether the action produced a healthy result.
        detail: free-form diagnostic (exception text of a crashed
            attempt, the backed-off dt of a rollback, ...).
    """

    equation: str
    kind: str
    action: str
    attempt: int
    success: bool
    detail: str = ""

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {
            "equation": self.equation,
            "kind": self.kind,
            "action": self.action,
            "attempt": self.attempt,
            "success": self.success,
            "detail": self.detail,
        }


def summarize_events(events: list[dict[str, Any]]) -> dict[str, Any]:
    """Fold a run's raw failure/recovery event list into a summary.

    Returns ``{}`` for a clean run so reports stay unchanged on the
    nominal path; otherwise ``{"failures", "recoveries", "events"}``
    where ``recoveries`` counts successful actions by name.
    """
    if not events:
        return {}
    failures = sum(1 for e in events if e.get("event") == "solver_failure")
    recoveries: dict[str, int] = {}
    for e in events:
        if e.get("event") == "recovery" and e.get("success"):
            action = str(e.get("action", ""))
            recoveries[action] = recoveries.get(action, 0) + 1
    return {
        "failures": failures,
        "recoveries": recoveries,
        "events": list(events),
    }
