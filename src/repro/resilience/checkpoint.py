"""Durable checkpoint/restart with bitwise-exact resume.

Multi-day wind-farm campaigns cannot afford to lose a run to one node
failure; production exascale stacks therefore treat durable simulation
state as a prerequisite, not a luxury.  This module provides the on-disk
format and the :class:`CheckpointManager` retention/retry policy; the
simulation driver (:mod:`repro.core.simulation`) decides *what* goes in.

Format ``repro.checkpoint/1``
-----------------------------

One self-describing container file::

    magic   8 bytes   b"RPCKPT01"
    hlen    8 bytes   little-endian u64: header length in bytes
    header  hlen      UTF-8 JSON (sorted keys)
    payload ...       raw little-endian array bytes, concatenated

The header carries ``schema``, a free-form JSON ``meta`` block (step
index, dt, RNG states, telemetry counters...), a per-array index
(``dtype``/``shape``/``offset``/``nbytes``/``crc32``) and a whole-payload
``payload_crc32``.  Every array round-trips through raw bytes
(``tobytes``/``frombuffer``) so float64 state is restored **bitwise**;
JSON floats round-trip exactly too (shortest-repr encoding).

Durability properties:

* **atomic writes** — serialize to a temp file in the target directory,
  ``fsync``, then ``os.replace``: a crash mid-write never clobbers an
  existing good checkpoint;
* **corruption detection** — magic, schema, per-array and payload CRC32
  checks on load raise :class:`CheckpointCorruptionError` instead of
  returning garbage;
* **last-good fallback** — :meth:`CheckpointManager.load_latest_good`
  walks the retention ring newest-first and returns the first checkpoint
  that verifies;
* **retry with backoff** — writes retry against transient I/O failures
  (including ``io_fail`` faults injected through
  :class:`~repro.resilience.injection.FaultInjector.on_io`), surfacing
  ``resilience.checkpoint.write_retries``/``write_failures`` counters.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from typing import Any

import numpy as np

#: Container magic (8 bytes, includes the container revision).
MAGIC = b"RPCKPT01"

#: Header schema identifier.
SCHEMA = "repro.checkpoint/1"

#: Checkpoint file name pattern (``step`` is the step index at capture).
FILE_PATTERN = "ckpt-{step:08d}.ckpt"


class CheckpointError(RuntimeError):
    """Base class for checkpoint failures."""


class CheckpointCorruptionError(CheckpointError):
    """A checkpoint file failed validation (magic/schema/checksum)."""


class CheckpointWriteError(CheckpointError):
    """A checkpoint write failed (after exhausting retries)."""


class CheckpointNotFoundError(CheckpointError):
    """No loadable checkpoint exists where one was expected."""


def serialize_checkpoint(
    arrays: dict[str, np.ndarray], meta: dict[str, Any]
) -> bytes:
    """Serialize arrays + metadata into one ``repro.checkpoint/1`` blob."""
    index: dict[str, dict[str, Any]] = {}
    chunks: list[bytes] = []
    offset = 0
    for name in sorted(arrays):
        arr = np.ascontiguousarray(arrays[name])
        raw = arr.tobytes()
        index[name] = {
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
            "offset": offset,
            "nbytes": len(raw),
            "crc32": zlib.crc32(raw),
        }
        chunks.append(raw)
        offset += len(raw)
    payload = b"".join(chunks)
    header = {
        "schema": SCHEMA,
        "meta": meta,
        "arrays": index,
        "payload_nbytes": len(payload),
        "payload_crc32": zlib.crc32(payload),
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    return (
        MAGIC
        + len(header_bytes).to_bytes(8, "little")
        + header_bytes
        + payload
    )


def deserialize_checkpoint(
    blob: bytes,
) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
    """Parse and validate one checkpoint blob.

    Returns ``(arrays, meta)``; raises
    :class:`CheckpointCorruptionError` on any validation failure (bad
    magic, truncation, schema mismatch, CRC mismatch).
    """
    if len(blob) < len(MAGIC) + 8:
        raise CheckpointCorruptionError(
            f"checkpoint truncated: {len(blob)} bytes is smaller than the "
            "container preamble"
        )
    if blob[: len(MAGIC)] != MAGIC:
        raise CheckpointCorruptionError(
            f"bad checkpoint magic {blob[:len(MAGIC)]!r} (expected {MAGIC!r})"
        )
    hlen = int.from_bytes(blob[len(MAGIC) : len(MAGIC) + 8], "little")
    hstart = len(MAGIC) + 8
    if hstart + hlen > len(blob):
        raise CheckpointCorruptionError(
            f"checkpoint truncated: header claims {hlen} bytes, "
            f"{len(blob) - hstart} available"
        )
    try:
        header = json.loads(blob[hstart : hstart + hlen].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointCorruptionError(
            f"checkpoint header is not valid JSON: {exc}"
        ) from exc
    if header.get("schema") != SCHEMA:
        raise CheckpointCorruptionError(
            f"unsupported checkpoint schema {header.get('schema')!r} "
            f"(expected {SCHEMA!r})"
        )
    payload = blob[hstart + hlen :]
    if len(payload) != header["payload_nbytes"]:
        raise CheckpointCorruptionError(
            f"checkpoint payload truncated: expected "
            f"{header['payload_nbytes']} bytes, got {len(payload)}"
        )
    if zlib.crc32(payload) != header["payload_crc32"]:
        raise CheckpointCorruptionError(
            "checkpoint payload failed its CRC32 check"
        )
    arrays: dict[str, np.ndarray] = {}
    for name, entry in header["arrays"].items():
        raw = payload[entry["offset"] : entry["offset"] + entry["nbytes"]]
        if zlib.crc32(raw) != entry["crc32"]:
            raise CheckpointCorruptionError(
                f"checkpoint array {name!r} failed its CRC32 check"
            )
        arrays[name] = (
            np.frombuffer(raw, dtype=np.dtype(entry["dtype"]))
            .reshape(entry["shape"])
            .copy()
        )
    return arrays, header["meta"]


def read_checkpoint(
    path: str, *, injector: Any = None
) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
    """Read and validate one checkpoint file.

    Raises :class:`CheckpointNotFoundError` when the file does not
    exist, :class:`CheckpointCorruptionError` when it fails validation
    (including an injected ``io_fail`` read fault — a failed read and a
    corrupt file are the same event to the fallback logic).
    """
    if injector is not None and injector.on_io("read", path):
        raise CheckpointCorruptionError(
            f"checkpoint read failed (injected I/O fault): {path}"
        )
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except FileNotFoundError:
        raise CheckpointNotFoundError(
            f"checkpoint not found: {path}"
        ) from None
    except OSError as exc:
        raise CheckpointCorruptionError(
            f"checkpoint read failed: {path}: {exc}"
        ) from exc
    return deserialize_checkpoint(blob)


def checkpoint_step(path: str) -> int:
    """Step index encoded in a checkpoint file name (-1 when foreign)."""
    name = os.path.basename(path)
    if not (name.startswith("ckpt-") and name.endswith(".ckpt")):
        return -1
    try:
        return int(name[len("ckpt-") : -len(".ckpt")])
    except ValueError:
        return -1


class CheckpointManager:
    """Retention ring + retrying atomic writer over one directory.

    Args:
        directory: where checkpoint files live (created on first save).
        keep: retention-ring size — the newest ``keep`` checkpoints are
            kept, older ones deleted after each successful save.
        max_io_retries: write attempts after the first before a save
            fails for good.
        backoff: base retry delay in seconds, doubled per retry (the
            default keeps tests fast; production runs pass something
            real).
        injector: optional :class:`FaultInjector` exercising the retry
            path (``on_io`` hook).
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`
            receiving ``resilience.checkpoint.write_retries`` /
            ``write_failures`` / ``loads`` / ``corrupt_detected``
            counters.  (The ``writes``/``restores`` counters belong to
            the simulation driver: it must count a write *before*
            capturing telemetry state so restored counters line up with
            an uninterrupted run.)
    """

    def __init__(
        self,
        directory: str,
        *,
        keep: int = 2,
        max_io_retries: int = 3,
        backoff: float = 0.0,
        injector: Any = None,
        metrics: Any = None,
    ) -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1")
        if max_io_retries < 0:
            raise ValueError("max_io_retries must be >= 0")
        self.directory = directory
        self.keep = int(keep)
        self.max_io_retries = int(max_io_retries)
        self.backoff = float(backoff)
        self.injector = injector
        self.metrics = metrics

    # -- write side ----------------------------------------------------------

    def save(
        self, step: int, arrays: dict[str, np.ndarray], meta: dict[str, Any]
    ) -> str:
        """Durably write one checkpoint; returns its path.

        The blob is serialized once, then written atomically with up to
        ``max_io_retries`` retries (exponential backoff) against
        transient failures; the retention ring is pruned only after the
        new checkpoint is safely on disk.
        """
        os.makedirs(self.directory, exist_ok=True)
        path = os.path.join(self.directory, FILE_PATTERN.format(step=step))
        blob = serialize_checkpoint(arrays, meta)
        last_exc: Exception | None = None
        for attempt in range(1 + self.max_io_retries):
            if attempt > 0:
                self._count("write_retries")
                if self.backoff > 0.0:
                    time.sleep(self.backoff * 2 ** (attempt - 1))
            try:
                self._write_atomic(path, blob)
                self._prune(protect=path)
                return path
            except OSError as exc:
                last_exc = exc
        self._count("write_failures")
        raise CheckpointWriteError(
            f"checkpoint write failed after {1 + self.max_io_retries} "
            f"attempt(s): {path}: {last_exc}"
        )

    def _write_atomic(self, path: str, blob: bytes) -> None:
        """temp file + fsync + rename; never clobbers a good checkpoint."""
        if self.injector is not None and self.injector.on_io("write", path):
            raise OSError(f"injected I/O fault writing {path}")
        tmp = path + ".tmp"
        try:
            with open(tmp, "wb") as fh:
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)

    def _prune(self, protect: str) -> None:
        """Delete ring entries beyond ``keep`` (never the one just written)."""
        entries = self.list_checkpoints()
        for path in entries[: max(0, len(entries) - self.keep)]:
            if os.path.abspath(path) != os.path.abspath(protect):
                os.unlink(path)

    # -- read side -----------------------------------------------------------

    def list_checkpoints(self) -> list[str]:
        """Ring entries sorted oldest-first by step index."""
        if not os.path.isdir(self.directory):
            return []
        paths = [
            os.path.join(self.directory, name)
            for name in os.listdir(self.directory)
            if checkpoint_step(name) >= 0
        ]
        return sorted(paths, key=checkpoint_step)

    def load(self, path: str) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
        """Read and validate one specific checkpoint file."""
        self._count("loads")
        try:
            return read_checkpoint(path, injector=self.injector)
        except CheckpointCorruptionError:
            self._count("corrupt_detected")
            raise

    def load_latest_good(
        self,
    ) -> tuple[dict[str, np.ndarray], dict[str, Any], str]:
        """Newest checkpoint that verifies, walking the ring backwards.

        Returns ``(arrays, meta, path)``; a corrupt (or unreadable)
        newest entry falls back to the next-older one — the whole point
        of keeping a ring.  Raises :class:`CheckpointNotFoundError` when
        nothing in the ring verifies.
        """
        errors: list[str] = []
        for path in reversed(self.list_checkpoints()):
            try:
                arrays, meta = self.load(path)
                return arrays, meta, path
            except CheckpointCorruptionError as exc:
                errors.append(f"{os.path.basename(path)}: {exc}")
        detail = f" ({'; '.join(errors)})" if errors else ""
        raise CheckpointNotFoundError(
            f"no loadable checkpoint in {self.directory}{detail}"
        )

    def _count(self, which: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(f"resilience.checkpoint.{which}").inc()
