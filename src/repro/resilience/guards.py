"""Failure guards: NaN/Inf validation and the structured failure type.

An implicit incompressible-flow solve that silently marches on with a
garbage iterate is worse than one that stops: a single NaN injected by a
flaky exchange or a Givens breakdown contaminates every downstream field
within one Picard sweep.  These guards turn corruption into a
first-class, recoverable event — :class:`SolverFailure` carries the
equation name, failure kind, residual record, and phase context so the
recovery machinery (and the run report) can act on *what* failed, not
just that something did.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

#: Failure kinds raised by the guards / classifier.  The ``worker_*`` /
#: ``job_timeout`` entries are process-level kinds assigned by the
#: campaign supervisor (a worker died, stalled past its heartbeat, or
#: overran its wall-clock budget) — same taxonomy, one layer up.
FAILURE_KINDS = (
    "nonfinite_iterate",
    "nonfinite_operands",
    "nonfinite_fields",
    "non_convergence",
    "comm_deadlock",
    "comm_corrupt",
    "comm_retries_exhausted",
    "io_error",
    "worker_crash",
    "worker_hang",
    "job_timeout",
)

#: The transient subset: failures whose cause is environmental (lost
#: messages, flaky filesystems, dead or hung worker processes), so an
#: identical retry can legitimately succeed.  Deterministic failures —
#: solver divergence, non-finite iterates from a reproducible fault —
#: are excluded: re-running them replays the exact same failure, so the
#: campaign supervisor quarantines instead of retrying.
TRANSIENT_FAILURE_KINDS = frozenset(
    {
        "comm_deadlock",
        "comm_corrupt",
        "comm_retries_exhausted",
        "io_error",
        "worker_crash",
        "worker_hang",
        "job_timeout",
    }
)


class SolverFailure(RuntimeError):
    """A solver (or field-state) failure with full diagnostic context.

    Attributes:
        equation: equation system name (``"momentum"``, ``"pressure"``,
            ...) or the offending field name for field-guard failures.
        kind: one of :data:`FAILURE_KINDS`.
        phase: phase label active when the failure was detected
            (``"pressure/solve"``, ``"step"``...).
        residual_norm: last residual norm of the failing solve (NaN when
            not applicable).
        iterations: iterations spent by the failing solve.
        residual_history: per-iteration relative residual norms of the
            failing solve (empty when history was off).
        attempts: recovery actions that were tried (and failed) before
            this failure was surfaced.
    """

    def __init__(
        self,
        message: str,
        *,
        equation: str = "",
        kind: str = "",
        phase: str = "",
        residual_norm: float = float("nan"),
        iterations: int = 0,
        residual_history: Sequence[float] = (),
        attempts: Sequence[str] = (),
    ) -> None:
        super().__init__(message)
        self.equation = equation
        self.kind = kind
        self.phase = phase
        self.residual_norm = float(residual_norm)
        self.iterations = int(iterations)
        self.residual_history = list(residual_history)
        self.attempts = tuple(attempts)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation for reports and telemetry."""
        return {
            "message": str(self),
            "equation": self.equation,
            "kind": self.kind,
            "phase": self.phase,
            "residual_norm": self.residual_norm,
            "iterations": self.iterations,
            "residual_history": list(self.residual_history),
            "attempts": list(self.attempts),
        }


def iterate_is_finite(result: Any) -> bool:
    """True when a Krylov result's solution and residual are all finite."""
    return bool(
        np.all(np.isfinite(result.x.data))
        and np.isfinite(result.residual_norm)
    )


def validate_iterate(
    result: Any, *, equation: str = "", phase: str = "solve"
) -> None:
    """Raise :class:`SolverFailure` when a Krylov result carries NaN/Inf.

    Args:
        result: a :class:`~repro.krylov.api.KrylovResult` (duck-typed).
        equation: equation name for the failure context.
        phase: phase label for the failure context.
    """
    if iterate_is_finite(result):
        return
    n_bad = int(np.size(result.x.data) - np.isfinite(result.x.data).sum())
    raise SolverFailure(
        f"{equation or 'solver'} iterate is non-finite "
        f"({n_bad} bad entries, residual {result.residual_norm})",
        equation=equation,
        kind="nonfinite_iterate",
        phase=phase,
        residual_norm=result.residual_norm,
        iterations=result.iterations,
        residual_history=list(result.residual_history),
    )


def validate_fields(
    fields: Mapping[str, np.ndarray], *, phase: str = "step"
) -> None:
    """Raise :class:`SolverFailure` on the first NaN/Inf field entry.

    Args:
        fields: ``name -> array`` of solution fields to check.
        phase: phase label for the failure context.
    """
    for name, arr in fields.items():
        finite = np.isfinite(arr)
        if not finite.all():
            n_bad = int(arr.size - finite.sum())
            raise SolverFailure(
                f"field {name!r} has {n_bad}/{arr.size} non-finite entries",
                equation=name,
                kind="nonfinite_fields",
                phase=phase,
            )


def classify_failure(exc: BaseException) -> str:
    """Map an exception to its :data:`FAILURE_KINDS` entry.

    Structured failures carry their own ``kind``; transport errors from
    :mod:`repro.comm.errors` map onto the ``comm_*``/``io_error`` kinds
    so the recovery ladder and the run report route on the same taxonomy
    regardless of which layer raised.
    """
    from repro.comm.errors import (
        CommCorruptionError,
        CommDeadlockError,
        CommError,
        CommRetriesExhaustedError,
    )

    if isinstance(exc, SolverFailure) and exc.kind:
        return exc.kind
    if isinstance(exc, CommRetriesExhaustedError):
        return "comm_retries_exhausted"
    if isinstance(exc, CommCorruptionError):
        return "comm_corrupt"
    if isinstance(exc, CommDeadlockError):
        return "comm_deadlock"
    if isinstance(exc, CommError):
        return "comm_retries_exhausted"
    if isinstance(exc, OSError):
        return "io_error"
    return "non_convergence"


def operands_are_finite(A: Any, b: Any) -> bool:
    """True when a solve's operator values and RHS are all finite.

    Corrupted operands cannot be fixed by solver-level retries (a rebuilt
    preconditioner of a NaN matrix is still garbage), so the recovery
    ladder short-circuits straight to rollback when this is False.
    """
    return bool(
        np.all(np.isfinite(b.data)) and np.all(np.isfinite(A.A.data))
    )
