"""Resilience subsystem: guards, recovery policies, faults, checkpoints.

Four layers turn solver failure and lost simulation state from silent
corruption into first-class, recoverable events:

* :mod:`~repro.resilience.guards` — NaN/Inf validation of Krylov
  iterates and solution fields, raising a structured
  :class:`SolverFailure`; :func:`classify_failure` maps transport/I-O
  exceptions onto the same failure taxonomy;
* :mod:`~repro.resilience.policy` — the configurable escalation ladder
  (:class:`RecoveryPolicy`) and event/summary types;
* :mod:`~repro.resilience.injection` — seeded deterministic
  :class:`FaultInjector` so recovery is exercised in tests, not trusted;
* :mod:`~repro.resilience.checkpoint` — the durable
  ``repro.checkpoint/1`` format and :class:`CheckpointManager`
  retention ring for bitwise-exact restart.

See ``docs/resilience.md`` for the failure taxonomy and config knobs,
and ``docs/checkpoint_restart.md`` for the checkpoint format and restart
workflow.
"""

from repro.resilience.checkpoint import (
    CheckpointCorruptionError,
    CheckpointError,
    CheckpointManager,
    CheckpointNotFoundError,
    CheckpointWriteError,
    deserialize_checkpoint,
    read_checkpoint,
    serialize_checkpoint,
)
from repro.resilience.guards import (
    FAILURE_KINDS,
    TRANSIENT_FAILURE_KINDS,
    SolverFailure,
    classify_failure,
    iterate_is_finite,
    operands_are_finite,
    validate_fields,
    validate_iterate,
)
from repro.resilience.injection import (
    FAULT_KINDS,
    WORKER_FAULT_KINDS,
    WORKER_FAULT_POINTS,
    FaultInjector,
    FaultSpec,
)
from repro.resilience.policy import (
    LADDER_ACTIONS,
    RECOVERY_ACTIONS,
    RecoveryEvent,
    RecoveryPolicy,
    summarize_events,
)

__all__ = [
    "FAILURE_KINDS",
    "FAULT_KINDS",
    "LADDER_ACTIONS",
    "RECOVERY_ACTIONS",
    "TRANSIENT_FAILURE_KINDS",
    "WORKER_FAULT_KINDS",
    "WORKER_FAULT_POINTS",
    "CheckpointCorruptionError",
    "CheckpointError",
    "CheckpointManager",
    "CheckpointNotFoundError",
    "CheckpointWriteError",
    "FaultInjector",
    "FaultSpec",
    "RecoveryEvent",
    "RecoveryPolicy",
    "SolverFailure",
    "classify_failure",
    "deserialize_checkpoint",
    "iterate_is_finite",
    "operands_are_finite",
    "read_checkpoint",
    "serialize_checkpoint",
    "summarize_events",
    "validate_fields",
    "validate_iterate",
]
