"""Resilience subsystem: guards, recovery policies, fault injection.

Three layers turn solver failure from silent corruption into a
first-class, recoverable event:

* :mod:`~repro.resilience.guards` — NaN/Inf validation of Krylov
  iterates and solution fields, raising a structured
  :class:`SolverFailure`;
* :mod:`~repro.resilience.policy` — the configurable escalation ladder
  (:class:`RecoveryPolicy`) and event/summary types;
* :mod:`~repro.resilience.injection` — seeded deterministic
  :class:`FaultInjector` so recovery is exercised in tests, not trusted.

See ``docs/resilience.md`` for the failure taxonomy and config knobs.
"""

from repro.resilience.guards import (
    FAILURE_KINDS,
    SolverFailure,
    iterate_is_finite,
    operands_are_finite,
    validate_fields,
    validate_iterate,
)
from repro.resilience.injection import FAULT_KINDS, FaultInjector, FaultSpec
from repro.resilience.policy import (
    LADDER_ACTIONS,
    RECOVERY_ACTIONS,
    RecoveryEvent,
    RecoveryPolicy,
    summarize_events,
)

__all__ = [
    "FAILURE_KINDS",
    "FAULT_KINDS",
    "LADDER_ACTIONS",
    "RECOVERY_ACTIONS",
    "FaultInjector",
    "FaultSpec",
    "RecoveryEvent",
    "RecoveryPolicy",
    "SolverFailure",
    "iterate_is_finite",
    "operands_are_finite",
    "summarize_events",
    "validate_fields",
    "validate_iterate",
]
