"""Seeded, deterministic fault injection for resilience testing.

Recovery machinery that is never exercised is machinery that does not
work.  The :class:`FaultInjector` hooks into the simulated world and
corrupts it on purpose, at configured points, so every rung of the
escalation ladder is driven end-to-end in tests instead of trusted on
faith:

* ``exchange_nan`` — poison one payload of the Nth ``alltoallv``
  exchange with a NaN (a flaky NIC / bad DMA analogue);
* ``matrix_corrupt`` — overwrite assembled operator values on one rank
  (bit-flip / soft-error analogue), either with NaN or a large scale;
* ``solver_stall`` — force the Nth Krylov solve of an equation to report
  non-convergence (preconditioner-gone-stale analogue);
* ``message_drop`` — lose the Nth point-to-point message on the wire
  (the receiver sees an empty channel and must re-request);
* ``message_corrupt`` — flip bits in the Nth point-to-point payload
  in flight (the envelope checksum catches it on receive);
* ``message_duplicate`` — deliver the Nth point-to-point message twice
  (the receiver must discard the stale copy by sequence number);
* ``io_fail`` — fail checkpoint/result-store I/O operations in a window
  of ``entries`` consecutive attempts starting at the Nth (a flaky
  parallel-filesystem analogue; the writer retries with backoff);
* ``worker_crash`` — hard-kill a campaign worker process
  (``os._exit``) at a configured execution ``point`` of the ``at``-th
  attempt of a job (a node-death / OOM-kill analogue — the campaign
  supervisor must detect the dead worker and requeue the job);
* ``worker_hang`` — stall a campaign worker at the configured point
  without exiting (a hung MPI collective / filesystem-stall analogue —
  only heartbeat-based lease expiry can catch it).

The process-level kinds (``worker_crash``/``worker_hang``) are matched
by the *campaign supervisor* at dispatch time, keyed on
``(job, attempt)`` instead of a global opportunity counter, so their
firing schedule — and every retry/requeue counter downstream of it — is
deterministic under any worker count and scheduling interleaving.

All randomness flows from one seeded generator and opportunities are
counted deterministically, so a faulted run replays bit-identically
under the same seed — which is what lets tests assert the exact recovery
path taken.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

#: Supported fault kinds.
FAULT_KINDS = (
    "exchange_nan",
    "matrix_corrupt",
    "solver_stall",
    "message_drop",
    "message_corrupt",
    "message_duplicate",
    "io_fail",
    "worker_crash",
    "worker_hang",
)

#: Process-level kinds matched by the campaign supervisor at dispatch.
WORKER_FAULT_KINDS = ("worker_crash", "worker_hang")

#: Worker execution boundaries a process fault can fire at ("" = spawn).
WORKER_FAULT_POINTS = ("", "spawn", "lease", "run", "ckpt", "store")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        at: fire at the Nth (0-based) opportunity of this kind — the Nth
            ``alltoallv`` call, the Nth matching assembly, the Nth
            matching solve, the Nth point-to-point post, or the Nth
            checkpoint I/O operation.
        equation: restrict ``matrix_corrupt``/``solver_stall`` to one
            equation system (None = any).
        mode: ``matrix_corrupt`` only — ``"nan"`` poisons entries,
            ``"scale"`` multiplies them by ``magnitude``.
        magnitude: scale factor for ``mode="scale"``.
        entries: number of values to corrupt per firing; for ``io_fail``,
            the number of *consecutive* I/O attempts (starting at
            ``at``) that fail — a window, so retry-with-backoff is
            actually exercised.
        point: ``worker_crash``/``worker_hang`` only — the execution
            boundary the fault fires at (:data:`WORKER_FAULT_POINTS`):
            ``"spawn"`` (default, before the job lease), ``"lease"``
            (after leasing, before the simulation), ``"run"``
            (mid-solve, on the first durable checkpoint event),
            ``"ckpt"`` (mid-checkpoint-write, between the tmp write and
            the atomic replace), ``"store"`` (after the run, before the
            outcome document is persisted).
        job: restrict ``worker_*``/``io_fail`` to one job — a
            ``JobSpec.job_id``/digest prefix (matched against the
            dispatch's job id, or the I/O path for ``io_fail``).  Empty
            matches any.  For ``worker_*``, ``at`` is the 0-based
            *attempt index* of the matching job, not a global
            opportunity count — this is what keeps chaos schedules
            deterministic under concurrent dispatch.
    """

    kind: str
    at: int = 0
    equation: str | None = None
    mode: str = "nan"
    magnitude: float = 1e8
    entries: int = 1
    point: str = ""
    job: str = ""

    def validate(self) -> None:
        """Raise on inconsistent settings."""
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; options {FAULT_KINDS}"
            )
        if self.mode not in ("nan", "scale"):
            raise ValueError(f"unknown fault mode {self.mode!r}")
        if self.at < 0 or self.entries < 1:
            raise ValueError("at must be >= 0 and entries >= 1")
        if self.point and self.kind not in WORKER_FAULT_KINDS:
            raise ValueError(
                f"point={self.point!r} only applies to {WORKER_FAULT_KINDS}"
            )
        if self.point not in WORKER_FAULT_POINTS:
            raise ValueError(
                f"unknown worker fault point {self.point!r}; "
                f"options {WORKER_FAULT_POINTS}"
            )

    def to_dict(self) -> dict:
        """JSON-shaped dict of the spec (strict round-trip form)."""
        return {
            "kind": self.kind,
            "at": self.at,
            "equation": self.equation,
            "mode": self.mode,
            "magnitude": self.magnitude,
            "entries": self.entries,
            "point": self.point,
            "job": self.job,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        """Strictly-validated inverse of :meth:`to_dict`."""
        from repro.serialize import (
            as_float,
            as_int,
            as_opt_str,
            as_str,
            strict_kwargs,
        )

        spec = cls(
            **strict_kwargs(
                "FaultSpec",
                data,
                {
                    "kind": as_str,
                    "at": as_int,
                    "equation": as_opt_str,
                    "mode": as_str,
                    "magnitude": as_float,
                    "entries": as_int,
                    "point": as_str,
                    "job": as_str,
                },
            )
        )
        spec.validate()
        return spec


@dataclass
class _SpecState:
    """Per-spec opportunity bookkeeping."""

    seen: int = 0
    fired: bool = False


class FaultInjector:
    """Deterministic fault scheduler hooked into ``SimWorld``.

    Args:
        specs: the faults to schedule.
        seed: generator seed; the same seed and event stream reproduce
            the same corruptions exactly.

    Attributes:
        fired: record of every fault actually injected
            (``{"kind", "phase", ...}`` dicts, in firing order).
    """

    def __init__(
        self, specs: tuple[FaultSpec, ...] | list[FaultSpec] = (), seed: int = 0
    ) -> None:
        self.specs = tuple(specs)
        for s in self.specs:
            s.validate()
        self.rng = np.random.default_rng(seed)
        self._state = [_SpecState() for _ in self.specs]
        self.fired: list[dict[str, Any]] = []

    def exhausted(self) -> bool:
        """True when every scheduled fault has fired."""
        return all(st.fired for st in self._state)

    def state_dict(self) -> dict[str, Any]:
        """JSON-ready opportunity/RNG state for checkpointing.

        A cold restart restores this so the restarted run sees the same
        remaining fault schedule (and RNG stream) the interrupted run
        would have — faults that already fired stay fired.
        """
        return {
            "seen": [st.seen for st in self._state],
            "fired_flags": [st.fired for st in self._state],
            "rng_state": self.rng.bit_generator.state,
            "fired": [dict(f) for f in self.fired],
        }

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot (specs must match)."""
        if len(state["seen"]) != len(self._state):
            raise ValueError(
                f"fault-injector state has {len(state['seen'])} specs, "
                f"injector has {len(self._state)}"
            )
        for st, seen, fired in zip(
            self._state, state["seen"], state["fired_flags"]
        ):
            st.seen = int(seen)
            st.fired = bool(fired)
        self.rng.bit_generator.state = state["rng_state"]
        self.fired = [dict(f) for f in state["fired"]]

    def _match(self, kind: str, equation: str | None = None) -> FaultSpec | None:
        """Count one opportunity; return the spec due to fire, if any."""
        for spec, st in zip(self.specs, self._state):
            if spec.kind != kind or st.fired:
                continue
            if spec.equation is not None and spec.equation != equation:
                continue
            st.seen += 1
            if st.seen - 1 == spec.at:
                st.fired = True
                return spec
        return None

    # -- hooks ---------------------------------------------------------------

    def on_alltoallv(self, recv: list[list[Any]], phase: str = "") -> None:
        """Maybe NaN-corrupt one payload of an ``alltoallv`` result.

        Payloads are replaced by corrupted *copies*: the originals are
        often views into sender-side staging buffers, and a real network
        fault corrupts the wire, not the sender's memory.
        """
        spec = self._match("exchange_nan")
        if spec is None:
            return
        candidates = [
            (dst, i)
            for dst, payloads in enumerate(recv)
            for i, p in enumerate(payloads)
            if self._value_array(p) is not None
        ]
        if not candidates:
            return
        dst, i = candidates[int(self.rng.integers(len(candidates)))]
        values = self._value_array(recv[dst][i]).copy()
        idx = self.rng.integers(values.size, size=min(spec.entries, values.size))
        values[idx] = np.nan
        recv[dst][i] = self._replace_values(recv[dst][i], values)
        self.fired.append(
            {
                "kind": "exchange_nan",
                "phase": phase,
                "dst": int(dst),
                "entries": int(idx.size),
            }
        )

    def on_matrix(self, A: Any, equation: str, phase: str = "") -> bool:
        """Maybe corrupt one rank's assembled operator values.

        Goes through ``ParCSRMatrix.update_rank_values`` so the global
        CSR and the rank's diag/offd blocks stay consistent (the
        corruption is in the *values*, not the storage layout).
        """
        spec = self._match("matrix_corrupt", equation)
        if spec is None:
            return False
        rank = int(self.rng.integers(A.world.size))
        s = A.A.indptr[A.row_offsets[rank]]
        e = A.A.indptr[A.row_offsets[rank + 1]]
        if e <= s:
            return False
        values = A.A.data[s:e].copy()
        idx = self.rng.integers(values.size, size=min(spec.entries, values.size))
        if spec.mode == "nan":
            values[idx] = np.nan
        else:
            values[idx] *= spec.magnitude
        A.update_rank_values(rank, values)
        self.fired.append(
            {
                "kind": "matrix_corrupt",
                "phase": phase,
                "equation": equation,
                "rank": rank,
                "mode": spec.mode,
                "entries": int(idx.size),
            }
        )
        return True

    def on_solve(self, equation: str, phase: str = "") -> bool:
        """True when the current solve should be forced to stall."""
        spec = self._match("solver_stall", equation)
        if spec is None:
            return False
        self.fired.append(
            {"kind": "solver_stall", "phase": phase, "equation": equation}
        )
        return True

    def on_post(self, envelope: Any) -> list[Any]:
        """Transform one posted point-to-point envelope.

        Called by :meth:`SimWorld._post` for every p2p message.  Returns
        the envelopes that actually land in the mailbox: ``[]`` for a
        drop, ``[env]`` untouched, ``[env]`` with a corrupted payload
        (the checksum is *not* restamped — that is the point), or
        ``[env, dup]`` for a duplicate delivery.

        Each post is one opportunity per p2p fault kind, and every
        retry re-post is a fresh post — so consecutive ``at`` values
        schedule faults on successive delivery attempts of the same
        logical message.
        """
        spec = self._match("message_drop")
        if spec is not None:
            self.fired.append(
                {
                    "kind": "message_drop",
                    "phase": envelope.phase,
                    "src": envelope.src,
                    "dst": envelope.dst,
                    "seq": envelope.seq,
                }
            )
            return []
        spec = self._match("message_corrupt")
        if spec is not None:
            values = self._value_array(envelope.payload)
            if values is not None:
                values = values.copy()
                idx = self.rng.integers(
                    values.size, size=min(spec.entries, values.size)
                )
                # Additive perturbation, never NaN: corruption on the
                # wire must be caught by the checksum, not by downstream
                # NaN guards doing the transport layer's job.
                values[idx] += spec.magnitude
                envelope.payload = self._replace_values(
                    envelope.payload, values
                )
                self.fired.append(
                    {
                        "kind": "message_corrupt",
                        "phase": envelope.phase,
                        "src": envelope.src,
                        "dst": envelope.dst,
                        "seq": envelope.seq,
                        "entries": int(idx.size),
                    }
                )
            return [envelope]
        spec = self._match("message_duplicate")
        if spec is not None:
            self.fired.append(
                {
                    "kind": "message_duplicate",
                    "phase": envelope.phase,
                    "src": envelope.src,
                    "dst": envelope.dst,
                    "seq": envelope.seq,
                }
            )
            return [envelope, envelope]
        return [envelope]

    def on_worker(self, job_id: str, attempt: int) -> FaultSpec | None:
        """Process-level fault due for this ``(job, attempt)`` dispatch.

        Called by the campaign supervisor when it hands a job attempt to
        a worker.  Matching is keyed directly on the job id (prefix
        match against ``spec.job``; empty matches any job) and the
        0-based attempt index (``spec.at``) — never on a global
        opportunity counter — so the schedule replays identically
        regardless of worker count or completion interleaving.  The
        matched spec is returned for the dispatcher to encode into the
        worker payload (the corresponding ``os._exit``/stall happens in
        the child).
        """
        for spec, st in zip(self.specs, self._state):
            if spec.kind not in WORKER_FAULT_KINDS or st.fired:
                continue
            if spec.job and not job_id.startswith(spec.job):
                continue
            if attempt != spec.at:
                continue
            st.fired = True
            self.fired.append(
                {
                    "kind": spec.kind,
                    "job": job_id,
                    "attempt": attempt,
                    "point": spec.point or "spawn",
                }
            )
            return spec
        return None

    def on_io(self, op: str, path: str = "") -> bool:
        """True when the current checkpoint/store I/O attempt should fail.

        Unlike the one-shot kinds, ``io_fail`` fails a *window* of
        ``entries`` consecutive opportunities starting at ``at``, so the
        writer's retry-with-backoff loop is exercised (and can be
        exhausted by making the window wider than the retry budget).
        A spec with ``job`` set counts (and fails) only I/O whose path
        contains that job id — the deterministic-per-job form campaign
        chaos schedules use.
        """
        for spec, st in zip(self.specs, self._state):
            if spec.kind != "io_fail" or st.fired:
                continue
            if spec.job and spec.job not in path:
                continue
            st.seen += 1
            n = st.seen - 1
            if n < spec.at:
                continue
            if n >= spec.at + spec.entries - 1:
                st.fired = True
            self.fired.append(
                {"kind": "io_fail", "op": op, "path": path, "opportunity": n}
            )
            return True
        return False

    # -- payload helpers -----------------------------------------------------

    @staticmethod
    def _value_array(payload: Any) -> np.ndarray | None:
        """The float value array of a payload, or None when there is none.

        Exchange payloads are either bare value arrays (plan replay /
        halo data) or index-tuples whose last element holds the values
        (cold assembly COO pieces).
        """
        if isinstance(payload, np.ndarray):
            return payload if payload.dtype.kind == "f" and payload.size else None
        if isinstance(payload, tuple) and payload:
            last = payload[-1]
            if isinstance(last, np.ndarray) and last.dtype.kind == "f":
                return last if last.size else None
        return None

    @staticmethod
    def _replace_values(payload: Any, values: np.ndarray) -> Any:
        """Rebuild a payload around a corrupted value array."""
        if isinstance(payload, np.ndarray):
            return values
        return payload[:-1] + (values,)
