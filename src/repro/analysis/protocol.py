"""Path-sensitive communication-protocol rules (RL007/RL008/RL009).

Built on :mod:`repro.analysis.cfg` (per-function control-flow graphs)
and :mod:`repro.analysis.interproc` (whole-package call graph), these
rules verify the contracts the comm-avoiding solver stack rests on —
the ones PR 8's bugs showed cannot be left to vigilance:

RL007 — **resource typestate**.  Three protocol state machines walked
    over every CFG path, exception edges included:

    * every ``exchange_halo_begin`` must reach exactly one
      ``exchange_halo_finish`` (a leaked begin strands posted sends; at
      the next barrier that is a :class:`MailboxLeakError`, on real MPI
      a hang).  Handles are tracked per variable, so rebinding a live
      handle fires too; returning or storing a handle transfers
      ownership to the caller and is quiet.
    * durable writes: a written temp file must be ``fsync``'d before
      ``os.replace`` (rename may commit before data → torn checkpoint
      after a crash), and a normal return must not leave the temp
      neither replaced nor cleaned.  Exception paths are exempt: the
      ``finally``-with-``exists``-guard cleanup idiom is the sanctioned
      shape.  Only functions that call ``os.replace``/``os.rename`` are
      checked.
    * phase balance (the RL006 upgrade from syntax to paths): raw
      ``_phase_stack.append`` must be popped (``.pop()`` or the
      ``_pop_phase`` helper — the interprocedural edge) on every path.

RL008 — **collective consistency**.  A collective (``allreduce``/
    ``allgather``/``barrier``/``alltoallv``/``record_collective``, or a
    resolved call that transitively reaches one) reachable from one arm
    of a rank-dependent branch but not the other is a deadlock at
    scale: some ranks post the collective, the rest never do.  Arms
    with identical lexical collective sequences are symmetric and
    exempt.  A condition is rank-dependent when it mentions ``rank``,
    ``*_rank``, or ``is_root``.

RL009 — **reduction contracts**.  ``@reduction_contract(...)``-decorated
    kernels (see :func:`repro.krylov.api.reduction_contract`) have their
    declared per-region allreduce counts checked against the statically
    counted reduction call sites: weight-1 primitives are ``dot`` /
    ``norm`` / ``fused_dots`` / ``batched_dots`` and the direct
    collectives; ``assume={name: n}`` prices resolved helpers (e.g.
    ``orthogonalize`` under the one-reduce variant); a resolved call
    that reaches a reduction but carries no assume entry is flagged.
    Region mapping: depth 0 = ``setup``, the innermost event depth =
    ``per_iteration``, anything between = ``per_restart``.  Unresolved
    attribute calls (``A.matvec``, ``self.M.apply``) are not counted —
    operator/preconditioner reductions are their own contract.

Findings respect the same ``# repro: allow(RLxxx)`` pragmas as the
syntactic rules and flow through the same baseline machinery.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.cfg import (
    CFG,
    ENTRY,
    EXIT,
    RAISE_EXIT,
    CFGNode,
    build_cfg,
    calls_in_order,
    node_calls,
)
from repro.analysis.findings import AnalysisReport, Finding
from repro.analysis.interproc import (
    COLLECTIVE_NAMES,
    REDUCTION_PRIMITIVES,
    FunctionDecl,
    ProjectIndex,
    _dotted_chain,
    _is_numpy_rooted,
    _terminal_name,
)

_BEGIN = "exchange_halo_begin"
_FINISH = "exchange_halo_finish"
_CONTRACT_DECORATOR = "reduction_contract"

#: Path-explosion bound: states tracked per (node, state) pair.
_MAX_VISITS = 4096


@dataclass
class _RawFinding:
    rule: str
    line: int
    message: str
    #: AST anchor for the pragma window (the function when line-level
    #: context is unavailable).
    anchor: ast.AST


# -- generic set-of-states walker ---------------------------------------------


def _walk_states(cfg: CFG, step):
    """Propagate states over the CFG; returns ``{node_idx: {state}}``.

    ``step(node, state) -> state | None`` applies one node's events
    (None drops the path).  Implicit-exception edges (to ``unwind``
    nodes) additionally receive the *pre-event* state: an exception may
    fire before the statement's side effects.
    """
    out: dict[int, set] = {}
    # step() on ENTRY (stmt=None → no events) materializes the initial state.
    init = step(cfg.nodes[ENTRY], None)
    states: list[tuple[int, object]] = [(ENTRY, init)]
    seen: set = {(ENTRY, init)}
    while states:
        if len(seen) > _MAX_VISITS:
            break
        idx, st = states.pop()
        out.setdefault(idx, set()).add(st)
        node = cfg.nodes[idx]
        for succ in node.succs:
            succ_node = cfg.nodes[succ]
            carried = [step(succ_node, st)]
            if succ_node.kind == "unwind":
                carried.append(st)  # pre-event propagation
            for nxt in carried:
                if nxt is None:
                    continue
                if (succ, nxt) not in seen:
                    seen.add((succ, nxt))
                    states.append((succ, nxt))
    return out


# -- RL007: halo begin/finish typestate ---------------------------------------


def _flat_names(target: ast.expr) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[str] = []
        for elt in target.elts:
            out.extend(_flat_names(elt))
        return out
    return []


def _halo_events(node: CFGNode) -> list[tuple]:
    """Ordered protocol events evaluated by one CFG node."""
    stmt = node.stmt
    if stmt is None:
        return []
    events: list[tuple] = []
    bound_call = None
    bound_name: str | None = None
    escaped_bind = False
    if (
        isinstance(stmt, (ast.Assign, ast.AnnAssign))
        and isinstance(getattr(stmt, "value", None), ast.Call)
    ):
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        if len(targets) == 1 and isinstance(targets[0], ast.Name):
            bound_call, bound_name = stmt.value, targets[0].id
        elif len(targets) == 1:
            # `self.handle = begin(...)`: stored away — caller-owned.
            bound_call, escaped_bind = stmt.value, True
    for call in node_calls(node):
        name = _terminal_name(call.func)
        if name == _BEGIN:
            if call is bound_call and escaped_bind:
                events.append(("begin_escaped",))
            elif call is bound_call:
                events.append(("begin", bound_name, call.lineno))
            else:
                anon = f"@{call.lineno}:{call.col_offset}"
                events.append(("begin", anon, call.lineno))
        elif name == _FINISH:
            handle = call.args[1] if len(call.args) > 1 else None
            if handle is None:
                for kw in call.keywords:
                    if kw.arg == "handle":
                        handle = kw.value
            events.append(("finish", handle))
        else:
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                if isinstance(arg, ast.Name):
                    events.append(("escape", arg.id))
    if isinstance(stmt, ast.Assign) and stmt.value is not bound_call:
        for t in stmt.targets:
            for n in _flat_names(t):
                events.append(("rebind", n, stmt.lineno))
    if isinstance(stmt, ast.Return) and isinstance(stmt.value, ast.Name):
        events.append(("return", stmt.value.id))
    return events


def _check_halo(decl: FunctionDecl) -> list[_RawFinding]:
    if not any(
        _terminal_name(c.func) in (_BEGIN, _FINISH) for c in decl.calls
    ):
        return []
    cfg = build_cfg(decl.node)
    findings: dict[tuple, _RawFinding] = {}

    def emit(key: tuple, line: int, message: str) -> None:
        if key not in findings:
            findings[key] = _RawFinding("RL007", line, message, decl.node)

    def step(node: CFGNode, state):
        open_set = frozenset() if state is None else state
        for ev in _halo_events(node):
            kind = ev[0]
            if kind == "begin":
                _, name, line = ev
                if any(n == name for n, _l in open_set):
                    emit(
                        ("double", line),
                        line,
                        f"{_BEGIN} rebinds {name!r} while a previous begin "
                        "on the same name is still unfinished: the first "
                        "exchange's sends are stranded",
                    )
                    open_set = frozenset(
                        e for e in open_set if e[0] != name
                    )
                open_set = open_set | {(name, line)}
            elif kind == "begin_escaped":
                pass  # stored to an attribute: ownership leaves this frame
            elif kind == "finish":
                handle = ev[1]
                if isinstance(handle, ast.Name):
                    open_set = frozenset(
                        e for e in open_set if e[0] != handle.id
                    )
                elif isinstance(handle, ast.Call):
                    anon = f"@{handle.lineno}:{handle.col_offset}"
                    open_set = frozenset(
                        e for e in open_set if e[0] != anon
                    )
                # Unresolvable handle (param/attr): caller-owned, no-op.
            elif kind == "escape":
                open_set = frozenset(
                    e for e in open_set if e[0] != ev[1]
                )
            elif kind == "rebind":
                _, name, line = ev
                hit = [e for e in open_set if e[0] == name]
                if hit:
                    emit(
                        ("rebind", line),
                        line,
                        f"halo handle {name!r} (begun at line {hit[0][1]}) "
                        "is rebound before exchange_halo_finish: the "
                        "in-flight exchange can no longer be drained",
                    )
                    open_set = frozenset(
                        e for e in open_set if e[0] != name
                    )
            elif kind == "return":
                open_set = frozenset(
                    e for e in open_set if e[0] != ev[1]
                )
        return open_set

    states = _walk_states(cfg, step)
    for exit_idx, how in ((EXIT, "a return"), (RAISE_EXIT, "an exception")):
        for st in states.get(exit_idx, ()):
            for name, line in st:
                emit(
                    ("leak", line, exit_idx),
                    line,
                    f"{_BEGIN} here can leave the function via {how} "
                    f"path without {_FINISH}: posted sends leak into the "
                    "next synchronization point",
                )
    return list(findings.values())


# -- RL007: durable-write (tmp → fsync → replace) -----------------------------


def _chain_is(call: ast.Call, *suffix: str) -> bool:
    chain = _dotted_chain(call.func)
    return chain is not None and tuple(chain[-len(suffix):]) == suffix


def _durable_events(node: CFGNode) -> list[tuple]:
    events: list[tuple] = []
    for call in node_calls(node):
        name = _terminal_name(call.func)
        if name == "open":
            mode = call.args[1] if len(call.args) > 1 else None
            for kw in call.keywords:
                if kw.arg == "mode":
                    mode = kw.value
            if (
                isinstance(mode, ast.Constant)
                and isinstance(mode.value, str)
                and any(m in mode.value for m in ("w", "a", "x"))
            ):
                events.append(("write", call.lineno))
        elif isinstance(call.func, ast.Attribute) and name == "write":
            events.append(("write", call.lineno))
        elif name == "fsync":
            events.append(("fsync",))
        elif _chain_is(call, "os", "replace") or _chain_is(
            call, "os", "rename"
        ):
            events.append(("replace", call.lineno))
        elif _chain_is(call, "os", "unlink") or _chain_is(
            call, "os", "remove"
        ):
            events.append(("unlink",))
    return events


def _check_durable_write(decl: FunctionDecl) -> list[_RawFinding]:
    if not any(
        _chain_is(c, "os", "replace") or _chain_is(c, "os", "rename")
        for c in decl.calls
    ):
        return []
    cfg = build_cfg(decl.node)
    findings: dict[tuple, _RawFinding] = {}

    def emit(key: tuple, line: int, message: str) -> None:
        if key not in findings:
            findings[key] = _RawFinding("RL007", line, message, decl.node)

    # State: (phase, last_write_line); phases: clean/written/synced/done.
    def step(node: CFGNode, state):
        phase, wline = ("clean", 0) if state is None else state
        for ev in _durable_events(node):
            if ev[0] == "write":
                phase, wline = "written", ev[1]
            elif ev[0] == "fsync":
                if phase == "written":
                    phase = "synced"
            elif ev[0] == "replace":
                if phase == "written":
                    emit(
                        ("nofsync", ev[1]),
                        ev[1],
                        "os.replace of a written temp file without an "
                        "intervening fsync: rename can commit before the "
                        "data, leaving a torn file after a crash",
                    )
                if phase in ("written", "synced", "clean"):
                    phase = "done"
            elif ev[0] == "unlink":
                if phase in ("written", "synced"):
                    phase, wline = "clean", 0
        return (phase, wline)

    states = _walk_states(cfg, step)
    for st in states.get(EXIT, ()):
        phase, wline = st
        if phase in ("written", "synced"):
            emit(
                ("unreplaced", wline),
                wline,
                "temp file written here can reach a normal return "
                "neither os.replace'd nor cleaned up: the durable-write "
                "protocol is tmp write → fsync → replace",
            )
    return list(findings.values())


# -- RL007 (RL006 upgrade): path-sensitive phase balance ----------------------


def _phase_events(node: CFGNode) -> list[tuple]:
    events: list[tuple] = []
    for call in node_calls(node):
        if _chain_is(call, "_phase_stack", "append"):
            events.append(("push", call.lineno))
        elif _chain_is(call, "_phase_stack", "pop") or _terminal_name(
            call.func
        ) == "_pop_phase":
            events.append(("pop",))
    return events


def _check_phase_balance(decl: FunctionDecl) -> list[_RawFinding]:
    if not any(
        _chain_is(c, "_phase_stack", "append")
        or _chain_is(c, "_phase_stack", "pop")
        or _terminal_name(c.func) == "_pop_phase"
        for c in decl.calls
    ):
        return []
    cfg = build_cfg(decl.node)
    findings: dict[tuple, _RawFinding] = {}

    def step(node: CFGNode, state):
        depth, first_line = (0, 0) if state is None else state
        for ev in _phase_events(node):
            if ev[0] == "push":
                depth += 1
                first_line = first_line or ev[1]
                if depth > 8:
                    return None
            else:
                # A pop below this frame's own pushes balances a
                # caller-side push (the _pop_phase helper's whole job).
                depth = max(0, depth - 1)
                if depth == 0:
                    first_line = 0
        return (depth, first_line)

    states = _walk_states(cfg, step)
    for exit_idx, how in ((EXIT, "return"), (RAISE_EXIT, "exception")):
        for depth, line in states.get(exit_idx, ()):
            if depth > 0 and ("leak", line) not in findings:
                findings[("leak", line)] = _RawFinding(
                    "RL007",
                    line or decl.node.lineno,
                    f"_phase_stack.append here is not popped on some "
                    f"{how} path: all traffic after the leak is "
                    "misattributed (use phase_scope, which pops in a "
                    "finally)",
                    decl.node,
                )
    return list(findings.values())


# -- RL008: collective consistency under rank-dependent branches --------------

_RANK_NAMES = ("rank", "is_root")


def _mentions_rank(expr: ast.expr) -> bool:
    for node in ast.walk(expr):
        ident = None
        if isinstance(node, ast.Name):
            ident = node.id
        elif isinstance(node, ast.Attribute):
            ident = node.attr
        if ident is not None and (
            ident in _RANK_NAMES or ident.endswith("_rank")
        ):
            return True
    return False


def _collective_label(
    call: ast.Call, decl: FunctionDecl, index: ProjectIndex
) -> str | None:
    name = _terminal_name(call.func)
    if _is_numpy_rooted(call.func):
        return None
    if name in COLLECTIVE_NAMES:
        return name
    target = index.call_reaches_collective(call, decl)
    if target is not None:
        return f"call to {target.split(':')[-1]}"
    return None


def _check_collectives(
    decl: FunctionDecl, index: ProjectIndex
) -> list[_RawFinding]:
    rank_ifs = [
        stmt
        for stmt in ast.walk(decl.node)
        if isinstance(stmt, ast.If) and _mentions_rank(stmt.test)
    ]
    if not rank_ifs:
        return []
    cfg = build_cfg(decl.node)
    sites: list[tuple[int, str, int]] = []  # (node_idx, label, line)
    for node in cfg.nodes:
        for call in node_calls(node):
            label = _collective_label(call, decl, index)
            if label is not None:
                sites.append((node.idx, label, call.lineno))
    if not sites:
        return []

    def seq(stmts: list[ast.stmt]) -> list[str]:
        return [
            lab
            for c in calls_in_order(stmts)
            if (lab := _collective_label(c, decl, index)) is not None
        ]

    findings: dict[tuple, _RawFinding] = {}
    for if_idx, true_entries in cfg.if_arms:
        stmt = cfg.nodes[if_idx].stmt
        if not isinstance(stmt, ast.If) or not _mentions_rank(stmt.test):
            continue
        blocked = frozenset({if_idx})
        reach_t = cfg.reachable(true_entries, blocked)
        false_entries = [
            s
            for s in cfg.successors(if_idx)
            if s not in true_entries and cfg.nodes[s].kind != "unwind"
        ]
        reach_f = cfg.reachable(false_entries, blocked)
        symmetric = bool(stmt.orelse) and seq(stmt.body) == seq(stmt.orelse)
        end = getattr(stmt, "end_lineno", stmt.lineno) or stmt.lineno
        for node_idx, label, line in sites:
            inside = stmt.lineno <= line <= end
            if symmetric and inside:
                continue
            if (node_idx in reach_t) != (node_idx in reach_f):
                key = (line, label, stmt.lineno)
                if key not in findings:
                    findings[key] = _RawFinding(
                        "RL008",
                        line,
                        f"collective {label} executes only on one side of "
                        f"the rank-dependent branch at line {stmt.lineno}: "
                        "ranks taking the other side never post it — "
                        "deadlock at scale",
                        decl.node,
                    )
    return list(findings.values())


# -- RL009: reduction contracts -----------------------------------------------


def _contract_decorator(decl: FunctionDecl) -> ast.Call | None:
    for deco in decl.node.decorator_list:
        if (
            isinstance(deco, ast.Call)
            and _terminal_name(deco.func) == _CONTRACT_DECORATOR
        ):
            return deco
    return None


def _parse_contract(deco: ast.Call) -> dict:
    out: dict = {
        "setup": 0,
        "per_iteration": 0,
        "per_restart": None,
        "assume": {},
    }
    for kw in deco.keywords:
        if kw.arg in ("setup", "per_iteration", "per_restart") and isinstance(
            kw.value, ast.Constant
        ):
            out[kw.arg] = kw.value.value
        elif kw.arg == "assume" and isinstance(kw.value, ast.Dict):
            for k, v in zip(kw.value.keys, kw.value.values):
                if isinstance(k, ast.Constant) and isinstance(
                    v, ast.Constant
                ):
                    out["assume"][k.value] = v.value
    return out


def _count_reduction_sites(
    decl: FunctionDecl, index: ProjectIndex, assume: dict[str, int]
) -> tuple[list[tuple[int, int, int, str]], list[tuple[int, str]]]:
    """(depth, weight, line, label) events + unaccounted resolved calls."""
    events: list[tuple[int, int, int, str]] = []
    unaccounted: list[tuple[int, str]] = []

    def walk(node: ast.AST, depth: int) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (
                    ast.FunctionDef,
                    ast.AsyncFunctionDef,
                    ast.ClassDef,
                    ast.Lambda,
                ),
            ):
                continue
            d = depth + 1 if isinstance(
                child, (ast.For, ast.While, ast.AsyncFor)
            ) else depth
            walk(child, d)
            if isinstance(child, ast.Call):
                name = _terminal_name(child.func)
                if name is None or _is_numpy_rooted(child.func):
                    continue
                if name in assume:
                    events.append(
                        (d, int(assume[name]), child.lineno, name)
                    )
                elif name in REDUCTION_PRIMITIVES or name in COLLECTIVE_NAMES:
                    events.append((d, 1, child.lineno, name))
                else:
                    for target in sorted(index.resolve_call(child, decl)):
                        if index.reaches_reduction(target):
                            unaccounted.append((child.lineno, target))
                            break

    walk(decl.node, 0)
    return events, unaccounted


def _check_contract(
    decl: FunctionDecl, index: ProjectIndex
) -> list[_RawFinding]:
    deco = _contract_decorator(decl)
    if deco is None:
        return []
    contract = _parse_contract(deco)
    events, unaccounted = _count_reduction_sites(
        decl, index, contract["assume"]
    )
    findings: list[_RawFinding] = []
    for line, target in unaccounted:
        findings.append(
            _RawFinding(
                "RL009",
                line,
                f"call to {target.split(':')[-1]} can reach a distributed "
                "reduction but has no assume= entry in the "
                "@reduction_contract: its cost would ship uncounted",
                decl.node,
            )
        )
    depth_max = max((d for d, w, _l, _n in events if w), default=0)
    region: dict[str, list[tuple[int, int, str]]] = {
        "setup": [],
        "per_iteration": [],
        "per_restart": [],
    }
    for d, w, line, name in events:
        if d == 0:
            region["setup"].append((w, line, name))
        elif d == depth_max:
            region["per_iteration"].append((w, line, name))
        else:
            region["per_restart"].append((w, line, name))

    def detail(evts: list[tuple[int, int, str]]) -> str:
        return (
            ", ".join(f"{n}@{line}" for _w, line, n in evts) or "none"
        )

    for key, label in (
        ("setup", "outside any loop"),
        ("per_iteration", "in the innermost loop"),
        ("per_restart", "at restart (intermediate loop) level"),
    ):
        counted = sum(w for w, _l, _n in region[key])
        declared = contract[key]
        if declared is None:
            if counted:
                findings.append(
                    _RawFinding(
                        "RL009",
                        decl.node.lineno,
                        f"{counted} reduction(s) {label} "
                        f"({detail(region[key])}) but the contract "
                        "declares no per_restart count",
                        decl.node,
                    )
                )
        elif counted != declared:
            findings.append(
                _RawFinding(
                    "RL009",
                    decl.node.lineno,
                    f"contract declares {key}={declared} but "
                    f"{counted} reduction site(s) counted {label} "
                    f"({detail(region[key])})",
                    decl.node,
                )
            )
    return findings


# -- driver -------------------------------------------------------------------


def analyze_protocol_sources(
    files: list[tuple[str, str]]
) -> AnalysisReport:
    """Run RL007/RL008/RL009 over ``(path, source)`` pairs."""
    from repro.analysis.lint import _suppressed

    index = ProjectIndex.from_sources(files)
    lines_by_path = {path: source.splitlines() for path, source in files}
    report = AnalysisReport()
    for key in sorted(index.functions):
        decl = index.functions[key]
        raw: list[_RawFinding] = []
        raw.extend(_check_halo(decl))
        raw.extend(_check_durable_write(decl))
        raw.extend(_check_phase_balance(decl))
        raw.extend(_check_collectives(decl, index))
        raw.extend(_check_contract(decl, index))
        lines = lines_by_path.get(decl.path, [])
        for rf in raw:
            finding = Finding(
                rule=rf.rule,
                path=decl.path,
                line=rf.line,
                severity="error",
                message=f"{decl.qualname}: {rf.message}",
                qualname=decl.qualname,
            )
            anchor: ast.AST = ast.Pass()
            anchor.lineno = rf.line  # pragma window anchors on the line
            if _suppressed(rf.rule, anchor, lines, False) or _suppressed(
                rf.rule, decl.node, lines, True
            ):
                report.suppressed.append(finding)
            else:
                report.findings.append(finding)
    return report


def analyze_protocol_paths(paths: list[str]) -> AnalysisReport:
    """Run the protocol rules over every ``.py`` file under ``paths``."""
    from repro.analysis.lint import iter_python_files

    files = []
    for p in iter_python_files(paths):
        try:
            with open(p, encoding="utf-8") as fh:
                files.append((p, fh.read()))
        except OSError:
            continue
    return analyze_protocol_sources(files)


def analyze_protocol_source(source: str, path: str) -> AnalysisReport:
    """Single-file convenience wrapper (fixtures and tests)."""
    return analyze_protocol_sources([(path, source)])
