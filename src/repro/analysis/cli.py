"""``python -m repro analyze`` — run repro-lint + the kernel sanitizer.

Exit status is the gate contract: 0 when the tree is clean (after pragma
and baseline suppression), 1 when findings remain — errors only by
default, every finding under ``--strict``.  ``--format json`` emits the
``repro.analysis/2`` document including the ``analysis.findings`` /
``analysis.suppressed`` telemetry counters.

``--changed`` scopes the per-file lint rules to git-modified files for
fast pre-commit iteration; the interprocedural protocol rules
(RL007-RL009) still index the full tree for call-graph context, with
their findings filtered to the changed files.  When git is unavailable
the flag degrades to a full-tree scan with a warning.
"""

from __future__ import annotations

import argparse
import os

from repro.analysis.findings import AnalysisReport, render_json, render_text
from repro.analysis.lint import (
    RULES,
    apply_baseline,
    iter_python_files,
    lint_paths,
    load_baseline,
    write_baseline,
)
from repro.analysis.protocol import analyze_protocol_paths


def add_analyze_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``analyze`` subcommand on the ``repro`` CLI."""
    p = sub.add_parser(
        "analyze",
        help="static (repro-lint) + dynamic (sanitizer) analysis",
        description=(
            "Run the RL001-RL010 lint + protocol rules over the given "
            "paths and the KS001-KS005 permuted-thread determinism "
            "checks over the assembly kernels.  Rules: "
            + "; ".join(f"{k}: {v}" for k, v in sorted(RULES.items()))
        ),
    )
    p.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files/directories to lint (default: src)",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings too (CI gate mode)",
    )
    p.add_argument(
        "--format",
        default="text",
        choices=["text", "json"],
        help="output rendering",
    )
    p.add_argument(
        "--baseline",
        default="",
        help="baseline JSON of grandfathered findings to ignore",
    )
    p.add_argument(
        "--write-baseline",
        default="",
        metavar="PATH",
        help="write current findings as a new baseline and exit 0",
    )
    p.add_argument(
        "--changed",
        action="store_true",
        help=(
            "lint only git-modified files (full-tree fallback when git "
            "is unavailable); protocol rules keep whole-tree call-graph "
            "context"
        ),
    )
    p.add_argument(
        "--no-dynamic",
        action="store_true",
        help="skip the sanitizer/determinism replay (lint only)",
    )
    p.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for the dynamic replay harness",
    )
    p.set_defaults(func=cmd_analyze)


def _git_changed_files() -> list[str] | None:
    """Absolute paths of modified + untracked files, or None sans git."""
    import subprocess

    def run(*argv: str) -> str:
        proc = subprocess.run(
            argv, capture_output=True, text=True, check=True
        )
        return proc.stdout

    try:
        top = run("git", "rev-parse", "--show-toplevel").strip()
        listed = run("git", "diff", "--name-only", "HEAD") + run(
            "git", "ls-files", "--others", "--exclude-standard"
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    out = []
    for rel in listed.splitlines():
        path = os.path.join(top, rel.strip())
        if rel.strip() and path.endswith(".py") and os.path.exists(path):
            out.append(os.path.abspath(path))
    return sorted(set(out))


def cmd_analyze(args: argparse.Namespace) -> int:
    """Entry point for ``python -m repro analyze``."""
    report = AnalysisReport()
    paths = [p for p in args.paths if os.path.exists(p)]
    missing = [p for p in args.paths if not os.path.exists(p)]
    if missing:
        for p in missing:
            print(f"warning: path {p!r} does not exist, skipping")
    changed: set[str] | None = None
    if args.changed:
        listed = _git_changed_files()
        if listed is None:
            print(
                "warning: --changed requested but git is unavailable; "
                "falling back to full-tree scan"
            )
        else:
            changed = set(listed)
    if changed is None:
        report.extend(lint_paths(paths))
    else:
        lint_files = [
            f
            for f in iter_python_files(paths)
            if os.path.abspath(f) in changed
        ]
        report.extend(lint_paths(lint_files))
    # Protocol rules are interprocedural: always index the full paths so
    # cross-module call-graph edges exist, then scope the findings.
    protocol = analyze_protocol_paths(paths)
    if changed is not None:
        protocol.findings = [
            f
            for f in protocol.findings
            if os.path.abspath(f.path) in changed
        ]
        protocol.suppressed = [
            f
            for f in protocol.suppressed
            if os.path.abspath(f.path) in changed
        ]
    report.extend(protocol)
    if args.baseline:
        apply_baseline(report, load_baseline(args.baseline))
    if args.write_baseline:
        write_baseline(args.write_baseline, report)
        print(
            f"wrote {len(report.findings)} finding(s) to "
            f"{args.write_baseline}"
        )
        return 0
    if not args.no_dynamic:
        from repro.analysis.determinism import run_dynamic_checks

        report.extend(run_dynamic_checks(seed=args.seed))
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return report.exit_code(strict=args.strict)
