"""``python -m repro analyze`` — run repro-lint + the kernel sanitizer.

Exit status is the gate contract: 0 when the tree is clean (after pragma
and baseline suppression), 1 when findings remain — errors only by
default, every finding under ``--strict``.  ``--format json`` emits the
``repro.analysis/1`` document including the ``analysis.findings`` /
``analysis.suppressed`` telemetry counters.
"""

from __future__ import annotations

import argparse
import os

from repro.analysis.findings import AnalysisReport, render_json, render_text
from repro.analysis.lint import (
    RULES,
    apply_baseline,
    lint_paths,
    load_baseline,
    write_baseline,
)


def add_analyze_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``analyze`` subcommand on the ``repro`` CLI."""
    p = sub.add_parser(
        "analyze",
        help="static (repro-lint) + dynamic (sanitizer) analysis",
        description=(
            "Run the RL001-RL006 lint rules over the given paths and the "
            "KS001-KS005 permuted-thread determinism checks over the "
            "assembly kernels.  Rules: "
            + "; ".join(f"{k}: {v}" for k, v in sorted(RULES.items()))
        ),
    )
    p.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files/directories to lint (default: src)",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings too (CI gate mode)",
    )
    p.add_argument(
        "--format",
        default="text",
        choices=["text", "json"],
        help="output rendering",
    )
    p.add_argument(
        "--baseline",
        default="",
        help="baseline JSON of grandfathered findings to ignore",
    )
    p.add_argument(
        "--write-baseline",
        default="",
        metavar="PATH",
        help="write current findings as a new baseline and exit 0",
    )
    p.add_argument(
        "--no-dynamic",
        action="store_true",
        help="skip the sanitizer/determinism replay (lint only)",
    )
    p.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for the dynamic replay harness",
    )
    p.set_defaults(func=cmd_analyze)


def cmd_analyze(args: argparse.Namespace) -> int:
    """Entry point for ``python -m repro analyze``."""
    report = AnalysisReport()
    paths = [p for p in args.paths if os.path.exists(p)]
    missing = [p for p in args.paths if not os.path.exists(p)]
    if missing:
        for p in missing:
            print(f"warning: path {p!r} does not exist, skipping")
    report.extend(lint_paths(paths))
    if args.baseline:
        apply_baseline(report, load_baseline(args.baseline))
    if args.write_baseline:
        write_baseline(args.write_baseline, report)
        print(
            f"wrote {len(report.findings)} finding(s) to "
            f"{args.write_baseline}"
        )
        return 0
    if not args.no_dynamic:
        from repro.analysis.determinism import run_dynamic_checks

        report.extend(run_dynamic_checks(seed=args.seed))
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return report.exit_code(strict=args.strict)
