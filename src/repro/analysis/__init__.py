"""Static + dynamic correctness analysis for the assembly/solver stack.

Two halves, one findings stream (see ``docs/static_analysis.md``):

* **repro-lint** (:mod:`repro.analysis.lint`) — AST rules ``RL001`` -
  ``RL006`` enforcing the determinism and cost-accounting contract the
  paper's pipeline rests on (stable sorts, wrapped scatter-writes,
  seeded RNG, factory-only smoother construction, accounted kernels,
  balanced phase scopes), plus the path-sensitive protocol rules
  ``RL007`` - ``RL009`` (:mod:`repro.analysis.protocol`) built on
  per-function CFGs (:mod:`repro.analysis.cfg`) and a whole-package
  call graph (:mod:`repro.analysis.interproc`): halo begin/finish and
  durable-write typestate, rank-divergent collectives, and
  ``@reduction_contract`` verification;
* **kernel sanitizer** (:mod:`repro.analysis.sanitizer` /
  :mod:`repro.analysis.determinism`) — shadow-memory write-set tracking
  of the Stage-2 scatter launches plus a permuted-thread replay harness
  asserting the bitwise-reproducibility half of the contract (``KS001``
  - ``KS005``).

CLI: ``python -m repro analyze [--strict] [paths...]``; CI gate:
``benchmarks/check_static_analysis.py``.
"""

from repro.analysis.determinism import (
    ATOMIC_BOUND_SAFETY,
    ThreadSchedule,
    atomic_deviation_bound,
    check_assembly_pipeline,
    check_scatter_modes,
    replay_scatter,
    run_dynamic_checks,
)
from repro.analysis.findings import (
    AnalysisReport,
    Finding,
    render_json,
    render_text,
    sort_findings,
)
from repro.analysis.lint import (
    RULES,
    apply_baseline,
    iter_python_files,
    lint_paths,
    lint_source,
    load_baseline,
    write_baseline,
)
from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.interproc import ProjectIndex
from repro.analysis.protocol import (
    analyze_protocol_paths,
    analyze_protocol_source,
    analyze_protocol_sources,
)
from repro.analysis.sanitizer import KernelSanitizer, LaunchRecord

__all__ = [
    "ATOMIC_BOUND_SAFETY",
    "AnalysisReport",
    "CFG",
    "Finding",
    "KernelSanitizer",
    "LaunchRecord",
    "ProjectIndex",
    "RULES",
    "ThreadSchedule",
    "analyze_protocol_paths",
    "analyze_protocol_source",
    "analyze_protocol_sources",
    "apply_baseline",
    "atomic_deviation_bound",
    "build_cfg",
    "check_assembly_pipeline",
    "check_scatter_modes",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "render_json",
    "render_text",
    "replay_scatter",
    "run_dynamic_checks",
    "sort_findings",
    "write_baseline",
]
