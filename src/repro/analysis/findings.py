"""Structured findings shared by repro-lint and the kernel sanitizer.

Every check in :mod:`repro.analysis` — static AST rules (``RLxxx``) and
dynamic sanitizer checks (``KSxxx``) — reports through one record type so
the CLI, the CI gate, and the telemetry counters all consume the same
stream.  A finding names the rule, where it fired (``path:line`` for lint,
a kernel label for the sanitizer), a severity, and a human-readable
message.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Iterable

from repro.obs.metrics import MetricsRegistry

#: Severity levels, most severe first.
SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Finding:
    """One analysis finding (static or dynamic)."""

    rule: str
    path: str
    line: int
    severity: str
    message: str
    #: Dynamic findings name the offending kernel instead of a source line.
    kernel: str | None = None
    #: Enclosing function qualname for static findings (``Class.method``);
    #: None for module-level and dynamic findings.  Baseline keys use it
    #: to disambiguate identical line text at different sites.
    qualname: str | None = None

    def location(self) -> str:
        """``path:line`` for lint findings, ``kernel:<name>`` for dynamic."""
        if self.kernel is not None:
            return f"kernel:{self.kernel}"
        return f"{self.path}:{self.line}"

    def to_dict(self) -> dict:
        """JSON-ready representation (drops the unused kernel/path half)."""
        d = asdict(self)
        if self.kernel is None:
            d.pop("kernel")
        if self.qualname is None:
            d.pop("qualname")
        return d


@dataclass
class AnalysisReport:
    """Aggregated result of one ``repro analyze`` invocation."""

    findings: list[Finding] = field(default_factory=list)
    #: Findings silenced by an inline ``# repro: allow(RLxxx)`` pragma.
    suppressed: list[Finding] = field(default_factory=list)
    #: Findings silenced by the checked-in baseline file.
    baselined: list[Finding] = field(default_factory=list)
    #: Dynamic-harness bookkeeping (checks run, atomic deviation stats).
    dynamic_stats: dict = field(default_factory=dict)

    def errors(self) -> list[Finding]:
        """Findings at ``error`` severity."""
        return [f for f in self.findings if f.severity == "error"]

    def exit_code(self, strict: bool = False) -> int:
        """0 when clean; 1 when errors (or, under strict, any finding)."""
        gating = self.findings if strict else self.errors()
        return 1 if gating else 0

    def extend(self, other: "AnalysisReport") -> None:
        """Fold another report into this one."""
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.baselined.extend(other.baselined)
        self.dynamic_stats.update(other.dynamic_stats)

    def publish_metrics(self, metrics: MetricsRegistry) -> None:
        """Count findings into ``analysis.*`` telemetry counters.

        ``analysis.findings{rule=...}`` counts live findings;
        ``analysis.suppressed{rule=...}`` counts pragma- and
        baseline-silenced ones, so suppression debt stays visible in the
        exported telemetry stream.
        """
        for f in self.findings:
            metrics.counter("analysis.findings", rule=f.rule).inc()
        for f in self.suppressed + self.baselined:
            metrics.counter("analysis.suppressed", rule=f.rule).inc()


def sort_findings(findings: Iterable[Finding]) -> list[Finding]:
    """Stable presentation order: severity, then path, line, rule."""
    rank = {s: i for i, s in enumerate(SEVERITIES)}
    return sorted(
        findings,
        key=lambda f: (rank.get(f.severity, len(SEVERITIES)),
                       f.path, f.line, f.rule),
    )


def render_text(report: AnalysisReport) -> str:
    """Human-readable one-line-per-finding rendering."""
    lines = [
        f"{f.location()}: {f.rule} [{f.severity}] {f.message}"
        for f in sort_findings(report.findings)
    ]
    n_err = len(report.errors())
    lines.append(
        f"{len(report.findings)} finding(s) "
        f"({n_err} error(s), {len(report.suppressed)} suppressed, "
        f"{len(report.baselined)} baselined)"
    )
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    """Machine-readable rendering (schema ``repro.analysis/2``).

    ``/2`` over ``/1``: findings may carry a ``qualname`` field (the
    enclosing function), and the RL007/RL008/RL009 protocol rules
    appear in the stream.  Consumers of ``/1`` that ignored unknown
    finding fields read ``/2`` unchanged.
    """
    metrics = MetricsRegistry()
    report.publish_metrics(metrics)
    doc = {
        "schema": "repro.analysis/2",
        "findings": [f.to_dict() for f in sort_findings(report.findings)],
        "suppressed": [
            f.to_dict() for f in sort_findings(report.suppressed)
        ],
        "baselined": [f.to_dict() for f in sort_findings(report.baselined)],
        "dynamic": report.dynamic_stats,
        "metrics": metrics.as_dict(),
    }
    return json.dumps(doc, indent=2, sort_keys=True)
