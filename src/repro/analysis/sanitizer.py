"""Kernel sanitizer: shadow-memory write-set tracking for scatter kernels.

The Stage-2 scatter kernels (paper §3.2) are data-parallel: one simulated
thread per contribution, all landing in shared buffers.  The correctness
contract is that concurrent writes to one slot are either

* declared **atomic** (``"atomic"`` scatter mode: order-nondeterministic
  but each update is indivisible),
* combined through a declared **reduce** (the sort-based
  ``"deterministic"``/``"compensated"`` modes: fixed order), or
* **unique** per launch (the diagonal fill) / raw assignments with no
  overlap at all (constraint-row RHS fills).

On real hardware a violated contract is a silent race; here the sanitizer
makes it a structured finding.  Each observed launch builds a shadow
write-count array over the target buffer (``np.bincount`` over the slot
list — the write-set) and checks the declared combine semantics against
the duplicates it finds.

Attach by setting ``LocalAssembler.sanitizer``; the assembler calls
:meth:`KernelSanitizer.observe` once per scatter launch with zero overhead
when unset.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.findings import Finding
from repro.obs.metrics import MetricsRegistry

#: Declared combine semantics for one scatter launch.
COMBINE_MODES = ("atomic", "reduce", "unique", "none")


@dataclass
class LaunchRecord:
    """Shadow-memory summary of one observed kernel launch."""

    kernel: str
    combine: str
    n_writes: int
    n_slots: int
    max_writes_per_slot: int

    @property
    def has_conflicts(self) -> bool:
        """More than one write landed on some slot."""
        return self.max_writes_per_slot > 1


class KernelSanitizer:
    """Write-set tracker + contract checker for scatter launches."""

    def __init__(self) -> None:
        self.launches: list[LaunchRecord] = []
        self.findings: list[Finding] = []
        #: Launches that were racy-but-declared-atomic (the paper's
        #: documented nondeterminism, not a bug — but worth counting).
        self.nondeterministic_launches = 0

    def observe(
        self,
        kernel: str,
        target: np.ndarray,
        slots: np.ndarray,
        combine: str,
    ) -> None:
        """Record one launch's write-set and check its combine contract.

        Args:
            kernel: kernel label (matches the op-recorder kernel names).
            target: destination buffer (its size bounds the shadow array).
            slots: destination index per simulated thread.
            combine: one of :data:`COMBINE_MODES` — how concurrent writes
                to one slot are declared to combine.
        """
        if combine not in COMBINE_MODES:
            raise ValueError(
                f"unknown combine {combine!r}; options {COMBINE_MODES}"
            )
        slots = np.asarray(slots)
        if slots.size:
            shadow = np.bincount(slots.astype(np.int64))
            max_writes = int(shadow.max())
            n_slots = int(np.count_nonzero(shadow))
        else:
            max_writes = 0
            n_slots = 0
        rec = LaunchRecord(
            kernel=kernel,
            combine=combine,
            n_writes=int(slots.size),
            n_slots=n_slots,
            max_writes_per_slot=max_writes,
        )
        self.launches.append(rec)
        if not rec.has_conflicts:
            return
        if combine == "atomic":
            # Declared: indivisible updates, nondeterministic order.
            self.nondeterministic_launches += 1
        elif combine == "reduce":
            # Declared: fixed-order segmented reduction.  Conflicts are
            # the expected input, combined deterministically.
            pass
        elif combine == "unique":
            self.findings.append(
                Finding(
                    rule="KS002",
                    path="",
                    line=0,
                    severity="error",
                    kernel=kernel,
                    message=(
                        f"kernel declared unique-per-slot wrote one slot "
                        f"{rec.max_writes_per_slot} times "
                        f"({rec.n_writes} writes over {rec.n_slots} "
                        "slots): the single-write invariant is broken"
                    ),
                )
            )
        else:  # none: raw (non-atomic) writes — any overlap is a race.
            self.findings.append(
                Finding(
                    rule="KS001",
                    path="",
                    line=0,
                    severity="error",
                    kernel=kernel,
                    message=(
                        f"conflicting writes not declared atomic: "
                        f"{rec.n_writes} raw writes hit {rec.n_slots} "
                        f"slots with up to {rec.max_writes_per_slot} "
                        "writers per slot — last-writer-wins is "
                        "schedule-dependent"
                    ),
                )
            )

    # -- reporting ---------------------------------------------------------

    def summary(self) -> dict:
        """JSON-ready launch/conflict statistics."""
        return {
            "launches": len(self.launches),
            "conflicting_launches": sum(
                1 for r in self.launches if r.has_conflicts
            ),
            "nondeterministic_atomic_launches": (
                self.nondeterministic_launches
            ),
            "findings": len(self.findings),
        }

    def publish_metrics(self, metrics: MetricsRegistry) -> None:
        """Count sanitizer findings into ``analysis.*`` counters."""
        for f in self.findings:
            metrics.counter("analysis.findings", rule=f.rule).inc()
        metrics.counter("analysis.sanitized_launches").inc(
            len(self.launches)
        )
