"""Determinism harness: permuted simulated-thread replay of the kernels.

The paper's contract (§3.2-§3.3) has two halves:

* ``"atomic"`` scatter mode is *declared* nondeterministic: the commit
  order of device atomics depends on warp scheduling, so run-to-run
  results differ — but only within the floating-point reassociation
  bound of each slot's contribution set;
* the ``"deterministic"``/``"compensated"`` modes and the Algorithm 1-2
  ``stable_sort_by_key`` + ``reduce_by_key`` pipeline (including the
  pattern-frozen :class:`~repro.assembly.plan.AssemblyPlan` replay) must
  be **bitwise identical** regardless of thread schedule, because the
  summation order is fixed by the canonical contribution list, not by
  which thread runs first.

This harness makes both halves executable: it replays the Stage-2 scatter
kernels and the Stage-3 assembly under permuted simulated-thread
iteration orders (a :class:`ThreadSchedule` injected into
:class:`~repro.assembly.local.LocalAssembler`) and checks bitwise
identity — or, for atomic mode, deviation against the documented bound

    ``|sum_pi(v) - sum_id(v)| <= 2 (c_s - 1) eps sum_s |v|``

per slot ``s`` with ``c_s`` contributions (first-order reassociation
error), with a safety factor of :data:`ATOMIC_BOUND_SAFETY`.

Dynamic findings use ``KSxxx`` rule ids:

======  ==============================================================
KS001   conflicting raw write (from :mod:`repro.analysis.sanitizer`)
KS002   unique-contract violation (from the sanitizer)
KS003   deterministic/compensated replay (or Algorithm 1/2 path) not
        bitwise identical under thread permutation
KS004   atomic-mode deviation exceeds the documented bound
KS005   SimWorld phase stack unbalanced after a replay
======  ==============================================================
"""

from __future__ import annotations

import numpy as np

from repro.analysis.findings import AnalysisReport, Finding
from repro.analysis.sanitizer import KernelSanitizer
from repro.assembly.global_assembly import (
    VARIANTS,
    assemble_global_matrix,
    assemble_global_vector,
)
from repro.assembly.graph import EquationGraph, GraphSpec
from repro.assembly.local import (
    SCATTER_MODES,
    LocalAssembler,
    _segmented_kahan,
)
from repro.assembly.plan import AssemblyPlan
from repro.comm.simcomm import SimWorld
from repro.partition import build_numbering

#: Safety factor on the first-order reassociation bound (covers the
#: higher-order terms the first-order analysis drops).
ATOMIC_BOUND_SAFETY = 4.0


class ThreadSchedule:
    """Seeded simulated-thread iteration order for scatter launches.

    ``order(n)`` returns the commit order of ``n`` concurrent threads.
    One instance is one schedule stream: launches draw successive
    permutations, so two runs built with the same seed replay the same
    schedule and runs with different seeds model different executions.
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self.rng = np.random.default_rng(seed)

    def order(self, n: int) -> np.ndarray:
        """Commit order for a launch of ``n`` threads."""
        return self.rng.permutation(n)


def replay_scatter(
    n: int,
    slots: np.ndarray,
    vals: np.ndarray,
    mode: str,
    order: np.ndarray,
    sort_kind: str = "stable",
) -> np.ndarray:
    """Replay one scatter launch under a given thread commit order.

    Mirrors :meth:`LocalAssembler._scatter` semantics:

    * ``atomic`` — contributions commit in ``order`` (each add
      indivisible): result depends on the schedule;
    * ``deterministic``/``compensated`` — the kernel stably sorts the
      *canonical* contribution list by destination, so the schedule only
      permutes which segment a thread reduces, never the within-segment
      order: the result is schedule-invariant.

    ``sort_kind="unstable"`` models the bug class the harness exists to
    catch: an implementation that sorts the arrival-ordered list (or uses
    an unstable sort, whose intra-key order is arrival-dependent), which
    silently re-introduces schedule dependence into the "deterministic"
    modes.
    """
    if mode not in SCATTER_MODES:
        raise ValueError(f"unknown mode {mode!r}; options {SCATTER_MODES}")
    if sort_kind not in ("stable", "unstable"):
        raise ValueError("sort_kind must be 'stable' or 'unstable'")
    target = np.zeros(n)
    if mode == "atomic":
        np.add.at(target, slots[order], vals[order])
        return target
    if sort_kind == "stable":
        s, v = slots, vals
    else:
        s, v = slots[order], vals[order]
    if mode == "compensated":
        _segmented_kahan(target, s, v)
        return target
    perm = np.argsort(s, kind="stable")
    s_sorted = s[perm]
    v_sorted = v[perm]
    starts = np.flatnonzero(np.r_[True, s_sorted[1:] != s_sorted[:-1]])
    np.add.at(target, s_sorted[starts], np.add.reduceat(v_sorted, starts))
    return target


def atomic_deviation_bound(
    n: int, slots: np.ndarray, vals: np.ndarray
) -> np.ndarray:
    """Per-slot documented bound on atomic reorder deviation.

    ``2 (c_s - 1) eps sum_s |v|`` — the first-order worst case of
    summing ``c_s`` terms in two different orders.
    """
    counts = np.zeros(n)
    np.add.at(counts, slots, 1.0)
    abs_sum = np.zeros(n)
    np.add.at(abs_sum, slots, np.abs(vals))
    eps = np.finfo(np.float64).eps
    return 2.0 * np.maximum(counts - 1.0, 0.0) * eps * abs_sum


def _mk_finding(rule: str, kernel: str, message: str) -> Finding:
    return Finding(
        rule=rule,
        path="",
        line=0,
        severity="error",
        kernel=kernel,
        message=message,
    )


def check_scatter_modes(
    seed: int = 0,
    n: int = 48,
    m: int = 420,
    n_orders: int = 4,
    sort_kind: str = "stable",
    modes: tuple[str, ...] = SCATTER_MODES,
) -> AnalysisReport:
    """Permuted-order replay of the scatter kernel over all modes.

    Contributions mix magnitudes over ~10 decades so floating-point
    reassociation is actually visible: a schedule-dependent summation
    order cannot hide behind exactly-representable values.
    """
    report = AnalysisReport()
    rng = np.random.default_rng(seed)
    slots = rng.integers(0, n, size=m)
    vals = rng.standard_normal(m) * 10.0 ** rng.integers(-9, 1, size=m)
    identity = np.arange(m)
    orders = [rng.permutation(m) for _ in range(n_orders)]
    bound = atomic_deviation_bound(n, slots, vals)
    max_dev = 0.0
    max_bound = float(
        (ATOMIC_BOUND_SAFETY * bound).max() if m else 0.0
    )
    checks = 0
    for mode in modes:
        ref = replay_scatter(n, slots, vals, mode, identity, sort_kind)
        for order in orders:
            out = replay_scatter(n, slots, vals, mode, order, sort_kind)
            checks += 1
            if mode == "atomic":
                dev = np.abs(out - ref)
                max_dev = max(max_dev, float(dev.max()))
                if np.any(dev > ATOMIC_BOUND_SAFETY * bound):
                    report.findings.append(
                        _mk_finding(
                            "KS004",
                            f"scatter:{mode}",
                            f"atomic reorder deviation {dev.max():.3e} "
                            "exceeds the documented reassociation bound "
                            f"{(ATOMIC_BOUND_SAFETY * bound).max():.3e}",
                        )
                    )
                    break
            elif not np.array_equal(out, ref):
                report.findings.append(
                    _mk_finding(
                        "KS003",
                        f"scatter:{mode}",
                        f"{mode} scatter is not bitwise invariant under "
                        "thread permutation: the reduction order leaked "
                        "schedule dependence (unstable sort or "
                        "arrival-ordered input)",
                    )
                )
                break
    report.dynamic_stats["scatter_checks"] = checks
    report.dynamic_stats["atomic_max_deviation"] = max_dev
    report.dynamic_stats["atomic_bound"] = max_bound
    return report


# -- end-to-end assembly pipeline replay -------------------------------------


def _build_problem(seed: int, n: int, E: int, nranks: int, ncons: int):
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n, size=(E, 2))
    edges = edges[edges[:, 0] != edges[:, 1]]
    cons = rng.choice(n, size=ncons, replace=False)
    parts = rng.integers(0, nranks, size=n)
    num = build_numbering(parts, nranks)
    return edges, cons, num


def _fill(
    world: SimWorld,
    graph: EquationGraph,
    num,
    edges: np.ndarray,
    cons: np.ndarray,
    value_seed: int,
    mode: str,
    schedule: ThreadSchedule | None = None,
    sanitizer: KernelSanitizer | None = None,
    transform=None,
):
    """One Stage-2 fill; ``transform`` maps each contribution array
    (``np.abs`` / ``np.ones_like`` turn the fill into the per-slot
    absolute-sum / write-count shadow references for the atomic bound)."""
    t = transform if transform is not None else (lambda x: x)
    rng = np.random.default_rng(value_seed)
    E = edges.shape[0]
    ge = rng.standard_normal(E) * 10.0 ** rng.integers(-8, 1, size=E)
    la = LocalAssembler(world, graph, mode=mode)
    la.schedule = schedule
    la.sanitizer = sanitizer
    la.add_edge_matrix(t(np.stack([ge, -ge, -ge, ge], axis=1)))
    la.add_diag(t(rng.random(graph.n) + 1.0))
    la.add_node_rhs(t(rng.standard_normal(graph.n)))
    la.add_edge_rhs(t(rng.standard_normal((E, 2))))
    la.set_constraint_rhs(
        num.old_to_new[cons], t(rng.standard_normal(cons.size))
    )
    return la


def check_assembly_pipeline(
    seed: int = 0,
    n: int = 60,
    E: int = 160,
    nranks: int = 3,
    ncons: int = 4,
    n_orders: int = 3,
    variants: tuple[str, ...] = VARIANTS,
) -> AnalysisReport:
    """Replay the real Stage-2/Stage-3 pipeline under permuted schedules.

    Checks, per the acceptance contract:

    * Stage-2 ``deterministic``/``compensated`` fills are bitwise
      identical across thread schedules (KS003);
    * Stage-2 ``atomic`` fills deviate only within the documented bound
      (KS004), measured against shadow write-count / absolute-sum fills;
    * Algorithm 1/2 cold assembly is run-to-run deterministic and the
      :class:`AssemblyPlan` fast path replays it bitwise for every
      variant (KS003);
    * the world's phase stack is balanced afterwards (KS005).
    """
    report = AnalysisReport()
    edges, cons, num = _build_problem(seed, n, E, nranks, ncons)
    value_seed = seed + 101

    def graph_for(world: SimWorld) -> EquationGraph:
        return EquationGraph(
            world, num, GraphSpec(n=n, edges=edges, constraint_rows=cons)
        )

    sanitizer = KernelSanitizer()
    world = SimWorld(nranks)
    graph = graph_for(world)

    # Shadow references for the atomic bound: per-slot write counts and
    # absolute contribution sums (deterministic fills of ones / abs).
    counts = _fill(
        world, graph, num, edges, cons, value_seed, "deterministic",
        transform=np.ones_like,
    )
    abs_sums = _fill(
        world, graph, num, edges, cons, value_seed, "deterministic",
        transform=np.abs,
    )
    eps = np.finfo(np.float64).eps
    bound = (
        ATOMIC_BOUND_SAFETY
        * 2.0
        * np.maximum(counts.values - 1.0, 0.0)
        * eps
        * abs_sums.values
    )

    max_dev = 0.0
    for mode in SCATTER_MODES:
        ref = _fill(
            world, graph, num, edges, cons, value_seed, mode,
            sanitizer=sanitizer,
        )
        for k in range(1, n_orders + 1):
            out = _fill(
                world, graph, num, edges, cons, value_seed, mode,
                schedule=ThreadSchedule(seed + 7 * k),
            )
            same = (
                np.array_equal(out.values, ref.values)
                and np.array_equal(out.rhs_owned, ref.rhs_owned)
                and np.array_equal(out.rhs_shared, ref.rhs_shared)
            )
            if mode == "atomic":
                dev = np.abs(out.values - ref.values)
                max_dev = max(max_dev, float(dev.max()))
                if np.any(dev > bound):
                    report.findings.append(
                        _mk_finding(
                            "KS004",
                            "assemble_edge:atomic",
                            "atomic Stage-2 fill deviates "
                            f"{dev.max():.3e} under thread permutation, "
                            "beyond the documented reassociation bound "
                            f"{bound.max():.3e}",
                        )
                    )
                    break
            elif not same:
                report.findings.append(
                    _mk_finding(
                        "KS003",
                        f"assemble_edge:{mode}",
                        f"Stage-2 {mode} fill is not bitwise invariant "
                        "under thread permutation",
                    )
                )
                break
            out.release()
        ref.release()

    # Algorithm 1/2: cold determinism + AssemblyPlan replay, per variant.
    for variant in variants:
        local = _fill(
            world, graph, num, edges, cons, value_seed, "deterministic"
        ).finalize()
        plan = AssemblyPlan(num, variant, graph=graph, name="san")
        am_cold = assemble_global_matrix(
            world, num, local, variant, plan=plan
        )
        rhs_cold = assemble_global_vector(world, num, local, variant)
        am_again = assemble_global_matrix(world, num, local, variant)
        if not (
            np.array_equal(am_cold.matrix.A.data, am_again.matrix.A.data)
            and np.array_equal(
                am_cold.matrix.A.indices, am_again.matrix.A.indices
            )
        ):
            report.findings.append(
                _mk_finding(
                    "KS003",
                    f"alg1_cold:{variant}",
                    f"Algorithm 1 ({variant}) cold assembly is not "
                    "run-to-run deterministic on identical input",
                )
            )
        # Fresh values on the frozen pattern: fast path vs cold path.
        local2 = _fill(
            world, graph, num, edges, cons, value_seed + 1, "deterministic"
        ).finalize()
        am_fast = assemble_global_matrix(
            world, num, local2, variant, plan=plan
        )
        am_ref = assemble_global_matrix(world, num, local2, variant)
        if not np.array_equal(am_fast.matrix.A.data, am_ref.matrix.A.data):
            report.findings.append(
                _mk_finding(
                    "KS003",
                    f"alg1_replay:{variant}",
                    f"AssemblyPlan matrix replay ({variant}) is not "
                    "bitwise identical to a cold Algorithm 1 assembly",
                )
            )
        assemble_global_vector(world, num, local, variant, plan=plan)
        rhs_fast = assemble_global_vector(
            world, num, local, variant, plan=plan
        )
        if not np.array_equal(rhs_fast.data, rhs_cold.data):
            report.findings.append(
                _mk_finding(
                    "KS003",
                    f"alg2_replay:{variant}",
                    f"AssemblyPlan vector replay ({variant}) is not "
                    "bitwise identical to a cold Algorithm 2 assembly",
                )
            )

    try:
        world.assert_phase_balanced()
    except RuntimeError as exc:
        report.findings.append(
            _mk_finding("KS005", "phase_stack", str(exc))
        )

    report.findings.extend(sanitizer.findings)
    report.dynamic_stats["pipeline_atomic_max_deviation"] = max_dev
    report.dynamic_stats["pipeline_atomic_bound"] = float(bound.max())
    report.dynamic_stats["sanitizer"] = sanitizer.summary()
    return report


def run_dynamic_checks(seed: int = 0) -> AnalysisReport:
    """All dynamic sanitizer/determinism checks (the ``analyze`` default)."""
    report = check_scatter_modes(seed=seed)
    report.extend(check_assembly_pipeline(seed=seed))
    report.dynamic_stats["modes"] = list(SCATTER_MODES)
    return report
